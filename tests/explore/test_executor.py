"""Sweep execution: ordering, caching, parallelism, error containment.

All tests run on the tiny 6-NPU ``RI(3)_RI(2)`` fabric so a full grid
solves in well under a second per cell.
"""

import pytest

from repro.core import Scheme
from repro.explore import (
    ExplorationPoint,
    ResultCache,
    SweepSpec,
    run_sweep,
)

TINY = "RI(3)_RI(2)"


def tiny_spec(**overrides) -> SweepSpec:
    base = dict(
        workloads=("Turing-NLG",),
        topologies=(TINY,),
        bandwidths_gbps=(100.0, 300.0),
        schemes=(Scheme.PERF_OPT,),
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestSerialExecution:
    def test_rows_in_grid_order(self):
        spec = tiny_spec()
        sweep = run_sweep(spec)
        assert [r.point for r in sweep.results] == spec.expand()
        assert sweep.num_errors == 0
        assert sweep.solver_calls == 2
        for result in sweep.results:
            assert result.ok
            assert result.key
            assert len(result.bandwidths_gbps) == 2
            assert result.step_time_ms > 0
            assert result.speedup_over_equal >= 1.0 - 1e-6

    def test_equal_scheme_is_the_baseline(self):
        sweep = run_sweep(tiny_spec(schemes=(Scheme.EQUAL_BW,)))
        for result in sweep.results:
            assert result.speedup_over_equal == pytest.approx(1.0)
            assert result.ppc_gain_over_equal == pytest.approx(1.0)
            # EqualBW splits the budget evenly across both dimensions.
            assert result.bandwidths_gbps[0] == pytest.approx(result.bandwidths_gbps[1])

    def test_progress_callback(self):
        seen = []
        spec = tiny_spec()
        run_sweep(spec, progress=lambda done, total, r: seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]

    def test_duplicate_points_solved_once(self):
        point = ExplorationPoint("Turing-NLG", TINY, 100.0, Scheme.PERF_OPT)
        sweep = run_sweep([point, point])
        assert sweep.solver_calls == 1
        assert sweep.results[0].to_dict() == sweep.results[1].to_dict()


class TestErrorContainment:
    def test_unmappable_workload_is_an_error_row(self):
        # GPT-3 needs TP-16, which cannot divide a 6-NPU fabric.
        sweep = run_sweep(tiny_spec(workloads=("Turing-NLG", "GPT-3")))
        good = sweep.filter(workload="Turing-NLG")
        bad = sweep.filter(workload="GPT-3")
        assert all(r.ok for r in good)
        assert all(not r.ok for r in bad)
        assert all("MappingError" in r.error for r in bad)
        assert sweep.num_errors == 2

    def test_bad_topology_is_an_error_row(self):
        sweep = run_sweep(tiny_spec(topologies=(TINY, "XX(4)")))
        assert sweep.num_errors == 2
        bad = sweep.filter(topology="XX(4)")
        assert all("NotationError" in r.error for r in bad)

    def test_error_rows_are_retried_not_cached(self):
        cache = ResultCache()
        spec = tiny_spec(workloads=("GPT-3",))
        first = run_sweep(spec, cache=cache)
        second = run_sweep(spec, cache=cache)
        assert first.num_errors == second.num_errors == 2
        assert second.cache_hits == 0


class TestCaching:
    def test_identical_rerun_is_all_hits_and_zero_solver_calls(self, monkeypatch):
        cache = ResultCache()
        spec = tiny_spec()
        cold = run_sweep(spec, cache=cache)
        assert cold.cache_hits == 0 and cold.solver_calls == 2

        # Prove "no solver calls" structurally: any optimize would blow up.
        import repro.core.framework as framework

        def boom(*_args, **_kwargs):
            raise AssertionError("solver must not run on a warm cache")

        monkeypatch.setattr(framework, "minimize_training_time", boom)
        monkeypatch.setattr(framework, "minimize_time_cost_product", boom)

        warm = run_sweep(spec, cache=cache)
        assert warm.cache_hits == len(warm.results) == 2
        assert warm.solver_calls == 0
        assert warm.hit_rate == 1.0
        assert all(r.from_cache for r in warm.results)
        for a, b in zip(cold.results, warm.results):
            assert a.to_dict() == {**b.to_dict(), "from_cache": False}

    def test_widening_an_axis_only_solves_new_cells(self):
        cache = ResultCache()
        run_sweep(tiny_spec(bandwidths_gbps=(100.0, 300.0)), cache=cache)
        widened = run_sweep(
            tiny_spec(bandwidths_gbps=(100.0, 200.0, 300.0)), cache=cache
        )
        assert widened.cache_hits == 2
        assert widened.solver_calls == 1

    def test_disk_cache_shared_across_instances(self, tmp_path):
        spec = tiny_spec()
        run_sweep(spec, cache=ResultCache(tmp_path / "cache"))
        warm = run_sweep(spec, cache=ResultCache(tmp_path / "cache"))
        assert warm.hit_rate == 1.0 and warm.solver_calls == 0


class TestCompletenessGuard:
    def test_unresolved_cell_raises_explicitly(self):
        """Partial sweeps must raise ReproError, never return silently
        (a bare assert would be stripped under ``python -O``)."""
        from repro.explore.executor import _require_complete
        from repro.utils.errors import ReproError

        point = ExplorationPoint("Turing-NLG", TINY, 100.0, Scheme.PERF_OPT)
        resolved = run_sweep([point]).results[0]
        with pytest.raises(ReproError, match="1 of 2 cells unresolved"):
            _require_complete([resolved, None], 2)

    def test_complete_results_pass(self):
        from repro.explore.executor import _require_complete

        point = ExplorationPoint("Turing-NLG", TINY, 100.0, Scheme.PERF_OPT)
        resolved = run_sweep([point]).results[0]
        _require_complete([resolved], 1)  # no raise


class TestPerWorkerLRU:
    def test_topology_and_workload_resolved_once(self):
        """Cells sharing a topology/workload reuse one cached instance."""
        from repro.explore.executor import (
            _build_workload_cached,
            _resolve_topology_cached,
        )

        _resolve_topology_cached.cache_clear()
        _build_workload_cached.cache_clear()
        run_sweep(tiny_spec(bandwidths_gbps=(100.0, 200.0, 300.0)))
        topo_info = _resolve_topology_cached.cache_info()
        workload_info = _build_workload_cached.cache_info()
        assert topo_info.misses == 1
        assert topo_info.hits == 2
        assert workload_info.misses == 1
        assert workload_info.hits == 2

    def test_lru_failures_propagate_uncached(self):
        from repro.explore.executor import _resolve_topology_cached

        _resolve_topology_cached.cache_clear()
        with pytest.raises(Exception):
            _resolve_topology_cached("XX(4)")
        with pytest.raises(Exception):
            _resolve_topology_cached("XX(4)")
        assert _resolve_topology_cached.cache_info().currsize == 0


class TestParallelExecution:
    def test_parallel_equals_serial(self):
        spec = tiny_spec(
            bandwidths_gbps=(100.0, 300.0),
            schemes=(Scheme.PERF_OPT, Scheme.PERF_PER_COST_OPT),
        )
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=2)
        assert len(serial.results) == len(parallel.results) == 4
        for a, b in zip(serial.results, parallel.results):
            # Bit-identical rows: chains are the unit of fan-out, so warm
            # propagation follows the identical path in both modes.
            assert a.to_dict() == b.to_dict()

    def test_parallel_fills_cache(self):
        cache = ResultCache()
        spec = tiny_spec()
        cold = run_sweep(spec, cache=cache, workers=2)
        assert cold.solver_calls == 2
        warm = run_sweep(spec, cache=cache, workers=2)
        assert warm.hit_rate == 1.0 and warm.solver_calls == 0


class TestContinuation:
    def test_chain_cells_report_warm_diagnostics(self):
        sweep = run_sweep(tiny_spec(bandwidths_gbps=(100.0, 200.0, 300.0)))
        first, second, third = sweep.results
        assert first.warm_start == "cold"
        for row in (second, third):
            assert row.warm_start == "accepted" or row.warm_start.startswith(
                "rejected"
            )
        assert first.solver_starts > 1

    def test_continuation_off_solves_every_cell_cold(self):
        sweep = run_sweep(
            tiny_spec(bandwidths_gbps=(100.0, 200.0, 300.0)),
            continuation=False,
        )
        assert all(row.warm_start == "cold" for row in sweep.results)
        assert sweep.profile is not None
        assert sweep.profile.chains == 3  # singleton chains
        assert sweep.profile.warm_accepted == 0

    def test_warm_objectives_match_cold_within_tolerance(self):
        spec = tiny_spec(
            bandwidths_gbps=(100.0, 200.0, 300.0),
            schemes=(Scheme.PERF_OPT, Scheme.PERF_PER_COST_OPT),
        )
        cold = run_sweep(spec, continuation=False)
        warm = run_sweep(spec, continuation=True)
        for a, b in zip(cold.results, warm.results):
            assert b.step_time_ms <= a.step_time_ms * 1.02

    def test_equal_bw_cells_never_warm_start(self):
        sweep = run_sweep(
            tiny_spec(
                bandwidths_gbps=(100.0, 200.0), schemes=(Scheme.EQUAL_BW,)
            )
        )
        # EqualBW rows carry no solver diagnostics at all.
        assert all(row.warm_start == "" for row in sweep.results)
        assert all(row.solver_starts == 0 for row in sweep.results)

    def test_profile_reports_stage_timings(self):
        sweep = run_sweep(tiny_spec())
        profile = sweep.profile
        assert profile is not None
        assert profile.total_s > 0
        assert profile.solve_s > 0
        assert profile.chains == 1
        assert (
            profile.warm_accepted + profile.warm_rejected + profile.cold_solves
            == sweep.solver_calls
        )
        assert 0.0 <= profile.warm_hit_rate <= 1.0
        assert "sweep profile:" in profile.format()

    def test_profile_not_serialized_with_rows(self):
        """Wall-clock numbers must never leak into row artifacts."""
        payload = run_sweep(tiny_spec()).to_dict()
        assert "profile" not in payload

    def test_widened_axis_warm_starts_from_cached_neighbor(self):
        """Appending one budget to a cached column must not pay a cold
        solve: the new cell seeds from the nearest cached optimum."""
        cache = ResultCache()
        run_sweep(tiny_spec(bandwidths_gbps=(100.0, 300.0)), cache=cache)
        widened = run_sweep(
            tiny_spec(bandwidths_gbps=(100.0, 200.0, 300.0)), cache=cache
        )
        assert widened.cache_hits == 2
        assert widened.solver_calls == 1
        new_row = widened.get(total_bw_gbps=200.0)
        assert not new_row.from_cache
        assert new_row.warm_start == "accepted" or new_row.warm_start.startswith(
            "rejected"
        )

    def test_rejected_warm_start_still_matches_cold(self, monkeypatch):
        """A distrusted warm seed must fall back to the cold fan-out."""
        import repro.core.solver as solver

        cold = run_sweep(
            tiny_spec(bandwidths_gbps=(100.0, 200.0)), continuation=False
        )
        monkeypatch.setattr(solver, "WARM_TRUST_RTOL", -1.0)
        warm = run_sweep(tiny_spec(bandwidths_gbps=(100.0, 200.0)))
        assert warm.results[1].warm_start == "rejected:drift"
        assert warm.profile.warm_rejected == 1
        for a, b in zip(cold.results, warm.results):
            assert b.step_time_ms <= a.step_time_ms * 1.02


class TestFanoutAccounting:
    def test_duplicates_reported_as_fanout_not_extra_solves(self):
        point = ExplorationPoint("Turing-NLG", TINY, 100.0, Scheme.PERF_OPT)
        seen = []
        sweep = run_sweep(
            [point, point, point],
            progress=lambda done, total, r: seen.append((done, total)),
        )
        assert sweep.solver_calls == 1
        assert sweep.fanout_cells == 2
        # Every grid cell reports exactly once and done never exceeds total.
        assert seen == [(1, 3), (2, 3), (3, 3)]
        assert sweep.to_dict()["fanout_cells"] == 2

    def test_unique_grid_has_zero_fanout(self):
        sweep = run_sweep(tiny_spec())
        assert sweep.fanout_cells == 0
        assert sweep.solver_calls == 2

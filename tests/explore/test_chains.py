"""Continuation-chain partitioning: coverage, ordering, determinism."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Scheme
from repro.explore import SweepSpec, build_chains, chain_signature
from repro.explore.spec import ExplorationPoint

WORKLOADS = ("Turing-NLG", "GPT-3", "DLRM")
TOPOLOGIES = ("RI(3)_RI(2)", "3D-512", "4D-4K")
SCHEMES = (Scheme.PERF_OPT, Scheme.PERF_PER_COST_OPT, Scheme.EQUAL_BW)
CAPS = ((), ((0, 50.0),))


def _point(workload, topology, budget, scheme, caps) -> ExplorationPoint:
    return ExplorationPoint(
        workload=workload,
        topology=topology,
        total_bw_gbps=budget,
        scheme=scheme,
        dim_caps_gbps=caps,
    )


points_strategy = st.lists(
    st.builds(
        _point,
        st.sampled_from(WORKLOADS),
        st.sampled_from(TOPOLOGIES),
        st.sampled_from((100.0, 200.0, 300.0, 500.0, 1000.0)),
        st.sampled_from(SCHEMES),
        st.sampled_from(CAPS),
    ),
    max_size=40,
)


class TestPartitionProperties:
    @settings(max_examples=200, deadline=None)
    @given(points=points_strategy)
    def test_every_cell_exactly_once(self, points):
        """The partition is exact: each input pair lands in one chain."""
        items = [(index, point) for index, point in enumerate(points)]
        chains = build_chains(items)
        flattened = [tag for chain in chains for tag, _ in chain]
        assert Counter(flattened) == Counter(range(len(points)))

    @settings(max_examples=200, deadline=None)
    @given(points=points_strategy)
    def test_chains_are_budget_sorted_and_signature_uniform(self, points):
        items = [(index, point) for index, point in enumerate(points)]
        for chain in build_chains(items):
            budgets = [point.total_bw_gbps for _, point in chain]
            assert budgets == sorted(budgets)
            signatures = {chain_signature(point) for _, point in chain}
            assert len(signatures) == 1

    @settings(max_examples=100, deadline=None)
    @given(points=points_strategy)
    def test_partition_is_deterministic(self, points):
        items = [(index, point) for index, point in enumerate(points)]
        assert build_chains(items) == build_chains(items)


class TestGridChains:
    def test_grid_partitions_into_one_chain_per_column(self):
        """A spec grid yields exactly workloads × topologies × schemes
        chains, each spanning the full budget axis in ascending order."""
        spec = SweepSpec(
            workloads=("Turing-NLG", "GPT-3"),
            topologies=("3D-512",),
            bandwidths_gbps=(500.0, 100.0, 300.0),
            schemes=(Scheme.PERF_OPT, Scheme.PERF_PER_COST_OPT),
        )
        points = spec.expand()
        chains = build_chains([(i, p) for i, p in enumerate(points)])
        assert len(chains) == 4
        for chain in chains:
            assert [p.total_bw_gbps for _, p in chain] == [100.0, 300.0, 500.0]

    def test_equal_budgets_keep_input_order(self):
        a = _point("GPT-3", "3D-512", 100.0, Scheme.PERF_OPT, ())
        b = _point("GPT-3", "3D-512", 100.0, Scheme.PERF_OPT, ())
        chains = build_chains([("first", a), ("second", b)])
        assert len(chains) == 1
        assert [tag for tag, _ in chains[0]] == ["first", "second"]

    def test_caps_split_chains(self):
        """Cells differing only in caps are different continuation families."""
        uncapped = _point("GPT-3", "3D-512", 100.0, Scheme.PERF_OPT, ())
        capped = _point("GPT-3", "3D-512", 100.0, Scheme.PERF_OPT, ((0, 50.0),))
        assert chain_signature(uncapped) != chain_signature(capped)
        assert len(build_chains([(0, uncapped), (1, capped)])) == 2

    def test_signature_ignores_budget(self):
        low = _point("GPT-3", "3D-512", 100.0, Scheme.PERF_OPT, ())
        high = _point("GPT-3", "3D-512", 1000.0, Scheme.PERF_OPT, ())
        assert chain_signature(low) == chain_signature(high)

    def test_empty_input_yields_no_chains(self):
        assert build_chains([]) == []

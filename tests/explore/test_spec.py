"""Sweep specification: grid expansion, validation, spec files."""

import json

import pytest

from repro.core import Scheme
from repro.explore import ExplorationPoint, SweepSpec, load_sweep_spec, resolve_scheme
from repro.utils.errors import ConfigurationError
from repro.workloads import build_workload


class TestResolveScheme:
    def test_aliases(self):
        assert resolve_scheme("perf") is Scheme.PERF_OPT
        assert resolve_scheme("perf-per-cost") is Scheme.PERF_PER_COST_OPT
        assert resolve_scheme("equal") is Scheme.EQUAL_BW

    def test_enum_passthrough_and_value(self):
        assert resolve_scheme(Scheme.PERF_OPT) is Scheme.PERF_OPT
        assert resolve_scheme("PerfOptBW") is Scheme.PERF_OPT

    def test_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            resolve_scheme("fastest")


class TestExplorationPoint:
    def test_normalizes_numbers(self):
        point = ExplorationPoint(
            workload="GPT-3",
            topology="4D-4K",
            total_bw_gbps=500,
            scheme=Scheme.PERF_OPT,
            dim_caps_gbps=((3, 50),),
        )
        assert point.total_bw_gbps == 500.0
        assert point.dim_caps_gbps == ((3, 50.0),)
        assert point.workload_name == "GPT-3"
        assert "GPT-3" in point.label() and "PerfOptBW" in point.label()

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ConfigurationError, match="positive"):
            ExplorationPoint("GPT-3", "4D-4K", 0.0, Scheme.PERF_OPT)

    def test_dict_roundtrip(self):
        point = ExplorationPoint(
            "GPT-3", "4D-4K", 500.0, Scheme.PERF_PER_COST_OPT,
            dim_caps_gbps=((3, 50.0),),
        )
        assert ExplorationPoint.from_dict(point.to_dict()) == point

    def test_workload_object(self):
        workload = build_workload("Turing-NLG", 6)
        point = ExplorationPoint(workload, "RI(3)_RI(2)", 100.0, Scheme.PERF_OPT)
        assert point.workload_name == "Turing-NLG"
        assert point.to_dict()["workload"] == "Turing-NLG"


class TestSweepSpec:
    def test_grid_size_and_order(self):
        spec = SweepSpec(
            workloads=("A", "B"),
            topologies=("T1", "T2"),
            bandwidths_gbps=(100, 200),
            schemes=("perf", "equal"),
        )
        points = spec.expand()
        assert spec.num_points == len(points) == 16
        # Workload-major, scheme varying fastest.
        assert [p.workload for p in points[:4]] == ["A"] * 4
        assert [p.scheme for p in points[:2]] == [Scheme.PERF_OPT, Scheme.EQUAL_BW]
        assert points[0].total_bw_gbps == 100.0 and points[2].total_bw_gbps == 200.0
        # Expansion is deterministic.
        assert points == spec.expand()

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="workloads"):
            SweepSpec(workloads=(), topologies=("T",), bandwidths_gbps=(100,))
        with pytest.raises(ConfigurationError, match="bandwidths"):
            SweepSpec(workloads=("A",), topologies=("T",), bandwidths_gbps=())

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="positive"):
            SweepSpec(workloads=("A",), topologies=("T",), bandwidths_gbps=(100, -5))

    def test_caps_propagate_to_points(self):
        spec = SweepSpec(
            workloads=("A",),
            topologies=("T",),
            bandwidths_gbps=(100,),
            dim_caps_gbps=((2, 50),),
        )
        assert spec.expand()[0].dim_caps_gbps == ((2, 50.0),)

    def test_dict_roundtrip(self):
        spec = SweepSpec(
            workloads=("GPT-3", "Turing-NLG"),
            topologies=("3D-4K",),
            bandwidths_gbps=(100.0, 500.0),
            schemes=(Scheme.PERF_OPT,),
            dim_caps_gbps=((1, 25.0),),
        )
        assert SweepSpec.from_dict(spec.to_dict()) == spec


class TestSpecFile:
    def test_load(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({
            "workloads": ["GPT-3"],
            "topologies": ["4D-4K", "3D-4K"],
            "bandwidths_gbps": [100, 500],
            "schemes": ["perf", "perf-per-cost"],
            "dim_caps_gbps": {"3": 50},
        }))
        spec = load_sweep_spec(path)
        assert spec.num_points == 8
        assert spec.dim_caps_gbps == ((3, 50.0),)

    def test_missing_required_field(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({"workloads": ["GPT-3"]}))
        with pytest.raises(ConfigurationError, match="missing 'topologies'"):
            load_sweep_spec(path)

    def test_unknown_field(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({
            "workloads": ["GPT-3"], "topologies": ["4D-4K"],
            "bandwidths_gbps": [100], "bandwidth": [1],
        }))
        with pytest.raises(ConfigurationError, match="unknown sweep-spec fields"):
            load_sweep_spec(path)

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_sweep_spec(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_sweep_spec(tmp_path / "nope.json")

"""Content addressing: canonical hooks and point keys."""

import pytest

from repro.core import ConstraintSet, Scheme
from repro.cost import default_cost_model
from repro.explore import ExplorationPoint, canonical_json, point_key, point_payload
from repro.topology import MultiDimNetwork, get_topology
from repro.utils import gbps
from repro.utils.errors import ConfigurationError
from repro.workloads import build_workload


def _point(**overrides):
    base = dict(
        workload="Turing-NLG",
        topology="RI(3)_RI(2)",
        total_bw_gbps=100.0,
        scheme=Scheme.PERF_OPT,
    )
    base.update(overrides)
    return ExplorationPoint(**base)


class TestCanonicalHooks:
    def test_network_canonical_ignores_name(self):
        named = MultiDimNetwork.from_notation("RI(4)_RI(4)_RI(4)", name="my-torus")
        preset = get_topology("3D-Torus")
        assert named.canonical() == preset.canonical()

    def test_network_canonical_carries_tiers(self):
        payload = get_topology("4D-4K").canonical()
        assert payload["notation"] == "RI(4)_FC(8)_RI(4)_SW(32)"
        assert payload["tiers"] == ["chiplet", "package", "node", "pod"]

    def test_constraints_canonical_order_normalized(self):
        a = (
            ConstraintSet(3)
            .with_total_bandwidth(gbps(100))
            .with_linear([1.0, 1.0, 0.0], upper=gbps(80), label="x")
        )
        b = (
            ConstraintSet(3)
            .with_linear([1.0, 1.0, 0.0], upper=gbps(80), label="y")
            .with_total_bandwidth(gbps(100))
        )
        assert a.canonical() == b.canonical()

    def test_cost_model_canonical_ignores_name(self):
        model = default_cost_model()
        renamed = type(model)(tiers=model.tiers, name="renamed")
        assert model.canonical() == renamed.canonical()

    def test_workload_canonical_is_stable_and_sensitive(self):
        a = build_workload("Turing-NLG", 6)
        b = build_workload("Turing-NLG", 6)
        assert canonical_json(a.canonical()) == canonical_json(b.canonical())
        bigger = build_workload("Turing-NLG", 12)
        assert canonical_json(a.canonical()) != canonical_json(bigger.canonical())


class TestPointKey:
    def test_deterministic(self):
        assert point_key(_point()) == point_key(_point())

    def test_preset_and_notation_agree(self):
        # A preset topology and its raw notation are the same question.
        assert point_key(
            _point(topology="3D-Torus", workload="Turing-NLG")
        ) == point_key(
            _point(topology="RI(4)_RI(4)_RI(4)", workload="Turing-NLG")
        )

    @pytest.mark.parametrize(
        "override",
        [
            {"total_bw_gbps": 200.0},
            {"scheme": Scheme.PERF_PER_COST_OPT},
            {"topology": "RI(2)_RI(3)"},
            {"workload": "DLRM"},
            {"dim_caps_gbps": ((1, 40),)},
        ],
    )
    def test_every_axis_changes_the_key(self, override):
        assert point_key(_point()) != point_key(_point(**override))

    def test_cost_model_changes_the_key(self):
        from repro.topology.network import NetworkTier

        pricier = default_cost_model().with_link_cost(NetworkTier.POD, 99.0)
        assert point_key(_point()) != point_key(_point(cost_model=pricier))

    def test_workload_object_key_stable(self):
        workload = build_workload("Turing-NLG", 6)
        point = _point(workload=workload)
        assert point_key(point) == point_key(_point(workload=build_workload("Turing-NLG", 6)))

    def test_payload_shape(self):
        payload = point_payload(_point())
        assert set(payload) == {
            "engine_version", "workload", "network", "constraints",
            "cost_model", "scheme",
        }
        # The payload must be JSON-stable (the key is its digest).
        assert canonical_json(payload) == canonical_json(payload)


class TestDesignPointSerialization:
    def test_roundtrip(self):
        from repro.core import DesignPoint

        point = DesignPoint(
            scheme=Scheme.PERF_OPT,
            bandwidths=(gbps(80.0), gbps(20.0)),
            step_times={"Turing-NLG": 1.5},
            network_cost=6648.0,
            solver_message="ok",
        )
        assert DesignPoint.from_dict(point.to_dict()) == point

    def test_malformed_payload(self):
        from repro.core import DesignPoint

        with pytest.raises(ConfigurationError, match="malformed design-point"):
            DesignPoint.from_dict({"scheme": "PerfOptBW"})

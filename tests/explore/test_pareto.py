"""Pareto extraction and summary tables on hand-checked fixtures."""

import pytest

from repro.core import Scheme
from repro.explore import (
    ExplorationPoint,
    ExplorationResult,
    best_per_budget,
    frontier_indices,
    pareto_frontier,
    summary_rows,
)
from repro.utils.errors import ConfigurationError


def _row(
    bw: float,
    cost: float,
    step_ms: float,
    speedup: float = 1.0,
    ppc: float = 1.0,
    workload: str = "W",
    topology: str = "T",
    scheme: Scheme = Scheme.PERF_OPT,
    error: str = "",
) -> ExplorationResult:
    return ExplorationResult(
        point=ExplorationPoint(workload, topology, bw, scheme),
        key="k",
        bandwidths_gbps=(bw / 2, bw / 2),
        step_times_ms={workload: step_ms},
        network_cost=cost,
        speedup_over_equal=speedup,
        ppc_gain_over_equal=ppc,
        error=error,
    )


class TestFrontierIndices:
    def test_hand_checked_min_min(self):
        #   y
        #   4 |     c
        #   3 | a
        #   2 |        d
        #   1 |    b
        #     +-1--2--3--- x
        # Frontier: a (cheapest x) and b (dominates c and d on y at x=2).
        points = [(1.0, 3.0), (2.0, 1.0), (2.0, 4.0), (3.0, 2.0)]
        assert frontier_indices(points) == [0, 1]

    def test_single_point(self):
        assert frontier_indices([(5.0, 5.0)]) == [0]

    def test_empty(self):
        assert frontier_indices([]) == []

    def test_coincident_points_both_survive(self):
        assert frontier_indices([(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)]) == [0, 1]

    def test_maximize_orientation(self):
        # Maximizing y: the frontier flips to the high-y points.
        points = [(1.0, 3.0), (2.0, 1.0), (2.0, 4.0), (3.0, 2.0)]
        assert frontier_indices(points, minimize_y=False) == [0, 2]

    def test_monotone_chain_is_fully_kept(self):
        points = [(1.0, 4.0), (2.0, 3.0), (3.0, 2.0), (4.0, 1.0)]
        assert frontier_indices(points) == [0, 1, 2, 3]


class TestParetoFrontier:
    def test_cost_vs_time(self):
        rows = [
            _row(100, cost=1000, step_ms=30.0),
            _row(200, cost=2000, step_ms=20.0),
            _row(300, cost=3000, step_ms=25.0),  # dominated by the 200 row
            _row(400, cost=4000, step_ms=10.0),
        ]
        frontier = pareto_frontier(rows, x="network_cost", y="step_time_ms")
        assert [r.point.total_bw_gbps for r in frontier] == [100, 200, 400]

    def test_error_rows_excluded(self):
        rows = [
            _row(100, cost=1000, step_ms=30.0),
            _row(200, cost=1.0, step_ms=1.0, error="boom"),
        ]
        frontier = pareto_frontier(rows)
        assert len(frontier) == 1 and frontier[0].ok

    def test_unknown_metric(self):
        with pytest.raises(ConfigurationError, match="unknown Pareto metrics"):
            pareto_frontier([_row(100, 1000, 30.0)], x="latency", y="step_time_ms")

    def test_metric_lookup_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown metric"):
            _row(100, 1000, 30.0).metric("latency")


class TestSummaries:
    def test_summary_rows(self):
        rows = [
            _row(100, 1000, 30.0, speedup=1.2, ppc=2.0),
            _row(200, 2000, 20.0, speedup=1.4, ppc=4.0),
            _row(100, 1000, 40.0, speedup=1.1, ppc=3.0, scheme=Scheme.PERF_PER_COST_OPT),
            _row(100, 1000, 10.0, error="boom"),
        ]
        summary = {(w, t, s): stats for w, t, s, *stats in summary_rows(rows)}
        assert summary[("W", "T", "PerfOptBW")] == pytest.approx([1.3, 1.4, 3.0, 4.0])
        assert summary[("W", "T", "PerfPerCostOptBW")] == pytest.approx(
            [1.1, 1.1, 3.0, 3.0]
        )

    def test_best_per_budget(self):
        rows = [
            _row(100, 1000, 30.0, topology="T1"),
            _row(100, 1000, 25.0, topology="T2"),
            _row(200, 2000, 20.0, topology="T1"),
            _row(200, 2000, 22.0, topology="T2"),
            _row(200, 1.0, 1.0, topology="T3", error="boom"),
        ]
        winners = best_per_budget(rows, metric="step_time_ms")
        assert list(winners) == [100.0, 200.0]
        assert winners[100.0].point.topology == "T2"
        assert winners[200.0].point.topology == "T1"

    def test_best_per_budget_maximize(self):
        rows = [
            _row(100, 1000, 30.0, speedup=1.2, topology="T1"),
            _row(100, 1000, 25.0, speedup=1.5, topology="T2"),
        ]
        winners = best_per_budget(rows, metric="speedup", minimize=False)
        assert winners[100.0].point.topology == "T2"

    def test_best_per_budget_unknown_metric(self):
        with pytest.raises(ConfigurationError, match="unknown metric"):
            best_per_budget([_row(100, 1000, 30.0)], metric="latency")

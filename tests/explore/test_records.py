"""Result records: serialization round trips and sweep lookups."""

import pytest

from repro.core import Scheme
from repro.explore import ExplorationPoint, ExplorationResult, SweepResult
from repro.utils.errors import ConfigurationError


def _result(workload="W", topology="T", bw=100.0, scheme=Scheme.PERF_OPT):
    return ExplorationResult(
        point=ExplorationPoint(workload, topology, bw, scheme),
        key="abc123",
        bandwidths_gbps=(60.0, 40.0),
        step_times_ms={workload: 12.5},
        network_cost=5000.0,
        speedup_over_equal=1.25,
        ppc_gain_over_equal=2.5,
        solver_message="converged",
    )


class TestExplorationResult:
    def test_dict_roundtrip(self):
        result = _result()
        rebuilt = ExplorationResult.from_dict(result.to_dict())
        assert rebuilt.to_dict() == result.to_dict()

    def test_error_row_roundtrip(self):
        failed = ExplorationResult(
            point=ExplorationPoint("W", "T", 100.0, Scheme.PERF_OPT),
            error="MappingError: nope",
        )
        rebuilt = ExplorationResult.from_dict(failed.to_dict())
        assert not rebuilt.ok
        assert rebuilt.error == failed.error

    def test_malformed_payload(self):
        with pytest.raises(ConfigurationError, match="malformed exploration-result"):
            ExplorationResult.from_dict({"key": "x"})

    def test_metrics(self):
        result = _result()
        assert result.metric("total_bw_gbps") == 100.0
        assert result.metric("step_time_ms") == pytest.approx(12.5)
        assert result.metric("network_cost") == 5000.0
        assert result.metric("speedup") == 1.25
        assert result.metric("ppc_gain") == 2.5


class TestSweepResult:
    def _sweep(self) -> SweepResult:
        return SweepResult(
            results=[
                _result("A", "T1", 100.0),
                _result("A", "T1", 200.0),
                _result("B", "T1", 100.0, scheme=Scheme.PERF_PER_COST_OPT),
            ],
            cache_hits=1,
            solver_calls=2,
        )

    def test_counters(self):
        sweep = self._sweep()
        assert sweep.cache_misses == 2
        assert sweep.hit_rate == pytest.approx(1 / 3)
        assert sweep.num_errors == 0
        assert len(sweep.ok_results()) == 3

    def test_get_by_coordinates(self):
        sweep = self._sweep()
        row = sweep.get(workload="A", total_bw_gbps=200)
        assert row.point.total_bw_gbps == 200.0
        row = sweep.get(scheme="perf-per-cost")
        assert row.point.workload_name == "B"

    def test_get_requires_uniqueness(self):
        sweep = self._sweep()
        with pytest.raises(ConfigurationError, match="found 2"):
            sweep.get(workload="A")
        with pytest.raises(ConfigurationError, match="found 0"):
            sweep.get(workload="C")

    def test_filter(self):
        sweep = self._sweep()
        assert len(sweep.filter(topology="T1")) == 3
        assert len(sweep.filter(workload="A", scheme=Scheme.PERF_OPT)) == 2
        assert sweep.filter(workload="C") == []

    def test_empty_sweep_hit_rate(self):
        assert SweepResult(results=[]).hit_rate == 0.0

    def test_to_dict(self):
        payload = self._sweep().to_dict()
        assert payload["cache_hits"] == 1
        assert payload["solver_calls"] == 2
        assert len(payload["results"]) == 3

"""Result cache: memory/disk round trips, corruption tolerance."""

import json

import pytest

from repro.core import Scheme
from repro.explore import ExplorationPoint, ExplorationResult, ResultCache
from repro.explore.cache import STORE_VERSION


def _result(error: str = "", key: str = "k" * 64) -> ExplorationResult:
    return ExplorationResult(
        point=ExplorationPoint("Turing-NLG", "RI(3)_RI(2)", 100.0, Scheme.PERF_OPT),
        key=key,
        bandwidths_gbps=(80.0, 20.0),
        step_times_ms={"Turing-NLG": 1480.5},
        network_cost=6648.0,
        speedup_over_equal=1.023,
        ppc_gain_over_equal=2.003,
        error=error,
    )


class TestMemoryCache:
    def test_put_get_roundtrip(self):
        cache = ResultCache()
        result = _result()
        cache.put(result.key, result)
        hit = cache.get(result.key)
        assert hit is not None
        assert hit.to_dict() == result.to_dict()
        assert len(cache) == 1
        assert result.key in cache

    def test_miss(self):
        assert ResultCache().get("0" * 64) is None

    def test_error_rows_not_cached(self):
        cache = ResultCache()
        failed = _result(error="MappingError: nope")
        cache.put(failed.key, failed)
        assert cache.get(failed.key) is None
        assert len(cache) == 0

    def test_clear(self):
        cache = ResultCache()
        cache.put("a" * 64, _result(key="a" * 64))
        cache.clear()
        assert len(cache) == 0


class TestDiskCache:
    def test_survives_process_boundary(self, tmp_path):
        result = _result()
        ResultCache(tmp_path / "cache").put(result.key, result)
        # Fresh instance = fresh process in miniature.
        reopened = ResultCache(tmp_path / "cache")
        hit = reopened.get(result.key)
        assert hit is not None
        assert hit.to_dict() == result.to_dict()
        assert len(reopened) == 1

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        result = _result()
        cache.put(result.key, result)
        (tmp_path / "cache" / f"{result.key}.json").write_text("{broken")
        assert ResultCache(tmp_path / "cache").get(result.key) is None

    @pytest.mark.parametrize("content", ["null", "[]", '"a string"', "42"])
    def test_non_object_json_entry_is_a_miss(self, tmp_path, content):
        cache = ResultCache(tmp_path / "cache")
        result = _result()
        cache.put(result.key, result)
        (tmp_path / "cache" / f"{result.key}.json").write_text(content)
        assert ResultCache(tmp_path / "cache").get(result.key) is None

    def test_store_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        result = _result()
        cache.put(result.key, result)
        path = tmp_path / "cache" / f"{result.key}.json"
        wrapper = json.loads(path.read_text())
        assert wrapper["store_version"] == STORE_VERSION
        wrapper["store_version"] = STORE_VERSION + 1
        path.write_text(json.dumps(wrapper))
        assert ResultCache(tmp_path / "cache").get(result.key) is None

    def test_clear_removes_files(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        result = _result()
        cache.put(result.key, result)
        cache.clear()
        assert list((tmp_path / "cache").glob("*.json")) == []
        assert ResultCache(tmp_path / "cache").get(result.key) is None

    def test_creates_directory(self, tmp_path):
        ResultCache(tmp_path / "deep" / "cache")
        assert (tmp_path / "deep" / "cache").is_dir()


class TestConcurrentPut:
    def test_racing_writers_on_one_key_never_fail(self, tmp_path):
        """Two threads storing the same key must not collide on a temp file
        (the worker-pool serving path stores into one shared cache)."""
        from concurrent.futures import ThreadPoolExecutor

        from repro.core.results import Scheme
        from repro.explore.spec import ExplorationPoint

        cache = ResultCache(tmp_path)
        point = ExplorationPoint("Turing-NLG", "RI(3)_RI(2)", 100.0, Scheme.PERF_OPT)
        row = ExplorationResult(
            point=point, bandwidths_gbps=(80.0, 20.0),
            step_times_ms={"Turing-NLG": 1.0},
        )
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda _: cache.put("same-key", row), range(64)))
        assert cache.get("same-key") is not None
        assert not list(tmp_path.glob("*.tmp")), "temp file leaked"
        assert len(list(tmp_path.glob("*.json"))) == 1


class TestStats:
    def test_memory_tier_tallies(self):
        cache = ResultCache()
        result = _result()
        assert cache.get(result.key) is None
        cache.put(result.key, result)
        assert cache.get(result.key) is not None
        stats = cache.stats()
        assert stats["memory_hits"] == 1
        assert stats["memory_misses"] == 1
        assert stats["writes"] == 1
        assert stats["disk_hits"] == stats["disk_misses"] == 0
        assert stats["evictions"] == 0

    def test_disk_tier_tallies(self, tmp_path):
        result = _result()
        ResultCache(tmp_path / "cache").put(result.key, result)
        reopened = ResultCache(tmp_path / "cache")
        assert reopened.get("0" * 64) is None  # disk miss
        assert reopened.get(result.key) is not None  # disk hit
        assert reopened.get(result.key) is not None  # now a memory hit
        stats = reopened.stats()
        assert stats["memory_misses"] == 2
        assert stats["disk_misses"] == 1
        assert stats["disk_hits"] == 1
        assert stats["memory_hits"] == 1
        # The invariant the docstring states for disk-backed caches.
        assert (
            stats["disk_hits"] + stats["disk_misses"] == stats["memory_misses"]
        )

    def test_peer_hits_split_own_writes_from_fleet_writes(self, tmp_path):
        # Two caches over one directory model two fleet members sharing
        # --cache-root. A disk hit on a key this process never wrote is a
        # peer hit — the subset of disk_hits that measures what fleet
        # sharing actually saved.
        key_a, key_b = "a" * 64, "b" * 64
        writer = ResultCache(tmp_path / "cache", max_memory=1)
        reader = ResultCache(tmp_path / "cache")
        writer.put(key_a, _result(key=key_a))
        writer.put(key_b, _result(key=key_b))  # evicts key_a from memory

        assert reader.get(key_a) is not None  # a peer's write
        stats = reader.stats()
        assert stats["disk_hits"] == 1
        assert stats["peer_hits"] == 1

        assert writer.get(key_a) is not None  # its own write, via disk
        stats = writer.stats()
        assert stats["disk_hits"] == 1
        assert stats["peer_hits"] == 0  # provenance: written here

    def test_own_key_provenance_is_bounded(self, tmp_path, monkeypatch):
        # The own-keys provenance set is an LRU capped at OWN_KEYS_LIMIT,
        # not a per-put leak: on a long-running fleet server its only job
        # is the disk_hits/peer_hits split, so bounded memory wins over
        # exact provenance. An evicted key's later disk hit re-counts as
        # a peer hit — stats skew, never a correctness issue.
        from repro.explore import cache as cache_module
        monkeypatch.setattr(cache_module, "OWN_KEYS_LIMIT", 2)
        cache = ResultCache(tmp_path / "cache", max_memory=1)
        keys = [c * 64 for c in "abc"]
        for key in keys:
            cache.put(key, _result(key=key))
        assert len(cache._own_keys) == 2  # oldest provenance dropped

        assert cache.get(keys[0]) is not None  # provenance evicted
        assert cache.stats()["peer_hits"] == 1
        assert cache.get(keys[2]) is not None  # provenance retained
        assert cache.stats()["peer_hits"] == 1

    def test_rejected_put_not_counted_as_write(self):
        cache = ResultCache()
        failed = _result(error="MappingError: nope")
        cache.put(failed.key, failed)
        assert cache.stats()["writes"] == 0

    def test_evictions_counted(self):
        cache = ResultCache(max_memory=1)
        cache.put("a" * 64, _result(key="a" * 64))
        cache.put("b" * 64, _result(key="b" * 64))
        assert cache.stats()["evictions"] == 1

    def test_clear_keeps_stats(self):
        cache = ResultCache()
        result = _result()
        cache.put(result.key, result)
        cache.clear()
        assert cache.stats()["writes"] == 1

    def test_stats_snapshot_is_detached(self):
        cache = ResultCache()
        snapshot = cache.stats()
        snapshot["writes"] = 99
        assert cache.stats()["writes"] == 0

    def test_threaded_lookups_never_lose_a_tick(self):
        from concurrent.futures import ThreadPoolExecutor

        cache = ResultCache()
        result = _result()
        cache.put(result.key, result)
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda _: cache.get(result.key), range(400)))
        assert cache.stats()["memory_hits"] == 400


class TestBoundedMemory:
    def _row(self, budget):
        from repro.core.results import Scheme

        point = ExplorationPoint("Turing-NLG", "RI(3)_RI(2)", budget, Scheme.PERF_OPT)
        return ExplorationResult(
            point=point, bandwidths_gbps=(80.0, 20.0),
            step_times_ms={"Turing-NLG": 1.0},
        )

    def test_memory_only_cache_evicts_lru_past_bound(self):
        cache = ResultCache(max_memory=2)
        for index in range(4):
            cache.put(f"k{index}", self._row(100.0 + index))
        assert len(cache) == 2
        assert cache.get("k0") is None and cache.get("k1") is None
        assert cache.get("k2") is not None and cache.get("k3") is not None

    def test_disk_backed_bound_reloads_evicted_entries(self, tmp_path):
        cache = ResultCache(tmp_path, max_memory=1)
        cache.put("a", self._row(100.0))
        cache.put("b", self._row(200.0))  # evicts "a" from memory only
        assert cache.get("a") is not None  # read-through from disk
        assert len(cache) == 2  # disk still holds both

    def test_bad_bound_rejected(self):
        from repro.utils.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="max_memory"):
            ResultCache(max_memory=0)

"""ResultCache corruption handling: quarantine, never crash, never re-read."""

import json

from repro.core import Scheme
from repro.explore import ExplorationPoint, ExplorationResult, ResultCache
from repro.explore.cache import STORE_VERSION


def _result(key: str = "k" * 64) -> ExplorationResult:
    return ExplorationResult(
        point=ExplorationPoint("Turing-NLG", "RI(3)_RI(2)", 100.0, Scheme.PERF_OPT),
        key=key,
        bandwidths_gbps=(80.0, 20.0),
        step_times_ms={"Turing-NLG": 1480.5},
        network_cost=6648.0,
        speedup_over_equal=1.023,
        ppc_gain_over_equal=2.003,
    )


def _entry_path(cache: ResultCache, key: str):
    return cache.directory / f"{key}.json"


def _seeded(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    result = _result()
    cache.put(result.key, result)
    return ResultCache(tmp_path / "cache"), result  # fresh = cold memory


class TestQuarantine:
    def test_truncated_entry_is_quarantined(self, tmp_path):
        cache, result = _seeded(tmp_path)
        path = _entry_path(cache, result.key)
        path.write_text(path.read_text()[:25])  # the kill -9 torn write
        assert cache.get(result.key) is None
        assert cache.stats()["corrupt"] == 1
        assert cache.stats()["disk_misses"] == 1
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()

    def test_non_object_wrapper_is_quarantined(self, tmp_path):
        cache, result = _seeded(tmp_path)
        _entry_path(cache, result.key).write_text("[1, 2, 3]")
        assert cache.get(result.key) is None
        assert cache.stats()["corrupt"] == 1

    def test_undecodable_record_is_quarantined(self, tmp_path):
        cache, result = _seeded(tmp_path)
        _entry_path(cache, result.key).write_text(json.dumps(
            {"store_version": STORE_VERSION, "result": {"wrong": "shape"}}
        ))
        assert cache.get(result.key) is None
        assert cache.stats()["corrupt"] == 1

    def test_quarantined_entry_is_not_re_read(self, tmp_path):
        cache, result = _seeded(tmp_path)
        _entry_path(cache, result.key).write_text("{")
        cache.get(result.key)
        assert len(cache) == 0  # .corrupt is outside the *.json glob
        # Second lookup: plain miss (file gone), not another quarantine.
        assert cache.get(result.key) is None
        stats = cache.stats()
        assert stats["corrupt"] == 1
        assert stats["disk_misses"] == 2

    def test_overwrite_heals_a_quarantined_key(self, tmp_path):
        cache, result = _seeded(tmp_path)
        _entry_path(cache, result.key).write_text("{")
        cache.get(result.key)
        cache.put(result.key, result)
        reopened = ResultCache(cache.directory)
        hit = reopened.get(result.key)
        assert hit is not None
        assert hit.to_dict() == reopened.get(result.key).to_dict()


class TestPlainMisses:
    """Absence and version skew are not corruption: no quarantine."""

    def test_version_skew_is_a_plain_miss(self, tmp_path):
        cache, result = _seeded(tmp_path)
        path = _entry_path(cache, result.key)
        wrapper = json.loads(path.read_text())
        wrapper["store_version"] = STORE_VERSION + 1
        path.write_text(json.dumps(wrapper))
        assert cache.get(result.key) is None
        assert cache.stats()["corrupt"] == 0
        assert path.exists()  # left in place for the newer release

    def test_missing_file_is_a_plain_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("0" * 64) is None
        assert cache.stats()["corrupt"] == 0

    def test_miss_accounting_invariant_holds(self, tmp_path):
        # disk hits + disk misses == memory misses, quarantines included.
        cache, result = _seeded(tmp_path)
        _entry_path(cache, result.key).write_text("{")
        cache.get(result.key)       # quarantine -> disk miss
        cache.get("0" * 64)         # plain miss
        cache.put(result.key, result)
        fresh = ResultCache(cache.directory)
        fresh.get(result.key)       # disk hit
        for stats in (cache.stats(), fresh.stats()):
            assert (
                stats["disk_hits"] + stats["disk_misses"]
                == stats["memory_misses"]
            )

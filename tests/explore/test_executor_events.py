"""The executor's structured-event seam and cooperative cancellation."""

import pytest

from repro.core.results import Scheme
from repro.explore.cache import ResultCache
from repro.explore.chains import chain_label
from repro.explore.executor import run_sweep
from repro.explore.spec import ExplorationPoint, SweepSpec
from repro.utils.errors import JobCancelled

TINY = "RI(3)_RI(2)"


def tiny_spec(**overrides) -> SweepSpec:
    fields = dict(
        workloads=("Turing-NLG",),
        topologies=(TINY,),
        bandwidths_gbps=(100.0, 300.0),
        schemes=("perf",),
    )
    fields.update(overrides)
    return SweepSpec(**fields)


class TestEventSeam:
    def test_event_sequence_shape(self):
        events = []
        sweep = run_sweep(tiny_spec(), on_event=events.append)
        kinds = [event["type"] for event in events]
        # One plan, a chain start/done pair, one cell per grid point.
        assert kinds[0] == "plan"
        assert kinds.count("cell") == len(sweep.results) == 2
        assert kinds.count("chain") == 2

        plan = events[0]
        assert plan["total"] == 2
        assert plan["chains"] == 1
        assert plan["solver_calls"] == 2
        assert plan["fanout_cells"] == 0

        cells = [event for event in events if event["type"] == "cell"]
        assert [c["done"] for c in cells] == [1, 2]
        assert all(c["total"] == 2 for c in cells)
        assert all(c["status"] == "solved" for c in cells)
        assert all(c["key"] for c in cells)

        chains = [event for event in events if event["type"] == "chain"]
        assert [c["status"] for c in chains] == ["start", "done"]
        assert chains[0]["cells"] == 2
        assert "Turing-NLG" in chains[0]["label"]

    def test_cached_cells_report_cached_status(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(tiny_spec(), cache=cache)
        events = []
        run_sweep(tiny_spec(), cache=cache, on_event=events.append)
        cells = [event for event in events if event["type"] == "cell"]
        assert all(c["status"] == "cached" for c in cells)
        # Cache hits resolve during phase 1, so they precede the plan event.
        plan = next(event for event in events if event["type"] == "plan")
        assert plan["chains"] == 0 and plan["cached"] == 2
        assert not [e for e in events if e["type"] == "chain"]

    def test_error_rows_report_error_status(self):
        events = []
        point = ExplorationPoint("NoSuchModel", TINY, 100.0, Scheme.PERF_OPT)
        sweep = run_sweep([point], on_event=events.append)
        assert sweep.num_errors == 1
        cells = [event for event in events if event["type"] == "cell"]
        assert cells[0]["status"] == "error"
        assert cells[0]["error"]

    def test_chain_label_is_compact(self):
        point = ExplorationPoint(
            "Turing-NLG", TINY, 100.0, Scheme.PERF_OPT,
            dim_caps_gbps=((1, 60.0),),
        )
        label = chain_label(point)
        assert "Turing-NLG" in label and TINY in label
        assert "PerfOptBW" in label and "1:60" in label


class TestCancellation:
    def test_immediate_cancel_raises_before_solving(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(JobCancelled):
            run_sweep(tiny_spec(), cache=cache, should_stop=lambda: True)
        assert len(list(tmp_path.glob("*.json"))) == 0

    def test_cancel_after_first_cell_keeps_completed_rows(self, tmp_path):
        cache = ResultCache(tmp_path)
        solved = []

        def stop_after_one() -> bool:
            return len(solved) >= 1

        def progress(done, total, result):
            if not result.from_cache:
                solved.append(result)

        spec = tiny_spec(bandwidths_gbps=(100.0, 200.0, 300.0, 400.0))
        with pytest.raises(JobCancelled):
            run_sweep(
                spec, cache=cache, progress=progress,
                should_stop=stop_after_one,
            )
        rows = list(tmp_path.glob("*.json"))
        assert len(rows) == 1  # exactly the completed cell, atomically stored
        # The cached row is reusable: the resumed sweep only solves the rest.
        resumed = run_sweep(spec, cache=ResultCache(tmp_path))
        assert resumed.cache_hits == 1
        assert resumed.solver_calls == 3
        assert resumed.num_errors == 0

    def test_cache_hits_are_served_before_cancellation_checks(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(tiny_spec(), cache=cache)
        # Even a permanently true predicate cannot cancel a fully cached
        # sweep: phase 1 serves every row without entering the solve phase.
        sweep = run_sweep(tiny_spec(), cache=cache, should_stop=lambda: True)
        assert sweep.cache_hits == 2

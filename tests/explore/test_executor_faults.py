"""Executor resilience: cell retry, quarantine, and pool-death recovery."""

import os

import pytest

from repro.core import Scheme
from repro.explore import ExplorationPoint, run_sweep
from repro.explore.executor import (
    CELL_RETRY_ATTEMPTS,
    CHAIN_RETRY_ATTEMPTS,
    solve_point,
)
from repro.explore.spec import SweepSpec
from repro.serve import faults

TOPOLOGY = "RI(3)_RI(2)"
WORKLOAD = "Turing-NLG"


@pytest.fixture(autouse=True)
def _disarm():
    faults.configure(None)
    yield
    faults.configure(None)


def _point(total_bw=100.0):
    return ExplorationPoint(WORKLOAD, TOPOLOGY, total_bw, Scheme.PERF_OPT)


class TestSolvePointRetry:
    def test_transient_failures_retry_in_place(self):
        plan = faults.configure(f"raise:worker.solve:{CELL_RETRY_ATTEMPTS - 1}")
        result = solve_point(_point())
        assert result.ok, result.error
        # Every attempt fired the instrumentation point.
        assert plan._directives["worker.solve"][0].count == CELL_RETRY_ATTEMPTS

    def test_exhausted_budget_quarantines_the_cell(self):
        faults.configure("raise:worker.solve:99")
        result = solve_point(_point())
        assert not result.ok
        assert "quarantined after" in result.error
        assert "FaultInjected" in result.error

    def test_quarantined_cells_are_never_cached(self):
        from repro.explore import ResultCache

        faults.configure("raise:worker.solve:99")
        result = solve_point(_point(), key="k" * 64)
        cache = ResultCache()
        cache.put(result.key, result)
        assert cache.get(result.key) is None

    def test_permanent_failures_do_not_retry(self):
        bad = ExplorationPoint(WORKLOAD, "NOPE(9)", 100.0, Scheme.PERF_OPT)
        result = solve_point(bad)
        assert not result.ok
        assert "quarantined" not in result.error  # error row, first try


class TestPoolFaults:
    """Worker-side faults arm through the environment (spawn inherits it)."""

    def _spec(self):
        # Two topologies -> two chains, the minimum for the pool path.
        return SweepSpec(
            workloads=(WORKLOAD,),
            topologies=(TOPOLOGY, "RI(2)_RI(3)"),
            bandwidths_gbps=(100.0, 300.0),
        )

    def test_worker_raise_is_absorbed_inside_the_worker(self):
        os.environ["REPRO_FAULTS"] = "raise:worker.solve:2"
        try:
            sweep = run_sweep(self._spec(), workers=2, mp_context="spawn")
        finally:
            del os.environ["REPRO_FAULTS"]
        assert all(row.ok for row in sweep.results)

    def test_worker_crash_requeues_then_quarantines_chains(self):
        events = []
        # Every spawned worker dies at its first solve: each round's pool
        # breaks, chains requeue with backoff, and after the budget they
        # quarantine as error rows — the sweep completes, never hangs.
        os.environ["REPRO_FAULTS"] = "crash:worker.solve:1"
        try:
            sweep = run_sweep(
                self._spec(), workers=2, mp_context="spawn",
                on_event=events.append,
            )
        finally:
            del os.environ["REPRO_FAULTS"]
        assert len(sweep.results) == 4
        assert all(not row.ok for row in sweep.results)
        assert all("quarantined" in row.error for row in sweep.results)
        statuses = [e["status"] for e in events if e["type"] == "chain"]
        assert statuses.count("quarantined") == 2
        # Each chain requeued its full budget before quarantine.
        assert statuses.count("requeued") == 2 * CHAIN_RETRY_ATTEMPTS

"""What-if queries: perturbation semantics and memo accounting."""

import json

import pytest

from repro.analysis import (
    WhatIfMemo,
    WhatIfQuery,
    default_queries,
    evaluate_whatifs,
)
from repro.analysis.whatif import WhatIfResult
from repro.api import LibraService, build_scenario
from repro.utils.errors import ConfigurationError
from repro.utils.units import GBPS, gbps


def _expression():
    service = LibraService()
    scenario = build_scenario("3D-512", ["Turing-NLG"], total_bw_gbps=300)
    return service.engine(scenario).combined_expression()


POINT = (gbps(200.0), gbps(60.0), gbps(40.0))


class TestQueries:
    def test_scale_apply(self):
        moved = WhatIfQuery(op="scale", dim=1, factor=2.0).apply(POINT)
        assert moved == (POINT[0], 2 * POINT[1], POINT[2])

    def test_move_apply_conserves_total(self):
        query = WhatIfQuery(op="move", source=0, target=2, delta_gbps=25.0)
        moved = query.apply(POINT)
        assert sum(moved) == pytest.approx(sum(POINT))
        assert moved[0] == pytest.approx(POINT[0] - 25.0 * GBPS)
        assert moved[2] == pytest.approx(POINT[2] + 25.0 * GBPS)

    def test_budget_apply_scales_proportionally(self):
        moved = WhatIfQuery(op="budget", delta_gbps=30.0).apply(POINT)
        factor = (sum(POINT) + 30.0 * GBPS) / sum(POINT)
        assert all(
            after == pytest.approx(before * factor)
            for before, after in zip(POINT, moved)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="factor"):
            WhatIfQuery(op="scale", dim=0, factor=0.0)
        with pytest.raises(ConfigurationError, match="source"):
            WhatIfQuery(op="move", source=1, target=1, delta_gbps=5.0)
        with pytest.raises(ConfigurationError, match="op"):
            WhatIfQuery(op="teleport")

    def test_round_trip(self):
        for query in (
            WhatIfQuery(op="scale", dim=2, factor=1.5),
            WhatIfQuery(op="move", source=0, target=1, delta_gbps=10.0),
            WhatIfQuery(op="budget", delta_gbps=-20.0),
        ):
            payload = json.loads(json.dumps(query.to_dict()))
            assert WhatIfQuery.from_dict(payload) == query


class TestEvaluate:
    def test_default_probe_set_is_deterministic(self):
        expression = _expression()
        first = evaluate_whatifs(expression, POINT)
        second = evaluate_whatifs(expression, POINT)
        assert [r.to_dict() for r in first] == [r.to_dict() for r in second]
        # Per-dim scales plus the two budget probes.
        assert len(first) == len(default_queries(len(POINT))) + 2

    def test_results_round_trip(self):
        result = evaluate_whatifs(_expression(), POINT)[0]
        payload = json.loads(json.dumps(result.to_dict()))
        restored = WhatIfResult.from_dict(payload)
        assert restored.to_dict() == result.to_dict()

    def test_more_budget_never_hurts(self):
        results = evaluate_whatifs(
            _expression(), POINT,
            queries=(WhatIfQuery(op="budget", delta_gbps=50.0),),
        )
        assert results[0].step_time <= results[0].base_step_time + 1e-12


class TestMemoAccounting:
    def test_hit_miss_counts(self):
        expression = _expression()
        memo = WhatIfMemo()
        queries = (
            WhatIfQuery(op="scale", dim=0, factor=1.1),
            WhatIfQuery(op="move", source=0, target=1, delta_gbps=5.0),
        )
        evaluate_whatifs(expression, POINT, queries, memo=memo, context="k")
        assert memo.stats() == {"hits": 0, "misses": 2, "entries": 2}
        evaluate_whatifs(expression, POINT, queries, memo=memo, context="k")
        assert memo.stats() == {"hits": 2, "misses": 2, "entries": 2}
        # A different context is a different probe — no false sharing.
        evaluate_whatifs(expression, POINT, queries, memo=memo, context="k2")
        assert memo.stats() == {"hits": 2, "misses": 4, "entries": 4}

    def test_lru_bound(self):
        memo = WhatIfMemo(max_entries=2)
        expression = _expression()
        for dim in range(3):
            evaluate_whatifs(
                expression, POINT,
                queries=(WhatIfQuery(op="scale", dim=dim, factor=1.1),),
                memo=memo, context="k",
            )
        assert memo.stats()["entries"] == 2

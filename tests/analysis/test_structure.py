"""Bottleneck structure: binding sets, transfer gradients, attribution."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    bottleneck_structure,
    build_report,
    format_report,
    wasteless_baseline,
)
from repro.analysis.report import AnalysisReport
from repro.api import AnalyzeRequest, LibraService, OptimizeRequest, build_scenario
from repro.core import certify_optimum
from repro.topology import EVALUATION_TOPOLOGIES
from repro.utils.errors import MappingError
from repro.utils.units import gbps
from repro.workloads import workload_names

BUDGET_GBPS = 300.0


def _scenario(topology, workload):
    return build_scenario(topology, [workload], total_bw_gbps=BUDGET_GBPS)


def _structure_at_optimum(topology, workload):
    service = LibraService()
    scenario = _scenario(topology, workload)
    response = service.submit(OptimizeRequest(scenario=scenario))
    expression = service.engine(scenario).combined_expression()
    return bottleneck_structure(
        expression, response.point.bandwidths, scenario.constraints
    ), response


PAIRS = [
    (topology, workload)
    for topology in EVALUATION_TOPOLOGIES
    for workload in workload_names()
]


class TestBindingSetAgreement:
    """The binding set must agree with direct-re-evaluation optimality on
    every preset topology × Table-II workload pair."""

    @pytest.mark.parametrize("topology,workload", PAIRS)
    def test_optimum_certified_and_binding_set_consistent(
        self, topology, workload
    ):
        try:
            structure, response = _structure_at_optimum(topology, workload)
        except MappingError as exc:
            pytest.skip(f"unmappable pair: {exc}")
        # The solver's optimum certifies under direct re-evaluation: no
        # pairwise bandwidth transfer improves the step time.
        assert structure.certificate["certified"], (
            f"{workload} on {topology}: best transfer gain "
            f"{structure.certificate['best_gain']:.3e}"
        )
        # The binding set is non-empty and contains the most valuable
        # dimension (the most negative backward marginal).
        assert structure.binding_dims
        assert structure.most_valuable_dim in structure.binding_dims
        # Backward marginals never say "more bandwidth hurts".
        assert all(m <= 1e-12 for m in structure.marginals)
        # Kink gaps are one-sided: forward slope >= backward slope at a
        # water-filling optimum (up to finite-difference noise).
        step = max(structure.step_time, 1.0)
        assert all(g >= -1e-6 * step for g in structure.kink_gaps)

    def test_certificate_rejects_perturbed_point(self):
        service = LibraService()
        scenario = _scenario("3D-512", "Turing-NLG")
        response = service.submit(OptimizeRequest(scenario=scenario))
        expression = service.engine(scenario).combined_expression()
        point = list(response.point.bandwidths)
        # Move a chunk of bandwidth from the most valuable dim to another:
        # the certificate must detect the improving reverse transfer.
        structure = bottleneck_structure(expression, tuple(point))
        best = structure.most_valuable_dim
        other = next(i for i in range(len(point)) if i != best)
        shift = 0.4 * point[best]
        point[best] -= shift
        point[other] += shift
        certificate = certify_optimum(expression, tuple(point))
        assert not certificate.certified
        assert certificate.best_gain > 0


class TestTransferMatrix:
    @settings(deadline=None, max_examples=25)
    @given(
        bandwidths=st.lists(
            st.floats(min_value=1.0, max_value=1000.0), min_size=3, max_size=3
        )
    )
    def test_antisymmetry(self, bandwidths):
        """G[i][j] = -G[j][i] for arbitrary positive points (hypothesis)."""
        service = LibraService()
        scenario = _scenario("3D-512", "Turing-NLG")
        expression = service.engine(scenario).combined_expression()
        point = tuple(gbps(b) for b in bandwidths)
        structure = bottleneck_structure(expression, point)
        matrix = structure.transfer_matrix
        for i in range(len(point)):
            assert matrix[i][i] == 0.0
            for j in range(len(point)):
                assert matrix[i][j] == pytest.approx(-matrix[j][i], abs=0.0)

    def test_transfer_matrix_matches_marginal_difference(self):
        structure, _ = _structure_at_optimum("3D-512", "GPT-3")
        for i, row in enumerate(structure.transfer_matrix):
            for j, value in enumerate(row):
                expected = structure.marginals[i] - structure.marginals[j]
                assert value == pytest.approx(expected, abs=0.0)


class TestAttribution:
    def test_rows_cover_compiled_blocks(self):
        structure, _ = _structure_at_optimum("3D-512", "Turing-NLG")
        kinds = {row.kind for row in structure.attributions}
        assert "equality" in kinds  # the total-bandwidth budget row
        assert "comm" in kinds
        # Every binding row references the point's dimensions sensibly.
        for row in structure.binding_rows():
            assert all(0 <= dim < 3 for dim in row.dims)

    def test_wasteless_baseline_honours_budget(self):
        service = LibraService()
        scenario = _scenario("3D-512", "Turing-NLG")
        expression = service.engine(scenario).combined_expression()
        point = tuple(gbps(b) for b in (100.0, 100.0, 100.0))
        baseline = wasteless_baseline(expression, point, scenario.constraints)
        assert baseline is not None
        assert sum(baseline) == pytest.approx(gbps(BUDGET_GBPS), rel=1e-9)


class TestReportRoundTrip:
    def test_json_stable(self):
        structure, _ = _structure_at_optimum("3D-512", "Turing-NLG")
        report = build_report(structure, scheme="PerfOptBW")
        payload = json.loads(json.dumps(report.to_dict()))
        restored = AnalysisReport.from_dict(payload)
        assert restored.to_dict() == report.to_dict()
        assert "binding" in format_report(report)


class TestReadOnly:
    def test_analysis_never_perturbs_solver_results(self):
        """Equivalence gate: optimize → analyze → optimize must be
        bit-identical — the analysis subsystem is read-only."""
        service = LibraService()
        scenario = _scenario("3D-512", "Turing-NLG")
        before = service.submit(OptimizeRequest(scenario=scenario)).to_dict()
        service.submit(AnalyzeRequest(scenario=scenario))
        service.clear()
        after = service.submit(OptimizeRequest(scenario=scenario)).to_dict()
        assert before == after

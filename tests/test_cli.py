"""Command-line interface."""

import pytest

from repro.cli import main
from repro.workloads import build_workload, serialize_workload


class TestListing:
    def test_topologies(self, capsys):
        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        assert "4D-4K" in out and "RI(4)_FC(8)_RI(4)_SW(32)" in out
        assert "Google TPUv4" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "GPT-3" in out and "MSFT-1T" in out


class TestOptimize:
    def test_perf_opt(self, capsys):
        code = main(
            [
                "optimize",
                "--topology", "4D-4K",
                "--workload", "GPT-3",
                "--total-bw", "500",
                "--scheme", "perf",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PerfOptBW" in out
        assert "speedup over EqualBW" in out

    def test_with_cap(self, capsys):
        code = main(
            [
                "optimize",
                "--topology", "4D-4K",
                "--workload", "MSFT-1T",
                "--total-bw", "500",
                "--cap", "3:50",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The capped dimension shows up at (or under) 50 GB/s.
        first_line = out.splitlines()[0]
        last_bw = float(first_line.split("[")[1].split("]")[0].split(",")[-1])
        assert last_bw <= 50.0 * 1.001

    def test_custom_notation_topology(self, capsys):
        code = main(
            [
                "optimize",
                "--topology", "RI(8)_SW(8)",
                "--workload", "Turing-NLG",
                "--total-bw", "300",
            ]
        )
        assert code == 0

    def test_workload_file(self, tmp_path, capsys):
        workload = build_workload("GPT-3", 4096)
        path = tmp_path / "w.workload"
        path.write_text(serialize_workload(workload))
        code = main(
            [
                "optimize",
                "--topology", "4D-4K",
                "--workload-file", str(path),
                "--total-bw", "400",
            ]
        )
        assert code == 0

    def test_size_mismatch_is_clean_error(self, capsys):
        code = main(
            [
                "optimize",
                "--topology", "3D-512",
                "--workload", "MSFT-1T",  # TP-128 does not divide 512... it does; use wrong NPUs
                "--total-bw", "400",
            ]
        )
        # MSFT-1T TP=128 divides 512, so this actually optimizes fine; use
        # a genuinely impossible combination instead:
        code = main(
            [
                "optimize",
                "--topology", "RI(6)_SW(6)",
                "--workload", "GPT-3",
                "--total-bw", "400",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSweep:
    def test_sweep_rows(self, capsys):
        code = main(
            [
                "sweep",
                "--topology", "3D-4K",
                "--workload", "GPT-3",
                "--bw", "200",
                "--bw", "600",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "200" in out and "600" in out


class TestSimulate:
    def test_simulation(self, capsys):
        code = main(
            [
                "simulate",
                "--topology", "4D-4K",
                "--workload", "GPT-3",
                "--bandwidths", "225,138,104,33",
                "--chunks", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "step time" in out and "aggregate BW utilization" in out

    def test_themis_flag(self, capsys):
        code = main(
            [
                "simulate",
                "--topology", "4D-4K",
                "--workload", "GPT-3",
                "--bandwidths", "125,125,125,125",
                "--chunks", "4",
                "--themis",
            ]
        )
        assert code == 0

    def test_wrong_bandwidth_count(self, capsys):
        code = main(
            [
                "simulate",
                "--topology", "4D-4K",
                "--workload", "GPT-3",
                "--bandwidths", "125,125",
            ]
        )
        assert code == 2


class TestCost:
    def test_fig12_example_via_cli(self, capsys):
        code = main(["cost", "--topology", "4D-4K", "--bandwidths", "125,125,125,125"])
        assert code == 0
        out = capsys.readouterr().out
        assert "total network cost" in out
        assert "pod" in out

    def test_bad_topology(self, capsys):
        code = main(["cost", "--topology", "XX(2)", "--bandwidths", "1"])
        assert code == 2

"""Command-line interface."""

import pytest

from repro.cli import main
from repro.workloads import build_workload, serialize_workload


class TestListing:
    def test_topologies(self, capsys):
        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        assert "4D-4K" in out and "RI(4)_FC(8)_RI(4)_SW(32)" in out
        assert "Google TPUv4" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "GPT-3" in out and "MSFT-1T" in out


class TestOptimize:
    def test_perf_opt(self, capsys):
        code = main(
            [
                "optimize",
                "--topology", "4D-4K",
                "--workload", "GPT-3",
                "--total-bw", "500",
                "--scheme", "perf",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PerfOptBW" in out
        assert "speedup over EqualBW" in out

    def test_with_cap(self, capsys):
        code = main(
            [
                "optimize",
                "--topology", "4D-4K",
                "--workload", "MSFT-1T",
                "--total-bw", "500",
                "--cap", "3:50",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The capped dimension shows up at (or under) 50 GB/s.
        first_line = out.splitlines()[0]
        last_bw = float(first_line.split("[")[1].split("]")[0].split(",")[-1])
        assert last_bw <= 50.0 * 1.001

    def test_custom_notation_topology(self, capsys):
        code = main(
            [
                "optimize",
                "--topology", "RI(8)_SW(8)",
                "--workload", "Turing-NLG",
                "--total-bw", "300",
            ]
        )
        assert code == 0

    def test_workload_file(self, tmp_path, capsys):
        workload = build_workload("GPT-3", 4096)
        path = tmp_path / "w.workload"
        path.write_text(serialize_workload(workload))
        code = main(
            [
                "optimize",
                "--topology", "4D-4K",
                "--workload-file", str(path),
                "--total-bw", "400",
            ]
        )
        assert code == 0

    def test_size_mismatch_is_clean_error(self, capsys):
        code = main(
            [
                "optimize",
                "--topology", "3D-512",
                "--workload", "MSFT-1T",  # TP-128 does not divide 512... it does; use wrong NPUs
                "--total-bw", "400",
            ]
        )
        # MSFT-1T TP=128 divides 512, so this actually optimizes fine; use
        # a genuinely impossible combination instead:
        code = main(
            [
                "optimize",
                "--topology", "RI(6)_SW(6)",
                "--workload", "GPT-3",
                "--total-bw", "400",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestOptimizeApi:
    def test_json_output_is_valid_response(self, capsys):
        import json

        from repro.api.requests import RESPONSE_SCHEMA_VERSION, OptimizeResponse

        code = main(
            [
                "optimize",
                "--topology", "RI(3)_RI(2)",
                "--workload", "Turing-NLG",
                "--total-bw", "300",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == RESPONSE_SCHEMA_VERSION
        response = OptimizeResponse.from_dict(payload)
        assert response.speedup_over_baseline >= 1.0

    def test_scenario_file_input(self, tmp_path, capsys):
        from repro.api import build_scenario, save_scenario

        path = tmp_path / "s.json"
        save_scenario(
            build_scenario("RI(3)_RI(2)", ["Turing-NLG"], total_bw_gbps=300), path
        )
        code = main(["optimize", "--scenario", str(path)])
        assert code == 0
        assert "PerfOptBW" in capsys.readouterr().out

    def test_scenario_without_budget_takes_total_bw(self, tmp_path, capsys):
        from repro.api import build_scenario, save_scenario

        path = tmp_path / "s.json"
        save_scenario(build_scenario("RI(3)_RI(2)", ["Turing-NLG"]), path)
        assert main(["optimize", "--scenario", str(path)]) == 2
        assert "no total-bandwidth budget" in capsys.readouterr().err
        assert main(["optimize", "--scenario", str(path), "--total-bw", "300"]) == 0

    def test_budget_flag_keeps_scenario_caps(self, tmp_path, capsys):
        """A caps-only scenario plus --total-bw must honour both."""
        import json

        from repro.api import build_scenario, save_scenario
        from repro.core import ConstraintSet
        from repro.utils import gbps

        path = tmp_path / "s.json"
        save_scenario(
            build_scenario(
                "RI(3)_RI(2)", ["Turing-NLG"],
                constraints=ConstraintSet(2).with_dim_cap(0, gbps(40)),
            ),
            path,
        )
        code = main(
            ["optimize", "--scenario", str(path), "--total-bw", "300", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        bandwidths = payload["point"]["bandwidths"]
        assert bandwidths[0] <= 40e9 * 1.001
        assert sum(bandwidths) == pytest.approx(300e9)

    def test_budget_flag_on_budgeted_scenario_is_clean_error(
        self, tmp_path, capsys
    ):
        from repro.api import build_scenario, save_scenario

        path = tmp_path / "s.json"
        save_scenario(
            build_scenario("RI(3)_RI(2)", ["Turing-NLG"], total_bw_gbps=300), path
        )
        assert main(
            ["optimize", "--scenario", str(path), "--total-bw", "400"]
        ) == 2
        assert "already carries a total-bandwidth budget" in (
            capsys.readouterr().err
        )

    def test_wrong_length_constraint_row_is_clean_error(self, tmp_path, capsys):
        import json

        from repro.api import build_scenario, save_scenario

        path = tmp_path / "s.json"
        save_scenario(
            build_scenario("RI(3)_RI(2)", ["Turing-NLG"], total_bw_gbps=300), path
        )
        payload = json.loads(path.read_text())
        payload["constraints"]["rows"][0]["coeffs"] = [1.0]
        path.write_text(json.dumps(payload))
        assert main(["optimize", "--scenario", str(path)]) == 2
        err = capsys.readouterr().err
        assert "coefficients" in err and "Traceback" not in err

    def test_scenario_plus_target_flags_is_clean_error(self, tmp_path, capsys):
        from repro.api import build_scenario, save_scenario

        path = tmp_path / "s.json"
        save_scenario(
            build_scenario("RI(3)_RI(2)", ["Turing-NLG"], total_bw_gbps=300), path
        )
        code = main(
            ["optimize", "--scenario", str(path), "--topology", "4D-4K"]
        )
        assert code == 2
        assert "replaces the target flags" in capsys.readouterr().err

    def test_malformed_scenario_file_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"schema_version": 1}')
        assert main(["optimize", "--scenario", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_cap_is_clean_error(self, capsys):
        code = main(
            [
                "optimize",
                "--topology", "RI(3)_RI(2)",
                "--workload", "Turing-NLG",
                "--total-bw", "300",
                "--cap", "one:fifty",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "malformed cap" in err and "Traceback" not in err

    def test_unknown_workload_is_clean_error(self, capsys):
        code = main(
            [
                "optimize",
                "--topology", "RI(3)_RI(2)",
                "--workload", "GPT-9000",
                "--total-bw", "300",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err and "Traceback" not in err

    def test_unknown_topology_is_clean_error(self, capsys):
        code = main(
            [
                "optimize",
                "--topology", "XX(8)",
                "--workload", "Turing-NLG",
                "--total-bw", "300",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err

    def test_missing_target_is_clean_error(self, capsys):
        assert main(["optimize", "--total-bw", "300"]) == 2
        assert "either --scenario or --topology" in capsys.readouterr().err

    def test_missing_budget_is_clean_error(self, capsys):
        code = main(
            ["optimize", "--topology", "RI(3)_RI(2)", "--workload", "Turing-NLG"]
        )
        assert code == 2
        assert "--total-bw is required" in capsys.readouterr().err


class TestScenarioCommand:
    def test_writes_loadable_scenario(self, tmp_path, capsys):
        from repro.api import load_scenario

        path = tmp_path / "out.json"
        code = main(
            [
                "scenario",
                "--topology", "RI(3)_RI(2)",
                "--workload", "Turing-NLG",
                "--total-bw", "300",
                "--cap", "1:60",
                "--output", str(path),
            ]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        scenario = load_scenario(path)
        assert scenario.constraints.total_bandwidth == 300e9
        assert main(["optimize", "--scenario", str(path)]) == 0

    def test_stdout_json(self, capsys):
        import json

        code = main(
            ["scenario", "--topology", "RI(3)_RI(2)", "--workload", "Turing-NLG"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1


class TestSweep:
    def test_sweep_rows(self, capsys):
        code = main(
            [
                "sweep",
                "--topology", "3D-4K",
                "--workload", "GPT-3",
                "--bw", "200",
                "--bw", "600",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "200" in out and "600" in out

    def test_sweep_json(self, capsys):
        import json

        code = main(
            [
                "sweep",
                "--topology", "RI(3)_RI(2)",
                "--workload", "Turing-NLG",
                "--bw", "200",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["total_bw_gbps"] == 200
        assert payload[0]["perf"]["point"]["scheme"] == "PerfOptBW"
        assert payload[0]["perf_per_cost"]["point"]["scheme"] == "PerfPerCostOptBW"


class TestExplore:
    ARGS = [
        "explore",
        "--workload", "Turing-NLG",
        "--topology", "RI(3)_RI(2)",
        "--bw", "100",
        "--bw", "300",
        "--scheme", "perf",
    ]

    def test_grid_runs_and_writes_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        code = main(self.ARGS + ["--output", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "solver calls: 2" in out
        import json

        artifact = json.loads(out_path.read_text())
        assert len(artifact["sweep"]["results"]) == 2
        assert artifact["pareto"]["x"] == "network_cost"
        assert artifact["sweep"]["num_errors"] == 0

    def test_cached_rerun_reports_all_hits(self, tmp_path, capsys):
        cache_args = self.ARGS + ["--cache-dir", str(tmp_path / "cache")]
        assert main(cache_args) == 0
        capsys.readouterr()
        assert main(cache_args) == 0
        out = capsys.readouterr().out
        assert "100.0% hit rate" in out
        assert "solver calls: 0" in out
        assert "(cached)" in out

    def test_spec_file(self, tmp_path, capsys):
        import json

        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(json.dumps({
            "workloads": ["Turing-NLG"],
            "topologies": ["RI(3)_RI(2)"],
            "bandwidths_gbps": [100],
        }))
        code = main(["explore", "--spec", str(spec_path), "--progress"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[1/1]" in out and "solved" in out

    def test_parallel_workers(self, capsys):
        assert main(self.ARGS + ["--workers", "2"]) == 0
        assert "solver calls: 2" in capsys.readouterr().out

    def test_profile_prints_stage_timings(self, capsys):
        assert main(self.ARGS + ["--profile"]) == 0
        out = capsys.readouterr().out
        assert "sweep profile:" in out
        assert "cache lookup:" in out
        assert "warm starts:" in out

    def test_no_continuation_runs_cold(self, capsys):
        assert main(self.ARGS + ["--no-continuation", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "0 accepted" in out

    def test_error_rows_do_not_abort(self, capsys):
        # GPT-3 cannot map onto 6 NPUs: its rows error, the sweep continues.
        code = main(self.ARGS + ["--workload", "GPT-3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ERROR: MappingError" in out
        assert "errors: 2" in out

    def test_all_errors_exit_nonzero(self, capsys):
        code = main([
            "explore",
            "--workload", "GPT-3",
            "--topology", "RI(3)_RI(2)",
            "--bw", "100",
        ])
        assert code == 2

    def test_missing_axes_is_clean_error(self, capsys):
        assert main(["explore", "--workload", "GPT-3"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_spec_plus_axis_flags_is_clean_error(self, tmp_path, capsys):
        import json

        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(json.dumps({
            "workloads": ["Turing-NLG"],
            "topologies": ["RI(3)_RI(2)"],
            "bandwidths_gbps": [100],
        }))
        # Flags alongside --spec would be silently ignored; reject instead.
        assert main(["explore", "--spec", str(spec_path), "--bw", "999"]) == 2
        assert "replaces the axis flags" in capsys.readouterr().err

    def test_malformed_pareto_is_clean_error(self, capsys):
        assert main(self.ARGS + ["--pareto", "network_cost"]) == 2
        assert "error:" in capsys.readouterr().err


class TestSimulate:
    def test_simulation(self, capsys):
        code = main(
            [
                "simulate",
                "--topology", "4D-4K",
                "--workload", "GPT-3",
                "--bandwidths", "225,138,104,33",
                "--chunks", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "step time" in out and "aggregate BW utilization" in out

    def test_themis_flag(self, capsys):
        code = main(
            [
                "simulate",
                "--topology", "4D-4K",
                "--workload", "GPT-3",
                "--bandwidths", "125,125,125,125",
                "--chunks", "4",
                "--themis",
            ]
        )
        assert code == 0

    def test_wrong_bandwidth_count(self, capsys):
        code = main(
            [
                "simulate",
                "--topology", "4D-4K",
                "--workload", "GPT-3",
                "--bandwidths", "125,125",
            ]
        )
        assert code == 2


class TestCost:
    def test_fig12_example_via_cli(self, capsys):
        code = main(["cost", "--topology", "4D-4K", "--bandwidths", "125,125,125,125"])
        assert code == 0
        out = capsys.readouterr().out
        assert "total network cost" in out
        assert "pod" in out

    def test_cost_json(self, capsys):
        import json

        code = main(
            ["cost", "--topology", "4D-4K", "--bandwidths", "125,125,125,125",
             "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["dims"]) == 4
        assert payload["total"] == pytest.approx(
            sum(entry["total"] for entry in payload["dims"])
        )

    def test_bad_topology(self, capsys):
        code = main(["cost", "--topology", "XX(2)", "--bandwidths", "1"])
        assert code == 2


class TestStdinScenario:
    """`--scenario -` reads the scenario payload from stdin (satellite)."""

    def _pipe(self, monkeypatch, text: str) -> None:
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(text))

    def test_optimize_from_stdin(self, monkeypatch, capsys):
        import json

        from repro.api import build_scenario

        scenario = build_scenario("RI(3)_RI(2)", ["Turing-NLG"], total_bw_gbps=300)
        self._pipe(monkeypatch, json.dumps(scenario.to_dict()))
        assert main(["optimize", "--scenario", "-"]) == 0
        assert "PerfOptBW" in capsys.readouterr().out

    def test_invalid_json_on_stdin_exits_2(self, monkeypatch, capsys):
        self._pipe(monkeypatch, "this is not json")
        assert main(["optimize", "--scenario", "-"]) == 2
        err = capsys.readouterr().err
        assert "not valid JSON" in err and "Traceback" not in err

    def test_malformed_payload_reports_located_path(self, monkeypatch, capsys):
        import json

        from repro.api import build_scenario

        payload = build_scenario(
            "RI(3)_RI(2)", ["Turing-NLG"], total_bw_gbps=300
        ).to_dict()
        payload["workloads"][0]["weight"] = -1
        self._pipe(monkeypatch, json.dumps(payload))
        assert main(["optimize", "--scenario", "-"]) == 2
        err = capsys.readouterr().err
        assert "workloads[0].weight" in err  # the located validation path

    def test_non_object_payload_exits_2(self, monkeypatch, capsys):
        self._pipe(monkeypatch, "[1, 2, 3]")
        assert main(["optimize", "--scenario", "-"]) == 2
        assert "JSON object" in capsys.readouterr().err

    def test_submit_accepts_stdin_too(self, monkeypatch, capsys):
        import json

        from repro.api import build_scenario

        scenario = build_scenario("RI(3)_RI(2)", ["Turing-NLG"], total_bw_gbps=300)
        self._pipe(monkeypatch, json.dumps(scenario.to_dict()))
        assert main(["submit", "--scenario", "-"]) == 0
        assert "PerfOptBW" in capsys.readouterr().out


class TestSubmitCommand:
    """`repro submit` without --url runs through an in-process job queue."""

    def _scenario_file(self, tmp_path):
        from repro.api import build_scenario, save_scenario

        path = tmp_path / "s.json"
        save_scenario(
            build_scenario("RI(3)_RI(2)", ["Turing-NLG"], total_bw_gbps=300), path
        )
        return str(path)

    def test_local_submit_matches_optimize(self, tmp_path, capsys):
        import json

        path = self._scenario_file(tmp_path)
        assert main(["optimize", "--scenario", path, "--json"]) == 0
        direct = json.loads(capsys.readouterr().out)
        assert main(["submit", "--scenario", path, "--json"]) == 0
        queued = json.loads(capsys.readouterr().out)
        assert queued == direct  # same scenario file, identical payloads

    def test_local_submit_events_go_to_stderr(self, tmp_path, capsys):
        path = self._scenario_file(tmp_path)
        assert main(["submit", "--scenario", path, "--events"]) == 0
        captured = capsys.readouterr()
        assert "PerfOptBW" in captured.out
        assert "state" in captured.err and "running" in captured.err

    def test_local_no_wait_is_clean_error(self, tmp_path, capsys):
        """--no-wait only makes sense against a server that outlives us."""
        path = self._scenario_file(tmp_path)
        assert main(["submit", "--scenario", path, "--no-wait"]) == 2
        assert "requires --url" in capsys.readouterr().err

    def test_local_batch_submit_via_spec(self, tmp_path, capsys):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "workloads": ["Turing-NLG"],
            "topologies": ["RI(3)_RI(2)"],
            "bandwidths_gbps": [100, 300],
        }))
        code = main([
            "submit", "--spec", str(spec_path),
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cells: 2" in out and "solver calls: 2" in out

    def test_spec_plus_scenario_is_clean_error(self, tmp_path, capsys):
        path = self._scenario_file(tmp_path)
        spec_path = tmp_path / "spec.json"
        spec_path.write_text("{}")
        code = main(["submit", "--spec", str(spec_path), "--scenario", path])
        assert code == 2
        assert "batch job" in capsys.readouterr().err

    def test_spec_plus_constraint_flags_is_clean_error(self, tmp_path, capsys):
        """--total-bw/--cap/--scheme must never be silently dropped."""
        spec_path = tmp_path / "spec.json"
        spec_path.write_text("{}")
        for flags in (["--total-bw", "500"], ["--cap", "0:50"],
                      ["--scheme", "perf"]):
            code = main(["submit", "--spec", str(spec_path), *flags])
            assert code == 2
            assert "spec file" in capsys.readouterr().err

    def test_batch_flags_without_spec_are_clean_errors(self, tmp_path, capsys):
        path = self._scenario_file(tmp_path)
        for flags in (["--cache-dir", str(tmp_path / "c")],
                      ["--batch-workers", "4"]):
            code = main(["submit", "--scenario", path, *flags])
            assert code == 2
            assert "add --spec" in capsys.readouterr().err

    def test_missing_target_is_clean_error(self, capsys):
        assert main(["submit"]) == 2
        assert "error:" in capsys.readouterr().err

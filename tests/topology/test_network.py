"""MultiDimNetwork: shapes, tiers, and coordinate math."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology import MultiDimNetwork, NetworkTier, default_tiers, ring
from repro.utils.errors import ConfigurationError


class TestConstruction:
    def test_from_notation(self):
        net = MultiDimNetwork.from_notation("RI(4)_FC(8)_SW(32)")
        assert net.num_dims == 3
        assert net.dim_sizes == (4, 8, 32)
        assert net.num_npus == 1024

    def test_notation_round_trip(self):
        net = MultiDimNetwork.from_notation("RI(16)_FC(8)_SW(32)")
        assert net.notation == "RI(16)_FC(8)_SW(32)"

    def test_name_defaults_to_notation(self):
        net = MultiDimNetwork.from_notation("RI(4)_RI(2)")
        assert net.name == "RI(4)_RI(2)"

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiDimNetwork(blocks=())

    def test_tier_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="tiers"):
            MultiDimNetwork(blocks=(ring(4), ring(2)), tiers=(NetworkTier.POD,))


class TestDefaultTiers:
    def test_2d(self):
        assert default_tiers(2) == [NetworkTier.NODE, NetworkTier.POD]

    def test_3d(self):
        assert default_tiers(3) == [
            NetworkTier.PACKAGE,
            NetworkTier.NODE,
            NetworkTier.POD,
        ]

    def test_4d_matches_fig2(self):
        assert default_tiers(4) == [
            NetworkTier.CHIPLET,
            NetworkTier.PACKAGE,
            NetworkTier.NODE,
            NetworkTier.POD,
        ]

    def test_5d_repeats_chiplet(self):
        tiers = default_tiers(5)
        assert tiers[0] is NetworkTier.CHIPLET
        assert tiers[1] is NetworkTier.CHIPLET
        assert tiers[-1] is NetworkTier.POD

    def test_last_dim_is_always_pod(self):
        for dims in range(1, 7):
            assert default_tiers(dims)[-1] is NetworkTier.POD


class TestCoordinates:
    def test_dim1_varies_fastest(self):
        net = MultiDimNetwork.from_notation("RI(3)_RI(2)")
        assert net.coordinates_of(0) == (0, 0)
        assert net.coordinates_of(1) == (1, 0)
        assert net.coordinates_of(3) == (0, 1)
        assert net.coordinates_of(5) == (2, 1)

    def test_npu_id_inverse(self):
        net = MultiDimNetwork.from_notation("RI(4)_FC(3)_SW(2)")
        for npu in range(net.num_npus):
            assert net.npu_id_of(net.coordinates_of(npu)) == npu

    def test_out_of_range_npu(self):
        net = MultiDimNetwork.from_notation("RI(3)_RI(2)")
        with pytest.raises(ConfigurationError):
            net.coordinates_of(6)
        with pytest.raises(ConfigurationError):
            net.coordinates_of(-1)

    def test_bad_coordinates(self):
        net = MultiDimNetwork.from_notation("RI(3)_RI(2)")
        with pytest.raises(ConfigurationError):
            net.npu_id_of((3, 0))
        with pytest.raises(ConfigurationError):
            net.npu_id_of((0,))


class TestPeers:
    def test_peers_along_dim0(self):
        net = MultiDimNetwork.from_notation("RI(3)_RI(2)")
        assert net.peers_along_dim(0, 0) == [0, 1, 2]
        assert net.peers_along_dim(4, 0) == [3, 4, 5]

    def test_peers_along_dim1(self):
        net = MultiDimNetwork.from_notation("RI(3)_RI(2)")
        assert net.peers_along_dim(1, 1) == [1, 4]

    def test_peer_groups_partition_network(self):
        net = MultiDimNetwork.from_notation("RI(4)_FC(3)_SW(2)")
        for dim in range(net.num_dims):
            groups = {tuple(net.peers_along_dim(npu, dim)) for npu in range(net.num_npus)}
            members = [npu for group in groups for npu in group]
            assert sorted(members) == list(range(net.num_npus))

    def test_bad_dim(self):
        net = MultiDimNetwork.from_notation("RI(3)_RI(2)")
        with pytest.raises(ConfigurationError):
            net.peers_along_dim(0, 2)


class TestScaledLastDim:
    def test_scaling(self):
        net = MultiDimNetwork.from_notation("RI(4)_SW(32)")
        scaled = net.scaled_last_dim(16)
        assert scaled.dim_sizes == (4, 16)
        assert scaled.blocks[1].kind == net.blocks[1].kind

    def test_original_unchanged(self):
        net = MultiDimNetwork.from_notation("RI(4)_SW(32)")
        net.scaled_last_dim(8)
        assert net.dim_sizes == (4, 32)


@given(
    st.lists(st.integers(min_value=2, max_value=5), min_size=1, max_size=4),
    st.data(),
)
def test_property_coordinate_bijection(sizes, data):
    """coordinates_of and npu_id_of are exact inverses on random shapes."""
    notation = "_".join(f"RI({size})" for size in sizes)
    net = MultiDimNetwork.from_notation(notation)
    npu = data.draw(st.integers(min_value=0, max_value=net.num_npus - 1))
    assert net.npu_id_of(net.coordinates_of(npu)) == npu

"""Physical link-graph expansion."""

import pytest

from repro.topology import (
    BlockKind,
    MultiDimNetwork,
    build_graph,
    count_physical_links,
    per_link_bandwidth,
)
from repro.utils import gbps
from repro.utils.errors import ConfigurationError


class TestPerLinkBandwidth:
    def test_ring_splits_over_two_ports(self):
        assert per_link_bandwidth(BlockKind.RING, 4, gbps(100)) == gbps(50)

    def test_ring_of_two_single_port(self):
        assert per_link_bandwidth(BlockKind.RING, 2, gbps(100)) == gbps(100)

    def test_fully_connected_splits_over_peers(self):
        assert per_link_bandwidth(BlockKind.FULLY_CONNECTED, 5, gbps(100)) == gbps(25)

    def test_switch_uplink_full(self):
        assert per_link_bandwidth(BlockKind.SWITCH, 32, gbps(100)) == gbps(100)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            per_link_bandwidth(BlockKind.RING, 4, 0.0)


class TestBuildGraph:
    def test_torus_has_all_npus(self):
        net = MultiDimNetwork.from_notation("RI(4)_RI(4)_RI(4)")
        graph = build_graph(net, [gbps(100)] * 3)
        npu_nodes = [n for n, d in graph.nodes(data=True) if d.get("kind") == "npu"]
        assert len(npu_nodes) == 64

    def test_torus_link_count(self):
        """RI(4)^3: 3 dims × 16 rings × 4 links × 2 directions."""
        net = MultiDimNetwork.from_notation("RI(4)_RI(4)_RI(4)")
        graph = build_graph(net, [gbps(100)] * 3)
        assert graph.number_of_edges() == 3 * 16 * 4 * 2

    def test_switch_dims_add_hub_nodes(self):
        net = MultiDimNetwork.from_notation("RI(2)_SW(3)")
        graph = build_graph(net, [gbps(100), gbps(100)])
        hubs = [n for n, d in graph.nodes(data=True) if d.get("kind") == "switch"]
        assert len(hubs) == 2  # one switch per group of 3 NPUs

    def test_edge_attributes(self):
        net = MultiDimNetwork.from_notation("RI(4)_RI(2)")
        graph = build_graph(net, [gbps(100), gbps(60)])
        dims = {data["dim"] for _, _, data in graph.edges(data=True)}
        assert dims == {0, 1}
        for _, _, data in graph.edges(data=True):
            if data["dim"] == 0:
                assert data["bandwidth"] == gbps(50)  # ring, 2 ports
            else:
                assert data["bandwidth"] == gbps(60)  # ring of 2, 1 port

    def test_injection_bandwidth_preserved(self):
        """Sum of a node's outgoing link BW per dim equals the dim BW."""
        net = MultiDimNetwork.from_notation("FC(4)_RI(3)")
        bws = [gbps(90), gbps(40)]
        graph = build_graph(net, bws)
        for npu in range(net.num_npus):
            per_dim = {0: 0.0, 1: 0.0}
            for _, _, data in graph.out_edges(npu, data=True):
                per_dim[data["dim"]] += data["bandwidth"]
            assert per_dim[0] == pytest.approx(bws[0])
            assert per_dim[1] == pytest.approx(bws[1])

    def test_wrong_bandwidth_count(self):
        net = MultiDimNetwork.from_notation("RI(4)_RI(2)")
        with pytest.raises(ConfigurationError):
            build_graph(net, [gbps(100)])

    def test_graph_is_strongly_connected(self):
        import networkx as nx

        net = MultiDimNetwork.from_notation("RI(3)_FC(3)_RI(2)")
        graph = build_graph(net, [gbps(10)] * 3)
        assert nx.is_strongly_connected(graph)


class TestCountPhysicalLinks:
    def test_torus(self):
        net = MultiDimNetwork.from_notation("RI(4)_RI(4)_RI(4)")
        assert count_physical_links(net) == {0: 64, 1: 64, 2: 64}

    def test_mixed(self):
        net = MultiDimNetwork.from_notation("FC(4)_SW(2)")
        counts = count_physical_links(net)
        assert counts[0] == 2 * 6  # two FC(4) groups of C(4,2) links
        assert counts[1] == 4 * 2  # four SW groups, 2 uplinks each

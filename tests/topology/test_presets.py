"""Table III and Fig. 11 preset registries."""

import pytest

from repro.topology import (
    EVALUATION_TOPOLOGIES,
    REAL_SYSTEM_TOPOLOGIES,
    evaluation_topology_names,
    get_topology,
)
from repro.utils.errors import ConfigurationError


class TestTable3:
    @pytest.mark.parametrize(
        "name, npus",
        [
            ("4D-4K", 4096),
            ("3D-4K", 4096),
            ("3D-512", 512),
            ("3D-1K", 1024),
            ("4D-2K", 2048),
            ("3D-Torus", 64),
        ],
    )
    def test_sizes(self, name, npus):
        assert get_topology(name).num_npus == npus

    def test_4d_4k_shape(self):
        net = get_topology("4D-4K")
        assert net.notation == "RI(4)_FC(8)_RI(4)_SW(32)"
        assert net.name == "4D-4K"

    def test_3d_4k_merges_ring_dims(self):
        """The paper builds 3D-4K by combining 4D-4K's two ring dimensions."""
        net4 = get_topology("4D-4K")
        net3 = get_topology("3D-4K")
        assert net3.dim_sizes[0] == net4.dim_sizes[0] * net4.dim_sizes[2]
        assert net3.num_npus == net4.num_npus

    def test_registry_names(self):
        assert evaluation_topology_names() == list(EVALUATION_TOPOLOGIES)


class TestFig11:
    def test_real_systems_parse(self):
        for name in REAL_SYSTEM_TOPOLOGIES:
            net = get_topology(name)
            assert net.num_npus >= 4

    def test_tpuv4_is_3d(self):
        assert get_topology("Google TPUv4").num_dims == 3

    def test_dgx1_shape(self):
        assert get_topology("NVIDIA DGX-1").notation == "RI(4)_SW(2)"


class TestLookupErrors:
    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown preset"):
            get_topology("5D-32K")

"""Structural network metrics: diameter, bisection, injection."""

import pytest

from repro.topology import (
    MultiDimNetwork,
    bisection_report,
    block_diameter,
    describe_structure,
    fully_connected,
    get_topology,
    injection_bandwidth,
    network_diameter,
    ring,
    switch,
)
from repro.topology.metrics import block_bisection_links
from repro.utils import gbps
from repro.utils.errors import ConfigurationError


class TestDiameter:
    def test_ring(self):
        assert block_diameter(ring(4)) == 2
        assert block_diameter(ring(5)) == 2
        assert block_diameter(ring(2)) == 1

    def test_fully_connected(self):
        assert block_diameter(fully_connected(8)) == 1

    def test_switch(self):
        assert block_diameter(switch(32)) == 2

    def test_network_diameter_sums(self):
        net = get_topology("4D-4K")  # RI(4)_FC(8)_RI(4)_SW(32)
        assert network_diameter(net) == 2 + 1 + 2 + 2

    def test_torus(self):
        assert network_diameter(get_topology("3D-Torus")) == 6


class TestBisectionLinks:
    def test_ring(self):
        assert block_bisection_links(ring(4)) == 2
        assert block_bisection_links(ring(2)) == 1

    def test_fully_connected(self):
        assert block_bisection_links(fully_connected(4)) == 4  # 2 × 2
        assert block_bisection_links(fully_connected(5)) == 6  # 2 × 3

    def test_switch(self):
        assert block_bisection_links(switch(32)) == 16


class TestBisectionReport:
    def test_symmetric_torus(self):
        """RI(4)^3 at equal BW: every cut is identical."""
        net = get_topology("3D-Torus")
        report = bisection_report(net, [gbps(300)] * 3)
        assert report.per_dim[0] == report.per_dim[1] == report.per_dim[2]
        # 16 rings × 2 links × (300/2 per link) = 4.8 TB/s
        assert report.per_dim[0] == pytest.approx(16 * 2 * gbps(150))

    def test_weakest_dim(self):
        net = MultiDimNetwork.from_notation("RI(4)_SW(4)")
        report = bisection_report(net, [gbps(100), gbps(10)])
        assert report.weakest_dim == 1
        assert report.bandwidth == report.per_dim[1]

    def test_wrong_bandwidth_count(self):
        with pytest.raises(ConfigurationError):
            bisection_report(get_topology("3D-Torus"), [gbps(10)])


class TestInjection:
    def test_aggregate(self):
        net = get_topology("3D-Torus")
        assert injection_bandwidth(net, [gbps(100)] * 3) == pytest.approx(
            64 * gbps(300)
        )

    def test_describe(self):
        net = get_topology("3D-Torus")
        text = describe_structure(net, [gbps(100)] * 3)
        assert "diameter: 6 hops" in text
        assert "weakest cut" in text

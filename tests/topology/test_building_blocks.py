"""Unit topologies: Ring, FullyConnected, Switch."""

import pytest

from repro.topology import BlockKind, BuildingBlock, fully_connected, ring, switch
from repro.utils.errors import ConfigurationError


class TestBlockKind:
    def test_from_tag(self):
        assert BlockKind.from_tag("RI") is BlockKind.RING
        assert BlockKind.from_tag("FC") is BlockKind.FULLY_CONNECTED
        assert BlockKind.from_tag("SW") is BlockKind.SWITCH

    def test_from_tag_case_insensitive(self):
        assert BlockKind.from_tag("ri") is BlockKind.RING
        assert BlockKind.from_tag(" sw ") is BlockKind.SWITCH

    def test_unknown_tag(self):
        with pytest.raises(ConfigurationError, match="unknown building block"):
            BlockKind.from_tag("XX")


class TestBuildingBlock:
    def test_constructors(self):
        assert ring(4).kind is BlockKind.RING
        assert fully_connected(8).kind is BlockKind.FULLY_CONNECTED
        assert switch(32).kind is BlockKind.SWITCH

    def test_size_one_rejected(self):
        with pytest.raises(ConfigurationError, match="size >= 2"):
            ring(1)

    def test_size_zero_rejected(self):
        with pytest.raises(Exception):
            switch(0)

    def test_str(self):
        assert str(ring(4)) == "RI(4)"
        assert str(switch(32)) == "SW(32)"

    def test_algorithm_mapping_fig7(self):
        """Fig. 7(b): Ring→ring, FC→direct, SW→halving-doubling."""
        assert ring(4).algorithm == "ring"
        assert fully_connected(8).algorithm == "direct"
        assert switch(16).algorithm == "halving_doubling"

    def test_uses_switch(self):
        assert switch(4).uses_switch
        assert not ring(4).uses_switch
        assert not fully_connected(4).uses_switch


class TestLinks:
    def test_ring_links(self):
        links = ring(4).links()
        assert len(links) == 4
        assert (0, 1) in links and (3, 0) in links

    def test_ring_of_two_single_link(self):
        assert ring(2).links() == [(0, 1)]

    def test_fully_connected_links(self):
        links = fully_connected(4).links()
        assert len(links) == 6  # C(4,2)
        assert (0, 3) in links

    def test_switch_links_use_hub(self):
        links = switch(3).links()
        assert links == [(0, -1), (1, -1), (2, -1)]

    def test_npu_link_count(self):
        assert ring(4).npu_link_count == 2
        assert ring(2).npu_link_count == 1
        assert fully_connected(5).npu_link_count == 4
        assert switch(32).npu_link_count == 1

"""The RI(4)_FC(8)_SW(32) notation parser/formatter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology import BlockKind, format_notation, parse_block, parse_notation
from repro.utils.errors import NotationError


class TestParseBlock:
    def test_simple(self):
        block = parse_block("RI(4)")
        assert block.kind is BlockKind.RING
        assert block.size == 4

    def test_whitespace_tolerated(self):
        block = parse_block("  SW ( 32 ) ")
        assert block.kind is BlockKind.SWITCH
        assert block.size == 32

    def test_lowercase(self):
        assert parse_block("fc(8)").kind is BlockKind.FULLY_CONNECTED

    @pytest.mark.parametrize(
        "bad", ["RI", "RI()", "RI(4", "RI 4", "(4)", "RI(-4)", "RI(4.5)", ""]
    )
    def test_malformed(self, bad):
        with pytest.raises(NotationError):
            parse_block(bad)

    def test_unknown_tag(self):
        with pytest.raises(NotationError, match="unknown"):
            parse_block("XX(4)")

    def test_size_one_rejected(self):
        with pytest.raises(NotationError, match="size >= 2"):
            parse_block("RI(1)")


class TestParseNotation:
    def test_table3_shapes(self):
        blocks = parse_notation("RI(4)_FC(8)_RI(4)_SW(32)")
        assert [str(b) for b in blocks] == ["RI(4)", "FC(8)", "RI(4)", "SW(32)"]

    def test_single_dimension(self):
        assert len(parse_notation("SW(8)")) == 1

    def test_empty_rejected(self):
        with pytest.raises(NotationError):
            parse_notation("")
        with pytest.raises(NotationError):
            parse_notation("   ")

    def test_trailing_underscore_rejected(self):
        with pytest.raises(NotationError):
            parse_notation("RI(4)_")


class TestFormatNotation:
    def test_round_trip(self):
        text = "RI(16)_FC(8)_SW(32)"
        assert format_notation(parse_notation(text)) == text

    def test_empty_rejected(self):
        with pytest.raises(NotationError):
            format_notation([])


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["RI", "FC", "SW"]),
            st.integers(min_value=2, max_value=64),
        ),
        min_size=1,
        max_size=6,
    )
)
def test_property_round_trip(spec):
    """format(parse(s)) == s for every canonical shape string."""
    text = "_".join(f"{tag}({size})" for tag, size in spec)
    assert format_notation(parse_notation(text)) == text

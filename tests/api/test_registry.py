"""The string-keyed registries and their resolution helpers."""

import pytest

from repro.api.registry import (
    COMPUTE_MODELS,
    COST_MODELS,
    LOOPS,
    SCHEME_ALIASES,
    TOPOLOGIES,
    WORKLOADS,
    Registry,
    resolve_cost_model,
    resolve_loop,
    resolve_scheme,
    resolve_topology,
    resolve_workload,
)
from repro.core.results import Scheme
from repro.topology.network import MultiDimNetwork
from repro.topology.presets import EVALUATION_TOPOLOGIES, REAL_SYSTEM_TOPOLOGIES
from repro.utils.errors import ConfigurationError
from repro.workloads import build_workload, workload_names


class TestSeededEntries:
    def test_all_preset_topologies_registered(self):
        for name in list(EVALUATION_TOPOLOGIES) + list(REAL_SYSTEM_TOPOLOGIES):
            assert name in TOPOLOGIES
            assert resolve_topology(name).num_npus > 0

    def test_all_table2_workloads_registered(self):
        for name in workload_names():
            assert name in WORKLOADS

    def test_workload_builder_matches_presets(self):
        via_registry = resolve_workload("Turing-NLG", 512)
        via_presets = build_workload("Turing-NLG", 512)
        assert via_registry.canonical() == via_presets.canonical()

    def test_default_models_and_loops(self):
        assert resolve_cost_model("table1-default").name == "table1-default"
        assert COMPUTE_MODELS.build("A100-75pct").name == "A100-75pct"
        assert resolve_loop("no-overlap").name == "no-overlap"
        assert resolve_loop("tp-dp-overlap").name == "tp-dp-overlap"
        assert "table1-default" in COST_MODELS
        assert "no-overlap" in LOOPS

    def test_notation_fallback(self):
        network = resolve_topology("RI(3)_RI(2)")
        assert network.num_npus == 6


class TestRegistration:
    def test_decorator_registration_and_teardown(self):
        @TOPOLOGIES.register("test-fabric")
        def _build():
            return MultiDimNetwork.from_notation("RI(4)_SW(4)", name="test-fabric")

        try:
            assert resolve_topology("test-fabric").num_npus == 16
        finally:
            TOPOLOGIES.unregister("test-fabric")
        assert "test-fabric" not in TOPOLOGIES

    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            TOPOLOGIES.register("4D-4K", lambda: None)

    def test_overwrite_opt_in(self):
        registry = Registry("thing")
        registry.register("a", lambda: 1)
        registry.register("a", lambda: 2, overwrite=True)
        assert registry.build("a") == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError, match="must not be empty"):
            Registry("thing").register("", lambda: 1)

    def test_unknown_name_lists_known(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            resolve_workload("Nonexistent", 64)

    def test_registered_topology_is_sweepable(self):
        """A user-registered preset works as an explore axis entry."""
        from repro.explore import run_sweep
        from repro.explore.spec import SweepSpec

        @TOPOLOGIES.register("tiny-test-net")
        def _build():
            return MultiDimNetwork.from_notation("RI(3)_RI(2)", name="tiny-test-net")

        try:
            spec = SweepSpec(
                workloads=("Turing-NLG",),
                topologies=("tiny-test-net",),
                bandwidths_gbps=(100.0,),
            )
            sweep = run_sweep(spec)
            assert sweep.results[0].ok
        finally:
            TOPOLOGIES.unregister("tiny-test-net")


class TestSchemeAliases:
    def test_aliases(self):
        assert resolve_scheme("perf") is Scheme.PERF_OPT
        assert resolve_scheme("perf-per-cost") is Scheme.PERF_PER_COST_OPT
        assert resolve_scheme("equal") is Scheme.EQUAL_BW
        assert resolve_scheme("PerfOptBW") is Scheme.PERF_OPT
        assert resolve_scheme(Scheme.EQUAL_BW) is Scheme.EQUAL_BW

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            resolve_scheme("fastest")

    def test_backwards_compatible_reexport(self):
        """The historical import site must keep working."""
        from repro.explore.spec import SCHEME_ALIASES as legacy
        from repro.explore.spec import resolve_scheme as legacy_resolve

        assert legacy is SCHEME_ALIASES
        assert legacy_resolve is resolve_scheme

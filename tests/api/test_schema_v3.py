"""Schema v3: the job envelope codec and version up-conversion."""

import json

import pytest

from repro.api.requests import (
    REQUEST_SCHEMA_VERSION,
    RESPONSE_SCHEMA_VERSION,
    BatchRequest,
    BatchResponse,
    OptimizeRequest,
    OptimizeResponse,
    request_from_dict,
    request_kind,
    request_to_dict,
)
from repro.api.scenario import build_scenario
from repro.api.service import LibraService
from repro.core.results import Scheme
from repro.explore.records import ExplorationResult, SweepProfile, SweepResult
from repro.explore.spec import ExplorationPoint, SweepSpec
from repro.utils.errors import ConfigurationError

TOPOLOGY = "RI(3)_RI(2)"
WORKLOAD = "Turing-NLG"


def _optimize_request(**kwargs):
    return OptimizeRequest(
        scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300),
        **kwargs,
    )


def _batch_request():
    return BatchRequest(
        spec=SweepSpec(
            workloads=(WORKLOAD,), topologies=(TOPOLOGY,),
            bandwidths_gbps=(100.0, 300.0),
        ),
        workers=2,
        cache_dir="/tmp/some-cache",
    )


class TestRequestEnvelope:
    def test_versions_are_v5(self):
        assert REQUEST_SCHEMA_VERSION == 5
        assert RESPONSE_SCHEMA_VERSION == 5

    def test_optimize_round_trip(self):
        request = _optimize_request(warm_start=(240.0, 60.0), max_starts=3)
        envelope = request_to_dict(request)
        assert envelope["schema_version"] == REQUEST_SCHEMA_VERSION
        assert envelope["kind"] == "optimize"
        parsed = request_from_dict(json.loads(json.dumps(envelope)))
        assert isinstance(parsed, OptimizeRequest)
        assert request_to_dict(parsed) == envelope

    def test_batch_round_trip(self):
        request = _batch_request()
        envelope = request_to_dict(request)
        assert envelope["kind"] == "batch"
        parsed = request_from_dict(json.loads(json.dumps(envelope)))
        assert isinstance(parsed, BatchRequest)
        assert parsed.workers == 2
        assert parsed.cache_dir == "/tmp/some-cache"
        assert request_to_dict(parsed) == envelope

    def test_request_kind(self):
        assert request_kind(_optimize_request()) == "optimize"
        assert request_kind(_batch_request()) == "batch"
        with pytest.raises(ConfigurationError, match="unknown request type"):
            request_kind("nope")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown request kind"):
            request_from_dict(
                {"schema_version": 3, "kind": "simulate", "request": {}}
            )

    def test_missing_body_rejected(self):
        with pytest.raises(ConfigurationError, match="'request' object"):
            request_from_dict({"schema_version": 3, "kind": "optimize"})

    def test_shapeless_payload_rejected(self):
        with pytest.raises(ConfigurationError, match="neither"):
            request_from_dict({"schema_version": 3})

    def test_unsupported_envelope_version_rejected(self):
        envelope = request_to_dict(_optimize_request())
        envelope["schema_version"] = 99
        with pytest.raises(ConfigurationError, match="schema version"):
            request_from_dict(envelope)


class TestUpConversion:
    """Pre-v3 wire payloads keep working (satellite: v2→v3 acceptance)."""

    def test_bare_v2_optimize_payload(self):
        payload = _optimize_request(max_starts=2).to_dict()
        payload["schema_version"] = 2
        parsed = request_from_dict(payload)
        assert isinstance(parsed, OptimizeRequest)
        assert parsed.max_starts == 2
        assert parsed.scheme is Scheme.PERF_OPT

    def test_bare_v1_optimize_payload(self):
        payload = _optimize_request().to_dict()
        # v1: no schema_version, no continuation fields.
        del payload["schema_version"]
        del payload["warm_start"]
        del payload["max_starts"]
        parsed = request_from_dict(payload)
        assert isinstance(parsed, OptimizeRequest)
        assert parsed.warm_start is None and parsed.max_starts is None

    def test_bare_batch_payload(self):
        payload = _batch_request().to_dict()
        del payload["schema_version"]  # tolerated: defaults to current
        parsed = request_from_dict(payload)
        assert isinstance(parsed, BatchRequest)

    def test_v2_response_payload_still_reads(self):
        response = LibraService().submit(_optimize_request())
        payload = response.to_dict()
        payload["schema_version"] = 2
        restored = OptimizeResponse.from_dict(payload)
        assert restored.point.bandwidths == response.point.bandwidths


class TestBatchResponseRoundTrip:
    def _sweep(self):
        point = ExplorationPoint(WORKLOAD, TOPOLOGY, 300.0, Scheme.PERF_OPT)
        row = ExplorationResult(
            point=point,
            key="abc123",
            bandwidths_gbps=(240.0, 60.0),
            step_times_ms={WORKLOAD: 14433.45},
            network_cost=19944.0,
            speedup_over_equal=1.008,
            ppc_gain_over_equal=1.97,
            solver_message="slsqp",
            solver_starts=5,
            warm_start="cold",
        )
        return SweepResult(results=[row], cache_hits=0, solver_calls=1)

    def test_round_trip_with_diagnostics(self):
        response = BatchResponse(
            sweep=self._sweep(),
            diagnostics={
                "cells": 1, "cache_hits": 0, "solver_calls": 1,
                "fanout_cells": 0, "num_errors": 0, "warm_hit_rate": 0.0,
                "profile": SweepProfile(chains=1, cold_solves=1).to_dict(),
            },
        )
        payload = json.loads(json.dumps(response.to_dict()))
        assert payload["schema_version"] == RESPONSE_SCHEMA_VERSION
        restored = BatchResponse.from_dict(payload)
        assert restored.diagnostics == response.diagnostics
        assert restored.to_dict() == response.to_dict()
        row = restored.sweep.results[0]
        assert row.bandwidths_gbps == (240.0, 60.0)
        assert row.point.scheme is Scheme.PERF_OPT

    def test_round_trip_without_diagnostics(self):
        response = BatchResponse(sweep=self._sweep())
        restored = BatchResponse.from_dict(response.to_dict())
        assert restored.diagnostics is None
        assert restored.to_dict() == response.to_dict()

    def test_sweep_profile_round_trip(self):
        profile = SweepProfile(
            lookup_s=0.01, solve_s=2.5, assemble_s=0.002, total_s=2.52,
            chains=3, warm_accepted=4, warm_rejected=1, cold_solves=3,
        )
        restored = SweepProfile.from_dict(json.loads(json.dumps(profile.to_dict())))
        assert restored == profile
        assert restored.warm_hit_rate == profile.warm_hit_rate

    def test_exploration_result_from_cache_flag_round_trips(self):
        row = self._sweep().results[0]
        from dataclasses import replace

        cached = replace(row, from_cache=True)
        assert ExplorationResult.from_dict(cached.to_dict()).from_cache is True
        assert ExplorationResult.from_dict(row.to_dict()).from_cache is False


class TestServiceDiagnostics:
    def test_batch_response_carries_sweep_diagnostics(self):
        """Satellite: remote clients see what --profile prints locally."""
        response = LibraService().submit(_batch_request_no_cache())
        diagnostics = response.diagnostics
        assert diagnostics is not None
        assert diagnostics["cells"] == 2
        assert diagnostics["solver_calls"] == 2
        assert diagnostics["fanout_cells"] == 0
        assert set(diagnostics["profile"]) >= {
            "lookup_s", "solve_s", "assemble_s", "total_s",
            "chains", "warm_accepted", "warm_rejected", "cold_solves",
            "warm_hit_rate",
        }
        # And the whole thing serializes.
        json.dumps(response.to_dict())


def _batch_request_no_cache():
    return BatchRequest(
        spec=SweepSpec(
            workloads=(WORKLOAD,), topologies=(TOPOLOGY,),
            bandwidths_gbps=(100.0, 300.0),
        )
    )

"""LibraService dispatch, engine memoization, and facade equivalence."""

import json

import pytest

from repro.api.requests import (
    REQUEST_SCHEMA_VERSION,
    RESPONSE_SCHEMA_VERSION,
    WARM_START_AUTO,
    BatchRequest,
    OptimizeRequest,
    OptimizeResponse,
)
from repro.api.scenario import build_scenario
from repro.api.service import LibraService, get_service
from repro.core import Libra, Scheme
from repro.explore.spec import SweepSpec
from repro.topology.network import MultiDimNetwork
from repro.utils import gbps
from repro.utils.errors import ConfigurationError, OptimizationError
from repro.workloads import build_workload

TOPOLOGY = "RI(3)_RI(2)"
WORKLOAD = "Turing-NLG"


def _facade(constraint_builder):
    network = MultiDimNetwork.from_notation(TOPOLOGY)
    libra = Libra(network)
    libra.add_workload(build_workload(WORKLOAD, network.num_npus))
    return libra, constraint_builder(libra.constraints())


CONSTRAINT_VARIANTS = {
    "budget": lambda c: c.with_total_bandwidth(gbps(300)),
    "budget+cap": lambda c: c.with_total_bandwidth(gbps(300)).with_dim_cap(
        1, gbps(60)
    ),
    "budget+ordering": lambda c: c.with_total_bandwidth(gbps(300)).with_ordering(
        [0, 1]
    ),
}


class TestFacadeEquivalence:
    """`submit()` must be bit-identical to the `Libra.optimize` path."""

    @pytest.mark.parametrize("scheme", [Scheme.PERF_OPT, Scheme.PERF_PER_COST_OPT])
    @pytest.mark.parametrize("variant", sorted(CONSTRAINT_VARIANTS))
    def test_bit_identical_bandwidths(self, scheme, variant):
        libra, constraints = _facade(CONSTRAINT_VARIANTS[variant])
        expected = libra.optimize(scheme, constraints)

        scenario = build_scenario(
            TOPOLOGY,
            [WORKLOAD],
            constraints=CONSTRAINT_VARIANTS[variant](
                libra.constraints()
            ),
        )
        response = LibraService().submit(
            OptimizeRequest(scenario=scenario, scheme=scheme)
        )
        assert response.point.bandwidths == expected.bandwidths
        assert response.point.step_times == expected.step_times
        assert response.point.network_cost == expected.network_cost

    def test_equal_bw_request(self):
        libra, constraints = _facade(CONSTRAINT_VARIANTS["budget"])
        expected = libra.equal_bw_point(gbps(300))
        scenario = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        response = LibraService().submit(
            OptimizeRequest(scenario=scenario, scheme=Scheme.EQUAL_BW)
        )
        assert response.point.bandwidths == expected.bandwidths
        assert response.speedup_over_baseline == 1.0

    def test_explicit_evaluation_request(self):
        libra, _ = _facade(CONSTRAINT_VARIANTS["budget"])
        expected = libra.evaluate([gbps(200), gbps(100)])
        scenario = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        response = LibraService().submit(
            OptimizeRequest(scenario=scenario, bandwidths_gbps=(200, 100))
        )
        assert response.point.bandwidths == expected.bandwidths
        assert response.point.step_times == expected.step_times


class TestResponses:
    def test_response_is_json_dumpable(self):
        scenario = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        response = LibraService().submit(OptimizeRequest(scenario=scenario))
        payload = response.to_dict()
        rebuilt = OptimizeResponse.from_dict(json.loads(json.dumps(payload)))
        assert rebuilt.point.bandwidths == response.point.bandwidths
        assert payload["schema_version"] == RESPONSE_SCHEMA_VERSION

    def test_request_round_trips(self):
        scenario = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        request = OptimizeRequest(
            scenario=scenario, scheme="perf-per-cost", kernel="closures"
        )
        rebuilt = OptimizeRequest.from_dict(json.loads(json.dumps(request.to_dict())))
        assert rebuilt.scenario.key() == scenario.key()
        assert rebuilt.scheme is Scheme.PERF_PER_COST_OPT
        assert rebuilt.kernel == "closures"

    def test_request_round_trips_continuation_fields(self):
        scenario = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        request = OptimizeRequest(
            scenario=scenario, warm_start=(200.0, 100.0), max_starts=3
        )
        payload = json.loads(json.dumps(request.to_dict()))
        assert payload["schema_version"] == REQUEST_SCHEMA_VERSION
        rebuilt = OptimizeRequest.from_dict(payload)
        assert rebuilt.warm_start == (200.0, 100.0)
        assert rebuilt.max_starts == 3
        auto = OptimizeRequest.from_dict(
            OptimizeRequest(scenario=scenario, warm_start="auto").to_dict()
        )
        assert auto.warm_start == WARM_START_AUTO

    def test_legacy_request_payload_parses_cold(self):
        """Version-1 payloads (no schema_version) predate continuation."""
        scenario = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        payload = OptimizeRequest(scenario=scenario).to_dict()
        del payload["schema_version"]
        del payload["warm_start"]
        del payload["max_starts"]
        rebuilt = OptimizeRequest.from_dict(payload)
        assert rebuilt.warm_start is None
        assert rebuilt.max_starts is None

    def test_unknown_request_schema_version_rejected(self):
        scenario = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        payload = OptimizeRequest(scenario=scenario).to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ConfigurationError, match="request schema version"):
            OptimizeRequest.from_dict(payload)

    def test_bad_warm_start_rejected(self):
        scenario = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        with pytest.raises(ConfigurationError, match="warm_start"):
            OptimizeRequest(scenario=scenario, warm_start="bogus")
        with pytest.raises(ConfigurationError, match="warm_start"):
            OptimizeRequest(scenario=scenario, warm_start=(100.0,))
        with pytest.raises(ConfigurationError, match="max_starts"):
            OptimizeRequest(scenario=scenario, max_starts=0)

    def test_baseline_omitted_on_request(self):
        scenario = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        response = LibraService().submit(
            OptimizeRequest(scenario=scenario, include_baseline=False)
        )
        assert response.baseline is None
        assert response.speedup_over_baseline is None

    def test_constraintless_scenario_needs_bandwidths(self):
        scenario = build_scenario(TOPOLOGY, [WORKLOAD])
        with pytest.raises(ConfigurationError, match="no constraints"):
            OptimizeRequest(scenario=scenario)
        # ...but an explicit evaluation is fine.
        response = LibraService().submit(
            OptimizeRequest(scenario=scenario, bandwidths_gbps=(100, 100))
        )
        assert response.baseline is None

    def test_equal_bw_without_budget_rejected(self):
        scenario = build_scenario(TOPOLOGY, [WORKLOAD])
        with pytest.raises(OptimizationError, match="total-bandwidth budget"):
            LibraService._budget(scenario)

    def test_wrong_bandwidth_count_rejected(self):
        scenario = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        with pytest.raises(ConfigurationError, match="expected 2 bandwidths"):
            OptimizeRequest(scenario=scenario, bandwidths_gbps=(100,))

    def test_unknown_request_type(self):
        with pytest.raises(ConfigurationError, match="unknown request type"):
            LibraService().submit(object())


class TestMemoization:
    def test_engine_memoized_on_canonical_key(self):
        service = LibraService()
        a = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        b = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        assert service.engine(a) is service.engine(b)
        assert service.compiled_count == 1

    def test_budget_cells_share_one_engine(self):
        """Constraints are applied per request, not compiled in — sweep
        columns differing only in budget must reuse one engine."""
        service = LibraService()
        a = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        b = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=400)
        assert a.key() != b.key()
        assert a.engine_key() == b.engine_key()
        assert service.engine(a) is service.engine(b)
        assert service.compiled_count == 1

    def test_distinct_problems_get_distinct_engines(self):
        service = LibraService()
        a = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        b = build_scenario(
            TOPOLOGY, [WORKLOAD], total_bw_gbps=300, loop="tp-dp-overlap"
        )
        assert service.engine(a) is not service.engine(b)
        assert service.compiled_count == 2

    def test_lru_eviction(self):
        service = LibraService(max_compiled=1)
        a = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        b = build_scenario(
            TOPOLOGY, [WORKLOAD], total_bw_gbps=300, loop="tp-dp-overlap"
        )
        first = service.engine(a)
        service.engine(b)
        assert service.compiled_count == 1
        assert service.engine(a) is not first  # evicted, recompiled

    def test_clear(self):
        service = LibraService()
        service.engine(build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300))
        service.clear()
        assert service.compiled_count == 0

    def test_default_service_is_shared(self):
        assert get_service() is get_service()


class TestBatch:
    def test_batch_routes_through_explore_cache(self, tmp_path):
        spec = SweepSpec(
            workloads=(WORKLOAD,),
            topologies=(TOPOLOGY,),
            bandwidths_gbps=(100.0, 300.0),
        )
        service = LibraService()
        cold = service.submit(
            BatchRequest(spec=spec, cache_dir=str(tmp_path / "cache"))
        )
        assert cold.sweep.solver_calls == 2
        assert cold.sweep.num_errors == 0
        warm = service.submit(
            BatchRequest(spec=spec, cache_dir=str(tmp_path / "cache"))
        )
        assert warm.sweep.solver_calls == 0
        assert warm.sweep.cache_hits == 2
        assert json.dumps(warm.to_dict())

    def test_in_memory_batch_cache_is_per_service(self):
        """Without cache_dir, repeat submissions against one service reuse
        solved cells (the documented per-service in-memory cache)."""
        spec = SweepSpec(
            workloads=(WORKLOAD,),
            topologies=(TOPOLOGY,),
            bandwidths_gbps=(100.0, 300.0),
        )
        service = LibraService()
        cold = service.submit(BatchRequest(spec=spec))
        assert cold.sweep.solver_calls == 2
        warm = service.submit(BatchRequest(spec=spec))
        assert warm.sweep.solver_calls == 0
        assert warm.sweep.cache_hits == 2
        # ...but a fresh service starts cold.
        other = LibraService().submit(BatchRequest(spec=spec))
        assert other.sweep.solver_calls == 2

    def test_batch_rows_match_single_requests(self):
        spec = SweepSpec(
            workloads=(WORKLOAD,),
            topologies=(TOPOLOGY,),
            bandwidths_gbps=(300.0,),
        )
        service = LibraService()
        batch = service.submit(BatchRequest(spec=spec))
        single = service.submit(
            OptimizeRequest(
                scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
            )
        )
        row = batch.sweep.results[0]
        assert row.bandwidths_gbps == single.point.bandwidths_gbps()
        assert row.speedup_over_equal == single.speedup_over_baseline

    def test_bad_worker_count(self):
        spec = SweepSpec(
            workloads=(WORKLOAD,), topologies=(TOPOLOGY,), bandwidths_gbps=(100.0,)
        )
        with pytest.raises(ConfigurationError, match="workers"):
            BatchRequest(spec=spec, workers=0)


class TestContinuationMemo:
    """The per-engine solution memo behind ``warm_start='auto'``."""

    def test_cold_requests_never_read_the_memo(self):
        """Default requests are cold: diagnostics say so even after the
        memo has entries for the family."""
        service = LibraService()
        service.submit(OptimizeRequest(
            scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        ))
        second = service.submit(OptimizeRequest(
            scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=400)
        ))
        assert second.diagnostics["warm_start"] == "cold"
        assert second.diagnostics["warm_source"] == "none"

    def test_auto_warm_start_hits_family_memo(self):
        service = LibraService()
        cold = service.submit(OptimizeRequest(
            scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        ))
        assert service.solution_count == 1
        warm = service.submit(OptimizeRequest(
            scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=400),
            warm_start=WARM_START_AUTO,
        ))
        assert warm.diagnostics["warm_source"] == "memo-hit"
        assert warm.diagnostics["warm_start"] in ("accepted", "cold") or (
            warm.diagnostics["warm_start"].startswith("rejected")
        )
        # Same family as the cold solve: budget differs, caps do not.
        cold_check = LibraService().submit(OptimizeRequest(
            scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=400)
        ))
        assert (
            warm.point.weighted_step_time
            <= cold_check.point.weighted_step_time * 1.02
        )
        assert cold.diagnostics["warm_source"] == "none"

    def test_auto_without_prior_solution_is_a_memo_miss(self):
        service = LibraService()
        response = service.submit(OptimizeRequest(
            scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300),
            warm_start=WARM_START_AUTO,
        ))
        assert response.diagnostics["warm_source"] == "memo-miss"
        assert response.diagnostics["warm_start"] == "cold"

    def test_memo_is_scheme_scoped(self):
        service = LibraService()
        service.submit(OptimizeRequest(
            scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300),
            scheme=Scheme.PERF_OPT,
        ))
        other_scheme = service.submit(OptimizeRequest(
            scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=400),
            scheme=Scheme.PERF_PER_COST_OPT,
            warm_start=WARM_START_AUTO,
        ))
        assert other_scheme.diagnostics["warm_source"] == "memo-miss"

    def test_memo_is_family_scoped(self):
        """A capped constraint set is a different continuation family."""
        service = LibraService()
        service.submit(OptimizeRequest(
            scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        ))
        capped = service.submit(OptimizeRequest(
            scenario=build_scenario(
                TOPOLOGY, [WORKLOAD], total_bw_gbps=400,
                dim_caps_gbps=[(1, 60.0)],
            ),
            warm_start=WARM_START_AUTO,
        ))
        assert capped.diagnostics["warm_source"] == "memo-miss"

    def test_memo_bounded_by_lru(self):
        service = LibraService(max_solutions=1)
        service.submit(OptimizeRequest(
            scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300),
            scheme=Scheme.PERF_OPT,
        ))
        service.submit(OptimizeRequest(
            scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300),
            scheme=Scheme.PERF_PER_COST_OPT,
        ))
        assert service.solution_count == 1

    def test_clear_drops_solutions(self):
        service = LibraService()
        service.submit(OptimizeRequest(
            scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        ))
        assert service.solution_count == 1
        service.clear()
        assert service.solution_count == 0

    def test_explicit_warm_start_round_trips_through_solver(self):
        service = LibraService()
        prior = service.submit(OptimizeRequest(
            scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        ))
        warm = service.submit(OptimizeRequest(
            scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=400),
            warm_start=prior.point.bandwidths_gbps(),
        ))
        assert warm.diagnostics["warm_source"] == "explicit"

    def test_evaluation_and_equal_bw_have_no_diagnostics(self):
        service = LibraService()
        scenario = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        evaluated = service.submit(
            OptimizeRequest(scenario=scenario, bandwidths_gbps=(200, 100))
        )
        assert evaluated.diagnostics is None
        equal = service.submit(
            OptimizeRequest(scenario=scenario, scheme=Scheme.EQUAL_BW)
        )
        assert equal.diagnostics is None

    def test_diagnostics_serialize(self):
        service = LibraService()
        response = service.submit(OptimizeRequest(
            scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300),
            max_starts=2,
        ))
        payload = json.loads(json.dumps(response.to_dict()))
        assert payload["diagnostics"]["starts"] <= 2
        assert payload["diagnostics"]["max_starts"] == 2
        rebuilt = OptimizeResponse.from_dict(payload)
        assert rebuilt.diagnostics == payload["diagnostics"]


class TestConstraintFamilyKey:
    def test_budget_is_excluded_from_the_family(self):
        from repro.api.service import constraint_family_key
        from repro.core import ConstraintSet

        low = ConstraintSet(2).with_total_bandwidth(gbps(300))
        high = ConstraintSet(2).with_total_bandwidth(gbps(1000))
        assert constraint_family_key(low) == constraint_family_key(high)

    def test_caps_and_orderings_split_families(self):
        from repro.api.service import constraint_family_key
        from repro.core import ConstraintSet

        plain = ConstraintSet(2).with_total_bandwidth(gbps(300))
        capped = (
            ConstraintSet(2)
            .with_total_bandwidth(gbps(300))
            .with_dim_cap(1, gbps(60))
        )
        ordered = (
            ConstraintSet(2)
            .with_total_bandwidth(gbps(300))
            .with_ordering([0, 1])
        )
        keys = {
            constraint_family_key(c) for c in (plain, capped, ordered)
        }
        assert len(keys) == 3

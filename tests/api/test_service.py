"""LibraService dispatch, engine memoization, and facade equivalence."""

import json

import pytest

from repro.api.requests import (
    RESPONSE_SCHEMA_VERSION,
    BatchRequest,
    OptimizeRequest,
    OptimizeResponse,
)
from repro.api.scenario import build_scenario
from repro.api.service import LibraService, get_service
from repro.core import Libra, Scheme
from repro.explore.spec import SweepSpec
from repro.topology.network import MultiDimNetwork
from repro.utils import gbps
from repro.utils.errors import ConfigurationError, OptimizationError
from repro.workloads import build_workload

TOPOLOGY = "RI(3)_RI(2)"
WORKLOAD = "Turing-NLG"


def _facade(constraint_builder):
    network = MultiDimNetwork.from_notation(TOPOLOGY)
    libra = Libra(network)
    libra.add_workload(build_workload(WORKLOAD, network.num_npus))
    return libra, constraint_builder(libra.constraints())


CONSTRAINT_VARIANTS = {
    "budget": lambda c: c.with_total_bandwidth(gbps(300)),
    "budget+cap": lambda c: c.with_total_bandwidth(gbps(300)).with_dim_cap(
        1, gbps(60)
    ),
    "budget+ordering": lambda c: c.with_total_bandwidth(gbps(300)).with_ordering(
        [0, 1]
    ),
}


class TestFacadeEquivalence:
    """`submit()` must be bit-identical to the `Libra.optimize` path."""

    @pytest.mark.parametrize("scheme", [Scheme.PERF_OPT, Scheme.PERF_PER_COST_OPT])
    @pytest.mark.parametrize("variant", sorted(CONSTRAINT_VARIANTS))
    def test_bit_identical_bandwidths(self, scheme, variant):
        libra, constraints = _facade(CONSTRAINT_VARIANTS[variant])
        expected = libra.optimize(scheme, constraints)

        scenario = build_scenario(
            TOPOLOGY,
            [WORKLOAD],
            constraints=CONSTRAINT_VARIANTS[variant](
                libra.constraints()
            ),
        )
        response = LibraService().submit(
            OptimizeRequest(scenario=scenario, scheme=scheme)
        )
        assert response.point.bandwidths == expected.bandwidths
        assert response.point.step_times == expected.step_times
        assert response.point.network_cost == expected.network_cost

    def test_equal_bw_request(self):
        libra, constraints = _facade(CONSTRAINT_VARIANTS["budget"])
        expected = libra.equal_bw_point(gbps(300))
        scenario = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        response = LibraService().submit(
            OptimizeRequest(scenario=scenario, scheme=Scheme.EQUAL_BW)
        )
        assert response.point.bandwidths == expected.bandwidths
        assert response.speedup_over_baseline == 1.0

    def test_explicit_evaluation_request(self):
        libra, _ = _facade(CONSTRAINT_VARIANTS["budget"])
        expected = libra.evaluate([gbps(200), gbps(100)])
        scenario = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        response = LibraService().submit(
            OptimizeRequest(scenario=scenario, bandwidths_gbps=(200, 100))
        )
        assert response.point.bandwidths == expected.bandwidths
        assert response.point.step_times == expected.step_times


class TestResponses:
    def test_response_is_json_dumpable(self):
        scenario = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        response = LibraService().submit(OptimizeRequest(scenario=scenario))
        payload = response.to_dict()
        rebuilt = OptimizeResponse.from_dict(json.loads(json.dumps(payload)))
        assert rebuilt.point.bandwidths == response.point.bandwidths
        assert payload["schema_version"] == RESPONSE_SCHEMA_VERSION

    def test_request_round_trips(self):
        scenario = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        request = OptimizeRequest(
            scenario=scenario, scheme="perf-per-cost", kernel="closures"
        )
        rebuilt = OptimizeRequest.from_dict(json.loads(json.dumps(request.to_dict())))
        assert rebuilt.scenario.key() == scenario.key()
        assert rebuilt.scheme is Scheme.PERF_PER_COST_OPT
        assert rebuilt.kernel == "closures"

    def test_baseline_omitted_on_request(self):
        scenario = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        response = LibraService().submit(
            OptimizeRequest(scenario=scenario, include_baseline=False)
        )
        assert response.baseline is None
        assert response.speedup_over_baseline is None

    def test_constraintless_scenario_needs_bandwidths(self):
        scenario = build_scenario(TOPOLOGY, [WORKLOAD])
        with pytest.raises(ConfigurationError, match="no constraints"):
            OptimizeRequest(scenario=scenario)
        # ...but an explicit evaluation is fine.
        response = LibraService().submit(
            OptimizeRequest(scenario=scenario, bandwidths_gbps=(100, 100))
        )
        assert response.baseline is None

    def test_equal_bw_without_budget_rejected(self):
        scenario = build_scenario(TOPOLOGY, [WORKLOAD])
        with pytest.raises(OptimizationError, match="total-bandwidth budget"):
            LibraService._budget(scenario)

    def test_wrong_bandwidth_count_rejected(self):
        scenario = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        with pytest.raises(ConfigurationError, match="expected 2 bandwidths"):
            OptimizeRequest(scenario=scenario, bandwidths_gbps=(100,))

    def test_unknown_request_type(self):
        with pytest.raises(ConfigurationError, match="unknown request type"):
            LibraService().submit(object())


class TestMemoization:
    def test_engine_memoized_on_canonical_key(self):
        service = LibraService()
        a = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        b = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        assert service.engine(a) is service.engine(b)
        assert service.compiled_count == 1

    def test_budget_cells_share_one_engine(self):
        """Constraints are applied per request, not compiled in — sweep
        columns differing only in budget must reuse one engine."""
        service = LibraService()
        a = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        b = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=400)
        assert a.key() != b.key()
        assert a.engine_key() == b.engine_key()
        assert service.engine(a) is service.engine(b)
        assert service.compiled_count == 1

    def test_distinct_problems_get_distinct_engines(self):
        service = LibraService()
        a = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        b = build_scenario(
            TOPOLOGY, [WORKLOAD], total_bw_gbps=300, loop="tp-dp-overlap"
        )
        assert service.engine(a) is not service.engine(b)
        assert service.compiled_count == 2

    def test_lru_eviction(self):
        service = LibraService(max_compiled=1)
        a = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
        b = build_scenario(
            TOPOLOGY, [WORKLOAD], total_bw_gbps=300, loop="tp-dp-overlap"
        )
        first = service.engine(a)
        service.engine(b)
        assert service.compiled_count == 1
        assert service.engine(a) is not first  # evicted, recompiled

    def test_clear(self):
        service = LibraService()
        service.engine(build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300))
        service.clear()
        assert service.compiled_count == 0

    def test_default_service_is_shared(self):
        assert get_service() is get_service()


class TestBatch:
    def test_batch_routes_through_explore_cache(self, tmp_path):
        spec = SweepSpec(
            workloads=(WORKLOAD,),
            topologies=(TOPOLOGY,),
            bandwidths_gbps=(100.0, 300.0),
        )
        service = LibraService()
        cold = service.submit(
            BatchRequest(spec=spec, cache_dir=str(tmp_path / "cache"))
        )
        assert cold.sweep.solver_calls == 2
        assert cold.sweep.num_errors == 0
        warm = service.submit(
            BatchRequest(spec=spec, cache_dir=str(tmp_path / "cache"))
        )
        assert warm.sweep.solver_calls == 0
        assert warm.sweep.cache_hits == 2
        assert json.dumps(warm.to_dict())

    def test_in_memory_batch_cache_is_per_service(self):
        """Without cache_dir, repeat submissions against one service reuse
        solved cells (the documented per-service in-memory cache)."""
        spec = SweepSpec(
            workloads=(WORKLOAD,),
            topologies=(TOPOLOGY,),
            bandwidths_gbps=(100.0, 300.0),
        )
        service = LibraService()
        cold = service.submit(BatchRequest(spec=spec))
        assert cold.sweep.solver_calls == 2
        warm = service.submit(BatchRequest(spec=spec))
        assert warm.sweep.solver_calls == 0
        assert warm.sweep.cache_hits == 2
        # ...but a fresh service starts cold.
        other = LibraService().submit(BatchRequest(spec=spec))
        assert other.sweep.solver_calls == 2

    def test_batch_rows_match_single_requests(self):
        spec = SweepSpec(
            workloads=(WORKLOAD,),
            topologies=(TOPOLOGY,),
            bandwidths_gbps=(300.0,),
        )
        service = LibraService()
        batch = service.submit(BatchRequest(spec=spec))
        single = service.submit(
            OptimizeRequest(
                scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
            )
        )
        row = batch.sweep.results[0]
        assert row.bandwidths_gbps == single.point.bandwidths_gbps()
        assert row.speedup_over_equal == single.speedup_over_baseline

    def test_bad_worker_count(self):
        spec = SweepSpec(
            workloads=(WORKLOAD,), topologies=(TOPOLOGY,), bandwidths_gbps=(100.0,)
        )
        with pytest.raises(ConfigurationError, match="workers"):
            BatchRequest(spec=spec, workers=0)

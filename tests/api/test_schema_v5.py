"""Schema v5: the costrategy request kind and v4 envelope up-conversion."""

import json

import pytest

from repro.api.requests import (
    REQUEST_KINDS,
    REQUEST_SCHEMA_VERSION,
    RESPONSE_SCHEMA_VERSION,
    AnalyzeRequest,
    CostrategyRequest,
    CostrategyResponse,
    OptimizeRequest,
    request_from_dict,
    request_kind,
    request_to_dict,
)
from repro.api.scenario import build_scenario
from repro.api.service import LibraService
from repro.core.results import Scheme
from repro.strategy import StrategySpace
from repro.utils.errors import ConfigurationError

TOPOLOGY = "Google TPUv2"  # 8 NPUs — a two-strategy space at max_tp=2
WORKLOAD = "Turing-NLG"


def _costrategy_request(**kwargs):
    kwargs.setdefault("budgets_gbps", (100.0, 200.0))
    kwargs.setdefault("space", StrategySpace(max_tp=2))
    return CostrategyRequest(workload=WORKLOAD, topology=TOPOLOGY, **kwargs)


class TestCostrategyRequestEnvelope:
    def test_costrategy_is_a_request_kind(self):
        assert "costrategy" in REQUEST_KINDS
        assert request_kind(_costrategy_request()) == "costrategy"

    def test_round_trip(self):
        request = _costrategy_request(
            scheme=Scheme.PERF_OPT,
            dim_caps_gbps=((0, 150.0),),
            cache_dir="warm-strategies",
            cross_warm=False,
            attribution=False,
        )
        envelope = request_to_dict(request)
        assert envelope["schema_version"] == REQUEST_SCHEMA_VERSION
        assert envelope["kind"] == "costrategy"
        parsed = request_from_dict(json.loads(json.dumps(envelope)))
        assert isinstance(parsed, CostrategyRequest)
        assert parsed.budgets_gbps == (100.0, 200.0)
        assert parsed.space == StrategySpace(max_tp=2)
        assert parsed.dim_caps_gbps == ((0, 150.0),)
        assert parsed.cache_dir == "warm-strategies"
        assert parsed.cross_warm is False and parsed.attribution is False
        assert request_to_dict(parsed) == envelope

    def test_default_space_round_trips_as_null(self):
        request = CostrategyRequest(
            workload=WORKLOAD, topology=TOPOLOGY, budgets_gbps=(300.0,)
        )
        envelope = request_to_dict(request)
        assert envelope["request"]["space"] is None
        parsed = request_from_dict(envelope)
        assert parsed.space is None

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="workload preset"):
            CostrategyRequest(
                workload="", topology=TOPOLOGY, budgets_gbps=(100.0,)
            )
        with pytest.raises(ConfigurationError, match="topology preset"):
            CostrategyRequest(
                workload=WORKLOAD, topology="", budgets_gbps=(100.0,)
            )
        with pytest.raises(ConfigurationError, match="at least one"):
            CostrategyRequest(
                workload=WORKLOAD, topology=TOPOLOGY, budgets_gbps=()
            )
        with pytest.raises(ConfigurationError, match="must be positive"):
            _costrategy_request(budgets_gbps=(100.0, -5.0))
        with pytest.raises(ConfigurationError, match="caps must be positive"):
            _costrategy_request(dim_caps_gbps=((0, -1.0),))

    def test_malformed_payload_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed costrategy"):
            CostrategyRequest.from_dict({"workload": WORKLOAD})

    def test_rules_bearing_space_cannot_cross_the_wire(self):
        request = _costrategy_request(
            space=StrategySpace(rules=(lambda s: "",))
        )
        with pytest.raises(ConfigurationError, match="cannot be serialized"):
            request_to_dict(request)


class TestV4UpConversion:
    """v4 envelopes (and older bare payloads) still parse under v5."""

    def test_v4_optimize_envelope(self):
        scenario = build_scenario(
            "RI(3)_RI(2)", [WORKLOAD], total_bw_gbps=300
        )
        envelope = request_to_dict(OptimizeRequest(scenario=scenario))
        envelope["schema_version"] = 4
        assert isinstance(request_from_dict(envelope), OptimizeRequest)

    def test_v4_analyze_envelope(self):
        scenario = build_scenario(
            "RI(3)_RI(2)", [WORKLOAD], total_bw_gbps=300
        )
        envelope = request_to_dict(AnalyzeRequest(scenario=scenario))
        envelope["schema_version"] = 4
        assert isinstance(request_from_dict(envelope), AnalyzeRequest)

    def test_v4_costrategy_envelope(self):
        """costrategy itself tolerates a v4 stamp: the envelope codec is
        shared, and the body shape is version-independent."""
        envelope = request_to_dict(_costrategy_request())
        envelope["schema_version"] = 4
        assert isinstance(request_from_dict(envelope), CostrategyRequest)

    def test_future_version_rejected(self):
        envelope = request_to_dict(_costrategy_request())
        envelope["schema_version"] = 99
        with pytest.raises(ConfigurationError, match="schema version"):
            request_from_dict(envelope)


class TestCostrategyResponse:
    @pytest.fixture(scope="class")
    def service(self):
        return LibraService()

    @pytest.fixture(scope="class")
    def response(self, service):
        return service.submit(_costrategy_request())

    def test_round_trip(self, response):
        payload = json.loads(json.dumps(response.to_dict()))
        assert payload["schema_version"] == RESPONSE_SCHEMA_VERSION
        restored = CostrategyResponse.from_dict(payload)
        assert restored.to_dict() == response.to_dict()

    def test_pre_v5_payload_rejected(self, response):
        """The costrategy shape's first version is v5 — no older payload
        of it can exist."""
        payload = response.to_dict()
        payload["schema_version"] = 4
        with pytest.raises(ConfigurationError, match="schema version"):
            CostrategyResponse.from_dict(payload)

    def test_service_dispatch_builds_the_frontier(self, response):
        frontier = response.frontier
        assert frontier.workload == WORKLOAD
        assert frontier.topology == TOPOLOGY
        assert tuple(
            cell.budget_gbps for cell in frontier.best_per_budget
        ) == (100.0, 200.0)
        assert len(frontier.runs) == 2
        assert frontier.diagnostics["cells"] == 4
        assert frontier.attributions  # attribution=True by default

    def test_repeat_submit_is_cache_served(self, service, response):
        """The service's shared batch cache replays the whole grid —
        bit-identical rows, zero fresh solves."""
        again = service.submit(_costrategy_request())
        diagnostics = again.frontier.diagnostics
        assert diagnostics["cached"] == 4
        assert diagnostics["solved"] == 0

        def rows(frontier):
            normalized = []
            for row in frontier.rows():
                payload = row.to_dict()
                payload.pop("from_cache", None)  # provenance, not physics
                normalized.append(payload)
            return normalized

        assert rows(again.frontier) == rows(response.frontier)

"""Scenario round-trips, validation, and facade equivalence."""

import json

import pytest

from repro.api.scenario import (
    SCENARIO_SCHEMA_VERSION,
    Scenario,
    ScenarioValidationError,
    ScenarioWorkload,
    build_scenario,
    load_scenario,
    save_scenario,
)
from repro.core import Libra
from repro.core.constraints import ConstraintSet
from repro.core.results import Scheme
from repro.topology.presets import (
    EVALUATION_TOPOLOGIES,
    REAL_SYSTEM_TOPOLOGIES,
    get_topology,
)
from repro.training.compute import ComputeModel
from repro.training.loops import TPDPOverlapLoop
from repro.utils import gbps
from repro.utils.errors import ConfigurationError
from repro.workloads import DEFAULT_AXES, TP_SIZES, build_workload, workload_names


def _valid_combos():
    """Every preset topology × Table II workload whose inner degrees fit."""
    combos = []
    for topology in list(EVALUATION_TOPOLOGIES) + list(REAL_SYSTEM_TOPOLOGIES):
        num_npus = get_topology(topology).num_npus
        for workload in workload_names():
            cp, ep = DEFAULT_AXES.get(workload, (1, 1))
            inner = TP_SIZES[workload] * cp * ep
            if num_npus % inner == 0 and num_npus > inner:
                combos.append((topology, workload))
    return combos


class TestRoundTrip:
    @pytest.mark.parametrize("topology,workload", _valid_combos())
    def test_every_preset_combo_round_trips(self, topology, workload):
        scenario = build_scenario(topology, [workload], total_bw_gbps=500)
        payload = scenario.to_dict()
        # The payload must be plain JSON, not merely dict-shaped.
        rebuilt = Scenario.from_dict(json.loads(json.dumps(payload)))
        assert rebuilt.key() == scenario.key()
        # Identical design point through the facade path at the same split.
        split = [gbps(500) / scenario.network.num_dims] * scenario.network.num_dims
        facade = Libra(scenario.network)
        facade.add_workload(build_workload(workload, scenario.network.num_npus))
        assert rebuilt.compile().evaluate(split) == facade.evaluate(split)

    def test_inline_workload_round_trips(self):
        from repro.topology.network import MultiDimNetwork

        concrete = build_workload("Turing-NLG", 6)
        scenario = Scenario(
            network=MultiDimNetwork.from_notation("RI(3)_RI(2)"),
            workloads=(ScenarioWorkload(workload=concrete, weight=2.0),),
        )
        payload = scenario.to_dict()
        assert "inline" in payload["workloads"][0]
        rebuilt = Scenario.from_dict(json.loads(json.dumps(payload)))
        assert rebuilt.key() == scenario.key()
        assert rebuilt.workloads[0].weight == 2.0

    def test_constraints_and_models_round_trip(self):
        constraints = (
            ConstraintSet(2)
            .with_total_bandwidth(gbps(300))
            .with_dim_cap(1, gbps(100))
            .with_ordering([0, 1])
        )
        scenario = build_scenario(
            "RI(3)_RI(2)",
            ["Turing-NLG"],
            constraints=constraints,
            compute_model=ComputeModel(peak_flops=1e15, efficiency=0.5, name="X"),
            loop=TPDPOverlapLoop.name,
            in_network_dims=(0,),
        )
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt.key() == scenario.key()
        assert rebuilt.constraints.canonical() == constraints.canonical()
        assert rebuilt.compute_model.name == "X"
        assert rebuilt.loop == TPDPOverlapLoop.name
        assert rebuilt.in_network_dims == (0,)

    def test_registry_name_shorthand(self):
        """Hand-written files may name cost/compute models instead of
        embedding them."""
        payload = build_scenario(
            "RI(3)_RI(2)", ["Turing-NLG"], total_bw_gbps=300
        ).to_dict()
        payload["cost_model"] = "table1-default"
        payload["compute_model"] = "A100-75pct"
        scenario = Scenario.from_dict(payload)
        assert scenario.cost_model.name == "table1-default"
        assert scenario.compute_model.name == "A100-75pct"

    def test_file_round_trip(self, tmp_path):
        scenario = build_scenario("RI(3)_RI(2)", ["Turing-NLG"], total_bw_gbps=300)
        path = tmp_path / "s.json"
        save_scenario(scenario, path)
        assert load_scenario(path).key() == scenario.key()


class TestIdentity:
    def test_key_ignores_display_names(self):
        from repro.topology.network import MultiDimNetwork

        a = build_scenario("3D-512", ["Turing-NLG"], total_bw_gbps=300)
        renamed = MultiDimNetwork.from_notation(
            "SW(16)_SW(8)_SW(4)", name="something-else"
        )
        b = build_scenario(renamed, ["Turing-NLG"], total_bw_gbps=300)
        assert a.key() == b.key()

    def test_key_tracks_problem_changes(self):
        base = build_scenario("RI(3)_RI(2)", ["Turing-NLG"], total_bw_gbps=300)
        keys = {
            base.key(),
            build_scenario("RI(3)_RI(2)", ["Turing-NLG"], total_bw_gbps=400).key(),
            build_scenario(
                "RI(3)_RI(2)", ["Turing-NLG"], total_bw_gbps=300,
                loop="tp-dp-overlap",
            ).key(),
            build_scenario(
                "RI(3)_RI(2)", ["Turing-NLG"], total_bw_gbps=300,
                in_network_dims=(0,),
            ).key(),
            build_scenario(
                "RI(3)_RI(2)", [("Turing-NLG", 2.0)], total_bw_gbps=300
            ).key(),
        }
        assert len(keys) == 5

    def test_preset_and_inline_share_identity(self):
        """How a workload was specified must not change the key."""
        preset = build_scenario("RI(3)_RI(2)", ["Turing-NLG"], total_bw_gbps=300)
        inline = build_scenario(
            "RI(3)_RI(2)", [build_workload("Turing-NLG", 6)], total_bw_gbps=300
        )
        assert preset.key() == inline.key()


class TestValidation:
    def _payload(self):
        return build_scenario(
            "RI(3)_RI(2)", ["Turing-NLG"], total_bw_gbps=300
        ).to_dict()

    def test_missing_schema_version(self):
        payload = self._payload()
        del payload["schema_version"]
        with pytest.raises(ScenarioValidationError, match="schema_version"):
            Scenario.from_dict(payload)

    def test_newer_schema_version_rejected(self):
        payload = self._payload()
        payload["schema_version"] = SCENARIO_SCHEMA_VERSION + 1
        with pytest.raises(ScenarioValidationError, match="unsupported version"):
            Scenario.from_dict(payload)

    def test_error_paths_locate_the_field(self):
        payload = self._payload()
        payload["workloads"][0] = {"weight": -1, "preset": "Turing-NLG"}
        with pytest.raises(ScenarioValidationError, match=r"workloads\[0\].weight"):
            Scenario.from_dict(payload)

    def test_bad_network_notation(self):
        payload = self._payload()
        payload["network"]["notation"] = "XX(3)"
        with pytest.raises(ScenarioValidationError, match="network"):
            Scenario.from_dict(payload)

    def test_bad_tier_name(self):
        payload = self._payload()
        payload["network"]["tiers"] = ["node", "warehouse"]
        with pytest.raises(ScenarioValidationError, match="network.tiers"):
            Scenario.from_dict(payload)

    def test_workload_entry_needs_preset_or_inline(self):
        payload = self._payload()
        payload["workloads"][0] = {"weight": 1.0}
        with pytest.raises(ScenarioValidationError, match="preset.*or.*inline"):
            Scenario.from_dict(payload)

    def test_npu_mismatch_is_configuration_error(self):
        with pytest.raises(ConfigurationError, match="NPUs"):
            Scenario(
                network=get_topology("3D-512"),
                workloads=(
                    ScenarioWorkload(workload=build_workload("Turing-NLG", 6)),
                ),
            )

    def test_unknown_loop(self):
        with pytest.raises(ConfigurationError, match="training loop"):
            build_scenario(
                "RI(3)_RI(2)", ["Turing-NLG"], total_bw_gbps=300, loop="warp"
            )

    def test_constraint_dims_must_match(self):
        with pytest.raises(ConfigurationError, match="dims"):
            build_scenario(
                "RI(3)_RI(2)",
                ["Turing-NLG"],
                constraints=ConstraintSet(3).with_total_bandwidth(gbps(300)),
            )

    def test_in_network_dim_out_of_range(self):
        with pytest.raises(ConfigurationError, match="in-network dim"):
            build_scenario(
                "RI(3)_RI(2)", ["Turing-NLG"], total_bw_gbps=300,
                in_network_dims=(5,),
            )

    def test_needs_at_least_one_workload(self):
        with pytest.raises(ConfigurationError, match="at least one workload"):
            build_scenario("RI(3)_RI(2)", [], total_bw_gbps=300)

    def test_caps_require_budget(self):
        with pytest.raises(ConfigurationError, match="requires total_bw_gbps"):
            build_scenario("RI(3)_RI(2)", ["Turing-NLG"], dim_caps_gbps=[(0, 50)])


class TestEqualBwScheme:
    def test_scheme_enum_unchanged(self):
        # The API reuses the paper's scheme enum; guard its spellings since
        # scenario files and response payloads embed them.
        assert {s.value for s in Scheme} == {
            "EqualBW", "PerfOptBW", "PerfPerCostOptBW",
        }

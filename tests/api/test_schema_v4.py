"""Schema v4: the analyze request kind and v3 envelope up-conversion."""

import json

import pytest

from repro.analysis import WhatIfQuery
from repro.api.requests import (
    REQUEST_KINDS,
    REQUEST_SCHEMA_VERSION,
    RESPONSE_SCHEMA_VERSION,
    AnalyzeRequest,
    AnalyzeResponse,
    BatchRequest,
    OptimizeRequest,
    request_from_dict,
    request_kind,
    request_to_dict,
)
from repro.api.scenario import build_scenario
from repro.api.service import LibraService
from repro.core.results import Scheme
from repro.explore.spec import ExplorationPoint
from repro.utils.errors import AnalysisCacheMiss, ConfigurationError

TOPOLOGY = "RI(3)_RI(2)"
WORKLOAD = "Turing-NLG"


def _scenario():
    return build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)


def _cell():
    return ExplorationPoint(WORKLOAD, "3D-512", 300.0, Scheme.PERF_OPT)


class TestAnalyzeRequestEnvelope:
    def test_analyze_is_a_request_kind(self):
        assert "analyze" in REQUEST_KINDS
        assert request_kind(AnalyzeRequest(scenario=_scenario())) == "analyze"

    def test_scenario_target_round_trip(self):
        request = AnalyzeRequest(
            scenario=_scenario(),
            bandwidths_gbps=(240.0, 60.0),
            queries=(
                WhatIfQuery(op="scale", dim=0, factor=1.2),
                WhatIfQuery(op="move", source=0, target=1, delta_gbps=10.0),
            ),
        )
        envelope = request_to_dict(request)
        assert envelope["schema_version"] == REQUEST_SCHEMA_VERSION
        assert envelope["kind"] == "analyze"
        parsed = request_from_dict(json.loads(json.dumps(envelope)))
        assert isinstance(parsed, AnalyzeRequest)
        assert parsed.bandwidths_gbps == (240.0, 60.0)
        assert parsed.queries == request.queries
        assert request_to_dict(parsed) == envelope

    def test_cell_target_round_trip(self):
        request = AnalyzeRequest(cell=_cell(), cache_dir="warm-cells")
        parsed = request_from_dict(
            json.loads(json.dumps(request_to_dict(request)))
        )
        assert isinstance(parsed, AnalyzeRequest)
        assert parsed.cell == _cell()
        assert parsed.cache_dir == "warm-cells"
        assert parsed.scenario is None

    def test_needs_exactly_one_target(self):
        with pytest.raises(ConfigurationError, match="exactly one target"):
            AnalyzeRequest()
        with pytest.raises(ConfigurationError, match="exactly one target"):
            AnalyzeRequest(scenario=_scenario(), cell=_cell())

    def test_bandwidths_validated_against_scenario(self):
        with pytest.raises(ConfigurationError, match="expected 2 bandwidths"):
            AnalyzeRequest(scenario=_scenario(), bandwidths_gbps=(1.0,))
        with pytest.raises(ConfigurationError, match="positive"):
            AnalyzeRequest(scenario=_scenario(), bandwidths_gbps=(-1.0, 2.0))
        with pytest.raises(ConfigurationError, match="require a scenario"):
            AnalyzeRequest(cell=_cell(), bandwidths_gbps=(1.0, 2.0))

    def test_queries_must_be_whatif_values(self):
        with pytest.raises(ConfigurationError, match="WhatIfQuery"):
            AnalyzeRequest(scenario=_scenario(), queries=("scale dim0",))


class TestV3UpConversion:
    """v3 envelopes (and older bare payloads) still parse under v4."""

    def test_v3_optimize_envelope(self):
        envelope = request_to_dict(OptimizeRequest(scenario=_scenario()))
        envelope["schema_version"] = 3
        parsed = request_from_dict(envelope)
        assert isinstance(parsed, OptimizeRequest)

    def test_v3_batch_envelope(self):
        from repro.explore.spec import SweepSpec

        request = BatchRequest(
            spec=SweepSpec(
                workloads=(WORKLOAD,), topologies=(TOPOLOGY,),
                bandwidths_gbps=(300.0,),
            )
        )
        envelope = request_to_dict(request)
        envelope["schema_version"] = 3
        parsed = request_from_dict(envelope)
        assert isinstance(parsed, BatchRequest)

    def test_bare_optimize_payload_still_sniffs(self):
        payload = OptimizeRequest(scenario=_scenario()).to_dict()
        del payload["schema_version"]
        assert isinstance(request_from_dict(payload), OptimizeRequest)

    def test_future_version_rejected(self):
        envelope = request_to_dict(AnalyzeRequest(scenario=_scenario()))
        envelope["schema_version"] = 99
        with pytest.raises(ConfigurationError, match="schema version"):
            request_from_dict(envelope)


class TestAnalyzeResponse:
    def _response(self):
        return LibraService().submit(AnalyzeRequest(scenario=_scenario()))

    def test_round_trip(self):
        response = self._response()
        payload = json.loads(json.dumps(response.to_dict()))
        assert payload["schema_version"] == RESPONSE_SCHEMA_VERSION
        restored = AnalyzeResponse.from_dict(payload)
        assert restored.to_dict() == response.to_dict()
        assert restored.source == "solve"
        assert restored.report.binding_dims == response.report.binding_dims

    def test_pre_v4_payload_rejected(self):
        """The analyze shape's first version is v4 — no v3 payload of it
        can exist, so older versions are rejected outright."""
        payload = self._response().to_dict()
        payload["schema_version"] = 3
        with pytest.raises(ConfigurationError, match="schema version"):
            AnalyzeResponse.from_dict(payload)


class TestServiceAnalyzeMemo:
    def test_repeat_submit_is_memo_served(self):
        service = LibraService()
        request = AnalyzeRequest(scenario=_scenario())
        first = service.submit(request)
        second = service.submit(request)
        assert not first.memo_hit
        assert second.memo_hit
        assert second.report.to_dict() == first.report.to_dict()

    def test_cell_miss_is_read_only(self):
        service = LibraService()
        with pytest.raises(AnalysisCacheMiss, match="read-only"):
            service.submit(AnalyzeRequest(cell=_cell()))

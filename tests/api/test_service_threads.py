"""LibraService memo thread-safety (the worker-pool precondition)."""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.api.requests import OptimizeRequest, WARM_START_AUTO
from repro.api.scenario import build_scenario
from repro.api.service import LibraService

TOPOLOGY = "RI(3)_RI(2)"
WORKLOAD = "Turing-NLG"


def _request(total_bw):
    return OptimizeRequest(
        scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=total_bw)
    )


class TestConcurrentSubmit:
    def test_concurrent_submits_are_bit_identical_to_serial(self):
        budgets = [100, 200, 300, 400]
        serial = {b: LibraService().submit(_request(b)).to_dict() for b in budgets}

        service = LibraService()
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = {
                b: pool.submit(service.submit, _request(b))
                for b in budgets * 2  # every budget raced by two threads
            }
            concurrent = {b: f.result().to_dict() for b, f in futures.items()}
        for budget in budgets:
            assert concurrent[budget] == serial[budget]
        # All budgets share one engine (constraints are not part of the key).
        assert service.compiled_count == 1

    def test_engine_memo_bound_respected_under_contention(self):
        # 4 distinct engines racing into a 2-slot memo from 8 threads: the
        # bound must hold and every response must still be produced.
        service = LibraService(max_compiled=2)
        scenarios = [
            build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300),
            build_scenario("RI(2)_RI(3)", [WORKLOAD], total_bw_gbps=300),
            build_scenario("RI(6)", [WORKLOAD], total_bw_gbps=300),
            build_scenario("RI(3)_RI(2)", [WORKLOAD], total_bw_gbps=300,
                           loop="tp-dp-overlap"),
        ]
        barrier = threading.Barrier(8)

        def run(scenario):
            barrier.wait()
            return service.submit(OptimizeRequest(scenario=scenario))

        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [pool.submit(run, s) for s in scenarios * 2]
            responses = [f.result() for f in futures]
        assert len(responses) == 8
        assert service.compiled_count <= 2

    def test_solution_memo_bound_respected_under_contention(self):
        service = LibraService(max_solutions=3)
        budgets = [100, 150, 200, 250, 300, 350, 400, 450]
        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(lambda b: service.submit(_request(b)), budgets))
        assert service.solution_count <= 3

    def test_warm_memo_recall_is_consistent_under_threads(self):
        service = LibraService()
        service.submit(_request(300))  # seed the solution memo
        with ThreadPoolExecutor(max_workers=4) as pool:
            responses = list(pool.map(
                lambda _: service.submit(
                    OptimizeRequest(
                        scenario=build_scenario(
                            TOPOLOGY, [WORKLOAD], total_bw_gbps=320
                        ),
                        warm_start=WARM_START_AUTO,
                    )
                ),
                range(4),
            ))
        sources = {r.diagnostics["warm_source"] for r in responses}
        assert sources <= {"memo-hit"}
        points = {r.point.bandwidths for r in responses}
        assert len(points) == 1  # all racers converged identically

    def test_clear_while_submitting_never_corrupts(self):
        service = LibraService()
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                service.clear()

        thread = threading.Thread(target=churn)
        thread.start()
        try:
            with ThreadPoolExecutor(max_workers=2) as pool:
                responses = list(pool.map(
                    lambda b: service.submit(_request(b)), [100, 200, 300, 400]
                ))
        finally:
            stop.set()
            thread.join()
        assert len(responses) == 4
        assert all(r.point.bandwidths for r in responses)


class TestSpawnBatchPool:
    def test_parallel_batch_uses_spawn_safely(self):
        """Service batches run their process pool under the spawn start
        method (fork from a threaded server can deadlock children); the
        whole path must still produce clean rows."""
        from repro.api.requests import BatchRequest
        from repro.explore.spec import SweepSpec

        spec = SweepSpec(
            workloads=(WORKLOAD,),
            topologies=(TOPOLOGY, "RI(2)_RI(3)"),  # 2 chains -> real pool
            bandwidths_gbps=(100.0,),
        )
        response = LibraService().submit(BatchRequest(spec=spec, workers=2))
        assert response.sweep.num_errors == 0
        assert len(response.sweep.results) == 2


def _custom_tiny_workload(num_npus):
    """Module-level so it pickles across the spawn boundary."""
    from repro.workloads import build_workload

    return build_workload("Turing-NLG", num_npus)


class TestSpawnRegistryReplay:
    def test_custom_registrations_reach_spawned_workers(self):
        """Names registered at runtime must keep resolving inside spawn
        pool workers (fork used to inherit them for free)."""
        from repro.api.registry import WORKLOADS
        from repro.api.requests import BatchRequest
        from repro.explore.spec import SweepSpec

        WORKLOADS.register("spawn-replay-wl", _custom_tiny_workload)
        try:
            spec = SweepSpec(
                workloads=("spawn-replay-wl",),
                topologies=(TOPOLOGY, "RI(2)_RI(3)"),  # 2 chains -> pool
                bandwidths_gbps=(100.0,),
            )
            response = LibraService().submit(BatchRequest(spec=spec, workers=2))
        finally:
            WORKLOADS.unregister("spawn-replay-wl")
        assert response.sweep.num_errors == 0, [
            r.error for r in response.sweep.results
        ]
        assert len(response.sweep.results) == 2


def _override_tiny_topology():
    """Module-level so it pickles across the spawn boundary."""
    from repro.topology import MultiDimNetwork

    return MultiDimNetwork.from_notation("RI(3)_RI(2)")


class TestSpawnOverriddenBuiltinReplay:
    def test_overridden_builtin_reaches_spawned_workers(self):
        """A builtin re-registered with overwrite=True must replay into
        spawn workers too — otherwise they silently solve the stock
        preset under the override's cache key."""
        from repro.api.registry import TOPOLOGIES, custom_entries
        from repro.api.requests import BatchRequest
        from repro.explore.executor import _resolve_topology_cached
        from repro.explore.spec import SweepSpec

        original = TOPOLOGIES.get("4D-4K")
        TOPOLOGIES.register("4D-4K", _override_tiny_topology, overwrite=True)
        try:
            assert any(
                name == "4D-4K" for _, name, _ in custom_entries()
            ), "overridden builtin missing from the replay snapshot"
            spec = SweepSpec(
                workloads=(WORKLOAD,),
                topologies=("4D-4K", TOPOLOGY),  # 2 chains -> real pool
                bandwidths_gbps=(100.0,),
            )
            response = LibraService().submit(BatchRequest(spec=spec, workers=2))
        finally:
            TOPOLOGIES.register("4D-4K", original, overwrite=True)
            _resolve_topology_cached.cache_clear()
        assert response.sweep.num_errors == 0, [
            r.error for r in response.sweep.results
        ]
        overridden_row = response.sweep.get(topology="4D-4K")
        # The worker solved the *override* (2 tiny dims), not the stock
        # 4-dimensional preset.
        assert len(overridden_row.bandwidths_gbps) == 2

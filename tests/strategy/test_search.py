"""joint_search and the frontier: warm-start reuse, cache replay, schema."""

import json
from dataclasses import replace

import pytest

from repro.explore.cache import ResultCache
from repro.strategy import (
    StrategyFrontier,
    StrategySpace,
    base_workload_name,
    build_frontier,
    joint_search,
    strategy_slug,
    tagged_workload,
)
from repro.utils.errors import ConfigurationError, JobCancelled

WORKLOAD = "Turing-NLG"
TOPOLOGY = "Google TPUv2"  # RI(4)_RI(2), 8 NPUs — two tp<=2 strategies
BUDGETS = (100.0, 200.0, 300.0)
SPACE = StrategySpace(max_tp=2)


@pytest.fixture(scope="module")
def searched():
    """One shared search (and its cache) for the read-only assertions."""
    cache = ResultCache()
    search = joint_search(
        WORKLOAD, TOPOLOGY, BUDGETS, space=SPACE, cache=cache
    )
    return search, cache


class TestJointSearch:
    def test_covers_the_full_grid(self, searched):
        search, _ = searched
        assert len(search.runs) == 2
        assert [strategy_slug(r.strategy) for r in search.runs] == [
            "tp1-dp8", "tp2-dp4",
        ]
        for run in search.runs:
            assert run.ok
            assert tuple(
                r.point.total_bw_gbps for r in run.results
            ) == BUDGETS
        assert len(search.rows()) == 6

    def test_rows_are_tagged_per_strategy(self, searched):
        search, _ = searched
        names = {row.point.workload.name for row in search.rows()}
        assert names == {f"{WORKLOAD}#tp1-dp8", f"{WORKLOAD}#tp2-dp4"}
        assert all(
            base_workload_name(name) == WORKLOAD for name in names
        )

    def test_warm_start_reuse_within_and_across_strategies(self, searched):
        search, _ = searched
        diagnostics = search.diagnostics
        assert diagnostics["cells"] == 6
        assert diagnostics["solved"] == 6
        assert diagnostics["errors"] == 0
        # Continuation threads the budget columns...
        assert diagnostics["warm_hit_rate"] > 0
        # ...and the adjacent strategy seeds the next column's first cell.
        assert diagnostics["cross_warm_accepted"] >= 1
        assert (
            diagnostics["warm_accepted"]
            + diagnostics["warm_rejected"]
            + diagnostics["cold_solves"]
        ) == 6

    def test_rerun_replays_bit_identical_rows_from_cache(self, searched):
        """The determinism contract: any re-run against the same cache —
        the whole grid or one strategy's column independently — replays
        byte-identical rows instead of re-solving."""
        search, cache = searched
        replay = joint_search(
            WORKLOAD, TOPOLOGY, BUDGETS, space=SPACE, cache=cache
        )
        assert replay.diagnostics["cached"] == 6
        assert replay.diagnostics["solved"] == 0
        for original, replayed in zip(search.rows(), replay.rows()):
            assert replayed.from_cache
            assert (
                replace(replayed, from_cache=False).to_dict()
                == replace(original, from_cache=False).to_dict()
            )

    def test_single_strategy_column_replays_independently(self, searched):
        search, cache = searched
        column = joint_search(
            WORKLOAD, TOPOLOGY, BUDGETS,
            space=StrategySpace(min_tp=2, max_tp=2), cache=cache,
        )
        [run] = column.runs
        assert column.diagnostics["cached"] == 3
        assert [
            replace(r, from_cache=False).to_dict() for r in run.results
        ] == [
            replace(r, from_cache=False).to_dict()
            for r in search.runs[1].results
        ]

    def test_events_narrate_plan_strategies_and_cells(self):
        events = []
        joint_search(
            WORKLOAD, TOPOLOGY, (100.0,), space=SPACE,
            cache=ResultCache(), on_event=events.append,
        )
        kinds = [event["type"] for event in events]
        assert kinds[0] == "plan"
        assert events[0]["total"] == 2
        assert kinds.count("cell") == 2
        assert kinds.count("strategy") == 4  # start/done per strategy
        assert events[-1] == {
            "type": "strategy", "status": "done", "index": 1,
            "strategies": 2, "label": "HP-(2, 4)",
        }

    def test_cancellation_between_cells(self):
        with pytest.raises(JobCancelled):
            joint_search(
                WORKLOAD, TOPOLOGY, BUDGETS, space=SPACE,
                should_stop=lambda: True,
            )

    def test_empty_and_duplicate_budgets_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one budget"):
            joint_search(WORKLOAD, TOPOLOGY, ())
        with pytest.raises(ConfigurationError, match="duplicate budgets"):
            joint_search(WORKLOAD, TOPOLOGY, (100.0, 100))

    def test_space_admitting_nothing_rejected(self):
        with pytest.raises(ConfigurationError, match="no candidate"):
            joint_search(
                WORKLOAD, TOPOLOGY, BUDGETS,
                space=StrategySpace(min_tp=4096),
            )

    def test_tagged_workload_separates_content_keys(self):
        a = tagged_workload(WORKLOAD, 8, search_strategy("tp1-dp8"))
        b = tagged_workload(WORKLOAD, 8, search_strategy("tp2-dp4"))
        assert a.name != b.name
        assert a.canonical() != b.canonical()


def search_strategy(slug):
    from repro.workloads import Parallelism

    return {
        "tp1-dp8": Parallelism(1, 8), "tp2-dp4": Parallelism(2, 4)
    }[slug]


class TestFrontier:
    @pytest.fixture(scope="class")
    def frontier(self, searched):
        search, _ = searched
        return build_frontier(search)

    def test_best_per_budget_covers_every_budget(self, frontier):
        assert tuple(
            cell.budget_gbps for cell in frontier.best_per_budget
        ) == BUDGETS
        for cell in frontier.best_per_budget:
            assert frontier.best_at(cell.budget_gbps) == cell
            # The winner really is the grid minimum at its budget.
            rivals = [
                row.step_time_ms for row in frontier.rows()
                if row.point.total_bw_gbps == cell.budget_gbps
            ]
            assert cell.step_time_ms == min(rivals)

    def test_best_at_unknown_budget_raises(self, frontier):
        with pytest.raises(ConfigurationError, match="no frontier winner"):
            frontier.best_at(999.0)

    def test_pareto_cells_are_non_dominated(self, frontier):
        assert frontier.pareto
        points = [
            (cell.network_cost, cell.step_time_ms) for cell in frontier.pareto
        ]
        for cost, time_ms in points:
            assert not any(
                other_cost <= cost and other_time <= time_ms
                and (other_cost, other_time) != (cost, time_ms)
                for other_cost, other_time in points
            )

    def test_attribution_per_strategy(self, frontier):
        assert len(frontier.attributions) == 2
        for attribution in frontier.attributions:
            assert attribution.binding_dims
            assert attribution.most_valuable_dim in attribution.binding_dims
            assert attribution.source in ("solve", "memo", "inline")

    def test_json_round_trip_is_exact(self, frontier):
        payload = json.loads(json.dumps(frontier.to_dict()))
        restored = StrategyFrontier.from_dict(payload)
        assert restored.to_dict() == frontier.to_dict()
        assert restored.best_per_budget == frontier.best_per_budget

    def test_unknown_schema_version_rejected(self, frontier):
        payload = frontier.to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ConfigurationError, match="schema_version"):
            StrategyFrontier.from_dict(payload)

    def test_diagnostics_travel_with_the_frontier(self, frontier, searched):
        search, _ = searched
        assert frontier.diagnostics == search.diagnostics

"""StrategySpace enumeration: bounds, pruning, determinism, serialization."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology import MultiDimNetwork, get_topology
from repro.utils.errors import ConfigurationError
from repro.utils.validation import prod
from repro.workloads import Parallelism
from repro.strategy import StrategySpace, strategy_slug


class TestEnumeration:
    def test_default_space_is_power_of_two_tp(self):
        strategies = StrategySpace().enumerate(8)
        assert [s.tp for s in strategies] == [1, 2, 4, 8]
        assert all(s.total_npus == 8 for s in strategies)
        assert all((s.cp, s.ep, s.pp) == (1, 1, 1) for s in strategies)

    def test_extension_axes_expand_the_space(self):
        strategies = StrategySpace(max_tp=2, max_ep=2).enumerate(8)
        assert all(s.total_npus == 8 for s in strategies)
        assert any(s.ep == 2 for s in strategies)
        # dp always absorbs the cofactor exactly.
        assert all(s.dp == 8 // (s.tp * s.cp * s.ep * s.pp) for s in strategies)

    def test_sorted_by_degree_tuple(self):
        """Adjacency the cross-strategy warm start leans on."""
        strategies = StrategySpace(max_tp=4, max_cp=2).enumerate(16)
        degrees = [s.degrees for s in strategies]
        assert degrees == sorted(degrees)
        assert len(set(degrees)) == len(degrees)

    def test_min_tp_floor(self):
        strategies = StrategySpace(min_tp=4).enumerate(16)
        assert [s.tp for s in strategies] == [4, 8, 16]

    def test_min_tp_above_max_tp_rejected(self):
        with pytest.raises(ConfigurationError, match="exceeds max_tp"):
            StrategySpace(min_tp=8, max_tp=4)

    def test_non_power_of_two_degrees(self):
        strategies = StrategySpace(max_tp=6, power_of_two=False).enumerate(12)
        assert [s.tp for s in strategies] == [1, 2, 3, 4, 6]


class TestPruning:
    def test_unmappable_candidates_are_pruned_with_located_reason(self):
        net = MultiDimNetwork.from_notation("RI(6)_RI(4)")
        kept, pruned = StrategySpace(power_of_two=False).split(
            net.num_npus, net
        )
        assert all(p.total_npus == 24 for p in kept)
        # TP-4 cannot slice RI(6); the located MappingError is the reason.
        removed = {entry.strategy.tp: entry.reason for entry in pruned}
        assert 4 in removed
        assert removed[4].startswith("unmappable:")
        assert all(s.tp != 4 for s in kept)

    def test_custom_rules_veto(self):
        space = StrategySpace(
            rules=(lambda s: "tp too small" if s.tp < 4 else "",)
        )
        kept, pruned = space.split(8)
        assert [s.tp for s in kept] == [4, 8]
        assert {entry.reason for entry in pruned} == {"tp too small"}

    def test_pruned_entry_round_trips(self):
        from repro.strategy.space import PrunedStrategy

        entry = PrunedStrategy(Parallelism(4, 2), "unmappable: nope")
        assert PrunedStrategy.from_dict(
            json.loads(json.dumps(entry.to_dict()))
        ) == entry


class TestSerialization:
    def test_round_trip(self):
        space = StrategySpace(
            max_tp=64, max_cp=2, max_ep=4, max_pp=2, min_tp=2,
            power_of_two=False,
        )
        restored = StrategySpace.from_dict(
            json.loads(json.dumps(space.to_dict()))
        )
        assert restored == space

    def test_unbounded_tp_round_trips_as_null(self):
        payload = StrategySpace().to_dict()
        assert payload["max_tp"] is None
        assert StrategySpace.from_dict(payload) == StrategySpace()

    def test_spaces_with_rules_refuse_to_serialize(self):
        space = StrategySpace(rules=(lambda s: "",))
        with pytest.raises(ConfigurationError, match="cannot be serialized"):
            space.to_dict()

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown strategy-space"):
            StrategySpace.from_dict({"max_tp": 4, "max_qp": 2})

    def test_malformed_payload_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            StrategySpace.from_dict({"max_cp": "lots"})


class TestSlug:
    def test_slug_omits_unit_axes(self):
        assert strategy_slug(Parallelism(2, 4)) == "tp2-dp4"
        assert (
            strategy_slug(Parallelism(tp=2, dp=2, cp=2, ep=2, pp=2))
            == "tp2-cp2-ep2-pp2-dp2"
        )


@given(
    st.sampled_from([4, 8, 16, 32, 64]),
    st.sampled_from([1, 2, 4]),
    st.sampled_from([1, 2, 4]),
    st.sampled_from([1, 2]),
)
def test_property_space_partitions_node_count(num_npus, max_cp, max_ep, max_pp):
    """Every kept strategy factors ``num_npus`` exactly, exactly once."""
    kept, pruned = StrategySpace(
        max_cp=max_cp, max_ep=max_ep, max_pp=max_pp
    ).split(num_npus)
    assert kept, "bounded power-of-two spaces are never empty"
    seen = set()
    for strategy in kept:
        assert prod(strategy.degrees) == num_npus
        assert strategy.total_npus == num_npus
        assert strategy.degrees not in seen
        seen.add(strategy.degrees)
        assert strategy.cp <= max_cp and strategy.ep <= max_ep
        assert strategy.pp <= max_pp
    # Deterministic order, and nothing pruned without a network or rules.
    assert [s.degrees for s in kept] == sorted(s.degrees for s in kept)
    assert pruned == []


@given(st.sampled_from([8, 16, 64]), st.data())
def test_property_network_pruning_is_a_partition(num_npus, data):
    """With a network, kept ∪ pruned is the whole bounded space and every
    kept candidate actually places."""
    from repro.workloads import map_parallelism

    sizes = {8: "RI(4)_RI(2)", 16: "RI(4)_RI(4)", 64: "SW(4)_SW(4)_SW(4)"}
    net = MultiDimNetwork.from_notation(sizes[num_npus])
    max_cp = data.draw(st.sampled_from([1, 2]))
    space = StrategySpace(max_cp=max_cp)
    kept, pruned = space.split(num_npus, net)
    unconstrained, _ = space.split(num_npus)
    assert {s.degrees for s in kept} | {
        p.strategy.degrees for p in pruned
    } == {s.degrees for s in unconstrained}
    for strategy in kept:
        map_parallelism(net, strategy)  # must not raise

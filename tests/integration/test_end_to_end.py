"""End-to-end workflows a downstream user would run."""

import pytest

from repro import (
    Libra,
    Scheme,
    build_workload,
    estimate_step_time,
    gbps,
    get_topology,
    simulate_training_step,
)
from repro.runtime import ThemisScheduler, synthesize_all_gather
from repro.utils import gb
from repro.workloads import parse_workload, serialize_workload


class TestQuickstartFlow:
    """The README quickstart, verified."""

    def test_quickstart(self):
        libra = Libra(get_topology("4D-4K"))
        libra.add_workload(build_workload("GPT-3", 4096))
        constraints = libra.constraints().with_total_bandwidth(gbps(500))
        optimized = libra.optimize(Scheme.PERF_OPT, constraints)
        baseline = libra.equal_bw_point(gbps(500))
        assert optimized.speedup_over(baseline) >= 1.0


class TestFileDrivenFlow:
    def test_workload_from_file(self, tmp_path):
        """Serialize a preset, reload it, and optimize for it — the Fig. 3
        'Workload Parser' input path."""
        workload = build_workload("GPT-3", 4096)
        path = tmp_path / "gpt3.workload"
        path.write_text(serialize_workload(workload))

        reloaded = parse_workload(path.read_text())
        libra = Libra(get_topology("4D-4K"))
        libra.add_workload(reloaded)
        point = libra.optimize(
            Scheme.PERF_OPT, libra.constraints().with_total_bandwidth(gbps(400))
        )
        direct_time = estimate_step_time(
            workload, get_topology("4D-4K"), point.bandwidths
        )
        assert point.step_time("GPT-3") == pytest.approx(direct_time, rel=1e-9)


class TestDesignThenValidateFlow:
    def test_design_validate_loop(self):
        """Design with the analytical model, validate on the simulator with
        Themis, as the paper's Fig. 19 pipeline does."""
        network = get_topology("3D-4K")
        workload = build_workload("MSFT-1T", 4096)
        libra = Libra(network)
        libra.add_workload(workload)
        point = libra.optimize(
            Scheme.PERF_OPT, libra.constraints().with_total_bandwidth(gbps(600))
        )

        sim = simulate_training_step(
            workload,
            network,
            list(point.bandwidths),
            num_chunks=8,
            scheduler_factory=ThemisScheduler,
        )
        assert sim.total_time > 0
        assert sim.comm_report.aggregate_utilization > 0.3

    def test_tacos_composition(self):
        """LIBRA shapes the torus with the synthesizer in the loop (Fig. 20)."""
        from repro.cost import default_cost_model, network_cost
        from repro.runtime import cooptimize_with_tacos

        torus = get_topology("3D-Torus")
        equal_bw = [gbps(333)] * 3
        equal_tacos = synthesize_all_gather(torus, equal_bw, gb(1), chunks_per_npu=8)
        equal_cost = network_cost(torus, equal_bw, default_cost_model())

        codesign = cooptimize_with_tacos(
            torus, gbps(999), gb(1), chunks_per_npu=8, objective="perf_per_cost"
        )
        # Because EqualBW is in the candidate family, the co-design can only
        # improve the perf-per-cost product.
        ours = codesign.all_reduce_time * codesign.network_cost
        theirs = equal_tacos.all_reduce_time * equal_cost
        assert ours <= theirs * 1.0001

        perf_pick = cooptimize_with_tacos(
            torus, gbps(999), gb(1), chunks_per_npu=8, objective="perf"
        )
        assert perf_pick.all_reduce_time <= equal_tacos.all_reduce_time * 1.0001


class TestGroupFlow:
    def test_two_workload_codesign(self):
        libra = Libra(get_topology("4D-4K"))
        libra.add_workload(build_workload("GPT-3", 4096), weight=2.0)
        libra.add_workload(build_workload("DLRM", 4096), weight=1.0)
        point = libra.optimize(
            Scheme.PERF_OPT, libra.constraints().with_total_bandwidth(gbps(500))
        )
        assert set(point.step_times) == {"GPT-3", "DLRM"}
        baseline = libra.equal_bw_point(gbps(500))
        combined_new = 2 * point.step_time("GPT-3") + point.step_time("DLRM")
        combined_old = 2 * baseline.step_time("GPT-3") + baseline.step_time("DLRM")
        assert combined_new <= combined_old * 1.0001

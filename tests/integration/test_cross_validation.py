"""Cross-model validation: the analytical estimator vs the simulator.

The optimizer trusts the closed-form bandwidth model; the simulator is its
ground truth. These property tests pin their relationship on randomized
workloads and networks: the closed form is always a lower bound, and the
two converge under deep chunking.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import CollectiveType
from repro.simulator import simulate_training_step
from repro.topology import MultiDimNetwork
from repro.training import estimate_step_time
from repro.utils import gbps
from repro.workloads import (
    CommRequirement,
    CommScope,
    Layer,
    Parallelism,
    Workload,
)


@st.composite
def workload_network_pairs(draw):
    """A small random network plus a compatible random workload."""
    num_dims = draw(st.integers(min_value=1, max_value=3))
    sizes = draw(
        st.lists(st.sampled_from([2, 4, 8]), min_size=num_dims, max_size=num_dims)
    )
    notation = "_".join(f"RI({size})" for size in sizes)
    network = MultiDimNetwork.from_notation(notation)

    total = network.num_npus
    divisors = [d for d in (1, 2, 4, 8, 16) if total % d == 0 and d <= total]
    tp = draw(st.sampled_from(divisors))

    num_layers = draw(st.integers(min_value=1, max_value=3))
    layers = []
    comm_kinds = [
        CollectiveType.ALL_REDUCE,
        CollectiveType.REDUCE_SCATTER,
        CollectiveType.ALL_GATHER,
    ]
    for index in range(num_layers):
        tp_comms = ()
        if tp > 1:
            tp_comms = (
                CommRequirement(
                    CommScope.TP,
                    draw(st.sampled_from(comm_kinds)),
                    draw(st.floats(min_value=1e6, max_value=1e9)),
                ),
            )
        dp_comms = ()
        if total // tp > 1:
            dp_comms = (
                CommRequirement(
                    CommScope.DP,
                    draw(st.sampled_from(comm_kinds)),
                    draw(st.floats(min_value=1e6, max_value=1e9)),
                ),
            )
        layers.append(
            Layer(
                name=f"layer{index}",
                fwd_compute_flops=draw(st.floats(min_value=0, max_value=1e12)),
                tp_compute_flops=draw(st.floats(min_value=0, max_value=1e12)),
                dp_compute_flops=draw(st.floats(min_value=0, max_value=1e12)),
                tp_comms=tp_comms,
                dp_comms=dp_comms,
            )
        )
    workload = Workload(
        name="prop",
        layers=tuple(layers),
        parallelism=Parallelism(tp, total // tp),
    )
    bandwidths = [
        gbps(draw(st.floats(min_value=5.0, max_value=500.0))) for _ in range(num_dims)
    ]
    return network, workload, bandwidths


@settings(deadline=None, max_examples=25)
@given(workload_network_pairs())
def test_property_analytical_is_lower_bound(case):
    """The bottleneck closed form never exceeds the chunked simulation."""
    from repro.utils.errors import MappingError

    network, workload, bandwidths = case
    try:
        analytical = estimate_step_time(workload, network, bandwidths)
    except MappingError:
        return  # unplaceable TP degree; rejection is the contract
    simulated = simulate_training_step(
        workload, network, bandwidths, num_chunks=8
    ).total_time
    assert analytical <= simulated * (1 + 1e-9)


@settings(deadline=None, max_examples=15)
@given(workload_network_pairs())
def test_property_convergence_with_chunks(case):
    """Deeper chunking always moves the simulation toward the closed form."""
    from repro.utils.errors import MappingError

    network, workload, bandwidths = case
    try:
        analytical = estimate_step_time(workload, network, bandwidths)
    except MappingError:
        return
    shallow = simulate_training_step(
        workload, network, bandwidths, num_chunks=1
    ).total_time
    deep = simulate_training_step(
        workload, network, bandwidths, num_chunks=32
    ).total_time
    assert analytical <= deep * (1 + 1e-9)
    assert deep <= shallow * (1 + 1e-9)


@settings(deadline=None, max_examples=15)
@given(workload_network_pairs())
def test_property_themis_never_worse_than_fixed_on_step(case):
    """The Themis planner falls back to the canonical order when reordering
    cannot help, so a full step is never meaningfully slower."""
    from repro.runtime import ThemisScheduler
    from repro.utils.errors import MappingError

    network, workload, bandwidths = case
    try:
        fixed = simulate_training_step(
            workload, network, bandwidths, num_chunks=8
        ).total_time
    except MappingError:
        return
    themis = simulate_training_step(
        workload, network, bandwidths, num_chunks=8,
        scheduler_factory=ThemisScheduler,
    ).total_time
    assert themis <= fixed * 1.05

"""Cross-module invariants drawn from the paper's evaluation claims.

These tests encode the *qualitative* results LIBRA's evaluation rests on —
who wins, in which direction, under which conditions — so a regression in
any substrate that would corrupt a benchmark figure fails here first.
"""

import pytest

from repro.core import Libra, Scheme
from repro.topology import get_topology
from repro.training import compute_only_time
from repro.utils import gbps
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def points():
    """PerfOpt / PerfPerCost / EqualBW points for the three LLMs at 500 GB/s."""
    results = {}
    for name in ("Turing-NLG", "GPT-3", "MSFT-1T"):
        libra = Libra(get_topology("4D-4K"))
        libra.add_workload(build_workload(name, 4096))
        cons = libra.constraints().with_total_bandwidth(gbps(500))
        results[name] = {
            "equal": libra.equal_bw_point(gbps(500)),
            "perf": libra.optimize(Scheme.PERF_OPT, cons),
            "ppc": libra.optimize(Scheme.PERF_PER_COST_OPT, cons),
        }
    return results


class TestSchemeOrdering:
    def test_perf_opt_always_fastest(self, points):
        """Sec. VI-A: 'PerfOptBW consistently provides the best performance'."""
        for name, row in points.items():
            perf_time = row["perf"].step_time(name)
            assert perf_time <= row["equal"].step_time(name) * 1.0001
            assert perf_time <= row["ppc"].step_time(name) * 1.0001

    def test_ppc_always_best_perf_per_cost(self, points):
        """Sec. VI-A: 'PerfPerCostOptBW achieves the highest perf-per-cost'."""
        for name, row in points.items():
            base = row["equal"]
            ppc_gain = row["ppc"].perf_per_cost_gain_over(base, name)
            perf_gain = row["perf"].perf_per_cost_gain_over(base, name)
            assert ppc_gain >= perf_gain * 0.999
            assert ppc_gain >= 1.0

    def test_perf_per_cost_networks_cheaper(self, points):
        """PerfPerCostOpt trades speed for cost: never pricier than PerfOpt."""
        for row in points.values():
            assert row["ppc"].network_cost <= row["perf"].network_cost * 1.0001


class TestModelSizeTrends:
    def test_larger_models_gain_more_speedup(self, points):
        """Sec. VI-A key insight: 'Larger models exhibit more performance
        benefits' — MSFT-1T gains more than Turing-NLG."""
        tnlg = points["Turing-NLG"]["perf"].speedup_over(
            points["Turing-NLG"]["equal"], "Turing-NLG"
        )
        msft = points["MSFT-1T"]["perf"].speedup_over(
            points["MSFT-1T"]["equal"], "MSFT-1T"
        )
        assert msft > tnlg

    def test_smaller_models_gain_more_perf_per_cost(self, points):
        """Sec. VI-A: 'smaller workloads show higher perf-per-cost'."""
        tnlg = points["Turing-NLG"]["ppc"].perf_per_cost_gain_over(
            points["Turing-NLG"]["equal"], "Turing-NLG"
        )
        msft = points["MSFT-1T"]["ppc"].perf_per_cost_gain_over(
            points["MSFT-1T"]["equal"], "MSFT-1T"
        )
        assert tnlg > msft


class TestAnalyticalVsSimulation:
    def test_optimized_network_wins_in_simulation_too(self):
        """The analytical optimizer's design must also win on the chunk-level
        simulator — the analogue of LIBRA's designs validating on ASTRA-sim."""
        from repro.simulator import simulate_training_step

        network = get_topology("4D-4K")
        workload = build_workload("GPT-3", 4096)
        libra = Libra(network)
        libra.add_workload(workload)
        cons = libra.constraints().with_total_bandwidth(gbps(500))
        optimized = libra.optimize(Scheme.PERF_OPT, cons)

        equal_sim = simulate_training_step(
            workload, network, [gbps(125)] * 4, num_chunks=16
        )
        opt_sim = simulate_training_step(
            workload, network, list(optimized.bandwidths), num_chunks=16
        )
        assert opt_sim.total_time < equal_sim.total_time

    def test_step_time_bounded_below_by_compute(self, points):
        for name, row in points.items():
            workload = build_workload(name, 4096)
            floor = compute_only_time(workload)
            for point in row.values():
                assert point.step_time(name) >= floor * 0.999


class TestBandwidthSweepMonotonicity:
    def test_more_budget_never_hurts(self):
        """Across the Fig. 13 sweep range, more total bandwidth can only
        reduce the optimized training time."""
        libra = Libra(get_topology("3D-4K"))
        libra.add_workload(build_workload("GPT-3", 4096))
        previous = float("inf")
        for budget in (100, 300, 500, 1000):
            cons = libra.constraints().with_total_bandwidth(gbps(budget))
            point = libra.optimize(Scheme.PERF_OPT, cons)
            assert point.step_time("GPT-3") <= previous * 1.0001
            previous = point.step_time("GPT-3")


class TestConstraintScenarios:
    def test_pod_cap_scenario(self):
        """Sec. IV-F's worked example: budget + inter-Pod cap + ordering."""
        libra = Libra(get_topology("4D-4K"))
        libra.add_workload(build_workload("MSFT-1T", 4096))
        cons = (
            libra.constraints()
            .with_total_bandwidth(gbps(500))
            .with_dim_cap(3, gbps(50))
            .with_ordering([0, 1])
        )
        point = libra.optimize(Scheme.PERF_OPT, cons)
        bws = point.bandwidths_gbps()
        assert bws[3] <= 50.0 * 1.001
        assert bws[0] >= bws[1] * 0.999
        # The fair baseline is the equal split *projected into the caps* —
        # the unconstrained EqualBW point is not a feasible design here.
        projected_equal = libra.evaluate(cons.equal_split())
        assert point.step_time("MSFT-1T") <= projected_equal.step_time("MSFT-1T") * 1.0001

    def test_pod_cap_solution_is_waterfilling_on_free_dims(self):
        """With dim 3 pinned at its cap, the optimum distributes the rest
        traffic-proportionally over dims 0-2 (KKT check)."""
        libra = Libra(get_topology("4D-4K"))
        libra.add_workload(build_workload("MSFT-1T", 4096))
        cons = (
            libra.constraints()
            .with_total_bandwidth(gbps(500))
            .with_dim_cap(3, gbps(50))
        )
        point = libra.optimize(Scheme.PERF_OPT, cons)
        bws = point.bandwidths_gbps()
        assert bws[3] == pytest.approx(50.0, rel=0.01)
        # TP all-reduce traffic ratios over spans (4, 8, 4): 1.5 : 0.4375 : 0.046875.
        assert bws[0] / bws[1] == pytest.approx(1.5 / 0.4375, rel=0.02)
        assert bws[1] / bws[2] == pytest.approx(0.4375 / 0.046875, rel=0.02)

    def test_in_network_collective_changes_optimum(self):
        """With switch offload on the Pod dimension the optimizer can shift
        bandwidth away from it (traffic there shrinks)."""
        network = get_topology("4D-4K")
        workload = build_workload("Turing-NLG", 4096)

        plain = Libra(network)
        plain.add_workload(workload)
        offload = Libra(network, in_network_dims=(3,))
        offload.add_workload(workload)

        budget = gbps(500)
        plain_point = plain.optimize(
            Scheme.PERF_OPT, plain.constraints().with_total_bandwidth(budget)
        )
        offload_point = offload.optimize(
            Scheme.PERF_OPT, offload.constraints().with_total_bandwidth(budget)
        )
        assert offload_point.step_time("Turing-NLG") <= plain_point.step_time(
            "Turing-NLG"
        ) * 1.0001

"""Pipeline-parallel estimation (the paper's Sec. IV-C P2P extension)."""

import pytest

from repro.collectives import CollectiveType, DimSpan, per_dim_traffic
from repro.collectives.types import CollectiveOp
from repro.topology import get_topology
from repro.training import (
    PipelineSchedule,
    estimate_pipeline_step_time,
    infer_activation_bytes,
    pipeline_time_expression,
    training_time_expression,
)
from repro.utils import gbps
from repro.utils.errors import ConfigurationError, MappingError
from repro.workloads import (
    GPT3_CONFIG,
    Parallelism,
    build_transformer,
    map_parallelism,
)


@pytest.fixture(scope="module")
def net4k():
    return get_topology("4D-4K")


@pytest.fixture(scope="module")
def gpt3_pp4():
    # 96 layers / 4 stages; TP-8 × PP-4 × DP-128 = 4,096 NPUs.
    return build_transformer(GPT3_CONFIG, Parallelism(8, 128, pp=4))


class TestPointToPointTraffic:
    def test_full_payload_per_span(self):
        op = CollectiveOp(
            CollectiveType.POINT_TO_POINT, 1000.0, (DimSpan(1, 4), DimSpan(2, 2))
        )
        traffic = per_dim_traffic(op)
        assert traffic == {1: 1000.0, 2: 1000.0}

    def test_simulator_handles_p2p(self):
        from repro.simulator import simulate_collective

        op = CollectiveOp(CollectiveType.POINT_TO_POINT, 1e9, (DimSpan(0, 4),))
        sim = simulate_collective(op, [gbps(100)], num_chunks=8)
        assert sim.finish_time == pytest.approx(1e9 / gbps(100))


class TestPipelineMapping:
    def test_pp_spans_between_tp_and_dp(self, net4k):
        mapping = map_parallelism(net4k, Parallelism(8, 64, pp=8))
        tp_dims = [span.dim for span in mapping.tp_spans]
        pp_dims = [span.dim for span in mapping.pp_spans]
        dp_dims = [span.dim for span in mapping.dp_spans]
        assert max(tp_dims) <= min(pp_dims)
        assert max(pp_dims) <= min(dp_dims)

    def test_boundary_spans_mixed_radix(self, net4k):
        """PP-8 over spans (4, 2): boundaries 0-2 cross only the first span;
        boundary 3 carries into the second."""
        mapping = map_parallelism(net4k, Parallelism(8, 64, pp=8))
        assert len(mapping.boundary_spans(0)) == 1
        assert len(mapping.boundary_spans(2)) == 1
        assert len(mapping.boundary_spans(3)) == 2
        assert len(mapping.boundary_spans(4)) == 1

    def test_boundary_out_of_range(self, net4k):
        mapping = map_parallelism(net4k, Parallelism(8, 64, pp=8))
        with pytest.raises(MappingError):
            mapping.boundary_spans(7)

    def test_boundary_without_pp(self, net4k):
        mapping = map_parallelism(net4k, Parallelism(16, 256))
        with pytest.raises(MappingError):
            mapping.boundary_spans(0)

    def test_pp1_unchanged(self, net4k):
        """The pp=1 default reproduces the original two-degree mapping."""
        two = map_parallelism(net4k, Parallelism(16, 256))
        three = map_parallelism(net4k, Parallelism(16, 256, pp=1))
        assert two.tp_spans == three.tp_spans
        assert two.dp_spans == three.dp_spans
        assert three.pp_spans == ()


class TestPipelineSchedule:
    def test_bubble_factor(self):
        schedule = PipelineSchedule(num_stages=4, num_microbatches=12, layers_per_stage=24)
        assert schedule.bubble_factor == pytest.approx(15 / 12)

    def test_deep_pipeline_costs_more_bubble(self):
        shallow = PipelineSchedule(2, 8, 48).bubble_factor
        deep = PipelineSchedule(16, 8, 6).bubble_factor
        assert deep > shallow


class TestPipelineExpression:
    def test_rejects_non_pipelined(self, net4k):
        workload = build_transformer(GPT3_CONFIG, Parallelism(16, 256))
        with pytest.raises(ConfigurationError, match="pp=1"):
            pipeline_time_expression(workload, net4k, num_microbatches=8)

    def test_rejects_uneven_stages(self, net4k):
        # 96 layers cannot split into 64 stages... use pp=64 via a valid NPU
        # count first: TP-1, PP-64, DP-64 on 4,096 NPUs.
        workload = build_transformer(GPT3_CONFIG, Parallelism(1, 64, pp=64))
        with pytest.raises(ConfigurationError, match="equal pipeline stages"):
            pipeline_time_expression(workload, net4k, num_microbatches=8)

    def test_more_microbatches_amortize_bubble(self, net4k, gpt3_pp4):
        bw = [gbps(125)] * 4
        few = estimate_pipeline_step_time(gpt3_pp4, net4k, bw, num_microbatches=4)
        many = estimate_pipeline_step_time(gpt3_pp4, net4k, bw, num_microbatches=32)
        # Per-microbatch cost shrinks as the bubble amortizes.
        assert many / 32 < few / 4

    def test_monotone_in_bandwidth(self, net4k, gpt3_pp4):
        slow = estimate_pipeline_step_time(
            gpt3_pp4, net4k, [gbps(50)] * 4, num_microbatches=8
        )
        fast = estimate_pipeline_step_time(
            gpt3_pp4, net4k, [gbps(500)] * 4, num_microbatches=8
        )
        assert fast < slow

    def test_activation_inference_matches_config(self, gpt3_pp4):
        expected = GPT3_CONFIG.microbatch * GPT3_CONFIG.seq_len * GPT3_CONFIG.hidden * 2
        assert infer_activation_bytes(gpt3_pp4) == pytest.approx(expected)

    def test_optimizer_consumes_pipeline_expression(self, net4k, gpt3_pp4):
        """The PP expression plugs into the same solver as everything else."""
        from repro.core import ConstraintSet, minimize_training_time

        expr = pipeline_time_expression(gpt3_pp4, net4k, num_microbatches=8)
        constraints = ConstraintSet(4).with_total_bandwidth(gbps(500))
        result = minimize_training_time(expr, constraints)
        equal = expr.evaluate([gbps(125)] * 4)
        assert result.objective <= equal * 1.0001
        assert constraints.is_feasible(result.bandwidths, tolerance=1e-3)

    def test_dp_sync_charged_once(self, net4k):
        """Doubling the microbatch count must not double the DP-sync share:
        the gap between the full expression and (bubble × per-microbatch)
        stays constant in M."""
        workload = build_transformer(GPT3_CONFIG, Parallelism(8, 128, pp=4))
        bw = [gbps(125)] * 4
        times = {}
        for m in (8, 16):
            times[m] = estimate_pipeline_step_time(workload, net4k, bw, m)
        # Per-microbatch marginal cost: (T(16) - T(8)) / 8 should be close to
        # the per-beat cost, i.e. the step time is affine in M with the DP
        # sync as intercept.
        marginal = (times[16] - times[8]) / 8
        assert marginal > 0
        intercept = times[8] - marginal * (8 + 3)  # M + pp - 1 beats at M=8
        assert intercept >= -1e-9

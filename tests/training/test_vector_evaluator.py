"""The flat vectorized evaluator must match Expr.evaluate exactly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.training.expr import (
    CommTerm,
    Const,
    MaxExpr,
    Sum,
    VectorEvaluator,
    vector_evaluator,
)
from repro.utils.errors import ConfigurationError


def nested_expression() -> Sum:
    return Sum(
        (
            MaxExpr(
                (
                    Sum((Const(0.25), CommTerm(((0, 40.0), (2, 10.0))))),
                    CommTerm(((1, 80.0),)),
                )
            ),
            CommTerm(((2, 12.0),)),
            Const(1.5),
            CommTerm(()),  # empty collective contributes zero
        ),
        (3.0, 1.0, 1.0, 2.0),
    )


class TestVectorEvaluator:
    def test_matches_tree_evaluation(self):
        expr = nested_expression()
        evaluator = VectorEvaluator(expr)
        for bandwidths in ([10.0, 20.0, 5.0], [100.0, 1.0, 50.0], [3.0, 3.0, 3.0]):
            assert evaluator(bandwidths) == pytest.approx(
                expr.evaluate(bandwidths), rel=1e-12
            )

    def test_const_only(self):
        assert VectorEvaluator(Const(4.25))([1.0]) == 4.25

    def test_repeat_calls_do_not_accumulate(self):
        """The internal buffer must be overwritten, never accumulated."""
        expr = nested_expression()
        evaluator = VectorEvaluator(expr)
        first = evaluator([10.0, 20.0, 5.0])
        evaluator([99.0, 99.0, 99.0])
        assert evaluator([10.0, 20.0, 5.0]) == pytest.approx(first, rel=1e-12)

    def test_dimension_check(self):
        evaluator = VectorEvaluator(CommTerm(((2, 5.0),)))
        with pytest.raises(ConfigurationError):
            evaluator([100.0, 100.0])

    def test_factory_is_memoized(self):
        expr = nested_expression()
        assert vector_evaluator(expr) is vector_evaluator(expr)

    def test_numpy_input(self):
        expr = nested_expression()
        bandwidths = np.array([7.0, 11.0, 13.0])
        assert VectorEvaluator(expr)(bandwidths) == pytest.approx(
            expr.evaluate(bandwidths), rel=1e-12
        )


@settings(deadline=None, max_examples=40)
@given(
    st.lists(
        st.floats(min_value=0.1, max_value=1e4), min_size=2, max_size=4
    ),
    st.lists(
        st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=5
    ),
    st.floats(min_value=0.0, max_value=100.0),
)
def test_property_random_sums_of_collectives(bandwidths, coeffs, const):
    """Random Sum(Max(comm, const), comm...) trees agree with the tree walk."""
    num_dims = len(bandwidths)
    terms = [
        CommTerm(
            tuple(
                (dim, coeff)
                for dim, coeff in enumerate(coeffs[: num_dims])
            )
        )
    ]
    expr = Sum(
        (MaxExpr((terms[0], Const(const))), Const(const)), (1.0, 2.0)
    )
    assert VectorEvaluator(expr)(bandwidths) == pytest.approx(
        expr.evaluate(bandwidths), rel=1e-12, abs=1e-12
    )

"""VectorEvaluator thread-safety (shared via the lru-cached factory)."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.topology import MultiDimNetwork
from repro.training.expr import vector_evaluator
from repro.utils import gbps
from repro.workloads import build_workload


def _expression():
    from repro.core import Libra

    network = MultiDimNetwork.from_notation("RI(3)_RI(2)")
    libra = Libra(network)
    libra.add_workload(build_workload("Turing-NLG", network.num_npus))
    return libra.combined_expression()


class TestSharedEvaluatorUnderThreads:
    def test_concurrent_calls_match_serial_values(self):
        """One memoized evaluator instance, many threads, distinct inputs:
        every thread must get the value serial evaluation produces (the
        serve worker pool drives exactly this sharing pattern)."""
        evaluator = vector_evaluator(_expression())
        rng = np.random.default_rng(7)
        inputs = [
            tuple(gbps(b) for b in rng.uniform(20.0, 400.0, size=2))
            for _ in range(64)
        ]
        expected = [evaluator(bandwidths) for bandwidths in inputs]

        def hammer(index: int) -> bool:
            # Interleave many evaluations per thread to force buffer reuse.
            for _ in range(50):
                value = evaluator(inputs[index])
                if value != expected[index]:
                    return False
            return True

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(hammer, range(len(inputs))))
        assert all(results)

    def test_instance_is_shared_across_threads(self):
        expr = _expression()
        seen = set()

        def grab(_):
            seen.add(id(vector_evaluator(expr)))

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(grab, range(8)))
        assert len(seen) == 1  # the memo shares one instance; safety matters

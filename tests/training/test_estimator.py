"""End-to-end analytical training-time estimation."""

import pytest

from repro.collectives import CollectiveType
from repro.topology import get_topology
from repro.training import (
    NoOverlapLoop,
    TPDPOverlapLoop,
    compute_only_time,
    estimate_step_time,
    resolve_workload_comms,
    training_time_expression,
)
from repro.training.expr import count_nodes
from repro.utils import gbps
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def gpt3():
    return build_workload("GPT-3", 4096)


@pytest.fixture(scope="module")
def net4k():
    return get_topology("4D-4K")


class TestExpression:
    def test_expression_is_compact(self, gpt3, net4k):
        """Identical layers must deduplicate into a handful of nodes."""
        expr = training_time_expression(gpt3, net4k)
        assert count_nodes(expr) <= 10

    def test_time_decreases_with_bandwidth(self, gpt3, net4k):
        slow = estimate_step_time(gpt3, net4k, [gbps(50)] * 4)
        fast = estimate_step_time(gpt3, net4k, [gbps(500)] * 4)
        assert fast < slow

    def test_time_approaches_compute_floor(self, gpt3, net4k):
        """With absurd bandwidth, only compute remains."""
        time = estimate_step_time(gpt3, net4k, [gbps(1e9)] * 4)
        floor = compute_only_time(gpt3)
        assert time == pytest.approx(floor, rel=1e-3)

    def test_overlap_loop_not_slower(self, gpt3, net4k):
        bw = [gbps(125)] * 4
        sequential = estimate_step_time(gpt3, net4k, bw, loop=NoOverlapLoop())
        overlapped = estimate_step_time(gpt3, net4k, bw, loop=TPDPOverlapLoop())
        assert overlapped <= sequential

    def test_in_network_offload_helps(self, gpt3, net4k):
        bw = [gbps(125)] * 4
        plain = estimate_step_time(gpt3, net4k, bw)
        offloaded = estimate_step_time(gpt3, net4k, bw, in_network_dims={3})
        assert offloaded <= plain


class TestResolvedComms:
    def test_inventory_size(self, gpt3, net4k):
        resolved = resolve_workload_comms(gpt3, net4k)
        assert len(resolved) == 96 * 6

    def test_tp_comm_spans_inner_dims(self, gpt3, net4k):
        """GPT-3 TP-16 on 4D-4K: TP ops span dims 0 and 1 (partial)."""
        resolved = resolve_workload_comms(gpt3, net4k)
        tp_ops = [r.op for r in resolved if r.phase == "fwd"]
        spans = tp_ops[0].spans
        assert [s.dim for s in spans] == [0, 1]
        assert spans[1].size == 4  # half of FC(8)

    def test_dp_comm_spans_outer_dims(self, gpt3, net4k):
        resolved = resolve_workload_comms(gpt3, net4k)
        dp_ops = [r.op for r in resolved if r.phase == "dp"]
        assert [s.dim for s in dp_ops[0].spans] == [1, 2, 3]

    def test_labels_carry_workload_and_layer(self, gpt3, net4k):
        resolved = resolve_workload_comms(gpt3, net4k)
        assert resolved[0].op.label.startswith("GPT-3/")


class TestComputeOnly:
    def test_matches_flops(self, gpt3):
        from repro.training import a100_compute_model

        expected = gpt3.total_compute_flops / a100_compute_model().effective_flops
        assert compute_only_time(gpt3) == pytest.approx(expected)

    def test_dp_only_workload_has_no_tp_terms(self, net4k):
        tnlg = build_workload("Turing-NLG", 4096)
        expr = training_time_expression(tnlg, net4k)
        # All comm terms span all four dims (pure DP).
        from repro.training.expr import CommTerm, Sum

        assert isinstance(expr, Sum)
        for child in expr.children:
            if isinstance(child, CommTerm):
                assert [dim for dim, _ in child.coefficients] == [0, 1, 2, 3]

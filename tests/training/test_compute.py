"""NPU compute model."""

import pytest

from repro.training import ComputeModel, a100_compute_model
from repro.utils import tflops
from repro.utils.errors import ConfigurationError


class TestComputeModel:
    def test_effective_flops(self):
        model = ComputeModel(peak_flops=tflops(100), efficiency=0.5)
        assert model.effective_flops == tflops(50)

    def test_time_for(self):
        model = ComputeModel(peak_flops=tflops(100), efficiency=1.0)
        assert model.time_for(tflops(50)) == pytest.approx(0.5)

    def test_zero_flops_is_free(self):
        assert a100_compute_model().time_for(0.0) == 0.0

    def test_negative_flops_rejected(self):
        with pytest.raises(ConfigurationError):
            a100_compute_model().time_for(-1.0)

    def test_bad_peak(self):
        with pytest.raises(ConfigurationError):
            ComputeModel(peak_flops=0.0)

    def test_bad_efficiency(self):
        with pytest.raises(Exception):
            ComputeModel(peak_flops=1.0, efficiency=1.5)
        with pytest.raises(Exception):
            ComputeModel(peak_flops=1.0, efficiency=0.0)


class TestA100:
    def test_paper_numbers(self):
        """Sec. V-B: 75% of peak = 234 TFLOPS effective."""
        model = a100_compute_model()
        assert model.efficiency == 0.75
        assert model.effective_flops == pytest.approx(tflops(234))

"""Training loops compose layer components per Fig. 5."""

import pytest

from repro.training.expr import CommTerm, Const
from repro.training import LayerComponents, NoOverlapLoop, TPDPOverlapLoop, get_loop


def components(
    fwd_compute=1.0,
    fwd_coeff=10.0,
    tp_compute=2.0,
    tp_coeff=20.0,
    dp_compute=3.0,
    dp_coeff=30.0,
) -> LayerComponents:
    return LayerComponents(
        fwd_compute=fwd_compute,
        fwd_comm=CommTerm(((0, fwd_coeff),)),
        tp_compute=tp_compute,
        tp_comm=CommTerm(((0, tp_coeff),)),
        dp_compute=dp_compute,
        dp_comm=CommTerm(((1, dp_coeff),)),
    )


class TestNoOverlap:
    def test_everything_adds(self):
        """Fig. 5(b): plain sum of all six components."""
        layer = components()
        time = NoOverlapLoop().layer_time(layer).evaluate([10.0, 10.0])
        expected = 1.0 + 1.0 + 2.0 + 2.0 + 3.0 + 3.0
        assert time == pytest.approx(expected)

    def test_forward_part(self):
        layer = components()
        fwd = NoOverlapLoop().forward_time(layer).evaluate([10.0, 10.0])
        assert fwd == pytest.approx(2.0)


class TestTPDPOverlap:
    def test_tp_comm_dominates(self):
        """Fig. 5(c): backward = TP_Comp + max(TP_Comm, DP_Comp + DP_Comm)."""
        layer = components(tp_coeff=100.0)  # TP comm = 10s at BW 10
        time = TPDPOverlapLoop().backward_time(layer).evaluate([10.0, 10.0])
        assert time == pytest.approx(2.0 + max(10.0, 3.0 + 3.0))

    def test_dp_side_dominates(self):
        layer = components(tp_coeff=1.0, dp_coeff=300.0)
        time = TPDPOverlapLoop().backward_time(layer).evaluate([10.0, 10.0])
        assert time == pytest.approx(2.0 + max(0.1, 3.0 + 30.0))

    def test_never_slower_than_no_overlap(self):
        layer = components()
        for bw in ([1.0, 1.0], [5.0, 50.0], [100.0, 2.0]):
            overlap = TPDPOverlapLoop().layer_time(layer).evaluate(bw)
            sequential = NoOverlapLoop().layer_time(layer).evaluate(bw)
            assert overlap <= sequential + 1e-12

    def test_overlap_saves_when_balanced(self):
        layer = components(tp_coeff=60.0, dp_coeff=60.0)
        bw = [10.0, 10.0]
        overlap = TPDPOverlapLoop().layer_time(layer).evaluate(bw)
        sequential = NoOverlapLoop().layer_time(layer).evaluate(bw)
        assert overlap < sequential


class TestGetLoop:
    def test_lookup(self):
        assert isinstance(get_loop("no-overlap"), NoOverlapLoop)
        assert isinstance(get_loop("tp-dp-overlap"), TPDPOverlapLoop)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown training loop"):
            get_loop("pipeline")

"""Symbolic time expressions: evaluation, simplification, invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.training.expr import (
    CommTerm,
    Const,
    MaxExpr,
    Sum,
    count_nodes,
    simplify,
)
from repro.utils.errors import ConfigurationError


class TestConst:
    def test_evaluate(self):
        assert Const(2.5).evaluate([1.0]) == 2.5

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            Const(-1.0)

    def test_max_dim(self):
        assert Const(1.0).max_dim() == -1


class TestCommTerm:
    def test_evaluate_is_max(self):
        term = CommTerm(((0, 100.0), (1, 10.0)))
        assert term.evaluate([10.0, 10.0]) == pytest.approx(10.0)
        assert term.evaluate([100.0, 1.0]) == pytest.approx(10.0)

    def test_max_dim(self):
        assert CommTerm(((0, 1.0), (3, 1.0))).max_dim() == 3

    def test_unsorted_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            CommTerm(((1, 1.0), (0, 1.0)))

    def test_duplicate_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            CommTerm(((0, 1.0), (0, 2.0)))

    def test_missing_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            CommTerm(((2, 1.0),)).evaluate([1.0])

    def test_label_excluded_from_equality(self):
        assert CommTerm(((0, 1.0),), label="a") == CommTerm(((0, 1.0),), label="b")
        assert hash(CommTerm(((0, 1.0),), label="a")) == hash(
            CommTerm(((0, 1.0),), label="b")
        )


class TestSum:
    def test_unweighted(self):
        expr = Sum((Const(1.0), Const(2.0)))
        assert expr.evaluate([]) == 3.0

    def test_weighted(self):
        expr = Sum((Const(1.0), Const(2.0)), (10.0, 0.5))
        assert expr.evaluate([]) == 11.0

    def test_weight_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            Sum((Const(1.0),), (1.0, 2.0))

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            Sum((Const(1.0),), (-1.0,))


class TestMaxExpr:
    def test_evaluate(self):
        expr = MaxExpr((Const(1.0), Const(5.0), Const(3.0)))
        assert expr.evaluate([]) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MaxExpr(())


class TestSimplify:
    def test_merges_constants(self):
        expr = Sum((Const(1.0), Const(2.0), Const(3.0)))
        assert simplify(expr) == Const(6.0)

    def test_flattens_nested_sums(self):
        inner = Sum((Const(1.0), CommTerm(((0, 5.0),))))
        outer = Sum((inner, Const(2.0)))
        simplified = simplify(outer)
        assert isinstance(simplified, Sum)
        assert count_nodes(simplified) == 3  # Sum(CommTerm, Const)

    def test_deduplicates_identical_terms(self):
        """96 identical layers must collapse to one weighted term."""
        term = CommTerm(((0, 5.0),))
        expr = Sum(tuple(term for _ in range(96)))
        simplified = simplify(expr)
        assert isinstance(simplified, Sum)
        comm_children = [c for c in simplified.children if isinstance(c, CommTerm)]
        assert len(comm_children) == 1
        index = simplified.children.index(comm_children[0])
        assert simplified.weights[index] == 96.0

    def test_empty_comm_term_becomes_zero(self):
        assert simplify(CommTerm(())) == Const(0.0)

    def test_single_child_max_unwrapped(self):
        assert simplify(MaxExpr((Const(3.0),))) == Const(3.0)

    def test_zero_weight_dropped(self):
        expr = Sum((CommTerm(((0, 5.0),)), Const(1.0)), (0.0, 1.0))
        assert simplify(expr) == Const(1.0)


@st.composite
def expressions(draw, depth=0):
    """Random expression trees up to depth 3."""
    if depth >= 3:
        node_kind = draw(st.sampled_from(["const", "comm"]))
    else:
        node_kind = draw(st.sampled_from(["const", "comm", "sum", "max"]))
    if node_kind == "const":
        return Const(draw(st.floats(min_value=0.0, max_value=100.0)))
    if node_kind == "comm":
        num_dims = draw(st.integers(min_value=1, max_value=3))
        coeffs = tuple(
            (dim, draw(st.floats(min_value=0.1, max_value=1e4)))
            for dim in range(num_dims)
        )
        return CommTerm(coeffs)
    children = tuple(
        draw(expressions(depth=depth + 1))
        for _ in range(draw(st.integers(min_value=1, max_value=3)))
    )
    if node_kind == "sum":
        return Sum(children)
    return MaxExpr(children)


@given(expressions(), st.lists(st.floats(min_value=0.5, max_value=100.0), min_size=3, max_size=3))
def test_property_simplify_preserves_value(expr, bandwidths):
    """simplify() must be semantics-preserving at every bandwidth point."""
    assert simplify(expr).evaluate(bandwidths) == pytest.approx(
        expr.evaluate(bandwidths), rel=1e-9, abs=1e-12
    )


@given(expressions(), st.lists(st.floats(min_value=0.5, max_value=100.0), min_size=3, max_size=3))
def test_property_expressions_nonnegative(expr, bandwidths):
    assert expr.evaluate(bandwidths) >= 0.0


@given(expressions())
def test_property_simplify_never_grows(expr):
    assert count_nodes(simplify(expr)) <= count_nodes(expr)


@given(
    expressions(),
    st.lists(st.floats(min_value=0.5, max_value=50.0), min_size=3, max_size=3),
    st.floats(min_value=1.1, max_value=4.0),
)
def test_property_monotone_in_bandwidth(expr, bandwidths, factor):
    """More bandwidth never makes training slower."""
    faster = [b * factor for b in bandwidths]
    assert expr.evaluate(faster) <= expr.evaluate(bandwidths) + 1e-12

"""TACOS-style collective synthesis (Fig. 20's mechanism)."""

import pytest

from repro.runtime import multirail_all_reduce_time, synthesize_all_gather
from repro.topology import MultiDimNetwork, get_topology
from repro.utils import gb, gbps, mb
from repro.utils.errors import ConfigurationError


@pytest.fixture(scope="module")
def torus():
    return get_topology("3D-Torus")


class TestSynthesis:
    def test_all_npus_receive_everything(self, torus):
        result = synthesize_all_gather(torus, [gbps(100)] * 3, mb(64), chunks_per_npu=2)
        # Every chunk must be delivered to the 63 NPUs that lack it.
        deliveries = {}
        for transfer in result.transfers:
            deliveries.setdefault(transfer.chunk, set()).add(transfer.dst)
        assert len(deliveries) == result.num_chunks_total
        for chunk, receivers in deliveries.items():
            origin = chunk // 2
            assert len(receivers) == 63
            assert origin not in receivers

    def test_no_duplicate_deliveries(self, torus):
        result = synthesize_all_gather(torus, [gbps(100)] * 3, mb(64), chunks_per_npu=2)
        seen = set()
        for transfer in result.transfers:
            key = (transfer.chunk, transfer.dst)
            assert key not in seen, "chunk delivered twice to the same NPU"
            seen.add(key)

    def test_beats_multirail_on_equal_bw(self, torus):
        """The whole point: topology-aware synthesis uses all dims at once,
        the staged multi-rail algorithm cannot (on EqualBW)."""
        bw = [gbps(333)] * 3
        synthesized = synthesize_all_gather(torus, bw, gb(1), chunks_per_npu=8)
        staged = multirail_all_reduce_time(torus, bw, gb(1), num_chunks=8)
        assert synthesized.all_reduce_time < staged

    def test_all_reduce_is_twice_all_gather(self, torus):
        result = synthesize_all_gather(torus, [gbps(100)] * 3, mb(64))
        assert result.all_reduce_time == pytest.approx(2 * result.all_gather_time)
        assert result.reduce_scatter_time == pytest.approx(result.all_gather_time)

    def test_lower_bound_respected(self, torus):
        """AG must move (G-1)/G of the payload into every NPU; with 6 ports
        per NPU the makespan is bounded below by that injection time."""
        bw = [gbps(100)] * 3
        payload = gb(1)
        result = synthesize_all_gather(torus, bw, payload, chunks_per_npu=8)
        per_npu_bytes = payload * 63 / 64
        bound = per_npu_bytes / sum(bw)
        assert result.makespan >= bound * 0.999

    def test_deterministic(self, torus):
        first = synthesize_all_gather(torus, [gbps(100)] * 3, mb(64))
        second = synthesize_all_gather(torus, [gbps(100)] * 3, mb(64))
        assert first.makespan == second.makespan
        assert first.transfers == second.transfers


class TestValidation:
    def test_switch_topology_rejected(self):
        net = MultiDimNetwork.from_notation("RI(4)_SW(4)")
        with pytest.raises(ConfigurationError, match="switchless"):
            synthesize_all_gather(net, [gbps(10)] * 2, mb(1))

    def test_bad_size(self, torus):
        with pytest.raises(ConfigurationError):
            synthesize_all_gather(torus, [gbps(10)] * 3, 0.0)

    def test_bad_chunks(self, torus):
        with pytest.raises(ConfigurationError):
            synthesize_all_gather(torus, [gbps(10)] * 3, mb(1), chunks_per_npu=0)


class TestSmallRing:
    def test_ring_all_gather_near_optimal(self):
        """On a single ring the synthesized AG should approach the classic
        ring algorithm's time: m·(k−1)/(k·B)."""
        net = MultiDimNetwork.from_notation("RI(4)")
        bw = [gbps(100)]
        payload = mb(400)
        result = synthesize_all_gather(net, bw, payload, chunks_per_npu=4)
        ring_time = payload * 3 / 4 / gbps(100)
        assert result.makespan <= ring_time * 1.5
        assert result.makespan >= ring_time * 0.999

"""Themis-style dynamic chunk scheduling (Fig. 19's mechanism)."""

import pytest

from repro.collectives import DimSpan, all_reduce, collective_time
from repro.runtime import ThemisScheduler, themis_scheduler_factory
from repro.simulator import simulate_collective
from repro.utils import gb, gbps


class TestThemisScheduler:
    def test_improves_equal_bw_network(self):
        """On an EqualBW 4D network the canonical order starves dims 2–4;
        Themis reclaims a large share of the idle bandwidth."""
        op = all_reduce(gb(1), (DimSpan(0, 4), DimSpan(1, 8), DimSpan(2, 4), DimSpan(3, 32)))
        bw = [gbps(125)] * 4
        fixed = simulate_collective(op, bw, num_chunks=64)
        themis = simulate_collective(op, bw, num_chunks=64, scheduler=ThemisScheduler())
        assert themis.finish_time < fixed.finish_time * 0.75
        assert (
            themis.report.aggregate_utilization
            > fixed.report.aggregate_utilization * 1.5
        )

    def test_no_regression_on_optimized_network(self):
        """On a traffic-proportional allocation the canonical order is
        already near-ideal; Themis must not be much worse."""
        from repro.collectives import ideal_bandwidth_split

        op = all_reduce(gb(1), (DimSpan(0, 4), DimSpan(1, 8), DimSpan(2, 4)))
        split = ideal_bandwidth_split(op, gbps(600))
        bw = [split[d] for d in range(3)]
        fixed = simulate_collective(op, bw, num_chunks=64)
        themis = simulate_collective(op, bw, num_chunks=64, scheduler=ThemisScheduler())
        assert themis.finish_time <= fixed.finish_time * 1.1

    def test_never_below_analytical_bound(self):
        op = all_reduce(gb(1), (DimSpan(0, 4), DimSpan(1, 8)))
        bw = [gbps(125), gbps(125)]
        themis = simulate_collective(op, bw, num_chunks=32, scheduler=ThemisScheduler())
        # Themis reorders stages, so the per-dim traffic can change, but the
        # total data each chunk must move through its spans cannot shrink
        # below the best single-dimension bound.
        assert themis.finish_time > 0

    def test_deterministic(self):
        op = all_reduce(gb(1), (DimSpan(0, 4), DimSpan(1, 8), DimSpan(2, 4)))
        bw = [gbps(100), gbps(150), gbps(250)]
        first = simulate_collective(op, bw, num_chunks=16, scheduler=ThemisScheduler())
        second = simulate_collective(op, bw, num_chunks=16, scheduler=ThemisScheduler())
        assert first.finish_time == second.finish_time

    def test_factory(self):
        assert isinstance(themis_scheduler_factory(), ThemisScheduler)

    def test_single_dim_equals_fixed(self):
        op = all_reduce(gb(1), (DimSpan(0, 8),))
        bw = [gbps(100)]
        fixed = simulate_collective(op, bw, num_chunks=16)
        themis = simulate_collective(op, bw, num_chunks=16, scheduler=ThemisScheduler())
        assert themis.finish_time == pytest.approx(fixed.finish_time)


class TestStepLevelFallback:
    def test_step_never_meaningfully_slower_than_canonical(self):
        """Regression (hypothesis-found): on RI(2)_RI(2)_RI(2) with skewed
        bandwidths, the greedy plan's load projection ignores intra-chunk
        serialization and used to simulate ~18% slower than the canonical
        order. The step simulator now keeps whichever order simulates
        faster, honouring the documented fallback contract."""
        from repro.collectives.types import CollectiveType
        from repro.simulator import simulate_training_step
        from repro.topology.network import MultiDimNetwork
        from repro.workloads.layers import CommRequirement, CommScope, Layer
        from repro.workloads.parallelism import Parallelism
        from repro.workloads.workload import Workload

        network = MultiDimNetwork.from_notation("RI(2)_RI(2)_RI(2)")
        workload = Workload(
            name="prop",
            layers=(
                Layer(
                    name="layer0",
                    dp_comms=(
                        CommRequirement(
                            CommScope.DP, CollectiveType.ALL_REDUCE, 1e6
                        ),
                    ),
                ),
            ),
            parallelism=Parallelism(tp=1, dp=8),
        )
        bandwidths = [13e9, 9e9, 5e9]
        fixed = simulate_training_step(
            workload, network, bandwidths, num_chunks=8
        ).total_time
        themis = simulate_training_step(
            workload, network, bandwidths, num_chunks=8,
            scheduler_factory=ThemisScheduler,
        ).total_time
        assert themis <= fixed * (1 + 1e-9)

"""Closed-form collective time model: bottleneck semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collectives import (
    DimSpan,
    all_reduce,
    bottleneck_dim,
    collective_time,
    dim_utilization,
    ideal_bandwidth_split,
)
from repro.utils import gbps
from repro.utils.errors import ConfigurationError


class TestCollectiveTime:
    def test_single_dim(self):
        op = all_reduce(gbps(1), (DimSpan(0, 4),))  # 1 GB payload
        time = collective_time(op, [gbps(100)])
        assert time == pytest.approx(2 * 1e9 * 0.75 / 100e9)

    def test_max_over_dims(self):
        op = all_reduce(1000.0, (DimSpan(0, 4), DimSpan(1, 4)))
        fast_dim1 = collective_time(op, [10.0, 1000.0])
        assert fast_dim1 == pytest.approx(2 * 1000 * 0.75 / 10.0)

    def test_trivial_is_free(self):
        assert collective_time(all_reduce(0.0, (DimSpan(0, 2),)), [1.0]) == 0.0
        assert collective_time(all_reduce(10.0, ()), [1.0]) == 0.0

    def test_missing_bandwidth_rejected(self):
        op = all_reduce(10.0, (DimSpan(0, 2), DimSpan(1, 2)))
        with pytest.raises(ConfigurationError):
            collective_time(op, [1.0])

    def test_zero_bandwidth_rejected(self):
        op = all_reduce(10.0, (DimSpan(0, 2),))
        with pytest.raises(ConfigurationError):
            collective_time(op, [0.0])


class TestBottleneck:
    def test_underprovisioned_dim_is_bottleneck(self):
        """Fig. 9(a)/(b): the starved dimension dominates."""
        op = all_reduce(1000.0, (DimSpan(0, 4), DimSpan(1, 4), DimSpan(2, 4)))
        assert bottleneck_dim(op, [1.0, 1e6, 1e6]) == 0
        assert bottleneck_dim(op, [1e6, 1.0, 1e6]) == 1
        assert bottleneck_dim(op, [1e6, 1e6, 1.0]) == 2

    def test_trivial_none(self):
        assert bottleneck_dim(all_reduce(10.0, ()), [1.0]) is None

    def test_utilization_bottleneck_is_one(self):
        op = all_reduce(1000.0, (DimSpan(0, 4), DimSpan(1, 4)))
        util = dim_utilization(op, [10.0, 1000.0])
        assert util[0] == pytest.approx(1.0)
        assert util[1] < 0.05


class TestIdealSplit:
    def test_proportional_to_traffic(self):
        """Sec. III-C: with a 4-way first dim, Dim 2 deserves 1/4 the BW."""
        op = all_reduce(1000.0, (DimSpan(0, 4), DimSpan(1, 4)))
        split = ideal_bandwidth_split(op, 100.0)
        assert split[1] == pytest.approx(split[0] / 4)
        assert sum(split.values()) == pytest.approx(100.0)

    def test_equalizes_completion_times(self):
        op = all_reduce(1000.0, (DimSpan(0, 3), DimSpan(1, 5), DimSpan(2, 2)))
        split = ideal_bandwidth_split(op, 250.0)
        util = dim_utilization(op, [split[0], split[1], split[2]])
        for value in util.values():
            assert value == pytest.approx(1.0)

    def test_rejects_bad_budget(self):
        with pytest.raises(ConfigurationError):
            ideal_bandwidth_split(all_reduce(1.0, (DimSpan(0, 2),)), 0.0)


@given(
    st.lists(st.integers(min_value=2, max_value=10), min_size=1, max_size=4),
    st.floats(min_value=1.0, max_value=1e6),
)
def test_property_ideal_split_is_optimal(sizes, size_bytes):
    """The traffic-proportional split beats any perturbed allocation."""
    spans = tuple(DimSpan(dim, s) for dim, s in enumerate(sizes))
    op = all_reduce(size_bytes, spans)
    budget = 1000.0
    split = ideal_bandwidth_split(op, budget)
    ideal_bw = [split[dim] for dim in range(len(sizes))]
    best = collective_time(op, ideal_bw)
    if len(sizes) >= 2:
        perturbed = list(ideal_bw)
        delta = perturbed[0] * 0.2
        perturbed[0] -= delta
        perturbed[1] += delta
        assert collective_time(op, perturbed) >= best - 1e-12

"""Per-dimension traffic formulas (Sec. IV-C) and their invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collectives import (
    CollectiveOp,
    CollectiveType,
    DimSpan,
    all_gather,
    all_reduce,
    all_to_all,
    per_dim_traffic,
    reduce_scatter,
    span_traffic,
    total_traffic,
    traffic_coefficients,
)
from repro.utils.errors import ConfigurationError


class TestPaperFormulas:
    """The exact 2D formulas quoted in Sec. IV-C."""

    def test_all_reduce_2d(self):
        m, n1, n2 = 1000.0, 3, 2
        op = all_reduce(m, (DimSpan(0, n1), DimSpan(1, n2)))
        traffic = per_dim_traffic(op)
        assert traffic[0] == pytest.approx(2 * m * (n1 - 1) / n1)
        assert traffic[1] == pytest.approx(2 * m * (n2 - 1) / (n1 * n2))

    def test_reduce_scatter_half_of_all_reduce(self):
        m = 640.0
        spans = (DimSpan(0, 4), DimSpan(1, 8))
        ar = per_dim_traffic(all_reduce(m, spans))
        rs = per_dim_traffic(reduce_scatter(m, spans))
        for dim in ar:
            assert rs[dim] == pytest.approx(ar[dim] / 2)

    def test_all_gather_equals_reduce_scatter(self):
        m = 640.0
        spans = (DimSpan(0, 4), DimSpan(1, 8))
        assert per_dim_traffic(all_gather(m, spans)) == per_dim_traffic(
            reduce_scatter(m, spans)
        )

    def test_all_to_all_no_decay(self):
        m, n1, n2 = 1000.0, 4, 8
        op = all_to_all(m, (DimSpan(0, n1), DimSpan(1, n2)))
        traffic = per_dim_traffic(op)
        assert traffic[0] == pytest.approx(m * (n1 - 1) / n1)
        assert traffic[1] == pytest.approx(m * (n2 - 1) / n2)

    def test_fig8_quarter_payload(self):
        """Sec. III-C: on a 4×k network Dim 2's requirement is 1/4 of Dim 1's
        requirement scaled by (e2-1)/(e2) ratios — check the 4x4 case where
        the paper's 1/4 statement is exact for same-size dims."""
        op = all_reduce(1000.0, (DimSpan(0, 4), DimSpan(1, 4)))
        traffic = per_dim_traffic(op)
        assert traffic[1] == pytest.approx(traffic[0] / 4)


class TestInNetwork:
    def test_offload_reduces_traffic(self):
        m = 1000.0
        spans = (DimSpan(0, 4), DimSpan(1, 8))
        plain = per_dim_traffic(all_reduce(m, spans))
        offloaded = per_dim_traffic(all_reduce(m, spans), in_network_dims={1})
        assert offloaded[1] == pytest.approx(m / 4)  # m / (e_1)
        assert offloaded[1] < plain[1] * 2  # cheaper than 2x RS+AG volume
        assert offloaded[0] == plain[0]

    def test_offload_dim0(self):
        m = 1000.0
        op = all_reduce(m, (DimSpan(0, 4),))
        assert per_dim_traffic(op, in_network_dims={0})[0] == pytest.approx(m)

    def test_all_to_all_ignores_offload(self):
        m = 1000.0
        op = all_to_all(m, (DimSpan(0, 4),))
        assert per_dim_traffic(op, in_network_dims={0}) == per_dim_traffic(op)


class TestEdges:
    def test_trivial_op_empty(self):
        assert per_dim_traffic(all_reduce(0.0, (DimSpan(0, 2),))) == {}
        assert per_dim_traffic(all_reduce(10.0, ())) == {}

    def test_span_traffic_index_out_of_range(self):
        with pytest.raises(ConfigurationError):
            span_traffic(CollectiveType.ALL_REDUCE, 1.0, (2, 2), 2)

    def test_coefficients_sorted(self):
        op = all_reduce(10.0, (DimSpan(1, 2), DimSpan(3, 2)))
        coeffs = traffic_coefficients(op)
        assert [dim for dim, _ in coeffs] == [1, 3]

    def test_total_traffic_sums(self):
        op = all_reduce(10.0, (DimSpan(0, 2), DimSpan(1, 2)))
        assert total_traffic(op) == pytest.approx(sum(per_dim_traffic(op).values()))


@st.composite
def collective_ops(draw):
    """Random collective ops over up to 4 spans."""
    num_spans = draw(st.integers(min_value=1, max_value=4))
    sizes = draw(
        st.lists(
            st.integers(min_value=2, max_value=16),
            min_size=num_spans,
            max_size=num_spans,
        )
    )
    kind = draw(st.sampled_from(list(CollectiveType)))
    size_bytes = draw(st.floats(min_value=1.0, max_value=1e9))
    spans = tuple(DimSpan(dim, size) for dim, size in enumerate(sizes))
    return CollectiveOp(kind, size_bytes, spans)


@given(collective_ops())
def test_property_traffic_positive_and_bounded(op):
    """Every span's traffic is positive and at most 2m (the All-Reduce cap)."""
    traffic = per_dim_traffic(op)
    assert set(traffic) == {span.dim for span in op.spans}
    for volume in traffic.values():
        assert 0 < volume <= 2 * op.size_bytes + 1e-9


@given(collective_ops())
def test_property_traffic_decays_with_dim(op):
    """For reducing collectives, traffic never grows toward outer spans
    (the multi-rail load-reduction property of Sec. III-B)."""
    if op.kind is CollectiveType.ALL_TO_ALL:
        return
    traffic = per_dim_traffic(op)
    ordered = [traffic[span.dim] for span in op.spans]
    for inner, outer in zip(ordered, ordered[1:]):
        assert outer <= inner * 1.0000001


@given(collective_ops())
def test_property_all_reduce_is_rs_plus_ag(op):
    """All-Reduce traffic equals Reduce-Scatter + All-Gather per dim."""
    ar = per_dim_traffic(CollectiveOp(CollectiveType.ALL_REDUCE, op.size_bytes, op.spans))
    rs = per_dim_traffic(CollectiveOp(CollectiveType.REDUCE_SCATTER, op.size_bytes, op.spans))
    ag = per_dim_traffic(CollectiveOp(CollectiveType.ALL_GATHER, op.size_bytes, op.spans))
    for dim in ar:
        assert ar[dim] == pytest.approx(rs[dim] + ag[dim])

"""In-network collective offload semantics (Sec. IV-C)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collectives import (
    CollectiveOp,
    CollectiveType,
    DimSpan,
    all_gather,
    all_reduce,
    per_dim_traffic,
    reduce_scatter,
)


class TestOffloadFormulas:
    def test_all_reduce_offload_roughly_halves(self):
        """Fused All-Reduce: 2m(e−1)/(prefix·e) → m/prefix."""
        m = 1024.0
        spans = (DimSpan(0, 4), DimSpan(1, 8))
        plain = per_dim_traffic(all_reduce(m, spans))
        offloaded = per_dim_traffic(all_reduce(m, spans), in_network_dims={1})
        assert offloaded[1] == pytest.approx(m / 4)
        assert plain[1] == pytest.approx(2 * m * 7 / (4 * 8))
        assert offloaded[1] < plain[1]

    def test_reduce_scatter_offload_never_engaged(self):
        """m/prefix exceeds RS's m(e−1)/(prefix·e); the min keeps NPU-driven."""
        m = 1024.0
        spans = (DimSpan(0, 4), DimSpan(1, 8))
        plain = per_dim_traffic(reduce_scatter(m, spans))
        offloaded = per_dim_traffic(reduce_scatter(m, spans), in_network_dims={1})
        assert offloaded[1] == pytest.approx(plain[1])

    def test_all_gather_offload_never_engaged(self):
        m = 1024.0
        spans = (DimSpan(0, 4),)
        plain = per_dim_traffic(all_gather(m, spans))
        offloaded = per_dim_traffic(all_gather(m, spans), in_network_dims={0})
        assert offloaded[0] == pytest.approx(plain[0])

    def test_offload_only_affects_selected_dims(self):
        m = 1024.0
        spans = (DimSpan(0, 4), DimSpan(1, 8), DimSpan(2, 4))
        plain = per_dim_traffic(all_reduce(m, spans))
        offloaded = per_dim_traffic(all_reduce(m, spans), in_network_dims={2})
        assert offloaded[0] == plain[0]
        assert offloaded[1] == plain[1]
        assert offloaded[2] < plain[2]

    def test_offload_break_even_on_size_two_spans(self):
        """For e = 2, All-Reduce moves 2m(e−1)/e = m per prefix unit — the
        offload's m/prefix is exactly break-even, not a win."""
        m = 1024.0
        spans = (DimSpan(0, 2),)
        plain = per_dim_traffic(all_reduce(m, spans))
        offloaded = per_dim_traffic(all_reduce(m, spans), in_network_dims={0})
        assert offloaded[0] == pytest.approx(plain[0])


@st.composite
def reducing_ops(draw):
    num_spans = draw(st.integers(min_value=1, max_value=4))
    sizes = draw(
        st.lists(st.integers(min_value=2, max_value=16), min_size=num_spans, max_size=num_spans)
    )
    kind = draw(
        st.sampled_from(
            [
                CollectiveType.ALL_REDUCE,
                CollectiveType.REDUCE_SCATTER,
                CollectiveType.ALL_GATHER,
            ]
        )
    )
    size_bytes = draw(st.floats(min_value=1.0, max_value=1e9))
    spans = tuple(DimSpan(dim, size) for dim, size in enumerate(sizes))
    return CollectiveOp(kind, size_bytes, spans)


@given(reducing_ops(), st.data())
def test_property_offload_never_increases_traffic(op, data):
    """Enabling in-network offload on any dimension subset can only reduce
    (or preserve) every dimension's traffic — the min() contract."""
    dims = [span.dim for span in op.spans]
    subset = frozenset(data.draw(st.sets(st.sampled_from(dims))) if dims else ())
    plain = per_dim_traffic(op)
    offloaded = per_dim_traffic(op, in_network_dims=subset)
    for dim in plain:
        assert offloaded[dim] <= plain[dim] * (1 + 1e-12)


@given(reducing_ops())
def test_property_all_reduce_offload_bounded_by_double(op):
    """Offloaded All-Reduce traffic is never below half the NPU-driven value
    (the switch still has to receive the payload once)."""
    if op.kind is not CollectiveType.ALL_REDUCE:
        return
    dims = frozenset(span.dim for span in op.spans)
    plain = per_dim_traffic(op)
    offloaded = per_dim_traffic(op, in_network_dims=dims)
    for dim in plain:
        assert offloaded[dim] >= plain[dim] / 2 - 1e-9

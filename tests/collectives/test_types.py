"""CollectiveOp and DimSpan semantics."""

import pytest

from repro.collectives import (
    CollectiveOp,
    CollectiveType,
    DimSpan,
    all_gather,
    all_reduce,
    all_to_all,
    reduce_scatter,
)
from repro.utils.errors import ConfigurationError


class TestDimSpan:
    def test_valid(self):
        span = DimSpan(2, 8)
        assert span.dim == 2 and span.size == 8

    def test_negative_dim_rejected(self):
        with pytest.raises(ConfigurationError):
            DimSpan(-1, 4)

    def test_size_one_rejected(self):
        with pytest.raises(ConfigurationError, match="must be >= 2"):
            DimSpan(0, 1)


class TestCollectiveOp:
    def test_group_size(self):
        op = all_reduce(100.0, (DimSpan(0, 4), DimSpan(1, 8)))
        assert op.group_size == 32

    def test_empty_spans_is_trivial(self):
        op = all_reduce(100.0, ())
        assert op.is_trivial
        assert op.group_size == 1

    def test_zero_size_is_trivial(self):
        assert all_reduce(0.0, (DimSpan(0, 4),)).is_trivial

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            all_reduce(-1.0, (DimSpan(0, 4),))

    def test_duplicate_dims_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            all_reduce(10.0, (DimSpan(1, 4), DimSpan(1, 2)))

    def test_unordered_spans_rejected(self):
        with pytest.raises(ConfigurationError, match="innermost-first"):
            all_reduce(10.0, (DimSpan(2, 4), DimSpan(0, 2)))

    def test_scaled(self):
        op = all_reduce(128.0, (DimSpan(0, 4),), label="x")
        half = op.scaled(0.5)
        assert half.size_bytes == 64.0
        assert half.spans == op.spans
        assert half.label == "x"

    def test_scaled_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            all_reduce(128.0, (DimSpan(0, 4),)).scaled(-1.0)

    def test_with_label(self):
        op = all_reduce(1.0, (DimSpan(0, 2),)).with_label("renamed")
        assert op.label == "renamed"

    def test_constructor_kinds(self):
        spans = (DimSpan(0, 2),)
        assert all_reduce(1.0, spans).kind is CollectiveType.ALL_REDUCE
        assert reduce_scatter(1.0, spans).kind is CollectiveType.REDUCE_SCATTER
        assert all_gather(1.0, spans).kind is CollectiveType.ALL_GATHER
        assert all_to_all(1.0, spans).kind is CollectiveType.ALL_TO_ALL

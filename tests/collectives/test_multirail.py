"""Multi-rail stage decomposition (Sec. II-C) vs the closed-form traffic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collectives import (
    CollectiveOp,
    CollectiveType,
    DimSpan,
    StagePhase,
    all_gather,
    all_reduce,
    all_to_all,
    decompose,
    per_dim_traffic,
    reduce_scatter,
    stage_volumes_per_dim,
)


class TestStageStructure:
    def test_all_reduce_has_2n_stages(self):
        op = all_reduce(100.0, (DimSpan(0, 4), DimSpan(1, 8), DimSpan(2, 2)))
        stages = decompose(op)
        assert len(stages) == 6
        phases = [stage.phase for stage in stages]
        assert phases[:3] == [StagePhase.REDUCE_SCATTER] * 3
        assert phases[3:] == [StagePhase.ALL_GATHER] * 3

    def test_rs_ascending_ag_descending(self):
        op = all_reduce(100.0, (DimSpan(0, 2), DimSpan(1, 2), DimSpan(3, 2)))
        dims = [stage.dim for stage in decompose(op)]
        assert dims == [0, 1, 3, 3, 1, 0]

    def test_reduce_scatter_only_rs(self):
        op = reduce_scatter(100.0, (DimSpan(0, 4), DimSpan(1, 2)))
        stages = decompose(op)
        assert [s.phase for s in stages] == [StagePhase.REDUCE_SCATTER] * 2

    def test_all_gather_only_ag(self):
        op = all_gather(100.0, (DimSpan(0, 4), DimSpan(1, 2)))
        stages = decompose(op)
        assert [s.phase for s in stages] == [StagePhase.ALL_GATHER] * 2
        assert [s.dim for s in stages] == [1, 0]

    def test_all_to_all_single_pass(self):
        op = all_to_all(100.0, (DimSpan(0, 4), DimSpan(1, 2)))
        stages = decompose(op)
        assert [s.phase for s in stages] == [StagePhase.ALL_TO_ALL] * 2

    def test_trivial_empty(self):
        assert decompose(all_reduce(0.0, (DimSpan(0, 2),))) == []
        assert decompose(all_reduce(5.0, ())) == []


class TestPayloadDecay:
    def test_rs_payload_shrinks(self):
        op = all_reduce(960.0, (DimSpan(0, 4), DimSpan(1, 8)))
        stages = decompose(op)
        assert stages[0].payload_bytes == pytest.approx(960.0)
        assert stages[1].payload_bytes == pytest.approx(240.0)

    def test_ag_mirrors_rs_volumes(self):
        op = all_reduce(960.0, (DimSpan(0, 4), DimSpan(1, 8)))
        stages = decompose(op)
        rs_by_dim = {s.dim: s.volume_bytes for s in stages[:2]}
        ag_by_dim = {s.dim: s.volume_bytes for s in stages[2:]}
        assert rs_by_dim == pytest.approx(ag_by_dim)

    def test_fig8_example_volumes(self):
        """Fig. 8: 3×2 network — Dim 1 RS moves 2/3 m, Dim 2 RS moves 1/6 m."""
        m = 6.0
        op = all_reduce(m, (DimSpan(0, 3), DimSpan(1, 2)))
        stages = decompose(op)
        assert stages[0].volume_bytes == pytest.approx(m * 2 / 3)
        assert stages[1].volume_bytes == pytest.approx(m / 3 * 1 / 2)

    def test_stage_duration(self):
        op = all_reduce(1000.0, (DimSpan(0, 2),))
        stage = decompose(op)[0]
        assert stage.duration(100.0) == pytest.approx(stage.volume_bytes / 100.0)


@st.composite
def ops(draw):
    num_spans = draw(st.integers(min_value=1, max_value=4))
    sizes = draw(
        st.lists(st.integers(min_value=2, max_value=12), min_size=num_spans, max_size=num_spans)
    )
    kind = draw(st.sampled_from(list(CollectiveType)))
    size_bytes = draw(st.floats(min_value=1.0, max_value=1e8))
    return CollectiveOp(kind, size_bytes, tuple(DimSpan(d, s) for d, s in enumerate(sizes)))


@given(ops())
def test_property_stages_match_closed_form(op):
    """The stage decomposition and the Sec. IV-C formulas are two derivations
    of the same per-dimension volumes — they must agree exactly."""
    from_stages = stage_volumes_per_dim(op)
    closed_form = per_dim_traffic(op)
    assert set(from_stages) == set(closed_form)
    for dim in closed_form:
        assert from_stages[dim] == pytest.approx(closed_form[dim], rel=1e-12)


@given(ops())
def test_property_stage_payloads_positive(op):
    for stage in decompose(op):
        assert stage.payload_bytes > 0
        assert stage.volume_bytes > 0
        assert stage.volume_bytes < stage.payload_bytes * stage.span_size

"""Topology-aware unit algorithm schedules (Fig. 7)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collectives import (
    direct_schedule,
    halving_doubling_schedule,
    phase_schedule,
    phase_volume,
    ring_schedule,
)
from repro.utils.errors import ConfigurationError


class TestRing:
    def test_step_count(self):
        assert ring_schedule(4, 1000.0).num_steps == 3

    def test_per_step_volume(self):
        schedule = ring_schedule(4, 1000.0)
        for step in schedule.steps:
            assert step.volume_bytes == pytest.approx(250.0)
            assert step.peer_count == 1

    def test_total_volume(self):
        assert ring_schedule(5, 1000.0).total_volume == pytest.approx(800.0)


class TestDirect:
    def test_single_step(self):
        schedule = direct_schedule(8, 1000.0)
        assert schedule.num_steps == 1
        assert schedule.steps[0].peer_count == 7

    def test_total_volume(self):
        assert direct_schedule(8, 1000.0).total_volume == pytest.approx(875.0)


class TestHalvingDoubling:
    def test_log_steps_for_power_of_two(self):
        schedule = halving_doubling_schedule(8, 1000.0)
        assert schedule.num_steps == 3
        volumes = [step.volume_bytes for step in schedule.steps]
        assert volumes == pytest.approx([500.0, 250.0, 125.0])

    def test_total_volume(self):
        assert halving_doubling_schedule(8, 1000.0).total_volume == pytest.approx(875.0)

    def test_non_power_of_two_falls_back_to_direct(self):
        schedule = halving_doubling_schedule(3, 900.0)
        assert schedule.algorithm == "halving_doubling"
        assert schedule.num_steps == 1
        assert schedule.total_volume == pytest.approx(600.0)


class TestDispatch:
    def test_phase_schedule_lookup(self):
        assert phase_schedule("ring", 4, 100.0).algorithm == "ring"
        assert phase_schedule("direct", 4, 100.0).algorithm == "direct"

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            phase_schedule("butterfly", 4, 100.0)

    def test_bad_size(self):
        with pytest.raises(ConfigurationError):
            ring_schedule(1, 100.0)

    def test_negative_payload(self):
        with pytest.raises(ConfigurationError):
            direct_schedule(4, -1.0)


class TestDuration:
    def test_bandwidth_only(self):
        schedule = ring_schedule(4, 1000.0)
        assert schedule.duration(100.0) == pytest.approx(7.5)

    def test_step_latency_added(self):
        schedule = ring_schedule(4, 1000.0)
        assert schedule.duration(100.0, step_latency=0.5) == pytest.approx(7.5 + 1.5)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            ring_schedule(4, 1000.0).duration(0.0)


@given(
    st.sampled_from(["ring", "direct", "halving_doubling"]),
    st.integers(min_value=2, max_value=64),
    st.floats(min_value=0.0, max_value=1e9),
)
def test_property_all_algorithms_move_same_volume(algorithm, size, payload):
    """Fig. 7's algorithms are interchangeable at the bandwidth level: every
    schedule's volume equals the closed-form m·(e−1)/e."""
    schedule = phase_schedule(algorithm, size, payload)
    assert schedule.total_volume == pytest.approx(phase_volume(size, payload), rel=1e-9)

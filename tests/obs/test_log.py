"""Structured logging: formats, idempotent setup, the env default."""

import io
import json
import logging

import pytest

from repro.obs import get_logger, reset_logging, setup_logging
from repro.obs.log import ENV_VAR, parse_level


class TestGetLogger:
    def test_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("serve.http").name == "repro.serve.http"

    def test_silent_by_default(self, capsys):
        get_logger("quiet").info("nothing to see")
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""


class TestSetup:
    def test_human_format_line(self):
        stream = io.StringIO()
        setup_logging(level="info", stream=stream)
        get_logger("unit").info(
            "request", extra={"fields": {"status": 200, "path": "/healthz"}}
        )
        line = stream.getvalue().strip()
        assert " info repro.unit request " in line
        assert line.endswith("path=/healthz status=200")

    def test_json_format_line(self):
        stream = io.StringIO()
        setup_logging(level="info", json_format=True, stream=stream)
        get_logger("unit").info(
            "request", extra={"fields": {"status": 200}}
        )
        payload = json.loads(stream.getvalue())
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.unit"
        assert payload["msg"] == "request"
        assert payload["status"] == 200
        assert isinstance(payload["ts"], float)

    def test_level_threshold(self):
        stream = io.StringIO()
        setup_logging(level="warning", stream=stream)
        get_logger("unit").info("dropped")
        get_logger("unit").warning("kept")
        assert "dropped" not in stream.getvalue()
        assert "kept" in stream.getvalue()

    def test_reconfiguration_replaces_not_stacks(self):
        first, second = io.StringIO(), io.StringIO()
        setup_logging(level="info", stream=first)
        setup_logging(level="info", stream=second)
        get_logger("unit").info("once")
        assert first.getvalue() == ""
        assert second.getvalue().count("once") == 1

    def test_env_var_sets_default_level(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "debug")
        stream = io.StringIO()
        setup_logging(stream=stream)
        get_logger("unit").debug("visible")
        assert "visible" in stream.getvalue()

    def test_exception_is_appended(self):
        stream = io.StringIO()
        setup_logging(level="error", stream=stream)
        try:
            raise ValueError("boom")
        except ValueError:
            get_logger("unit").exception("failed")
        assert "ValueError: boom" in stream.getvalue()

    def test_reset_silences_again(self, capsys):
        stream = io.StringIO()
        setup_logging(level="info", stream=stream)
        reset_logging()
        get_logger("unit").info("after reset")
        assert "after reset" not in stream.getvalue()
        captured = capsys.readouterr()
        assert captured.err == ""


class TestParseLevel:
    def test_known_levels(self):
        assert parse_level("info") == logging.INFO
        assert parse_level(" DEBUG ") == logging.DEBUG

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            parse_level("verbose")

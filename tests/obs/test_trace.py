"""Tracer spans: nesting, Chrome export, summaries, the no-op default."""

import json
import threading
import time

from repro.obs import (
    NULL_TRACER,
    Tracer,
    get_tracer,
    reset_tracing,
    set_tracer,
    use_tracer,
)
from repro.obs.trace import _NULL_SPAN


class TestSpans:
    def test_span_records_name_attrs_and_duration(self):
        tracer = Tracer()
        with tracer.span("work", attrs={"k": "v"}) as span:
            time.sleep(0.002)
            span.set("extra", 7)
        (record,) = tracer.spans()
        assert record.name == "work"
        assert record.attrs == {"k": "v", "extra": 7}
        assert record.duration_s >= 0.002
        assert record.cpu_s >= 0.0

    def test_nesting_depth_tracks_the_stack(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
            with tracer.span("sibling"):
                pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["parent"].depth == 0
        assert by_name["child"].depth == 1
        assert by_name["sibling"].depth == 1

    def test_span_survives_exceptions(self):
        tracer = Tracer()
        try:
            with tracer.span("doomed"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert [s.name for s in tracer.spans()] == ["doomed"]

    def test_threads_keep_separate_stacks(self):
        tracer = Tracer()

        def worker():
            with tracer.span("thread-root"):
                pass

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The thread's span is a root of its own tid, not a child of main's.
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["thread-root"].depth == 0
        assert by_name["thread-root"].tid != by_name["main-root"].tid


class TestChromeExport:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("outer", attrs={"label": "a"}):
            with tracer.span("inner"):
                time.sleep(0.001)
        return tracer

    def test_export_shape(self):
        payload = self._traced().to_chrome()
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["dur"] >= 0
            assert "cpu_s" in event["args"]

    def test_nesting_is_time_containment(self):
        """Viewers rebuild the tree from containment per tid — the inner
        event must sit inside the outer's [ts, ts+dur] window."""
        events = {e["name"]: e for e in self._traced().to_chrome()["traceEvents"]}
        outer, inner = events["outer"], events["inner"]
        assert outer["tid"] == inner["tid"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1.0

    def test_export_is_deterministic(self):
        tracer = self._traced()
        assert tracer.to_chrome() == tracer.to_chrome()
        assert json.dumps(tracer.to_chrome(), sort_keys=True) == json.dumps(
            tracer.to_chrome(), sort_keys=True
        )

    def test_write_produces_loadable_json(self, tmp_path):
        path = self._traced().write(tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert {e["name"] for e in payload["traceEvents"]} == {"outer", "inner"}

    def test_summary_aggregates_per_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("repeated"):
                pass
        summary = tracer.summary()
        assert summary["repeated"]["count"] == 3
        assert summary["repeated"]["total_s"] >= summary["repeated"]["max_s"]


class TestNullDefault:
    def test_default_tracer_is_the_null_singleton(self):
        assert get_tracer() is NULL_TRACER

    def test_null_spans_are_one_shared_object(self):
        first = NULL_TRACER.span("a")
        second = NULL_TRACER.span("b", attrs={"x": 1})
        assert first is second is _NULL_SPAN
        with first as span:
            span.set("ignored", 1)  # must not raise
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.to_chrome() == {
            "traceEvents": [], "displayTimeUnit": "ms",
        }
        assert NULL_TRACER.summary() == {}

    def test_use_tracer_scopes_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
            with get_tracer().span("inside"):
                pass
        assert get_tracer() is NULL_TRACER
        assert [s.name for s in tracer.spans()] == ["inside"]

    def test_use_tracer_restores_on_exception(self):
        try:
            with use_tracer(Tracer()):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        assert set_tracer(tracer) is NULL_TRACER
        assert set_tracer(NULL_TRACER) is tracer
        reset_tracing()
        assert get_tracer() is NULL_TRACER

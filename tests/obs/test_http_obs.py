"""The HTTP observability surface: /v3/metrics, extended /healthz, JobInfo.metrics."""

import json
import threading
import urllib.request

import pytest

from repro.api.requests import RESPONSE_SCHEMA_VERSION, OptimizeRequest
from repro.api.scenario import build_scenario
from repro.obs import names as obs_names
from repro.serve import JobManager, ServeClient, create_server
from repro.serve.jobs import JobState

TOPOLOGY = "RI(3)_RI(2)"
WORKLOAD = "Turing-NLG"


def _request(total_bw=300):
    return OptimizeRequest(
        scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=total_bw)
    )


def _parse_families(text: str) -> dict[str, float]:
    """Series line → value, plus the set of # TYPE'd family names."""
    values: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            values[name] = float(value)
        except ValueError:
            pass
    return values


@pytest.fixture(scope="module")
def _server_bits():
    manager = JobManager(workers=2)
    server = create_server(manager, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield manager, ServeClient(f"http://{host}:{port}", timeout=120.0)
    finally:
        server.shutdown()
        server.server_close()
        manager.shutdown()


@pytest.fixture
def endpoint(_server_bits):
    """The live client, with metrics freshly enabled for this test.

    The shared ``_obs_isolation`` fixture resets the process registry
    around every test in this package; the server only opts in at
    construction, so each test re-enables and re-points the gauges and
    durability families (the same re-registration path the real server
    uses)."""
    from repro.obs import enable_metrics
    from repro.serve.store import register_durability_families

    manager, client = _server_bits
    registry = enable_metrics()
    manager.register_gauges(registry)
    register_durability_families(registry)
    return client


def _get(endpoint, path):
    with urllib.request.urlopen(endpoint.base_url + path, timeout=30) as reply:
        return reply.headers.get("Content-Type", ""), reply.read().decode()


class TestMetricsEndpoint:
    def test_prometheus_content_type(self, endpoint):
        content_type, _ = _get(endpoint, "/v3/metrics")
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type

    def test_counters_advance_after_a_job(self, endpoint):
        _, before_text = _get(endpoint, "/v3/metrics")
        before = _parse_families(before_text)
        info = endpoint.submit(_request(410))
        assert endpoint.wait(info.id, timeout=120).state is JobState.DONE
        _, after_text = _get(endpoint, "/v3/metrics")
        after = _parse_families(after_text)

        submitted = f'{obs_names.JOBS_SUBMITTED}{{kind="optimize"}}'
        completed = f'{obs_names.JOBS_COMPLETED}{{state="done"}}'
        solves = f'{obs_names.SOLVER_SOLVES}{{scheme="perf",warm="cold"}}'
        assert after[submitted] == before.get(submitted, 0) + 1
        assert after[completed] == before.get(completed, 0) + 1
        assert after[solves] >= before.get(solves, 0) + 1
        run_count = f"{obs_names.JOB_RUN_SECONDS}_count"
        assert after[run_count] == before.get(run_count, 0) + 1
        # The scrape itself is on the ledger too.
        scrape = f'{obs_names.HTTP_REQUESTS}{{route="/v3/metrics",status="200"}}'
        assert after[scrape] >= before.get(scrape, 0) + 1

    def test_gauges_render_at_idle(self, endpoint):
        _, text = _get(endpoint, "/v3/metrics")
        values = _parse_families(text)
        assert values.get(obs_names.JOBS_ACTIVE) == 0
        assert values.get(obs_names.JOB_QUEUE_DEPTH) == 0

    def test_durability_families_render_at_zero(self, endpoint):
        # Pre-registered at server construction: a healthy server that
        # never crashed still scrapes explicit zeros for the recovery and
        # retry ledgers (so dashboards can tell "never" from "missing").
        _, text = _get(endpoint, "/v3/metrics")
        values = _parse_families(text)
        assert values.get(obs_names.JOBS_RECOVERED) == 0
        assert values.get(obs_names.JOB_RETRIES) == 0
        assert values.get(obs_names.CACHE_CORRUPT) == 0
        assert values.get(f"{obs_names.STORE_FSYNC_SECONDS}_count") == 0
        for family in (
            obs_names.JOBS_RECOVERED, obs_names.JOB_RETRIES,
            obs_names.CACHE_CORRUPT, obs_names.STORE_FSYNC_SECONDS,
        ):
            assert f"# TYPE {family}" in text


class TestHealthz:
    def test_extended_payload(self, endpoint):
        info = endpoint.submit(_request(420))
        endpoint.wait(info.id, timeout=120)
        _, body = _get(endpoint, "/healthz")
        payload = json.loads(body)
        assert payload["ok"] is True
        assert payload["schema_version"] == RESPONSE_SCHEMA_VERSION
        assert payload["uptime_s"] >= 0
        assert payload["queue_depth"] == 0
        assert payload["active_jobs"] == 0
        assert payload["terminal_jobs"] >= 1
        assert set(payload["jobs"]) == {
            state.value for state in JobState
        }


class TestJobInfoMetrics:
    def test_lifecycle_latencies_round_trip(self, endpoint):
        info = endpoint.submit(_request(430))
        assert endpoint.wait(info.id, timeout=120).state is JobState.DONE
        final = endpoint.job(info.id)
        assert final.metrics is not None
        assert final.metrics["queue_s"] >= 0
        assert final.metrics["run_s"] > 0
        assert final.metrics["total_s"] >= final.metrics["run_s"]

    def test_metrics_absent_in_raw_envelope_while_unstarted(self):
        """A queued snapshot carries metrics=None on the wire (additive,
        never a fabricated zero)."""
        from repro.serve.jobs import JobInfo, JobRecord, job_content_key

        record = JobRecord(
            "job-x", _request(440), job_content_key(_request(440))
        )
        snapshot = record.info()
        assert snapshot.metrics is None
        assert snapshot.to_dict()["job"]["metrics"] is None
        assert JobInfo.from_dict(snapshot.to_dict()).metrics is None

"""Observability tests share one invariant: leave the process off again.

Tracing, metrics, and logging are process-wide opt-ins; every test here
that flips one on must not leak it into later tests (or into the rest of
the suite, which asserts no-op defaults in places).
"""

from __future__ import annotations

import pytest

from repro.obs import reset_logging, reset_metrics, reset_tracing


@pytest.fixture(autouse=True)
def _obs_isolation():
    # Before as well as after: a server booted by an earlier test module
    # enables metrics process-wide, and these tests assert the defaults.
    reset_tracing()
    reset_metrics()
    reset_logging()
    yield
    reset_tracing()
    reset_metrics()
    reset_logging()

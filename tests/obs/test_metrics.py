"""Metrics registry: instruments, concurrency, Prometheus rendering."""

import threading

import pytest

from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    enable_metrics,
    get_registry,
    reset_metrics,
    set_registry,
)
from repro.obs.metrics import _NULL_INSTRUMENT
from repro.utils.errors import ConfigurationError


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labelled_series_are_independent(self):
        counter = MetricsRegistry().counter("c_total", "", labels=("kind",))
        counter.labels(kind="a").inc()
        counter.labels(kind="a").inc()
        counter.labels(kind="b").inc()
        assert counter.value(kind="a") == 2
        assert counter.value(kind="b") == 1
        assert counter.value(kind="never") == 0

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ConfigurationError, match="only go up"):
            counter.inc(-1)

    def test_wrong_label_set_rejected(self):
        counter = MetricsRegistry().counter("c_total", "", labels=("kind",))
        with pytest.raises(ConfigurationError, match="takes labels"):
            counter.labels(other="x")
        with pytest.raises(ConfigurationError, match="requires labels"):
            counter.inc()

    def test_threaded_increments_never_lose_a_tick(self):
        counter = MetricsRegistry().counter("c_total")
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(1000)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 8000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6

    def test_set_function_reads_at_scrape_time(self):
        depth = [0]
        gauge = MetricsRegistry().gauge("g")
        gauge.set_function(lambda: depth[0])
        assert gauge.value() == 0
        depth[0] = 7
        assert gauge.value() == 7

    def test_failing_function_renders_nan_not_raises(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set_function(lambda: 1 / 0)
        assert "g NaN" in registry.render()


class TestHistogram:
    def test_observations(self):
        histogram = MetricsRegistry().histogram("h_seconds")
        histogram.observe(0.02)
        histogram.observe(7.0)
        assert histogram.observations() == (2, 7.02)

    def test_buckets_render_cumulatively(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds").observe(0.02)
        registry.histogram("h_seconds").observe(7.0)
        text = registry.render()
        # 0.02 lands at le=0.025 and above; 7.0 only from le=10 up.
        assert 'h_seconds_bucket{le="0.01"} 0' in text
        assert 'h_seconds_bucket{le="0.025"} 1' in text
        assert 'h_seconds_bucket{le="5"} 1' in text
        assert 'h_seconds_bucket{le="10"} 2' in text
        assert 'h_seconds_bucket{le="+Inf"} 2' in text
        assert "h_seconds_count 2" in text

    def test_custom_buckets_sorted_and_required(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 0.1))
        assert histogram.buckets == (0.1, 1.0)
        with pytest.raises(ConfigurationError, match="at least one"):
            MetricsRegistry().histogram("h2", buckets=())


class TestRegistry:
    def test_get_or_create_returns_one_family(self):
        registry = MetricsRegistry()
        assert registry.counter("c_total") is registry.counter("c_total")

    def test_conflicting_redefinition_rejected(self):
        registry = MetricsRegistry()
        registry.counter("name", "", labels=("a",))
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.gauge("name")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.counter("name", "", labels=("b",))

    def test_bad_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="metric name"):
            registry.counter("bad-name")
        with pytest.raises(ConfigurationError, match="metric name"):
            registry.counter("ok", "", labels=("bad label",))

    def test_render_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "Things counted.", labels=("kind",)).labels(
            kind='tri"cky\nvalue'
        ).inc()
        registry.gauge("g", "A level.").set(2)
        text = registry.render()
        assert "# HELP c_total Things counted.\n# TYPE c_total counter" in text
        assert 'c_total{kind="tri\\"cky\\nvalue"} 1' in text
        assert "# TYPE g gauge\ng 2" in text
        assert text.endswith("\n")
        assert registry.families() == ["c_total", "g"]

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""


class TestProcessSwitch:
    def test_default_is_null_and_shared(self):
        assert get_registry() is NULL_REGISTRY
        registry = get_registry()
        assert registry.counter("x") is _NULL_INSTRUMENT
        assert registry.histogram("y").labels(a="b") is _NULL_INSTRUMENT
        registry.counter("x").inc()  # must be free and silent
        assert registry.render() == ""
        assert registry.families() == []

    def test_enable_metrics_is_idempotent(self):
        first = enable_metrics()
        assert isinstance(first, MetricsRegistry)
        assert get_registry() is first
        assert enable_metrics() is first  # no second registry
        reset_metrics()
        assert get_registry() is NULL_REGISTRY

    def test_set_registry_returns_previous(self):
        mine = MetricsRegistry()
        assert set_registry(mine) is NULL_REGISTRY
        assert isinstance(set_registry(NULL_REGISTRY), MetricsRegistry)

    def test_null_registry_type_is_replaceable(self):
        assert isinstance(NullRegistry(), NullRegistry)

"""Instrumentation must observe, never perturb.

The contract every instrumented layer makes: with tracing and metrics
enabled, the numbers coming out of the solver, the sweep engine, and the
service are bit-identical to the no-op default — observability changes
what you can *see*, never what you *get*.
"""

import pytest

from repro.api.requests import BatchRequest, OptimizeRequest
from repro.api.scenario import build_scenario
from repro.api.service import LibraService
from repro.explore import ResultCache, SweepSpec, run_sweep
from repro.obs import MetricsRegistry, Tracer, set_registry, use_tracer
from repro.obs import names as obs_names

TOPOLOGY = "RI(3)_RI(2)"
WORKLOAD = "Turing-NLG"

SPEC = SweepSpec(
    workloads=(WORKLOAD,),
    topologies=(TOPOLOGY,),
    bandwidths_gbps=(100.0, 200.0),
    schemes=("perf",),
)


def _optimize():
    scenario = build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
    return LibraService().submit(OptimizeRequest(scenario=scenario))


class TestNoOpEquivalence:
    def test_optimize_bit_identical_tracing_on_vs_off(self):
        baseline = _optimize()
        set_registry(MetricsRegistry())
        with use_tracer(Tracer()):
            observed = _optimize()
        assert observed.to_dict() == baseline.to_dict()
        assert observed.point.bandwidths == baseline.point.bandwidths

    def test_sweep_bit_identical_tracing_on_vs_off(self):
        baseline = run_sweep(SPEC)
        set_registry(MetricsRegistry())
        with use_tracer(Tracer()):
            observed = run_sweep(SPEC)
        assert observed.to_dict() == baseline.to_dict()


class TestSpanCoverage:
    def test_sweep_emits_the_documented_span_taxonomy(self):
        tracer = Tracer()
        with use_tracer(tracer):
            sweep = run_sweep(SPEC)
        names = {span.name for span in tracer.spans()}
        assert {"sweep", "sweep.lookup", "chain", "cell", "solve"} <= names
        assert sweep.num_errors == 0
        cells = [s for s in tracer.spans() if s.name == "cell"]
        assert len(cells) == len(sweep.results)
        assert all(cell.attrs["status"] == "solved" for cell in cells)

    def test_sweep_span_carries_result_attrs(self):
        tracer = Tracer()
        with use_tracer(tracer):
            run_sweep(SPEC)
        (sweep_span,) = [s for s in tracer.spans() if s.name == "sweep"]
        assert sweep_span.attrs["total"] == 2
        assert sweep_span.attrs["solver_calls"] == 2


class TestMetricsCoverage:
    def test_sweep_fires_cache_and_sweep_families(self):
        registry = MetricsRegistry()
        set_registry(registry)
        run_sweep(SPEC, cache=ResultCache())
        cells = registry.counter(
            obs_names.SWEEP_CELLS, labels=("status",)
        )
        assert cells.value(status="solved") == 2
        assert registry.counter(obs_names.CACHE_WRITES).value() == 2
        lookups = registry.counter(
            obs_names.CACHE_LOOKUPS, labels=("tier", "outcome")
        )
        assert lookups.value(tier="memory", outcome="miss") == 2
        assert registry.counter(obs_names.SWEEP_CHAINS).value() == 1

    def test_solver_families_fire_on_one_optimize(self):
        registry = MetricsRegistry()
        set_registry(registry)
        _optimize()
        solves = registry.counter(
            obs_names.SOLVER_SOLVES, labels=("scheme", "warm")
        )
        assert solves.value(scheme="perf", warm="cold") >= 1
        count, total = registry.histogram(
            obs_names.SOLVER_SECONDS, labels=("scheme",)
        ).observations(scheme="perf")
        assert count >= 1 and total > 0
        requests = registry.counter(
            obs_names.SERVICE_REQUESTS, labels=("kind",)
        )
        assert requests.value(kind="optimize") == 1


class TestBatchDiagnostics:
    def test_cache_stats_ride_batch_response(self):
        response = LibraService().submit(BatchRequest(spec=SPEC))
        stats = response.diagnostics["cache"]
        assert stats["memory_misses"] == 2
        assert stats["writes"] == 2
        assert stats["evictions"] == 0

    def test_stats_accumulate_across_submissions(self):
        """The shared server-side cache reports lifetime tallies: a repeat
        batch resolves from memory and the hit shows up in the stats."""
        service = LibraService()
        service.submit(BatchRequest(spec=SPEC))
        repeat = service.submit(BatchRequest(spec=SPEC))
        stats = repeat.diagnostics["cache"]
        assert stats["memory_hits"] == 2
        assert stats["memory_misses"] == 2
        assert stats["writes"] == 2

    def test_no_cache_reports_none(self):
        from repro.api.service import sweep_diagnostics

        sweep = run_sweep(SPEC)
        assert sweep_diagnostics(sweep)["cache"] is None

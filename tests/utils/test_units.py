"""Unit-conversion helpers."""

import pytest

from repro.utils import units


class TestConversions:
    def test_gb_to_bytes(self):
        assert units.gb(1) == 1e9
        assert units.gb(2.5) == 2.5e9

    def test_mb_to_bytes(self):
        assert units.mb(1) == 1e6

    def test_kb_to_bytes(self):
        assert units.kb(3) == 3e3

    def test_tb_to_bytes(self):
        assert units.tb(1) == 1e12

    def test_gbps_to_bytes_per_second(self):
        assert units.gbps(450) == 450e9

    def test_tflops(self):
        assert units.tflops(234) == 234e12

    def test_bytes_to_gb_roundtrip(self):
        assert units.bytes_to_gb(units.gb(7.25)) == pytest.approx(7.25)

    def test_bytes_to_mb_roundtrip(self):
        assert units.bytes_to_mb(units.mb(0.125)) == pytest.approx(0.125)

    def test_zero_is_zero(self):
        assert units.gb(0) == 0.0
        assert units.gbps(0) == 0.0


class TestFormatBytes:
    def test_gigabytes(self):
        assert units.format_bytes(2.5e9) == "2.50 GB"

    def test_terabytes(self):
        assert units.format_bytes(3.2e12) == "3.20 TB"

    def test_megabytes(self):
        assert units.format_bytes(1.5e6) == "1.50 MB"

    def test_kilobytes(self):
        assert units.format_bytes(2_000) == "2.00 KB"

    def test_plain_bytes(self):
        assert units.format_bytes(512) == "512 B"

    def test_boundary_exactly_one_gb(self):
        assert units.format_bytes(1e9) == "1.00 GB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.format_bytes(-1)


class TestFormatTime:
    def test_seconds(self):
        assert units.format_time(1.5) == "1.500 s"

    def test_milliseconds(self):
        assert units.format_time(0.0042) == "4.200 ms"

    def test_microseconds(self):
        assert units.format_time(3.5e-5) == "35.000 us"

    def test_nanoseconds(self):
        assert units.format_time(2e-8) == "20.000 ns"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.format_time(-0.1)

"""Validation helper behaviour."""

import math

import pytest

from repro.utils.validation import (
    check_positive,
    check_positive_int,
    check_probability,
    is_power_of_two,
    prod,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(3.5, "x") == 3.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be"):
            check_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive(math.nan, "x")

    def test_rejects_infinity(self):
        with pytest.raises(ValueError):
            check_positive(math.inf, "x")


class TestCheckPositiveInt:
    def test_accepts_positive_int(self):
        assert check_positive_int(7, "n") == 7

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "n")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-3, "n")

    def test_rejects_float(self):
        with pytest.raises(ValueError):
            check_positive_int(2.0, "n")  # type: ignore[arg-type]

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            check_positive_int(True, "n")


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_accepts_interior(self):
        assert check_probability(0.75, "p") == 0.75

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability(1.01, "p")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability(-0.01, "p")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_probability(math.nan, "p")


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 8, 1024, 2**20])
    def test_powers(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, 3, 6, 12, 1000, -4])
    def test_non_powers(self, value):
        assert not is_power_of_two(value)


class TestProd:
    def test_empty_is_one(self):
        assert prod([]) == 1

    def test_product(self):
        assert prod([4, 8, 4, 32]) == 4096

    def test_single(self):
        assert prod([17]) == 17

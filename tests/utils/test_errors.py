"""Exception hierarchy contracts."""

import pytest

from repro.utils.errors import (
    ConfigurationError,
    MappingError,
    NotationError,
    OptimizationError,
    ReproError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ConfigurationError, MappingError, NotationError, OptimizationError, SimulationError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_errors(self):
        """Input-shaped problems are also ValueErrors for generic callers."""
        for exc in (ConfigurationError, MappingError, NotationError):
            assert issubclass(exc, ValueError)

    def test_runtime_errors(self):
        for exc in (OptimizationError, SimulationError):
            assert issubclass(exc, RuntimeError)

    def test_one_base_catch_suffices(self):
        """The API-boundary contract: catching ReproError catches everything
        the library raises intentionally."""
        from repro.topology import parse_notation

        with pytest.raises(ReproError):
            parse_notation("garbage")

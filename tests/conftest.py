"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.topology import MultiDimNetwork, get_topology
from repro.utils import gbps


@pytest.fixture
def net_2d() -> MultiDimNetwork:
    """A tiny 3×2 network — the Fig. 8 walkthrough shape."""
    return MultiDimNetwork.from_notation("RI(3)_RI(2)")


@pytest.fixture
def net_3d() -> MultiDimNetwork:
    """A small 3D mixed-block network (24 NPUs)."""
    return MultiDimNetwork.from_notation("RI(4)_FC(3)_SW(2)")


@pytest.fixture
def net_4d_4k() -> MultiDimNetwork:
    """The paper's representative 4D-4K topology (Table III)."""
    return get_topology("4D-4K")


@pytest.fixture
def net_3d_4k() -> MultiDimNetwork:
    """The paper's 3D-4K topology (Table III)."""
    return get_topology("3D-4K")


@pytest.fixture
def equal_bw_500() -> list[float]:
    """EqualBW split of 500 GB/s over 4 dimensions."""
    return [gbps(125.0)] * 4

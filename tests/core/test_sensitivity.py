"""Bandwidth sensitivity analysis at design points."""

import pytest

from repro.core import (
    ConstraintSet,
    SensitivityReport,
    bandwidth_sensitivity,
    minimize_training_time,
)
from repro.training.expr import CommTerm, Const, Sum
from repro.utils import gbps
from repro.utils.errors import ConfigurationError


class TestBasics:
    def test_const_has_zero_marginals(self):
        report = bandwidth_sensitivity(Const(5.0), [gbps(100), gbps(100)])
        assert report.marginals == (0.0, 0.0)
        assert report.binding_dims() == ()

    def test_single_term_derivative(self):
        """dT/dB of coeff/B is −coeff/B² exactly."""
        coeff = gbps(100)  # 100 GB payload
        expr = CommTerm(((0, coeff),))
        point = gbps(50)
        report = bandwidth_sensitivity(expr, [point])
        assert report.marginals[0] == pytest.approx(-coeff / point**2, rel=1e-4)

    def test_bottleneck_dim_dominates(self):
        """Only the bottleneck dimension of a max-term has nonzero marginal."""
        expr = CommTerm(((0, gbps(100)), (1, gbps(1))))
        report = bandwidth_sensitivity(expr, [gbps(10), gbps(10)])
        assert report.marginals[0] < 0
        assert report.marginals[1] == pytest.approx(0.0, abs=1e-15)
        assert report.most_valuable_dim == 0
        assert report.binding_dims() == (0,)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bandwidth_sensitivity(Const(1.0), [])
        with pytest.raises(ConfigurationError):
            bandwidth_sensitivity(Const(1.0), [0.0])
        with pytest.raises(ConfigurationError):
            bandwidth_sensitivity(Const(1.0), [1.0], relative_step=0.9)


class TestTransferGradient:
    def test_direction(self):
        expr = Sum((CommTerm(((0, gbps(100)),)), CommTerm(((1, gbps(10)),))))
        report = bandwidth_sensitivity(expr, [gbps(20), gbps(20)])
        # Moving bandwidth from the lightly-loaded dim 1 to dim 0 helps.
        assert report.transfer_gradient(1, 0) > 0
        assert report.transfer_gradient(0, 1) < 0

    def test_out_of_range(self):
        report = bandwidth_sensitivity(Const(1.0), [1.0, 1.0])
        with pytest.raises(ConfigurationError):
            report.transfer_gradient(0, 5)


class TestAtOptimum:
    def test_no_transfer_helps_at_waterfilling(self):
        """At the budget-constrained optimum, no pairwise bandwidth transfer
        reduces the step time (direct evaluation — the objective has a kink
        at water-filling, so this is the correct first-order optimality
        statement, not marginal equality)."""
        expr = CommTerm(((0, gbps(300)), (1, gbps(120)), (2, gbps(30))))
        constraints = ConstraintSet(3).with_total_bandwidth(gbps(450))
        solved = minimize_training_time(expr, constraints)
        base = expr.evaluate(solved.bandwidths)
        delta = gbps(450) * 0.01
        for source in range(3):
            for target in range(3):
                if source == target:
                    continue
                moved = list(solved.bandwidths)
                moved[source] -= delta
                moved[target] += delta
                assert expr.evaluate(moved) >= base * (1 - 1e-9)

    def test_every_dim_binds_at_waterfilling(self):
        """At water-filling every dimension co-bottlenecks: shrinking any
        single dimension's bandwidth increases the step time."""
        expr = CommTerm(((0, gbps(300)), (1, gbps(120)), (2, gbps(30))))
        constraints = ConstraintSet(3).with_total_bandwidth(gbps(450))
        solved = minimize_training_time(expr, constraints)
        base = expr.evaluate(solved.bandwidths)
        for dim in range(3):
            shrunk = list(solved.bandwidths)
            shrunk[dim] *= 0.95
            assert expr.evaluate(shrunk) > base * 1.01

    def test_seconds_per_extra_gbps(self):
        expr = CommTerm(((0, gbps(100)),))
        report = bandwidth_sensitivity(expr, [gbps(10)])
        per_gbps = report.seconds_per_extra_gbps()
        assert per_gbps[0] == pytest.approx(gbps(100) / gbps(10) ** 2 * 1e9, rel=1e-3)


class TestRealWorkload:
    def test_gpt3_sensitivity_matches_bottleneck(self):
        from repro.core import Libra, Scheme
        from repro.topology import get_topology
        from repro.workloads import build_workload

        libra = Libra(get_topology("4D-4K"))
        libra.add_workload(build_workload("GPT-3", 4096))
        expr = libra.combined_expression()

        # On the EqualBW point, dim 0 carries the TP bulk — it must be the
        # most valuable place to add bandwidth.
        report = bandwidth_sensitivity(expr, [gbps(125)] * 4)
        assert report.most_valuable_dim == 0

        # At the PerfOpt point the transfer gradients flatten out.
        cons = libra.constraints().with_total_bandwidth(gbps(500))
        optimum = libra.optimize(Scheme.PERF_OPT, cons)
        at_optimum = bandwidth_sensitivity(expr, optimum.bandwidths)
        equal_spread = max(
            abs(report.transfer_gradient(i, j)) for i in range(4) for j in range(4)
        )
        optimum_spread = max(
            abs(at_optimum.transfer_gradient(i, j)) for i in range(4) for j in range(4)
        )
        assert optimum_spread < equal_spread
"""Vectorized solver kernel: equivalence with the closure path, memoization.

The vectorized kernel (matrix-form constraint blocks + the slim SLSQP
driver) must return the same design points as the closure-based reference
across real Table-II workloads, both schemes, and every constraint-row
type. "Same" is two-tiered, matching how SLSQP terminates:

* both kernels converged → bandwidths within 1e-6 rtol;
* either stalled (line-search at machine precision, flat ridge) → the
  achieved objectives within 1e-2 rtol and both points feasible.
"""

import numpy as np
import pytest

from repro.core import (
    ConstraintSet,
    Libra,
    build_constraint_blocks,
    clear_solver_caches,
    compile_expression,
    minimize_time_cost_product,
    minimize_training_time,
    traffic_totals,
)
from repro.core.kernel import minimize_slsqp
from repro.cost.estimator import cost_rates
from repro.topology import get_topology
from repro.training.expr import CommTerm, Const, MaxExpr, Sum, simplify
from repro.utils import gbps
from repro.utils.errors import OptimizationError
from repro.workloads import build_workload, workload_names

TOPOLOGY = "3D-512"


@pytest.fixture(scope="module")
def problem_factory():
    """(expr, rates) per workload name, shared across the equivalence grid."""
    network = get_topology(TOPOLOGY)
    cache: dict[str, tuple] = {}

    def build(name: str):
        if name not in cache:
            libra = Libra(network)
            libra.add_workload(build_workload(name, network.num_npus))
            rates = (
                np.asarray(cost_rates(network, libra.cost_model))
                * network.num_npus
            )
            cache[name] = (libra.combined_expression(), rates, network.num_dims)
        return cache[name]

    return build


def make_constraints(variant: str, num_dims: int) -> ConstraintSet:
    constraints = ConstraintSet(num_dims).with_total_bandwidth(gbps(400))
    if variant == "cap":
        constraints.with_dim_cap(num_dims - 1, gbps(60))
    elif variant == "ordering":
        constraints.with_ordering(list(range(num_dims)))
    return constraints


def assert_equivalent(reference, candidate, constraints):
    if reference.success and candidate.success:
        np.testing.assert_allclose(
            candidate.bandwidths, reference.bandwidths, rtol=1e-6,
            err_msg="converged kernels disagree on the design point",
        )
        assert candidate.objective == pytest.approx(
            reference.objective, rel=1e-8
        )
    else:
        # Stall iterates sit on flat ridges: the bandwidth vector is not
        # unique but the achieved objective is (to solver precision).
        assert candidate.objective == pytest.approx(
            reference.objective, rel=1e-2
        )
        assert constraints.is_feasible(candidate.bandwidths, tolerance=1e-4)
        assert constraints.is_feasible(reference.bandwidths, tolerance=1e-4)


@pytest.mark.parametrize("workload", workload_names())
@pytest.mark.parametrize("variant", ["budget", "cap", "ordering"])
class TestKernelEquivalence:
    def test_perf_opt(self, problem_factory, workload, variant):
        expr, _, num_dims = problem_factory(workload)
        reference = minimize_training_time(
            expr, make_constraints(variant, num_dims), kernel="closures"
        )
        candidate = minimize_training_time(
            expr, make_constraints(variant, num_dims), kernel="vectorized"
        )
        assert_equivalent(
            reference, candidate, make_constraints(variant, num_dims)
        )

    def test_perf_per_cost(self, problem_factory, workload, variant):
        expr, rates, num_dims = problem_factory(workload)
        reference = minimize_time_cost_product(
            expr, make_constraints(variant, num_dims), rates, kernel="closures"
        )
        candidate = minimize_time_cost_product(
            expr, make_constraints(variant, num_dims), rates, kernel="vectorized"
        )
        assert_equivalent(
            reference, candidate, make_constraints(variant, num_dims)
        )


class TestKernelValidation:
    def test_unknown_kernel_rejected(self):
        expr = CommTerm(((0, gbps(10)),))
        cons = ConstraintSet(1).with_total_bandwidth(gbps(100))
        with pytest.raises(OptimizationError):
            minimize_training_time(expr, cons, kernel="magic")
        with pytest.raises(OptimizationError):
            minimize_time_cost_product(expr, cons, [1.0], kernel="magic")


class TestConstraintBlocks:
    def test_row_layout(self):
        expr = Sum(
            (
                MaxExpr((Const(0.5), CommTerm(((0, gbps(10)), (1, gbps(4)))))),
                CommTerm(((1, gbps(3)),)),
            )
        )
        cons = (
            ConstraintSet(2)
            .with_total_bandwidth(gbps(100))
            .with_ordering([0, 1])
        )
        program = compile_expression(expr, 2)
        blocks = build_constraint_blocks(program, cons)
        assert blocks.num_vars == 2 + program.num_aux
        assert blocks.num_eq == 1  # the budget row
        # ordering row + the max node's epigraph rows in the linear block
        assert len(blocks.b_in) == 1 + len(program.max_constraints)
        assert len(blocks.comm_aux) == len(program.comm_constraints)
        assert blocks.num_rows == blocks.num_eq + len(blocks.b_in) + len(
            blocks.comm_aux
        )

    def test_block_values_match_closures(self):
        """Block evaluation equals the closure constraint functions."""
        from repro.core.solver import _scipy_constraints

        expr = Sum(
            (
                MaxExpr((Const(0.2), CommTerm(((0, gbps(8)),)))),
                CommTerm(((1, gbps(5)), (2, gbps(2)))),
            )
        )
        cons = (
            ConstraintSet(3)
            .with_total_bandwidth(gbps(300))
            .with_dim_cap(2, gbps(40))
        )
        program = compile_expression(expr, 3)
        blocks = build_constraint_blocks(program, cons)
        rng = np.random.default_rng(7)
        x = rng.uniform(1.0, 120.0, blocks.num_vars)

        closure_values = []
        for row in _scipy_constraints(program, cons):
            closure_values.append((row["type"], float(row["fun"](x))))
        d = np.zeros(blocks.num_rows)
        blocks.values_into(d, x)
        block_values = sorted(
            [("eq", v) for v in d[: blocks.num_eq]]
            + [("ineq", v) for v in d[blocks.num_eq:]],
            key=lambda item: (item[0], round(item[1], 9)),
        )
        closure_values.sort(key=lambda item: (item[0], round(item[1], 9)))
        assert len(block_values) == len(closure_values)
        for (kind_a, val_a), (kind_b, val_b) in zip(
            block_values, closure_values
        ):
            assert kind_a == kind_b
            assert val_a == pytest.approx(val_b, rel=1e-12, abs=1e-12)

    def test_driver_matches_scipy_fallback(self):
        """The slim driver reproduces scipy.optimize.minimize on the blocks."""
        from repro.core.kernel import _minimize_slsqp_fallback

        expr = CommTerm(((0, gbps(120)), (1, gbps(60)), (2, gbps(15))))
        cons = ConstraintSet(3).with_total_bandwidth(gbps(300))
        program = compile_expression(expr, 3)
        blocks = build_constraint_blocks(program, cons)
        gradient = np.concatenate([np.zeros(3), program.objective_weights])
        x0 = np.concatenate([np.full(3, 100.0), [2.0]])

        fast = minimize_slsqp(
            program.objective_value, lambda x: gradient, x0, blocks,
            maxiter=400, ftol=1e-10,
        )
        slow = _minimize_slsqp_fallback(
            program.objective_value, lambda x: gradient, x0, blocks,
            maxiter=400, ftol=1e-10,
        )
        assert fast.success and slow.success
        np.testing.assert_allclose(fast.x, slow.x, rtol=1e-7)


class TestInitialAux:
    def test_matches_reference_tree_evaluation(self):
        """Vectorized tight-aux values equal per-aux subtree evaluation."""
        from repro.core.solver import _SCALE

        expr = Sum(
            (
                MaxExpr(
                    (
                        Sum((Const(0.1), CommTerm(((0, gbps(20)),)))),
                        CommTerm(((1, gbps(30)), (2, gbps(5)))),
                    )
                ),
                CommTerm(((2, gbps(9)),)),
                Const(0.4),
            ),
            (2.0, 1.0, 1.0),
        )
        program = compile_expression(expr, 3)
        scaled = np.array([12.0, 88.0, 41.0])
        vectorized = program.initial_aux(scaled)
        reference = np.array(
            [node.evaluate(scaled * _SCALE) for node in program.aux_expressions]
        )
        np.testing.assert_allclose(vectorized, reference, rtol=1e-12)


class TestMemoization:
    def test_compile_memo_hit_on_warm_start(self):
        """One PerfPerCost solve compiles once; the warm start is a hit."""
        clear_solver_caches()
        expr = Sum(
            (CommTerm(((0, gbps(200)), (1, gbps(40)))), Const(0.01))
        )
        cons = ConstraintSet(2).with_total_bandwidth(gbps(200))
        minimize_time_cost_product(expr, cons, [1e-9, 5e-9])
        info = compile_expression.cache_info()
        assert info.misses == 1
        assert info.hits >= 1  # the inner PerfOpt warm start reused it

    def test_repeat_solve_fully_cached(self):
        """A second identical solve re-runs SLSQP but recompiles nothing."""
        clear_solver_caches()
        expr = CommTerm(((0, gbps(100)), (1, gbps(25))))
        cons = ConstraintSet(2).with_total_bandwidth(gbps(150))
        minimize_training_time(expr, cons)
        compile_misses = compile_expression.cache_info().misses
        traffic_misses = traffic_totals.cache_info().misses
        cons2 = ConstraintSet(2).with_total_bandwidth(gbps(150))
        minimize_training_time(expr, cons2)
        assert compile_expression.cache_info().misses == compile_misses
        assert traffic_totals.cache_info().misses == traffic_misses

    def test_traffic_totals_shared_array_is_read_only(self):
        clear_solver_caches()
        totals = traffic_totals(CommTerm(((0, 10.0),)), 2)
        with pytest.raises(ValueError):
            totals[0] = 99.0

    def test_simplify_memoized(self):
        clear_solver_caches()
        expr = Sum((CommTerm(((0, 5.0),)), CommTerm(((0, 5.0),))))
        first = simplify(expr)
        assert simplify(expr) is first

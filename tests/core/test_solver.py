"""The constrained bandwidth optimizer: compilation, optimality, schemes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConstraintSet,
    build_seeds,
    compile_expression,
    minimize_time_cost_product,
    minimize_training_time,
    traffic_totals,
)
from repro.training.expr import CommTerm, Const, MaxExpr, Sum
from repro.utils import gbps
from repro.utils.errors import OptimizationError


class TestCompile:
    def test_const_only(self):
        program = compile_expression(Const(5.0), 2)
        assert program.num_aux == 0
        assert program.objective_const == 5.0

    def test_comm_term_constraints(self):
        expr = CommTerm(((0, gbps(1)), (1, gbps(2))))
        program = compile_expression(expr, 2)
        assert program.num_aux == 1
        assert len(program.comm_constraints) == 2

    def test_max_node_constraints(self):
        expr = MaxExpr((Const(1.0), CommTerm(((0, gbps(1)),))))
        program = compile_expression(expr, 1)
        assert program.num_aux == 2  # comm aux + max aux
        assert len(program.max_constraints) == 2

    def test_objective_matches_evaluation_when_tight(self):
        expr = Sum((Const(2.0), CommTerm(((0, gbps(10)),))), (1.0, 3.0))
        program = compile_expression(expr, 1)
        bandwidths = np.array([5.0])  # GB/s scaled
        aux = program.initial_aux(bandwidths)
        x = np.concatenate([bandwidths, aux])
        assert program.objective_value(x) == pytest.approx(
            expr.evaluate([gbps(5)]), rel=1e-9
        )

    def test_dim_out_of_range(self):
        with pytest.raises(OptimizationError):
            compile_expression(CommTerm(((3, 1.0),)), 2)


class TestTrafficTotals:
    def test_sums_over_tree(self):
        expr = Sum(
            (CommTerm(((0, 10.0), (1, 5.0))), CommTerm(((1, 7.0),))), (2.0, 1.0)
        )
        totals = traffic_totals(expr, 3)
        assert totals[0] == pytest.approx(20.0)
        assert totals[1] == pytest.approx(17.0)
        assert totals[2] == 0.0


class TestSeeds:
    def test_seed_family_feasible(self):
        expr = CommTerm(((0, gbps(100)), (1, gbps(10))))
        cons = ConstraintSet(2).with_total_bandwidth(gbps(100))
        seeds = build_seeds(expr, cons)
        assert seeds
        for seed in seeds:
            assert cons.is_feasible(seed, tolerance=1e-4)

    def test_proportional_seed_included(self):
        expr = CommTerm(((0, gbps(300)), (1, gbps(100))))
        cons = ConstraintSet(2).with_total_bandwidth(gbps(400))
        seeds = build_seeds(expr, cons)
        assert any(np.allclose(seed, [gbps(300), gbps(100)], rtol=1e-3) for seed in seeds)


class TestPerfOpt:
    def test_single_collective_waterfilling(self):
        """For one collective + budget, the optimum is traffic-proportional."""
        expr = CommTerm(((0, gbps(300)), (1, gbps(100))))
        cons = ConstraintSet(2).with_total_bandwidth(gbps(400))
        result = minimize_training_time(expr, cons)
        assert result.bandwidths[0] == pytest.approx(gbps(300), rel=1e-3)
        assert result.bandwidths[1] == pytest.approx(gbps(100), rel=1e-3)
        assert result.objective == pytest.approx(1.0, rel=1e-3)

    def test_beats_equal_split(self):
        expr = Sum(
            (
                CommTerm(((0, gbps(500)), (1, gbps(50)))),
                CommTerm(((1, gbps(80)), (2, gbps(20)))),
            )
        )
        cons = ConstraintSet(3).with_total_bandwidth(gbps(300))
        result = minimize_training_time(expr, cons)
        equal = expr.evaluate([gbps(100)] * 3)
        assert result.objective < equal

    def test_respects_dim_cap(self):
        expr = CommTerm(((0, gbps(100)), (1, gbps(100))))
        cons = (
            ConstraintSet(2)
            .with_total_bandwidth(gbps(200))
            .with_dim_cap(0, gbps(40))
        )
        result = minimize_training_time(expr, cons)
        assert result.bandwidths[0] <= gbps(40) * 1.001

    def test_respects_ordering(self):
        # Traffic wants dim1 >> dim0, but ordering forces B0 >= B1.
        expr = CommTerm(((0, gbps(10)), (1, gbps(100))))
        cons = (
            ConstraintSet(2)
            .with_total_bandwidth(gbps(100))
            .with_ordering([0, 1])
        )
        result = minimize_training_time(expr, cons)
        assert result.bandwidths[0] >= result.bandwidths[1] * 0.999

    def test_kkt_equalized_bottlenecks(self):
        """At the optimum of a single comm term, all dims are co-bottlenecked."""
        expr = CommTerm(((0, gbps(123)), (1, gbps(45)), (2, gbps(7))))
        cons = ConstraintSet(3).with_total_bandwidth(gbps(500))
        result = minimize_training_time(expr, cons)
        times = [coeff / result.bandwidths[dim] for dim, coeff in expr.coefficients]
        assert max(times) == pytest.approx(min(times), rel=1e-2)

    def test_compute_only_short_circuits(self):
        cons = ConstraintSet(2).with_total_bandwidth(gbps(100))
        result = minimize_training_time(Const(3.0), cons)
        assert result.success
        assert result.objective == 3.0

    def test_overlap_expression(self):
        """Max nodes compile and solve: optimizer hides the cheaper branch."""
        expr = MaxExpr(
            (
                CommTerm(((0, gbps(100)),)),
                Sum((Const(0.1), CommTerm(((1, gbps(50)),)))),
            )
        )
        cons = ConstraintSet(2).with_total_bandwidth(gbps(200))
        result = minimize_training_time(expr, cons)
        equal = expr.evaluate([gbps(100), gbps(100)])
        assert result.objective <= equal + 1e-9


class TestPerfPerCost:
    def test_never_worse_than_perf_opt_on_product(self):
        expr = Sum(
            (
                CommTerm(((0, gbps(500)), (1, gbps(50)))),
                CommTerm(((1, gbps(80)), (2, gbps(20)))),
                Const(0.05),
            )
        )
        cons = ConstraintSet(3).with_total_bandwidth(gbps(300))
        rates = np.array([2.0, 10.0, 40.0]) / 1e9  # $ per byte/s
        perf = minimize_training_time(expr, cons)
        ppc = minimize_time_cost_product(expr, cons, rates)
        perf_product = expr.evaluate(perf.bandwidths) * float(
            rates @ np.array(perf.bandwidths)
        )
        assert ppc.objective <= perf_product * 1.0001

    def test_prefers_cheap_dims(self):
        """With symmetric traffic but asymmetric prices, the optimizer
        shifts bandwidth toward the cheap dimension."""
        expr = Sum((CommTerm(((0, gbps(100)),)), CommTerm(((1, gbps(100)),))))
        cons = ConstraintSet(2).with_total_bandwidth(gbps(200), equality=False)
        rates = np.array([1.0, 50.0]) / 1e9
        result = minimize_time_cost_product(expr, cons, rates)
        assert result.bandwidths[0] > result.bandwidths[1]

    def test_wrong_rate_count(self):
        expr = CommTerm(((0, gbps(1)),))
        cons = ConstraintSet(1).with_total_bandwidth(gbps(10))
        with pytest.raises(OptimizationError):
            minimize_time_cost_product(expr, cons, [1.0, 2.0])


@settings(deadline=None, max_examples=25)
@given(
    st.lists(st.floats(min_value=0.5, max_value=1000.0), min_size=2, max_size=4),
    st.floats(min_value=100.0, max_value=2000.0),
)
def test_property_perf_opt_beats_equal_bw(coeffs, total_gbps):
    """PerfOpt is never worse than EqualBW on any single-collective instance."""
    coefficients = tuple((dim, gbps(c)) for dim, c in enumerate(coeffs))
    expr = CommTerm(coefficients)
    cons = ConstraintSet(len(coeffs)).with_total_bandwidth(gbps(total_gbps))
    result = minimize_training_time(expr, cons)
    equal = expr.evaluate([gbps(total_gbps) / len(coeffs)] * len(coeffs))
    assert result.objective <= equal * 1.001
    assert cons.is_feasible(result.bandwidths, tolerance=1e-3)

"""Designer constraint DSL (Sec. IV-F)."""

import numpy as np
import pytest

from repro.core import ConstraintSet, LinearConstraint
from repro.utils import gbps
from repro.utils.errors import ConfigurationError, OptimizationError


class TestLinearConstraint:
    def test_violation_zero_when_satisfied(self):
        row = LinearConstraint((1.0, 1.0), lower=None, upper=10.0)
        assert row.violation([4.0, 5.0]) == 0.0

    def test_violation_amount(self):
        row = LinearConstraint((1.0, 1.0), lower=None, upper=10.0)
        assert row.violation([8.0, 5.0]) == pytest.approx(3.0)

    def test_equality_detection(self):
        assert LinearConstraint((1.0,), lower=5.0, upper=5.0).is_equality
        assert not LinearConstraint((1.0,), lower=1.0, upper=5.0).is_equality

    def test_no_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearConstraint((1.0,))

    def test_crossed_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearConstraint((1.0,), lower=5.0, upper=1.0)

    def test_zero_coeffs_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearConstraint((0.0, 0.0), upper=1.0)


class TestTotalBandwidth:
    def test_sum_enforced(self):
        cons = ConstraintSet(3).with_total_bandwidth(gbps(300))
        assert cons.is_feasible([gbps(100)] * 3)
        assert not cons.is_feasible([gbps(100), gbps(100), gbps(50)])

    def test_inequality_variant(self):
        cons = ConstraintSet(3).with_total_bandwidth(gbps(300), equality=False)
        assert cons.is_feasible([gbps(50)] * 3)

    def test_budget_below_minimums_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot cover"):
            ConstraintSet(4, min_bandwidth=gbps(10)).with_total_bandwidth(gbps(20))

    def test_equal_split(self):
        cons = ConstraintSet(4).with_total_bandwidth(gbps(400))
        split = cons.equal_split()
        assert np.allclose(split, gbps(100))

    def test_equal_split_requires_budget(self):
        with pytest.raises(OptimizationError):
            ConstraintSet(4).equal_split()


class TestDimBounds:
    def test_cap(self):
        """Sec. IV-F example: limit inter-Pod BW to 50 GB/s."""
        cons = ConstraintSet(4).with_dim_cap(3, gbps(50))
        assert cons.is_feasible([gbps(100)] * 3 + [gbps(50)])
        assert not cons.is_feasible([gbps(100)] * 3 + [gbps(51)])

    def test_range(self):
        """Sec. IV-F example: 25 ≤ B_3 ≤ 150 GB/s."""
        cons = ConstraintSet(4).with_dim_bounds(2, lower=gbps(25), upper=gbps(150))
        assert cons.is_feasible([gbps(10), gbps(10), gbps(100), gbps(10)])
        assert not cons.is_feasible([gbps(10), gbps(10), gbps(10), gbps(10)])

    def test_empty_box_rejected(self):
        cons = ConstraintSet(2)
        cons.with_dim_bounds(0, lower=gbps(50))
        with pytest.raises(ConfigurationError, match="empty"):
            cons.with_dim_bounds(0, upper=gbps(10))

    def test_bad_dim(self):
        with pytest.raises(ConfigurationError):
            ConstraintSet(2).with_dim_cap(5, gbps(10))


class TestRelations:
    def test_pairwise_sum(self):
        """Sec. IV-F example: B_1 + B_2 = 500 GB/s."""
        cons = ConstraintSet(4).with_linear(
            [1.0, 1.0, 0.0, 0.0], lower=gbps(500), upper=gbps(500), label="b1+b2"
        )
        assert cons.is_feasible([gbps(300), gbps(200), gbps(1), gbps(1)])
        assert not cons.is_feasible([gbps(300), gbps(100), gbps(1), gbps(1)])

    def test_ordering(self):
        """Sec. IV-F example: B_1 ≥ B_2 ≥ B_3."""
        cons = ConstraintSet(3).with_ordering([0, 1, 2])
        assert cons.is_feasible([gbps(30), gbps(20), gbps(10)])
        assert not cons.is_feasible([gbps(10), gbps(20), gbps(30)])

    def test_ordering_needs_two(self):
        with pytest.raises(ConfigurationError):
            ConstraintSet(3).with_ordering([0])

    def test_violations_messages(self):
        cons = ConstraintSet(2).with_total_bandwidth(gbps(100))
        messages = cons.violations([gbps(10), gbps(10)])
        assert any("total-bandwidth" in message for message in messages)


class TestFeasiblePoint:
    def test_simple_budget(self):
        cons = ConstraintSet(3).with_total_bandwidth(gbps(300))
        point = cons.find_feasible_point()
        assert cons.is_feasible(point, tolerance=1e-4)

    def test_with_caps_and_ordering(self):
        cons = (
            ConstraintSet(4)
            .with_total_bandwidth(gbps(400))
            .with_dim_cap(3, gbps(50))
            .with_ordering([0, 1, 2])
        )
        point = cons.find_feasible_point()
        assert cons.is_feasible(point, tolerance=1e-4)

    def test_infeasible_detected(self):
        cons = (
            ConstraintSet(2)
            .with_total_bandwidth(gbps(100))
            .with_dim_cap(0, gbps(10))
            .with_dim_cap(1, gbps(10))
        )
        with pytest.raises(OptimizationError, match="infeasible"):
            cons.find_feasible_point()

"""The Libra facade and design-point results."""

import pytest

from repro.core import DesignPoint, Libra, Scheme
from repro.topology import get_topology
from repro.utils import gbps
from repro.utils.errors import ConfigurationError, OptimizationError
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def libra_gpt3():
    libra = Libra(get_topology("4D-4K"))
    libra.add_workload(build_workload("GPT-3", 4096))
    return libra


class TestConfiguration:
    def test_workload_size_checked(self):
        libra = Libra(get_topology("4D-4K"))
        with pytest.raises(ConfigurationError, match="4096"):
            libra.add_workload(build_workload("GPT-3", 1024))

    def test_duplicate_workload_rejected(self):
        libra = Libra(get_topology("4D-4K"))
        libra.add_workload(build_workload("GPT-3", 4096))
        with pytest.raises(ConfigurationError, match="already added"):
            libra.add_workload(build_workload("GPT-3", 4096))

    def test_zero_weight_rejected(self):
        libra = Libra(get_topology("4D-4K"))
        with pytest.raises(ConfigurationError, match="weight"):
            libra.add_workload(build_workload("GPT-3", 4096), weight=0.0)

    def test_optimize_without_workloads(self):
        libra = Libra(get_topology("4D-4K"))
        with pytest.raises(ConfigurationError, match="at least one workload"):
            libra.optimize(Scheme.PERF_OPT, libra.constraints().with_total_bandwidth(gbps(100)))

    def test_describe_mentions_inputs(self, libra_gpt3):
        text = libra_gpt3.describe()
        assert "4D-4K" in text
        assert "GPT-3" in text
        assert "234 TFLOPS" in text


class TestEqualBW:
    def test_even_split(self, libra_gpt3):
        point = libra_gpt3.equal_bw_point(gbps(400))
        assert point.bandwidths == tuple([gbps(100)] * 4)
        assert point.scheme is Scheme.EQUAL_BW

    def test_bad_total(self, libra_gpt3):
        with pytest.raises(ConfigurationError):
            libra_gpt3.equal_bw_point(0.0)


class TestOptimize:
    def test_perf_opt_beats_equal(self, libra_gpt3):
        cons = libra_gpt3.constraints().with_total_bandwidth(gbps(500))
        optimized = libra_gpt3.optimize(Scheme.PERF_OPT, cons)
        baseline = libra_gpt3.equal_bw_point(gbps(500))
        assert optimized.speedup_over(baseline) >= 1.0
        assert optimized.scheme is Scheme.PERF_OPT

    def test_perf_per_cost_wins_its_metric(self, libra_gpt3):
        cons = libra_gpt3.constraints().with_total_bandwidth(gbps(500))
        perf = libra_gpt3.optimize(Scheme.PERF_OPT, cons)
        ppc = libra_gpt3.optimize(Scheme.PERF_PER_COST_OPT, cons)
        baseline = libra_gpt3.equal_bw_point(gbps(500))
        assert ppc.perf_per_cost_gain_over(baseline) >= perf.perf_per_cost_gain_over(
            baseline
        ) * 0.999

    def test_equal_scheme_via_optimize(self, libra_gpt3):
        cons = libra_gpt3.constraints().with_total_bandwidth(gbps(500))
        point = libra_gpt3.optimize(Scheme.EQUAL_BW, cons)
        assert point.bandwidths == tuple([gbps(125)] * 4)

    def test_equal_scheme_needs_budget(self, libra_gpt3):
        with pytest.raises(OptimizationError):
            libra_gpt3.optimize(Scheme.EQUAL_BW, libra_gpt3.constraints())

    def test_budget_respected(self, libra_gpt3):
        cons = libra_gpt3.constraints().with_total_bandwidth(gbps(500))
        point = libra_gpt3.optimize(Scheme.PERF_OPT, cons)
        assert point.total_bandwidth == pytest.approx(gbps(500), rel=1e-3)

    def test_wrong_constraint_dims(self, libra_gpt3):
        from repro.core import ConstraintSet

        with pytest.raises(ConfigurationError, match="dims"):
            libra_gpt3.optimize(
                Scheme.PERF_OPT, ConstraintSet(3).with_total_bandwidth(gbps(100))
            )


class TestDesignPoint:
    def test_step_time_lookup(self, libra_gpt3):
        point = libra_gpt3.equal_bw_point(gbps(400))
        assert point.step_time("GPT-3") == point.step_time()

    def test_unknown_workload_name(self, libra_gpt3):
        point = libra_gpt3.equal_bw_point(gbps(400))
        with pytest.raises(ConfigurationError, match="no step time"):
            point.step_time("BERT")

    def test_bandwidths_gbps(self, libra_gpt3):
        point = libra_gpt3.equal_bw_point(gbps(400))
        assert point.bandwidths_gbps() == tuple([100.0] * 4)

    def test_describe(self, libra_gpt3):
        text = libra_gpt3.equal_bw_point(gbps(400)).describe()
        assert "EqualBW" in text and "GPT-3" in text

    def test_speedup_identity(self, libra_gpt3):
        point = libra_gpt3.equal_bw_point(gbps(400))
        assert point.speedup_over(point) == pytest.approx(1.0)

    def test_invalid_point_rejected(self):
        with pytest.raises(ConfigurationError):
            DesignPoint(Scheme.EQUAL_BW, (), {}, 0.0)
        with pytest.raises(ConfigurationError):
            DesignPoint(Scheme.EQUAL_BW, (-1.0,), {"x": 1.0}, 0.0)


class TestMultiWorkload:
    def test_group_expression_weighted(self):
        libra = Libra(get_topology("4D-4K"))
        libra.add_workload(build_workload("GPT-3", 4096), weight=2.0)
        libra.add_workload(build_workload("Turing-NLG", 4096), weight=1.0)
        combined = libra.combined_expression()
        gpt3 = libra.training_expression(libra.workloads[0])
        tnlg = libra.training_expression(libra.workloads[1])
        bw = [gbps(125)] * 4
        assert combined.evaluate(bw) == pytest.approx(
            2.0 * gpt3.evaluate(bw) + tnlg.evaluate(bw)
        )

    def test_evaluate_reports_all_workloads(self):
        libra = Libra(get_topology("4D-4K"))
        libra.add_workload(build_workload("GPT-3", 4096))
        libra.add_workload(build_workload("MSFT-1T", 4096))
        point = libra.equal_bw_point(gbps(500))
        assert set(point.step_times) == {"GPT-3", "MSFT-1T"}

    def test_unnamed_step_time_ambiguous(self):
        libra = Libra(get_topology("4D-4K"))
        libra.add_workload(build_workload("GPT-3", 4096))
        libra.add_workload(build_workload("MSFT-1T", 4096))
        point = libra.equal_bw_point(gbps(500))
        with pytest.raises(ConfigurationError, match="name one"):
            point.step_time()

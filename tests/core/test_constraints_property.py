"""Property tests for the constraint DSL's geometric helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConstraintSet
from repro.utils import gbps


@settings(deadline=None, max_examples=50)
@given(
    st.integers(min_value=1, max_value=6),
    st.floats(min_value=10.0, max_value=5000.0),
)
def test_property_equal_split_honours_budget(num_dims, total_gbps):
    cons = ConstraintSet(num_dims).with_total_bandwidth(gbps(total_gbps))
    point = cons.equal_split()
    assert point.sum() == pytest.approx(gbps(total_gbps), rel=1e-9)
    assert np.allclose(point, point[0])


@settings(deadline=None, max_examples=50)
@given(
    st.floats(min_value=50.0, max_value=120.0),
    st.floats(min_value=400.0, max_value=1000.0),
)
def test_property_equal_split_redistributes_around_caps(cap_gbps, total_gbps):
    """Capping one dimension must not break the budget: the clipped surplus
    lands on the free dimensions."""
    cons = (
        ConstraintSet(4)
        .with_total_bandwidth(gbps(total_gbps))
        .with_dim_cap(3, gbps(cap_gbps))
    )
    point = cons.equal_split()
    assert point.sum() == pytest.approx(gbps(total_gbps), rel=1e-6)
    assert point[3] <= gbps(cap_gbps) * (1 + 1e-9)
    # Free dims stay equal among themselves.
    assert np.allclose(point[:3], point[0])


@settings(deadline=None, max_examples=30)
@given(
    st.integers(min_value=2, max_value=5),
    st.floats(min_value=100.0, max_value=2000.0),
    st.data(),
)
def test_property_feasible_point_is_feasible(num_dims, total_gbps, data):
    cons = ConstraintSet(num_dims).with_total_bandwidth(gbps(total_gbps))
    if data.draw(st.booleans()):
        dim = data.draw(st.integers(min_value=0, max_value=num_dims - 1))
        cap = total_gbps / num_dims * data.draw(st.floats(min_value=0.5, max_value=1.5))
        cons.with_dim_cap(dim, gbps(cap))
    if num_dims >= 2 and data.draw(st.booleans()):
        cons.with_ordering([0, 1])
    try:
        point = cons.find_feasible_point()
    except Exception:
        return  # infeasible combinations are allowed to raise
    assert cons.is_feasible(point, tolerance=1e-4)

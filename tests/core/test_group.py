"""Group (multi-workload) optimization protocol (Fig. 17)."""

import pytest

from repro.core import Scheme, run_group_study
from repro.topology import get_topology
from repro.utils import gbps
from repro.utils.errors import ConfigurationError
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def study():
    network = get_topology("4D-4K")
    workloads = [
        build_workload("Turing-NLG", 4096),
        build_workload("GPT-3", 4096),
        build_workload("MSFT-1T", 4096),
    ]
    return run_group_study(network, workloads, total_bandwidth=gbps(1000))


class TestGroupStudy:
    def test_diagonal_slowdowns_are_one(self, study):
        """A workload on its own optimized network has slowdown 1.0."""
        for name, row in study.slowdowns.items():
            if name == "group":
                continue
            assert row[name] == pytest.approx(1.0, abs=1e-9)

    def test_off_diagonal_slowdowns_at_least_one(self, study):
        for design, row in study.slowdowns.items():
            for value in row.values():
                assert value >= 1.0 - 1e-6

    def test_group_network_is_near_optimal(self, study):
        """Fig. 17: the group-optimized network averages ~1.01× slowdown."""
        assert study.average_group_slowdown < 1.25

    def test_group_never_worse_than_worst_single(self, study):
        worst_group = max(study.slowdowns["group"].values())
        assert worst_group <= study.worst_cross_slowdown + 1e-9

    def test_speedups_relative_to_equal(self, study):
        """Every optimized network must not lose to EqualBW on its target."""
        for name, row in study.speedups.items():
            if name == "group":
                continue
            assert row[name] >= 1.0 - 1e-6

    def test_points_share_budget(self, study):
        for point in study.per_target_points.values():
            assert point.total_bandwidth == pytest.approx(gbps(1000), rel=1e-3)
        assert study.group_point.total_bandwidth == pytest.approx(gbps(1000), rel=1e-3)


class TestValidation:
    def test_needs_two_workloads(self):
        network = get_topology("4D-4K")
        with pytest.raises(ConfigurationError, match="two workloads"):
            run_group_study(network, [build_workload("GPT-3", 4096)], gbps(100))

"""Warm-vs-cold equivalence of the continuation solver entry points.

The documented continuation contract: a warm-started solve returns a
design point whose *achieved objective* is never worse than the cold
multi-start path's by more than ``OBJECTIVE_RTOL`` (2e-2 relative — the
same one-sided tolerance the sweep benchmark gates on; warm may be
*better*, since a good seed can escape a line-search stall the cold family
hits), never silently degrades below the seed family's own evaluations,
and falls back to the full fan-out whenever the trust check fails. Budget
chains are exercised in both ascending and descending order across three
Table-II workloads and both schemes.
"""

import numpy as np
import pytest

from repro.api.scenario import build_scenario
from repro.api.service import get_service
from repro.core.constraints import ConstraintSet
from repro.core.solver import (
    minimize_time_cost_product,
    minimize_training_time,
    project_warm_start,
)
from repro.cost.estimator import cost_rates
from repro.utils.units import gbps

#: The documented warm-vs-cold objective tolerance (relative).
OBJECTIVE_RTOL = 2e-2

TOPOLOGY = "3D-512"
WORKLOADS = ("Turing-NLG", "GPT-3", "DLRM")  # three Table-II workloads
BUDGETS = (150.0, 300.0, 600.0)


def _problem(workload: str):
    scenario = build_scenario(TOPOLOGY, [workload], total_bw_gbps=BUDGETS[0])
    engine = get_service().engine(scenario)
    expression = engine.combined_expression()
    rates = np.asarray(
        cost_rates(scenario.network, engine.cost_model)
    ) * scenario.network.num_npus
    num_dims = scenario.network.num_dims
    return expression, rates, num_dims


def _constraints(num_dims: int, budget: float) -> ConstraintSet:
    return ConstraintSet(num_dims).with_total_bandwidth(gbps(budget))


def _solve(expression, rates, num_dims, scheme, budget, warm=None, **kwargs):
    constraints = _constraints(num_dims, budget)
    if scheme == "perf":
        return minimize_training_time(
            expression, constraints, warm_start=warm, **kwargs
        )
    return minimize_time_cost_product(
        expression, constraints, rates, warm_start=warm, **kwargs
    )


class TestWarmColdEquivalence:
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("scheme", ["perf", "perf-per-cost"])
    @pytest.mark.parametrize("ascending", [True, False], ids=["asc", "desc"])
    def test_chain_matches_cold(self, workload, scheme, ascending):
        """A warm chain's objectives match the cold path cell for cell."""
        expression, rates, num_dims = _problem(workload)
        budgets = BUDGETS if ascending else tuple(reversed(BUDGETS))

        cold = {
            budget: _solve(expression, rates, num_dims, scheme, budget)
            for budget in budgets
        }
        warm_results = {}
        warm = None
        for budget in budgets:
            result = _solve(
                expression, rates, num_dims, scheme, budget, warm=warm
            )
            warm_results[budget] = result
            warm = np.asarray(result.bandwidths)

        for budget in budgets:
            reference = cold[budget].objective
            achieved = warm_results[budget].objective
            # One-sided: continuation may legitimately *beat* the cold
            # multi-start (a warm seed can escape a line-search stall the
            # cold family hits), but must never be meaningfully worse.
            assert achieved <= reference * (1 + OBJECTIVE_RTOL), (
                f"{workload}/{scheme} @ {budget} GB/s: warm {achieved} vs "
                f"cold {reference}"
            )
        # The first cell of a chain is cold; later cells carry diagnostics.
        first, *rest = budgets
        assert warm_results[first].warm_start == ""
        for budget in rest:
            assert warm_results[budget].warm_start in (
                "accepted",
            ) or warm_results[budget].warm_start.startswith("rejected")

    @pytest.mark.parametrize("scheme", ["perf", "perf-per-cost"])
    def test_accepted_warm_run_uses_one_start(self, scheme):
        expression, rates, num_dims = _problem("Turing-NLG")
        prior = _solve(expression, rates, num_dims, scheme, 300.0)
        warm = _solve(
            expression, rates, num_dims, scheme, 360.0,
            warm=np.asarray(prior.bandwidths),
        )
        assert warm.warm_start == "accepted"
        assert warm.starts == 1
        assert prior.starts > 1  # the cold path fans out

    @pytest.mark.parametrize("scheme", ["perf", "perf-per-cost"])
    def test_forced_distrust_falls_back_to_full_fanout(self, scheme):
        """trust_rtol=-1 makes every warm run fail the trust check, so the
        solve must fan out cold and still return the cold answer."""
        expression, rates, num_dims = _problem("Turing-NLG")
        prior = _solve(expression, rates, num_dims, scheme, 300.0)
        cold = _solve(expression, rates, num_dims, scheme, 360.0)
        rejected = _solve(
            expression, rates, num_dims, scheme, 360.0,
            warm=np.asarray(prior.bandwidths), trust_rtol=-1.0,
        )
        assert rejected.warm_start == "rejected:drift"
        assert rejected.starts > 1
        assert rejected.objective <= cold.objective * (1 + 1e-9)

    @pytest.mark.parametrize("scheme", ["perf", "perf-per-cost"])
    def test_unprojectable_warm_start_solves_cold(self, scheme):
        expression, rates, num_dims = _problem("Turing-NLG")
        cold = _solve(expression, rates, num_dims, scheme, 300.0)
        result = _solve(
            expression, rates, num_dims, scheme, 300.0,
            warm=np.zeros(num_dims),  # all-zero shares cannot be projected
        )
        assert result.warm_start == "rejected:unprojectable"
        assert result.objective == pytest.approx(cold.objective, rel=1e-9)

    def test_warm_never_worse_than_seed_floor(self):
        """The trust check's guarantee: an accepted warm objective cannot
        sit above the best raw seed evaluation (within the trust rtol)."""
        from repro.core.solver import WARM_TRUST_RTOL, build_seeds
        from repro.training.expr import simplify, vector_evaluator

        expression, rates, num_dims = _problem("GPT-3")
        prior = _solve(expression, rates, num_dims, "perf", 150.0)
        constraints = _constraints(num_dims, 600.0)
        warm = minimize_training_time(
            expression, constraints, warm_start=np.asarray(prior.bandwidths)
        )
        evaluate = vector_evaluator(simplify(expression))
        seed_floor = min(
            evaluate(seed) for seed in build_seeds(expression, constraints)
        )
        assert warm.objective <= seed_floor * (1 + WARM_TRUST_RTOL)


class TestMaxStarts:
    def test_max_starts_truncates_the_family(self):
        expression, rates, num_dims = _problem("Turing-NLG")
        full = _solve(expression, rates, num_dims, "perf", 300.0)
        capped = _solve(
            expression, rates, num_dims, "perf", 300.0, max_starts=1
        )
        assert capped.starts == 1
        assert full.starts > 1
        # PerfOpt is convex: the answer cannot depend on the seed count.
        assert capped.objective == pytest.approx(full.objective, rel=1e-6)

    def test_max_starts_floor_is_one_seed(self):
        expression, rates, num_dims = _problem("Turing-NLG")
        result = _solve(
            expression, rates, num_dims, "perf", 300.0, max_starts=0
        )
        assert result.starts == 1


class TestProjection:
    def test_budget_rescaling_keeps_shares(self):
        constraints = ConstraintSet(3).with_total_bandwidth(gbps(600))
        prior = np.asarray([gbps(100), gbps(150), gbps(50)])
        projected = project_warm_start(prior, constraints)
        assert projected is not None
        assert projected.sum() == pytest.approx(gbps(600))
        assert projected / projected.sum() == pytest.approx(
            prior / prior.sum()
        )

    def test_caps_are_honoured(self):
        constraints = (
            ConstraintSet(3)
            .with_total_bandwidth(gbps(600))
            .with_dim_cap(0, gbps(100))
        )
        prior = np.asarray([gbps(500), gbps(50), gbps(50)])
        projected = project_warm_start(prior, constraints)
        assert projected is not None
        assert projected[0] <= gbps(100) * (1 + 1e-9)
        assert projected.sum() == pytest.approx(gbps(600))

    def test_wrong_dimensionality_is_unprojectable(self):
        constraints = ConstraintSet(3).with_total_bandwidth(gbps(600))
        assert project_warm_start(np.ones(2), constraints) is None

    def test_nonfinite_is_unprojectable(self):
        constraints = ConstraintSet(3).with_total_bandwidth(gbps(600))
        assert project_warm_start(
            np.asarray([np.nan, 1.0, 1.0]), constraints
        ) is None

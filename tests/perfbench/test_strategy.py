"""Strategy benchmark harness: artifact schema and the reuse floor metric."""

import json
from dataclasses import replace

import pytest

from repro.perfbench.harness import BenchEquivalenceError
from repro.perfbench.strategy import (
    STRATEGY_BENCH_SCHEMA_VERSION,
    StrategyBenchConfig,
    format_strategy_report,
    quick_strategy_config,
    run_strategy_benchmark,
)

TINY = replace(quick_strategy_config(), repeats=1, label="tiny")


@pytest.fixture(scope="module")
def artifact():
    return run_strategy_benchmark(TINY)


class TestStrategyBenchmark:
    def test_artifact_schema_and_speed_fields(self, artifact):
        assert artifact["schema_version"] == STRATEGY_BENCH_SCHEMA_VERSION
        assert artifact["strategies"] == 2
        assert artifact["cells"] == 6
        assert artifact["errors"] == 0
        assert artifact["cold_s"] > 0 and artifact["warm_s"] > 0
        assert artifact["speedup"] == pytest.approx(
            artifact["cold_s"] / artifact["warm_s"]
        )
        assert artifact["candidates_per_sec_warm"] == pytest.approx(
            artifact["cells"] / artifact["warm_s"]
        )
        assert json.dumps(artifact)  # artifact must be JSON-serializable

    def test_warm_reuse_actually_reduces_solver_work(self, artifact):
        """The CI floor's metric: warm-start threading must shed a
        meaningful share of the cold baseline's multi-start bill."""
        breakdown = artifact["breakdown"]
        assert breakdown["warm_accepted"] > 0
        assert breakdown["cross_warm_accepted"] >= 1
        assert breakdown["warm_hit_rate"] > 0
        assert (
            breakdown["solver_starts_warm"] < breakdown["solver_starts_cold"]
        )
        assert breakdown["start_reduction"] > 0
        assert breakdown["start_reduction"] == pytest.approx(
            1.0
            - breakdown["solver_starts_warm"]
            / breakdown["solver_starts_cold"]
        )

    def test_equivalence_gate_passed(self, artifact):
        equivalence = artifact["equivalence"]
        assert equivalence["ok"] is True
        assert equivalence["max_objective_rel_diff"] <= TINY.objective_rtol

    def test_report_is_human_readable(self, artifact):
        report = format_strategy_report(artifact)
        assert "Turing-NLG" in report
        assert "speedup" in report
        assert "across strategies" in report
        assert "equivalence: ok" in report

    def test_quick_config_is_seconds_scale(self):
        config = quick_strategy_config()
        assert config.quick
        assert config.max_tp == 2
        assert len(config.budgets_gbps) == 3

    def test_drift_past_tolerance_raises(self):
        """An impossible tolerance must trip the gate, not write numbers."""
        with pytest.raises(BenchEquivalenceError, match="drifted past"):
            run_strategy_benchmark(
                replace(TINY, objective_rtol=-1e-9)
            )

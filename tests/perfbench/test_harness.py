"""The perf harness: artifact schema, equivalence gate, CLI wiring."""

import json

import pytest

from repro.perfbench import (
    BENCH_SCHEMA_VERSION,
    BenchConfig,
    format_report,
    quick_config,
    run_benchmarks,
    write_artifact,
)
from repro.perfbench.harness import BenchEquivalenceError, _equivalence

#: Tiny 6-NPU configuration so the whole harness runs in ~a second.
TINY = BenchConfig(
    workloads=("Turing-NLG",),
    topology="RI(3)_RI(2)",
    total_bw_gbps=100.0,
    repeats=1,
    sweep_budgets_gbps=(80.0, 100.0),
    label="test",
)


@pytest.fixture(scope="module")
def artifact():
    return run_benchmarks(TINY)


class TestArtifact:
    def test_schema(self, artifact):
        assert artifact["schema_version"] == BENCH_SCHEMA_VERSION
        assert artifact["config"]["workloads"] == ["Turing-NLG"]
        names = [bench["name"] for bench in artifact["benchmarks"]]
        assert names == [
            "solver_perf", "solver_perf_per_cost", "compile_memo", "sweep",
        ]

    def test_solver_records(self, artifact):
        for bench in artifact["benchmarks"][:2]:
            assert bench["closures_s"] > 0
            assert bench["vectorized_cold_s"] > 0
            assert bench["vectorized_warm_s"] > 0
            assert bench["speedup_cold"] == pytest.approx(
                bench["closures_s"] / bench["vectorized_cold_s"]
            )
            assert bench["equivalence"]["ok"]

    def test_memo_and_sweep_records(self, artifact):
        memo = artifact["benchmarks"][2]
        assert memo["warm_s"] <= memo["cold_s"]
        sweep = artifact["benchmarks"][3]
        assert sweep["cells"] == 2
        assert sweep["cold_errors"] == 0
        assert sweep["warm_cache_hits"] == 2

    def test_written_artifact_round_trips(self, artifact, tmp_path):
        path = tmp_path / "BENCH_solver.json"
        write_artifact(str(path), artifact)
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(artifact)
        )

    def test_report_mentions_every_benchmark(self, artifact):
        report = format_report(artifact)
        for bench in artifact["benchmarks"]:
            assert bench["name"] in report


class TestEquivalenceGate:
    class FakeResult:
        def __init__(self, bandwidths, objective, success=True):
            self.bandwidths = bandwidths
            self.objective = objective
            self.success = success

    def test_converged_drift_raises(self):
        reference = self.FakeResult((1e11, 2e11), 5.0)
        drifted = self.FakeResult((1.01e11, 2e11), 5.0)
        with pytest.raises(BenchEquivalenceError):
            _equivalence(reference, drifted, TINY)

    def test_stalled_compared_by_value(self):
        reference = self.FakeResult((1e11, 2e11), 5.0, success=False)
        # Different point on the flat ridge, same value: acceptable.
        shifted = self.FakeResult((1.2e11, 1.8e11), 5.004)
        report = _equivalence(reference, shifted, TINY)
        assert report["ok"] and not report["both_converged"]

    def test_stalled_value_drift_raises(self):
        reference = self.FakeResult((1e11, 2e11), 5.0, success=False)
        drifted = self.FakeResult((1e11, 2e11), 5.5)
        with pytest.raises(BenchEquivalenceError):
            _equivalence(reference, drifted, TINY)


class TestQuickConfig:
    def test_quick_is_flagged(self):
        config = quick_config()
        assert config.quick and config.repeats == 1


class TestCli:
    def test_bench_subcommand_writes_artifact(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "BENCH_solver.json"
        code = main(
            [
                "bench", "--workload", "Turing-NLG", "--topology", "RI(3)_RI(2)",
                "--total-bw", "100", "--repeats", "1",
                "--output", str(output),
            ]
        )
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert "solver_perf_per_cost" in capsys.readouterr().out

"""Sweep benchmark harness: artifact schema and the equivalence gate."""

import json

import pytest

from repro.perfbench.harness import BenchEquivalenceError
from repro.perfbench.sweep import (
    SWEEP_BENCH_SCHEMA_VERSION,
    SweepBenchConfig,
    format_sweep_report,
    quick_sweep_config,
    run_sweep_benchmark,
)

TINY = SweepBenchConfig(
    workloads=("Turing-NLG",),
    topology="RI(3)_RI(2)",
    budgets_gbps=(100.0, 200.0, 300.0),
    schemes=("perf", "perf-per-cost"),
    repeats=1,
    label="tiny",
)


class TestSweepBenchmark:
    def test_artifact_schema_and_speed_fields(self):
        artifact = run_sweep_benchmark(TINY)
        assert artifact["schema_version"] == SWEEP_BENCH_SCHEMA_VERSION
        assert artifact["cells"] == 6
        assert artifact["errors"] == 0
        assert artifact["cold_s"] > 0 and artifact["warm_s"] > 0
        assert artifact["speedup"] == pytest.approx(
            artifact["cold_s"] / artifact["warm_s"]
        )
        breakdown = artifact["breakdown"]
        assert breakdown["chains"] == 2
        assert (
            breakdown["warm_accepted"]
            + breakdown["warm_rejected"]
            + breakdown["cold_solves"]
            == 6
        )
        assert artifact["equivalence"]["ok"] is True
        assert (
            artifact["equivalence"]["max_objective_rel_diff"]
            <= TINY.objective_rtol
        )
        assert json.dumps(artifact)  # artifact must be JSON-serializable

    def test_report_is_human_readable(self):
        artifact = run_sweep_benchmark(TINY)
        report = format_sweep_report(artifact)
        assert "speedup" in report
        assert "equivalence: ok" in report
        assert "Turing-NLG" in report

    def test_quick_config_is_seconds_scale(self):
        config = quick_sweep_config()
        assert config.quick
        assert config.topology == "3D-512"
        assert len(config.budgets_gbps) >= 4  # enough cells to amortize

    def test_drift_past_tolerance_raises(self):
        """An impossible tolerance must trip the gate, not write numbers."""
        with pytest.raises(BenchEquivalenceError, match="drifted past"):
            run_sweep_benchmark(
                SweepBenchConfig(
                    workloads=("Turing-NLG",),
                    topology="RI(3)_RI(2)",
                    budgets_gbps=(100.0, 300.0),
                    schemes=("perf-per-cost",),
                    repeats=1,
                    objective_rtol=-1e-9,  # nothing can pass a negative bound
                )
            )

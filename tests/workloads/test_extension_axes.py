"""CP/EP placement, located MappingErrors, and the MoE/long-context presets."""

import json

import pytest

from repro.collectives import DimSpan
from repro.topology import MultiDimNetwork, get_topology
from repro.utils.errors import MappingError
from repro.utils.validation import prod
from repro.workloads import (
    CommScope,
    Parallelism,
    build_workload,
    map_parallelism,
)


class TestFiveAxisParallelism:
    def test_total_includes_all_degrees(self):
        assert Parallelism(tp=2, dp=4, pp=2, cp=2, ep=2).total_npus == 64

    def test_degrees_tuple_is_placement_order(self):
        p = Parallelism(tp=2, dp=3, pp=5, cp=7, ep=11)
        assert p.degrees == (2, 7, 11, 5, 3)

    def test_str_forms(self):
        assert str(Parallelism(8, 4)) == "HP-(8, 4)"
        assert str(Parallelism(8, 4, pp=2)) == "HP-(8, 2, 4)"
        assert (
            str(Parallelism(tp=2, dp=4, cp=2, ep=2))
            == "HP-(tp=2, cp=2, ep=2, pp=1, dp=4)"
        )

    def test_to_dict_omits_unit_extension_axes(self):
        """A classic HP-(tp, dp) payload is byte-identical to pre-CP/EP
        releases — the wire-compat contract."""
        assert Parallelism(16, 256).to_dict() == {"tp": 16, "dp": 256, "pp": 1}
        payload = Parallelism(tp=2, dp=4, cp=2, ep=2).to_dict()
        assert payload == {"tp": 2, "dp": 4, "pp": 1, "cp": 2, "ep": 2}

    def test_round_trip(self):
        for p in (
            Parallelism(16, 256),
            Parallelism(tp=2, dp=4, pp=2, cp=2, ep=2),
        ):
            assert Parallelism.from_dict(json.loads(json.dumps(p.to_dict()))) == p

    def test_bad_extension_degrees(self):
        with pytest.raises(ValueError):
            Parallelism(tp=2, dp=4, cp=0)
        with pytest.raises(ValueError):
            Parallelism(tp=2, dp=4, ep=-2)


class TestExtensionAxisMapping:
    def test_cp_and_ep_sit_between_tp_and_dp(self):
        """tp=2 takes half of dim 0, cp the other half, ep half of dim 1;
        DP mops up the rest — the innermost-first placement order."""
        net = MultiDimNetwork.from_notation("RI(4)_RI(4)_RI(4)")
        mapping = map_parallelism(
            net, Parallelism(tp=2, cp=2, ep=2, dp=8)
        )
        assert mapping.tp_spans == (DimSpan(0, 2),)
        assert mapping.cp_spans == (DimSpan(0, 2),)
        assert mapping.ep_spans == (DimSpan(1, 2),)
        assert mapping.pp_spans == ()
        assert mapping.dp_spans == (DimSpan(1, 2), DimSpan(2, 4))

    def test_spans_for_extension_scopes(self):
        net = MultiDimNetwork.from_notation("RI(4)_RI(4)_RI(4)")
        mapping = map_parallelism(net, Parallelism(tp=2, cp=2, ep=2, dp=8))
        assert mapping.spans_for(CommScope.CP) == mapping.cp_spans
        assert mapping.spans_for(CommScope.EP) == mapping.ep_spans

    def test_degrees_partition_the_network(self):
        net = get_topology("3D-512")
        mapping = map_parallelism(net, Parallelism(tp=8, cp=2, ep=2, dp=16))
        spanned = prod(
            span.size
            for group in (
                mapping.tp_spans, mapping.cp_spans,
                mapping.ep_spans, mapping.dp_spans,
            )
            for span in group
        )
        assert spanned == net.num_npus


class TestLocatedMappingError:
    """Satellite: MappingError carries the offending strategy and network,
    so the strategy-space enumerator prunes without parsing messages."""

    def test_count_mismatch_is_located(self):
        net = get_topology("4D-4K")
        p = Parallelism(16, 16)
        with pytest.raises(MappingError, match="needs") as excinfo:
            map_parallelism(net, p)
        assert excinfo.value.parallelism is p
        assert excinfo.value.network == net.name

    def test_unplaceable_split_is_located(self):
        net = MultiDimNetwork.from_notation("RI(6)_RI(4)")
        p = Parallelism(4, 6)
        with pytest.raises(MappingError, match="cannot be placed") as excinfo:
            map_parallelism(net, p)
        assert excinfo.value.parallelism is p
        assert excinfo.value.network == net.notation

    def test_plain_mapping_errors_default_unlocated(self):
        exc = MappingError("boundary out of range")
        assert exc.parallelism is None
        assert exc.network == ""


class TestExtensionPresets:
    """Satellite: the MoE and long-context Table II extension rows."""

    def test_moe_default_axes(self):
        workload = build_workload("MoE-1T", 512)
        p = workload.parallelism
        assert (p.tp, p.cp, p.ep) == (8, 1, 8)
        assert p.total_npus == 512

    def test_long_context_default_axes(self):
        workload = build_workload("Long-128K", 512)
        p = workload.parallelism
        assert (p.tp, p.cp, p.ep) == (8, 8, 1)
        assert p.total_npus == 512

    def test_moe_emits_ep_scope_comms(self):
        workload = build_workload("MoE-1T", 512)
        assert workload.comm_bytes_by_scope().get(CommScope.EP, 0.0) > 0

    def test_long_context_emits_cp_scope_comms(self):
        workload = build_workload("Long-128K", 512)
        assert workload.comm_bytes_by_scope().get(CommScope.CP, 0.0) > 0

    @pytest.mark.parametrize("name", ["MoE-1T", "Long-128K"])
    def test_canonical_round_trips_through_json(self, name):
        workload = build_workload(name, 512)
        payload = workload.canonical()
        assert json.loads(json.dumps(payload)) == payload

    def test_canonical_records_extension_degrees(self):
        moe = build_workload("MoE-1T", 512).canonical()
        assert moe["parallelism"]["ep"] == 8
        assert "cp" not in moe["parallelism"]
        long_ctx = build_workload("Long-128K", 512).canonical()
        assert long_ctx["parallelism"]["cp"] == 8
        assert "ep" not in long_ctx["parallelism"]

    def test_canonical_unchanged_for_classic_presets(self):
        """Degree-1 axes never appear: every pre-CP/EP digest stands."""
        payload = build_workload("Turing-NLG", 512).canonical()
        assert set(payload["parallelism"]) == {"tp", "dp", "pp"}

    def test_default_axes_must_divide_the_system(self):
        with pytest.raises(MappingError, match="does not divide"):
            build_workload("MoE-1T", 96)

    def test_preset_override_respects_total(self):
        p = Parallelism(tp=8, cp=2, ep=4, dp=8)
        workload = build_workload("MoE-1T", 512, parallelism=p)
        assert workload.parallelism == p
        bad = Parallelism(tp=8, dp=8)
        with pytest.raises(MappingError, match="occupies") as excinfo:
            build_workload("MoE-1T", 512, parallelism=bad)
        assert excinfo.value.parallelism is bad

"""Megatron-style transformer workload builder and Table II configs."""

import pytest

from repro.collectives import CollectiveType
from repro.workloads import (
    GPT3_CONFIG,
    MSFT_1T_CONFIG,
    TURING_NLG_CONFIG,
    CommScope,
    Parallelism,
    TransformerConfig,
    build_transformer,
)


class TestTable2ParamCounts:
    """The architecture configs must land on Table II's parameter counts."""

    def test_gpt3_175b(self):
        assert GPT3_CONFIG.total_params == pytest.approx(175e9, rel=0.02)

    def test_turing_nlg_17b(self):
        assert TURING_NLG_CONFIG.total_params == pytest.approx(17e9, rel=0.02)

    def test_msft_1t(self):
        assert MSFT_1T_CONFIG.total_params == pytest.approx(1e12, rel=0.01)


class TestBuildTransformer:
    def test_layer_count(self):
        workload = build_transformer(GPT3_CONFIG, Parallelism(16, 256))
        assert workload.num_layers == 96

    def test_workload_params_match_config(self):
        workload = build_transformer(GPT3_CONFIG, Parallelism(16, 256))
        assert workload.total_params == pytest.approx(GPT3_CONFIG.total_params)

    def test_tp_comm_is_four_all_reduces(self):
        """Megatron: 2 fwd + 2 bwd activation All-Reduces per layer."""
        workload = build_transformer(GPT3_CONFIG, Parallelism(16, 256))
        layer = workload.layers[0]
        assert len(layer.fwd_comms) == 2
        assert len(layer.tp_comms) == 2
        for comm in layer.fwd_comms + layer.tp_comms:
            assert comm.scope is CommScope.TP
            assert comm.kind is CollectiveType.ALL_REDUCE

    def test_activation_payload(self):
        workload = build_transformer(GPT3_CONFIG, Parallelism(16, 256))
        comm = workload.layers[0].fwd_comms[0]
        expected = GPT3_CONFIG.microbatch * GPT3_CONFIG.seq_len * GPT3_CONFIG.hidden * 2
        assert comm.size_bytes == pytest.approx(expected)

    def test_zero2_dp_comm(self):
        """ZeRO-2: per-layer grad Reduce-Scatter + param All-Gather."""
        workload = build_transformer(GPT3_CONFIG, Parallelism(16, 256))
        dp = workload.layers[0].dp_comms
        assert [c.kind for c in dp] == [
            CollectiveType.REDUCE_SCATTER,
            CollectiveType.ALL_GATHER,
        ]
        shard = GPT3_CONFIG.params_per_layer / 16 * 2
        for comm in dp:
            assert comm.size_bytes == pytest.approx(shard)
            assert comm.scope is CommScope.DP

    def test_no_tp_comm_when_tp_is_one(self):
        workload = build_transformer(TURING_NLG_CONFIG, Parallelism(1, 1024))
        layer = workload.layers[0]
        assert layer.fwd_comms == ()
        assert layer.tp_comms == ()
        assert len(layer.dp_comms) == 2

    def test_no_dp_comm_when_dp_is_one(self):
        config = TransformerConfig("tiny", num_layers=2, hidden=64, seq_len=8)
        workload = build_transformer(config, Parallelism(16, 1))
        assert workload.layers[0].dp_comms == ()

    def test_compute_sharded_by_tp(self):
        tp16 = build_transformer(GPT3_CONFIG, Parallelism(16, 256))
        tp8 = build_transformer(GPT3_CONFIG, Parallelism(8, 512))
        ratio = tp8.layers[0].fwd_compute_flops / tp16.layers[0].fwd_compute_flops
        assert ratio == pytest.approx(2.0)

    def test_backward_is_twice_forward(self):
        workload = build_transformer(GPT3_CONFIG, Parallelism(16, 256))
        layer = workload.layers[0]
        assert layer.tp_compute_flops + layer.dp_compute_flops == pytest.approx(
            2 * layer.fwd_compute_flops
        )

    def test_indivisible_hidden_rejected(self):
        config = TransformerConfig("odd", num_layers=1, hidden=100, seq_len=8)
        with pytest.raises(Exception, match="divisible"):
            build_transformer(config, Parallelism(3, 1))

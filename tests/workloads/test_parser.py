"""Workload text format: parsing, errors, and round-trip."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collectives import CollectiveType
from repro.utils.errors import ConfigurationError
from repro.workloads import (
    CommRequirement,
    CommScope,
    Layer,
    Parallelism,
    Workload,
    build_workload,
    parse_workload,
    serialize_workload,
)

SAMPLE = """
# sample workload
WORKLOAD Tiny-Net
DTYPE 2
PARALLELISM TP 2 DP 4

LAYER block0
  FWD_COMPUTE_FLOPS 1.5e12
  FWD_COMM ALL_REDUCE TP 2.0e8
  TP_COMPUTE_FLOPS 1.5e12
  TP_COMM ALL_REDUCE TP 2.0e8
  DP_COMPUTE_FLOPS 1.5e12
  DP_COMM REDUCE_SCATTER DP 4.0e8
  DP_COMM ALL_GATHER DP 4.0e8
  PARAMS 2.0e9
END

LAYER block1
  FWD_COMPUTE_FLOPS 3.0e11
END
"""


class TestParse:
    def test_header(self):
        workload = parse_workload(SAMPLE)
        assert workload.name == "Tiny-Net"
        assert workload.dtype_bytes == 2
        assert workload.parallelism == Parallelism(2, 4)

    def test_layers(self):
        workload = parse_workload(SAMPLE)
        assert workload.num_layers == 2
        block0 = workload.layers[0]
        assert block0.fwd_compute_flops == 1.5e12
        assert block0.param_count == 2.0e9
        assert len(block0.dp_comms) == 2
        assert block0.dp_comms[0].kind is CollectiveType.REDUCE_SCATTER
        assert block0.dp_comms[1].scope is CommScope.DP

    def test_sparse_layer(self):
        workload = parse_workload(SAMPLE)
        block1 = workload.layers[1]
        assert block1.fwd_comms == ()
        assert block1.dp_comms == ()

    def test_comments_and_blanks_ignored(self):
        text = "# hi\n\nWORKLOAD X\nPARALLELISM TP 1 DP 2\nLAYER a\nEND\n"
        assert parse_workload(text).name == "X"


class TestParseErrors:
    def test_missing_workload_header(self):
        with pytest.raises(ConfigurationError, match="WORKLOAD"):
            parse_workload("PARALLELISM TP 1 DP 2\nLAYER a\nEND")

    def test_missing_parallelism(self):
        with pytest.raises(ConfigurationError, match="PARALLELISM"):
            parse_workload("WORKLOAD X\nLAYER a\nEND")

    def test_unterminated_layer(self):
        with pytest.raises(ConfigurationError, match="missing its END"):
            parse_workload("WORKLOAD X\nPARALLELISM TP 1 DP 2\nLAYER a\n")

    def test_nested_layer(self):
        text = "WORKLOAD X\nPARALLELISM TP 1 DP 2\nLAYER a\nLAYER b\nEND"
        with pytest.raises(ConfigurationError, match="before END"):
            parse_workload(text)

    def test_end_without_layer(self):
        with pytest.raises(ConfigurationError, match="END without"):
            parse_workload("WORKLOAD X\nPARALLELISM TP 1 DP 2\nEND")

    def test_field_outside_layer(self):
        text = "WORKLOAD X\nPARALLELISM TP 1 DP 2\nFWD_COMPUTE_FLOPS 1\n"
        with pytest.raises(ConfigurationError, match="outside"):
            parse_workload(text)

    def test_unknown_keyword_with_line_number(self):
        text = "WORKLOAD X\nPARALLELISM TP 1 DP 2\nBOGUS 1\n"
        with pytest.raises(ConfigurationError, match="line 3"):
            parse_workload(text)

    def test_malformed_parallelism(self):
        with pytest.raises(ConfigurationError, match="PARALLELISM"):
            parse_workload("WORKLOAD X\nPARALLELISM 1 2\n")

    def test_bad_collective_kind(self):
        text = (
            "WORKLOAD X\nPARALLELISM TP 1 DP 2\nLAYER a\n"
            "  DP_COMM BROADCAST DP 1.0\nEND"
        )
        with pytest.raises(ConfigurationError, match="line 4"):
            parse_workload(text)


class TestRoundTrip:
    def test_sample_round_trip(self):
        workload = parse_workload(SAMPLE)
        again = parse_workload(serialize_workload(workload))
        assert again == workload

    def test_preset_round_trip(self):
        workload = build_workload("GPT-3", 4096)
        again = parse_workload(serialize_workload(workload))
        assert again.name == workload.name
        assert again.num_layers == workload.num_layers
        assert again.total_params == pytest.approx(workload.total_params)
        assert again.layers[0] == workload.layers[0]

    def test_file_round_trip(self, tmp_path):
        from repro.workloads import load_workload_file, save_workload_file

        workload = build_workload("ResNet-50", 64)
        path = tmp_path / "resnet.wl"
        save_workload_file(workload, path)
        assert load_workload_file(path) == workload


@st.composite
def workloads(draw):
    """Small random workloads exercising every field combination."""
    num_layers = draw(st.integers(min_value=1, max_value=4))
    layers = []
    floats = st.floats(min_value=0.0, max_value=1e12)
    sizes = st.floats(min_value=0.0, max_value=1e9)
    for index in range(num_layers):
        comms = []
        for _ in range(draw(st.integers(min_value=0, max_value=2))):
            comms.append(
                CommRequirement(
                    draw(st.sampled_from(list(CommScope))),
                    draw(st.sampled_from(list(CollectiveType))),
                    draw(sizes),
                )
            )
        layers.append(
            Layer(
                name=f"layer{index}",
                fwd_compute_flops=draw(floats),
                fwd_comms=tuple(comms),
                tp_compute_flops=draw(floats),
                dp_compute_flops=draw(floats),
                param_count=draw(floats),
            )
        )
    return Workload(
        name="prop-workload",
        layers=tuple(layers),
        parallelism=Parallelism(draw(st.integers(1, 8)), draw(st.integers(1, 8))),
        dtype_bytes=draw(st.sampled_from([1, 2, 4, 8])),
    )


@given(workloads())
def test_property_serialize_parse_round_trip(workload):
    assert parse_workload(serialize_workload(workload)) == workload

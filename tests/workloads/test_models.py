"""ResNet-50, DLRM, the preset registry, and workload aggregates."""

import pytest

from repro.collectives import CollectiveType
from repro.utils.errors import ConfigurationError, MappingError
from repro.workloads import (
    CommScope,
    DLRMConfig,
    Parallelism,
    build_all_workloads,
    build_dlrm,
    build_resnet50,
    build_workload,
    workload_names,
)


class TestResNet50:
    def test_param_count_matches_table2(self):
        workload = build_resnet50(Parallelism(1, 1024))
        assert workload.total_params == pytest.approx(25.6e6, rel=0.02)

    def test_dp_only(self):
        workload = build_resnet50(Parallelism(1, 1024))
        for layer in workload.layers:
            assert layer.fwd_comms == ()
            assert layer.tp_comms == ()

    def test_zero2_per_layer(self):
        workload = build_resnet50(Parallelism(1, 64))
        kinds = [c.kind for c in workload.layers[0].dp_comms]
        assert kinds == [CollectiveType.REDUCE_SCATTER, CollectiveType.ALL_GATHER]

    def test_tp_rejected(self):
        with pytest.raises(ValueError, match="data-parallel only"):
            build_resnet50(Parallelism(2, 32))

    def test_layer_structure(self):
        workload = build_resnet50(Parallelism(1, 8))
        names = [layer.name for layer in workload.layers]
        assert names[0] == "stem-conv7x7"
        assert names[-1] == "fc1000"
        # 1 stem + (3+4+6+3)*3 convs + 4 downsamples + 1 fc = 54 layers
        assert len(names) == 54

    def test_flops_scale_with_batch(self):
        small = build_resnet50(Parallelism(1, 8), minibatch=16)
        large = build_resnet50(Parallelism(1, 8), minibatch=32)
        assert large.total_compute_flops == pytest.approx(2 * small.total_compute_flops)


class TestDLRM:
    def test_mlp_params_match_table2(self):
        assert DLRMConfig().mlp_params == pytest.approx(57e6, rel=0.05)

    def test_embedding_all_to_all_global(self):
        workload = build_dlrm(Parallelism(1, 1024))
        emb = workload.layers[0]
        assert emb.name == "embedding-exchange"
        fwd = emb.fwd_comms[0]
        assert fwd.kind is CollectiveType.ALL_TO_ALL
        assert fwd.scope is CommScope.GLOBAL
        bwd = emb.tp_comms[0]
        assert bwd.kind is CollectiveType.ALL_TO_ALL

    def test_a2a_payload(self):
        cfg = DLRMConfig()
        workload = build_dlrm(Parallelism(1, 1024), cfg)
        expected = cfg.minibatch * cfg.num_tables * cfg.emb_dim * cfg.dtype_bytes
        assert workload.layers[0].fwd_comms[0].size_bytes == pytest.approx(expected)

    def test_mlp_layers_are_dp(self):
        workload = build_dlrm(Parallelism(1, 64))
        for layer in workload.layers[1:]:
            assert all(c.scope is CommScope.DP for c in layer.dp_comms)


class TestRegistry:
    def test_names_match_table2(self):
        assert workload_names() == [
            "Turing-NLG",
            "GPT-3",
            "MSFT-1T",
            "DLRM",
            "ResNet-50",
            "MoE-1T",
            "Long-128K",
        ]

    @pytest.mark.parametrize("name", ["Turing-NLG", "GPT-3", "MSFT-1T", "DLRM", "ResNet-50"])
    def test_build_at_4k(self, name):
        workload = build_workload(name, 4096)
        assert workload.parallelism.total_npus == 4096

    def test_table2_tp_sizes(self):
        assert build_workload("GPT-3", 4096).parallelism.tp == 16
        assert build_workload("MSFT-1T", 4096).parallelism.tp == 128
        assert build_workload("Turing-NLG", 4096).parallelism.tp == 1

    def test_unknown_workload(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            build_workload("BERT", 1024)

    def test_indivisible_npus(self):
        with pytest.raises(MappingError):
            build_workload("MSFT-1T", 64)  # TP=128 > 64

    def test_parallelism_override(self):
        workload = build_workload("MSFT-1T", 4096, Parallelism(64, 64))
        assert workload.parallelism.tp == 64

    def test_override_wrong_total(self):
        with pytest.raises(MappingError):
            build_workload("GPT-3", 4096, Parallelism(16, 16))

    def test_build_all(self):
        workloads = build_all_workloads(4096)
        assert set(workloads) == set(workload_names())


class TestWorkloadAggregates:
    def test_comm_bytes_by_scope(self):
        workload = build_workload("GPT-3", 4096)
        by_scope = workload.comm_bytes_by_scope()
        assert by_scope[CommScope.TP] > 0
        assert by_scope[CommScope.DP] > 0

    def test_total_comm_positive_and_consistent(self):
        workload = build_workload("GPT-3", 4096)
        assert workload.total_comm_bytes == pytest.approx(
            sum(workload.comm_bytes_by_scope().values())
        )

    def test_str(self):
        text = str(build_workload("GPT-3", 4096))
        assert "GPT-3" in text and "96 layers" in text

    def test_comm_requirements_order(self):
        workload = build_workload("GPT-3", 4096)
        pairs = workload.comm_requirements()
        assert len(pairs) == 96 * 6  # 2 fwd + 2 tp + 2 dp per layer

"""HP-(tp, dp) mapping onto network dimensions, including partial spans."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collectives import DimSpan
from repro.topology import MultiDimNetwork, get_topology
from repro.utils.errors import MappingError
from repro.utils.validation import prod
from repro.workloads import CommScope, Parallelism, candidate_strategies, map_parallelism


class TestParallelism:
    def test_total(self):
        assert Parallelism(16, 256).total_npus == 4096

    def test_str(self):
        assert str(Parallelism(8, 4)) == "HP-(8, 4)"

    def test_bad_degrees(self):
        with pytest.raises(ValueError):
            Parallelism(0, 4)
        with pytest.raises(ValueError):
            Parallelism(4, -1)


class TestMapping:
    def test_tp_one_all_dp(self):
        net = get_topology("4D-4K")
        mapping = map_parallelism(net, Parallelism(1, 4096))
        assert mapping.tp_spans == ()
        assert mapping.dp_spans == tuple(
            DimSpan(dim, size) for dim, size in enumerate(net.dim_sizes)
        )

    def test_tp_covers_whole_dims(self):
        """MSFT-1T TP-128 on 4D-4K: dims 1–3 exactly (4·8·4 = 128)."""
        net = get_topology("4D-4K")
        mapping = map_parallelism(net, Parallelism(128, 32))
        assert mapping.tp_spans == (DimSpan(0, 4), DimSpan(1, 8), DimSpan(2, 4))
        assert mapping.dp_spans == (DimSpan(3, 32),)

    def test_partial_dim_split_gpt3(self):
        """GPT-3 TP-16 on 4D-4K: RI(4) fully + half of FC(8) — the paper's
        'mismatching TP size' case. DP takes the other half of Dim 2."""
        net = get_topology("4D-4K")
        mapping = map_parallelism(net, Parallelism(16, 256))
        assert mapping.tp_spans == (DimSpan(0, 4), DimSpan(1, 4))
        assert mapping.dp_spans == (DimSpan(1, 2), DimSpan(2, 4), DimSpan(3, 32))

    def test_global_spans_cover_everything(self):
        net = get_topology("3D-4K")
        mapping = map_parallelism(net, Parallelism(16, 256))
        assert mapping.global_spans == tuple(
            DimSpan(dim, size) for dim, size in enumerate(net.dim_sizes)
        )

    def test_spans_for_scope(self):
        net = get_topology("3D-4K")
        mapping = map_parallelism(net, Parallelism(16, 256))
        assert mapping.spans_for(CommScope.TP) == mapping.tp_spans
        assert mapping.spans_for(CommScope.DP) == mapping.dp_spans
        assert mapping.spans_for(CommScope.GLOBAL) == mapping.global_spans

    def test_wrong_total_rejected(self):
        net = get_topology("4D-4K")
        with pytest.raises(MappingError, match="needs"):
            map_parallelism(net, Parallelism(16, 16))

    def test_indivisible_split_rejected(self):
        """TP-4 cannot slice a RI(6) dimension (6 % 4 != 0)."""
        net = MultiDimNetwork.from_notation("RI(6)_RI(4)")
        with pytest.raises(MappingError, match="not a divisor"):
            map_parallelism(net, Parallelism(4, 6))

    def test_non_factoring_tp_rejected(self):
        """TP-8 over RI(6)_RI(4): 8 > 6 but 8 % 6 != 0."""
        net = MultiDimNetwork.from_notation("RI(6)_RI(4)")
        with pytest.raises(MappingError, match="does not factor"):
            map_parallelism(net, Parallelism(8, 3))

    def test_tp_spans_whole_network(self):
        net = MultiDimNetwork.from_notation("RI(4)_RI(4)")
        mapping = map_parallelism(net, Parallelism(16, 1))
        assert mapping.tp_spans == (DimSpan(0, 4), DimSpan(1, 4))
        assert mapping.dp_spans == ()


class TestCandidateStrategies:
    def test_power_of_two_splits(self):
        strategies = candidate_strategies(64)
        assert [s.tp for s in strategies] == [1, 2, 4, 8, 16, 32, 64]
        assert all(s.total_npus == 64 for s in strategies)

    def test_range_limits(self):
        strategies = candidate_strategies(4096, min_tp=8, max_tp=256)
        assert [s.tp for s in strategies] == [8, 16, 32, 64, 128, 256]


@given(
    st.lists(st.sampled_from([2, 4, 8]), min_size=1, max_size=4),
    st.data(),
)
def test_property_mapping_partitions_npus(sizes, data):
    """TP spans × DP spans always multiply back to the full NPU count."""
    notation = "_".join(f"RI({size})" for size in sizes)
    net = MultiDimNetwork.from_notation(notation)
    total = net.num_npus
    divisors = [d for d in range(1, total + 1) if total % d == 0]
    tp = data.draw(st.sampled_from(divisors))
    try:
        mapping = map_parallelism(net, Parallelism(tp, total // tp))
    except MappingError:
        return  # non-factorable split; rejection is the contract
    tp_product = prod(span.size for span in mapping.tp_spans)
    dp_product = prod(span.size for span in mapping.dp_spans)
    assert tp_product == tp
    assert dp_product == total // tp
    assert tp_product * dp_product == total

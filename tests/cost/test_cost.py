"""Cost model (Table I) and network cost estimation (Fig. 12)."""

import pytest

from repro.cost import (
    CostModel,
    TierCost,
    cost_breakdown,
    cost_rates,
    default_cost_model,
    max_bandwidth_for_budget,
    network_cost,
)
from repro.topology import MultiDimNetwork, NetworkTier, get_topology, ring, switch
from repro.utils import gbps
from repro.utils.errors import ConfigurationError


class TestDefaultModel:
    def test_table1_lowest_values(self):
        model = default_cost_model()
        assert model.link_cost(NetworkTier.CHIPLET) == 2.0
        assert model.link_cost(NetworkTier.PACKAGE) == 4.0
        assert model.link_cost(NetworkTier.NODE) == 4.0
        assert model.link_cost(NetworkTier.POD) == 7.8
        assert model.switch_cost(NetworkTier.POD) == 18.0
        assert model.nic_cost(NetworkTier.POD) == 31.6

    def test_chiplet_has_no_switch(self):
        with pytest.raises(ConfigurationError, match="peer-to-peer"):
            default_cost_model().switch_cost(NetworkTier.CHIPLET)

    def test_non_pod_tiers_have_free_nics(self):
        model = default_cost_model()
        assert model.nic_cost(NetworkTier.NODE) == 0.0
        assert model.nic_cost(NetworkTier.CHIPLET) == 0.0

    def test_missing_tier(self):
        empty = CostModel(tiers={}, name="empty")
        with pytest.raises(ConfigurationError, match="no prices"):
            empty.link_cost(NetworkTier.POD)

    def test_with_link_cost(self):
        """Fig. 18's sweep knob replaces one tier's link price."""
        model = default_cost_model().with_link_cost(NetworkTier.PACKAGE, 1.0)
        assert model.link_cost(NetworkTier.PACKAGE) == 1.0
        assert model.switch_cost(NetworkTier.PACKAGE) == 13.0  # untouched
        assert default_cost_model().link_cost(NetworkTier.PACKAGE) == 4.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            TierCost(link=-1.0)


class TestFig12Example:
    def test_worked_example(self):
        """3 NPUs behind one inter-Pod switch at 10 GB/s → $1,722."""
        net = MultiDimNetwork(blocks=(switch(3),), tiers=(NetworkTier.POD,))
        total = network_cost(net, [gbps(10)], default_cost_model())
        assert total == pytest.approx(1722.0)

    def test_breakdown_line_items(self):
        net = MultiDimNetwork(blocks=(switch(3),), tiers=(NetworkTier.POD,))
        (entry,) = cost_breakdown(net, [gbps(10)], default_cost_model())
        assert entry.link == pytest.approx(234.0)
        assert entry.switch == pytest.approx(540.0)
        assert entry.nic == pytest.approx(948.0)
        assert entry.total == pytest.approx(1722.0)


class TestNetworkCost:
    def test_linear_in_bandwidth(self):
        net = get_topology("4D-4K")
        model = default_cost_model()
        base = network_cost(net, [gbps(100)] * 4, model)
        double = network_cost(net, [gbps(200)] * 4, model)
        assert double == pytest.approx(2 * base)

    def test_rates_match_cost(self):
        net = get_topology("4D-4K")
        model = default_cost_model()
        rates = cost_rates(net, model)
        bandwidths = [gbps(80), gbps(120), gbps(60), gbps(40)]
        via_rates = net.num_npus * sum(r * b for r, b in zip(rates, bandwidths))
        assert via_rates == pytest.approx(network_cost(net, bandwidths, model))

    def test_ring_dims_have_no_switch_cost(self):
        net = MultiDimNetwork(blocks=(ring(4),), tiers=(NetworkTier.NODE,))
        (entry,) = cost_breakdown(net, [gbps(10)], default_cost_model())
        assert entry.switch == 0.0

    def test_inner_dims_cheaper_than_outer(self):
        """The default tier assignment makes lower dims cheaper per GB/s —
        the premise of the paper's perf-per-cost argument (Sec. III-B)."""
        net = get_topology("4D-4K")
        rates = cost_rates(net, default_cost_model())
        assert rates[0] < rates[1] <= rates[2] < rates[3]

    def test_wrong_bandwidth_count(self):
        net = get_topology("4D-4K")
        with pytest.raises(ConfigurationError):
            network_cost(net, [gbps(10)], default_cost_model())

    def test_negative_bandwidth_rejected(self):
        net = MultiDimNetwork(blocks=(ring(4),), tiers=(NetworkTier.NODE,))
        with pytest.raises(ConfigurationError):
            network_cost(net, [-1.0], default_cost_model())


class TestBudgetSizing:
    def test_equal_shares_round_trip(self):
        """Sizing a budget then pricing the result returns the budget."""
        net = get_topology("4D-4K")
        model = default_cost_model()
        budget = 15e6  # the Fig. 19 iso-cost budget
        total_bw = max_bandwidth_for_budget(net, [0.25] * 4, budget, model)
        cost = network_cost(net, [total_bw / 4] * 4, model)
        assert cost == pytest.approx(budget, rel=1e-9)

    def test_cheap_shape_affords_more(self):
        """Shifting shares toward cheap inner dims buys more bandwidth."""
        net = get_topology("4D-4K")
        model = default_cost_model()
        equal = max_bandwidth_for_budget(net, [0.25] * 4, 15e6, model)
        skewed = max_bandwidth_for_budget(net, [0.7, 0.2, 0.08, 0.02], 15e6, model)
        assert skewed > equal

    def test_bad_budget(self):
        net = get_topology("4D-4K")
        with pytest.raises(ConfigurationError):
            max_bandwidth_for_budget(net, [0.25] * 4, 0.0, default_cost_model())

    def test_bad_shares(self):
        net = get_topology("4D-4K")
        with pytest.raises(ConfigurationError):
            max_bandwidth_for_budget(net, [0.0] * 4, 1e6, default_cost_model())

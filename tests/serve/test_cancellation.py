"""Threaded end-to-end: submit a sweep, stream, cancel mid-run, resume.

The acceptance property: cancelling a running sweep job leaves the
on-disk explore cache *consistent* — every completed cell is persisted
and reusable, no partial rows exist — so a resubmission pays only for
the cells the cancelled run never reached.
"""

import pytest

from repro.api.requests import BatchRequest
from repro.explore.cache import ResultCache
from repro.explore.spec import SweepSpec
from repro.serve import JobManager, JobState
from repro.utils.errors import JobCancelled

TOPOLOGY = "RI(3)_RI(2)"
WORKLOAD = "Turing-NLG"
BUDGETS = (100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0)


def _spec():
    return SweepSpec(
        workloads=(WORKLOAD,), topologies=(TOPOLOGY,), bandwidths_gbps=BUDGETS
    )


class TestSweepCancellation:
    def test_cancel_mid_sweep_leaves_cache_reusable(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with JobManager(workers=1) as manager:
            handle = manager.submit(BatchRequest(spec=_spec(), cache_dir=cache_dir))
            # Stream live events from another thread's job; cancel at the
            # first completed cell.
            for event in handle.stream(timeout=300):
                if event.kind == "cell":
                    handle.cancel()
                    break
            assert handle.wait(timeout=300) is JobState.CANCELLED
            with pytest.raises(JobCancelled):
                handle.result()

        # Cache consistency: some cells completed (we cancelled after one),
        # none of the 8 partially written, every row loads and is ok.
        rows = sorted((tmp_path / "cache").glob("*.json"))
        assert 1 <= len(rows) < len(BUDGETS)
        assert not list((tmp_path / "cache").glob("*.tmp")), "partial row leaked"
        cache = ResultCache(cache_dir)
        for path in rows:
            row = cache.get(path.stem)
            assert row is not None and row.ok

        # Resume: a fresh manager + the same request reuses every cached
        # cell and solves only the remainder.
        with JobManager(workers=1) as manager:
            handle = manager.submit(BatchRequest(spec=_spec(), cache_dir=cache_dir))
            response = handle.result(timeout=600)
        assert response.sweep.cache_hits == len(rows)
        assert response.sweep.solver_calls == len(BUDGETS) - len(rows)
        assert response.sweep.num_errors == 0
        assert len(response.sweep.results) == len(BUDGETS)

    def test_cancelled_job_events_end_with_cancelled_state(self, tmp_path):
        with JobManager(workers=1) as manager:
            handle = manager.submit(
                BatchRequest(spec=_spec(), cache_dir=str(tmp_path / "c2"))
            )
            for event in handle.stream(timeout=300):
                if event.kind == "plan":
                    handle.cancel()
                    break
            handle.wait(timeout=300)
        events = handle.events()
        assert events[-1].kind == "state"
        assert events[-1].data["state"] == "cancelled"
        assert "cancelled" in handle.info().error

"""Costrategy jobs through the serve tier: durable, streamed, recoverable."""

import threading
import time

import pytest

from repro.api.requests import (
    CostrategyRequest,
    CostrategyResponse,
    request_to_dict,
)
from repro.serve import JobManager, JobState, JobStore, ServeClient, create_server
from repro.serve.jobs import derive_job_id, job_content_key
from repro.serve.store import STORE_VERSION
from repro.strategy import StrategySpace

TOPOLOGY = "Google TPUv2"  # 8 NPUs — two strategies at max_tp=2
WORKLOAD = "Turing-NLG"


def _request(budgets=(100.0, 200.0), **kwargs):
    kwargs.setdefault("space", StrategySpace(max_tp=2))
    return CostrategyRequest(
        workload=WORKLOAD, topology=TOPOLOGY, budgets_gbps=budgets, **kwargs
    )


def _persist_queued(store: JobStore, request) -> str:
    """The on-disk state of a costrategy job a crash caught while queued."""
    content_key = job_content_key(request)
    job_id = derive_job_id(content_key)
    now = time.time()
    store.append_event(
        job_id,
        {
            "seq": 0, "job_id": job_id, "kind": "state", "at": now,
            "data": {"state": "queued"},
        },
        durable=True,
    )
    store.save_record(
        job_id,
        {
            "store_version": STORE_VERSION,
            "job": {
                "id": job_id, "kind": "costrategy", "state": "queued",
                "created_at": now, "started_at": None, "finished_at": None,
                "error": "", "events": 1, "result": None, "metrics": None,
            },
            "request": request_to_dict(request),
            "content_key": content_key,
            "attempts": 0,
        },
    )
    return job_id


class TestDurableCostrategyJobs:
    def test_done_job_survives_restart_bit_identically(self, tmp_path):
        request = _request()
        with JobManager(
            workers=1, store=JobStore(tmp_path / "state")
        ) as manager:
            handle = manager.submit(request)
            response = handle.result(timeout=300)
            job_id = handle.id
            assert handle.info().kind == "costrategy"
            before = [e.to_dict() for e in handle.events()]

        restarted = JobManager(
            workers=1, store=JobStore(tmp_path / "state")
        )
        try:
            assert restarted.recovered_jobs == 0  # terminal: nothing to rerun
            handle = restarted.get(job_id)
            assert handle.state is JobState.DONE
            restored = handle.result()
            assert isinstance(restored, CostrategyResponse)
            assert restored.to_dict() == response.to_dict()
            assert [e.to_dict() for e in handle.events()] == before
        finally:
            restarted.shutdown()

    def test_stream_narrates_strategies_and_cells(self, tmp_path):
        with JobManager(
            workers=1, store=JobStore(tmp_path / "state")
        ) as manager:
            handle = manager.submit(_request())
            handle.result(timeout=300)
            events = handle.events()
            kinds = {e.kind for e in events}
            assert {"state", "plan", "strategy", "cell"} <= kinds
            assert [e.seq for e in events] == list(range(len(events)))
            cells = [e for e in events if e.kind == "cell"]
            assert len(cells) == 4
            assert cells[-1].data["done"] == 4
            # Every event shape survives its own codec (the durability
            # format is exactly the wire format).
            from repro.serve.events import ProgressEvent

            for event in events:
                assert ProgressEvent.from_dict(event.to_dict()) == event

    def test_queued_job_is_recovered_and_completed(self, tmp_path):
        request = _request(budgets=(150.0,))
        with JobStore(tmp_path / "state") as store:
            job_id = _persist_queued(store, request)

        manager = JobManager(workers=1, store=JobStore(tmp_path / "state"))
        try:
            assert manager.recovered_jobs == 1
            response = manager.job(job_id).result(timeout=300)
            assert isinstance(response, CostrategyResponse)
            assert len(response.frontier.best_per_budget) == 1
            events = manager.job(job_id).events()
            assert events[1].data["reason"] == "recovered after restart"
        finally:
            manager.shutdown()

    def test_recovered_job_resumes_from_the_durable_cache(self, tmp_path):
        """A re-run job replays solved cells from the on-disk result cache
        — the cache-replay bit-identity contract, across a restart."""
        from repro.api.service import LibraService

        request = _request(cache_dir=str(tmp_path / "cache"))
        reference = LibraService().submit(request)

        with JobStore(tmp_path / "state") as store:
            job_id = _persist_queued(store, request)
        manager = JobManager(workers=1, store=JobStore(tmp_path / "state"))
        try:
            resumed = manager.job(job_id).result(timeout=300)
        finally:
            manager.shutdown()

        assert resumed.frontier.diagnostics["cached"] == 4
        assert resumed.frontier.diagnostics["solved"] == 0

        def rows(response):
            normalized = []
            for row in response.frontier.rows():
                payload = row.to_dict()
                payload.pop("from_cache", None)  # provenance, not physics
                normalized.append(payload)
            return normalized

        assert rows(resumed) == rows(reference)


class TestCostrategyOverHttp:
    @pytest.fixture
    def client(self):
        manager = JobManager(workers=1)
        server = create_server(manager, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield ServeClient(f"http://{host}:{port}", timeout=300.0)
        finally:
            server.shutdown()
            server.server_close()
            manager.shutdown()

    def test_submit_stream_and_decode(self, client):
        info = client.submit(_request())
        assert info.kind == "costrategy"
        response = client.result(info.id, timeout=300)
        assert isinstance(response, CostrategyResponse)
        assert len(response.frontier.runs) == 2
        kinds = {e.kind for e in client.events(info.id)}
        assert "strategy" in kinds

    def test_client_side_cache_dir_rejected_without_cache_root(self, client):
        """A costrategy cache_dir is a server-side path — without
        --cache-root the server refuses it, exactly like batch."""
        from repro.serve.client import ServeClientError

        with pytest.raises(ServeClientError, match="cache"):
            client.submit(_request(cache_dir="strategies"))

"""JobManager: the async lifecycle over a thread-safe LibraService."""

import threading
import time

import pytest

from repro.api.requests import BatchRequest, OptimizeRequest
from repro.api.scenario import build_scenario
from repro.api.service import LibraService
from repro.explore.spec import SweepSpec
from repro.serve import JobManager, JobState
from repro.utils.errors import ConfigurationError, JobCancelled, ReproError

TOPOLOGY = "RI(3)_RI(2)"
WORKLOAD = "Turing-NLG"


def _request(total_bw=300, **kwargs):
    return OptimizeRequest(
        scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=total_bw),
        **kwargs,
    )


def _infeasible_request():
    # Caps sum to 20 GB/s against a 300 GB/s budget: no feasible point, so
    # the job fails at solve time (not at request construction).
    return OptimizeRequest(
        scenario=build_scenario(
            TOPOLOGY, [WORKLOAD], total_bw_gbps=300,
            dim_caps_gbps=((0, 10.0), (1, 10.0)),
        )
    )


@pytest.fixture
def manager():
    with JobManager(workers=2) as manager:
        yield manager


class TestSubmit:
    def test_result_matches_blocking_service(self, manager):
        request = _request()
        handle = manager.submit(request)
        async_response = handle.result(timeout=120)
        blocking = LibraService().submit(request)
        assert async_response.point.bandwidths == blocking.point.bandwidths
        assert async_response.to_dict() == blocking.to_dict()

    def test_lifecycle_events_in_order(self, manager):
        handle = manager.submit(_request())
        events = list(handle.stream(timeout=120))
        states = [e.data["state"] for e in events if e.kind == "state"]
        assert states == ["queued", "running", "done"]
        assert events[-1].kind == "state"  # terminal event closes the stream
        seqs = [e.seq for e in events]
        assert seqs == list(range(len(events)))

    def test_solve_event_carries_warm_telemetry(self, manager):
        handle = manager.submit(_request())
        handle.result(timeout=120)
        solve_events = [e for e in handle.events() if e.kind == "solve"]
        assert len(solve_events) == 1
        assert solve_events[0].data["warm_start"] == "cold"
        assert solve_events[0].data["warm_source"] == "none"
        assert solve_events[0].data["starts"] >= 1

    def test_batch_job_reports_cells_and_diagnostics(self, manager):
        spec = SweepSpec(
            workloads=(WORKLOAD,), topologies=(TOPOLOGY,),
            bandwidths_gbps=(100.0, 300.0),
        )
        handle = manager.submit(BatchRequest(spec=spec))
        response = handle.result(timeout=300)
        assert len(response.sweep.results) == 2
        assert response.diagnostics["cells"] == 2
        assert response.diagnostics["solver_calls"] == 2
        assert response.diagnostics["fanout_cells"] == 0
        assert 0.0 <= response.diagnostics["warm_hit_rate"] <= 1.0
        assert response.diagnostics["profile"]["chains"] == 1
        kinds = [e.kind for e in handle.events()]
        assert "plan" in kinds and "chain" in kinds
        assert kinds.count("cell") == 2

    def test_batch_cells_run_through_the_managers_service(self, manager):
        """Inline batch solves must use the manager's service memos, not
        the module-global default (else bounds/warm memos are ignored)."""
        from repro.api.service import get_service, reset_service

        reset_service()
        spec = SweepSpec(
            workloads=(WORKLOAD,), topologies=(TOPOLOGY,),
            bandwidths_gbps=(120.0,),
        )
        manager.submit(BatchRequest(spec=spec)).result(timeout=300)
        assert manager.service.compiled_count >= 1
        assert get_service().compiled_count == 0
        reset_service()

    def test_failed_job_raises_with_error(self, manager):
        handle = manager.submit(_infeasible_request())
        assert handle.wait(timeout=120) is JobState.FAILED
        with pytest.raises(ReproError, match="OptimizationError"):
            handle.result()
        assert "OptimizationError" in handle.info().error

    def test_submit_after_shutdown_refused(self):
        manager = JobManager(workers=1)
        manager.shutdown()
        with pytest.raises(ConfigurationError, match="shut down"):
            manager.submit(_request())


class TestDedupe:
    def test_same_content_returns_same_job(self, manager):
        first = manager.submit(_request())
        second = manager.submit(_request())
        assert first.id == second.id
        first.result(timeout=120)
        # Even after completion, the done job is reused (idempotent reads).
        third = manager.submit(_request())
        assert third.id == first.id and third.done

    def test_different_content_forks_jobs(self, manager):
        assert manager.submit(_request(300)).id != manager.submit(_request(400)).id

    def test_dedupe_false_forces_rerun(self, manager):
        first = manager.submit(_request())
        second = manager.submit(_request(), dedupe=False)
        assert second.id == first.id + "-r1"

    def test_cancelled_job_reruns_under_suffixed_id(self, manager):
        request = _infeasible_request()
        first = manager.submit(request)
        first.wait(timeout=120)  # fails
        second = manager.submit(request)
        assert second.id == first.id + "-r1"


class TestCancel:
    def test_cancel_queued_job_is_immediate(self):
        # One worker, hog it with a slow job; the second job sits queued.
        with JobManager(workers=1) as manager:
            hog = manager.submit(_request(300))
            queued = manager.submit(_request(400))
            assert queued.cancel() is True
            # Usually cancelled-while-queued (instant); if the hog finished
            # first the cancel lands at the next solver checkpoint instead.
            assert queued.wait(timeout=120) is JobState.CANCELLED
            with pytest.raises(JobCancelled):
                queued.result()
            assert hog.result(timeout=120) is not None

    def test_cancel_finished_job_is_noop(self, manager):
        handle = manager.submit(_request())
        handle.result(timeout=120)
        assert handle.cancel() is False
        assert handle.state is JobState.DONE


class TestStaleAttemptIsolation:
    """A requeued-and-rerun record must ignore the old thread's outcome.

    Models the fleet lease-loss + self-reclaim interleaving without the
    fleet machinery: attempt 1 blocks mid-solve, the record requeues
    (what a lease loss does to a running job), attempt 2 goes RUNNING on
    the same record, and attempt 1 then finishes. ``state is RUNNING``
    alone cannot tell the attempts apart — only the per-attempt
    ``run_generation`` stamp keeps the stale thread's outcome from
    terminating the new run.
    """

    class _GateService:
        def __init__(self):
            self.first_started = threading.Event()
            self.first_release = threading.Event()
            self.second_started = threading.Event()
            self.second_release = threading.Event()
            self._calls = 0
            self._lock = threading.Lock()

        def submit(self, request, should_stop=None, on_event=None):
            with self._lock:
                self._calls += 1
                call = self._calls
            if call == 1:
                self.first_started.set()
                assert self.first_release.wait(timeout=60)
                raise JobCancelled("stale attempt winding down")
            self.second_started.set()
            assert self.second_release.wait(timeout=60)
            return f"result-from-attempt-{call}"

    def test_stale_attempt_outcome_never_lands_on_a_new_run(self):
        service = self._GateService()
        manager = JobManager(service=service, workers=2)
        try:
            handle = manager.submit(_request())
            record = handle._record
            assert service.first_started.wait(timeout=60)
            # The lease-loss shape: the running record goes back to
            # queued while its solver thread is still inside submit().
            with record.cond:
                record.requeue("lease lost (renewal failed); test")
            # The reclaim shape: a second attempt runs the same record.
            manager._pool.submit(manager._run, record)
            assert service.second_started.wait(timeout=60)
            # Let the stale attempt finish while attempt 2 is RUNNING;
            # its JobCancelled must not cancel attempt 2's run.
            service.first_release.set()
            deadline = time.monotonic() + 1.0
            while time.monotonic() < deadline:
                assert handle.state is JobState.RUNNING, (
                    "stale attempt's outcome landed on the new run"
                )
                time.sleep(0.02)
            service.second_release.set()
            assert handle.wait(timeout=60) is JobState.DONE
            with record.cond:
                assert record.result == "result-from-attempt-2"
        finally:
            service.first_release.set()
            service.second_release.set()
            manager.shutdown()


class TestBounds:
    def test_terminal_jobs_evicted_at_capacity(self):
        # grace 0: evict finished jobs immediately (the default keeps them
        # 60s so a submitter can still fetch the result it just streamed).
        with JobManager(workers=1, max_jobs=2, evict_grace_s=0.0) as manager:
            first = manager.submit(_request(100))
            first.result(timeout=120)
            second = manager.submit(_request(200))
            second.result(timeout=120)
            manager.submit(_request(400))
            assert manager.get(first.id) is None  # oldest terminal evicted
            assert manager.get(second.id) is not None

    def test_lookup(self, manager):
        handle = manager.submit(_request())
        assert manager.job(handle.id).id == handle.id
        assert manager.get("job-nope") is None
        with pytest.raises(ConfigurationError, match="unknown job id"):
            manager.job("job-nope")
        assert handle.id in [h.id for h in manager.handles()]

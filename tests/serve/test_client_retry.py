"""ServeClient resilience: GET retry, transient taxonomy, stream reconnect."""

import socket
import time

import pytest

from repro.api.requests import RESPONSE_SCHEMA_VERSION, OptimizeRequest
from repro.api.scenario import build_scenario
from repro.serve.client import ServeClient, ServeClientError, ServeStreamStalled
from repro.serve.events import ProgressEvent
from repro.serve.jobs import JobInfo, JobState, derive_job_id, job_content_key
from repro.utils.errors import ConfigurationError


def _submit_request() -> OptimizeRequest:
    return OptimizeRequest(
        scenario=build_scenario("RI(3)_RI(2)", ["Turing-NLG"], total_bw_gbps=300)
    )


def _dead_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _client(**kwargs) -> ServeClient:
    client = ServeClient(
        f"http://127.0.0.1:{_dead_port()}",
        timeout=5,
        retry_backoff_s=0.0,
        **kwargs,
    )
    # Record backoffs instead of sleeping: attempt counting without time.
    client._sleeps = []
    client._backoff_sleep = client._sleeps.append
    return client


def _done_info(job_id: str = "job-x") -> JobInfo:
    return JobInfo(
        id=job_id, kind="optimize", state=JobState.DONE,
        created_at=1000.0, started_at=1000.5, finished_at=1001.0,
    )


def _event(seq: int) -> ProgressEvent:
    return ProgressEvent(
        seq=seq, job_id="job-x", kind="state", at=1000.0,
        data={"state": "done"},
    )


class TestTransientClassification:
    def test_connection_refused_is_transient_and_retried(self):
        client = _client(retries=2)
        with pytest.raises(ServeClientError) as err:
            client.job("job-x")
        assert err.value.transient
        assert err.value.status == 0
        assert client._sleeps == [0, 1]  # two backed-off retries

    def test_http_errors_are_not_transient(self):
        info = _done_info()

        def fake_open(method, path, payload=None):
            raise ServeClientError("GET /x -> HTTP 404", status=404)

        client = _client(retries=3)
        client._open = fake_open
        with pytest.raises(ServeClientError) as err:
            client.job(info.id)
        assert not err.value.transient
        assert client._sleeps == []  # no retry: the server answered

    def test_deletes_are_never_retried(self):
        client = _client(retries=3)
        with pytest.raises(ServeClientError) as err:
            client.cancel("job-x")
        assert err.value.transient
        assert client._sleeps == []  # repeating a cancel is not idempotent

    def test_submit_retries_like_a_get(self):
        # Safe because job ids are content-derived: the server dedupes a
        # repeated payload onto whatever the fate-unknown first attempt
        # created.
        client = _client(retries=2)
        with pytest.raises(ServeClientError) as err:
            client.submit({"schema_version": RESPONSE_SCHEMA_VERSION})
        assert err.value.transient
        assert client._sleeps == [0, 1]

    def test_submit_recovers_and_checks_the_deduped_id(self):
        request = _submit_request()
        expected = derive_job_id(job_content_key(request))
        client = _client(retries=3)
        calls = {"n": 0}

        def flaky_call_once(method, path, payload=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ServeClientError("refused", transient=True)
            return _done_info(expected).to_dict()

        client._call_once = flaky_call_once
        info = client.submit(request)
        assert info.id == expected
        assert calls["n"] == 2
        assert client._sleeps == [0]

    def test_submit_rejects_a_server_that_does_not_dedupe(self):
        # The id assertion is the belt on the retry reasoning: a server
        # answering with an unrelated id is not deduping by content, so
        # retrying against it could fork duplicate work.
        client = _client(retries=3)
        client._call_once = (
            lambda method, path, payload=None: _done_info("job-other").to_dict()
        )
        with pytest.raises(ServeClientError, match="dedupe") as err:
            client.submit(_submit_request())
        assert not err.value.transient
        assert client._sleeps == []

    def test_submit_accepts_a_rerun_suffix(self):
        request = _submit_request()
        expected = derive_job_id(job_content_key(request))
        client = _client(retries=0)
        client._call_once = (
            lambda method, path, payload=None:
            _done_info(expected + "-r2").to_dict()
        )
        assert client.submit(request).id == expected + "-r2"

    def test_zero_retries_fails_on_first_transient(self):
        client = _client(retries=0)
        with pytest.raises(ServeClientError):
            client.job("job-x")
        assert client._sleeps == []

    def test_bad_retry_settings_raise(self):
        with pytest.raises(ConfigurationError):
            ServeClient("127.0.0.1:1", retries=-1)
        with pytest.raises(ConfigurationError):
            ServeClient("127.0.0.1:1", retry_backoff_s=-0.5)


class TestGetRetrySucceeds:
    def test_get_recovers_once_the_server_is_back(self):
        client = _client(retries=3)
        calls = {"n": 0}

        def flaky_call_once(method, path, payload=None):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise ServeClientError("refused", transient=True)
            return _done_info().to_dict()

        client._call_once = flaky_call_once
        info = client.job("job-x")
        assert info.done
        assert calls["n"] == 3
        assert client._sleeps == [0, 1]

    def test_jittered_backoff_grows_and_caps(self):
        client = ServeClient("127.0.0.1:1", retry_backoff_s=0.2)
        slept = []
        real_sleep = time.sleep
        try:
            time.sleep = slept.append  # noqa: PLW0603 — scoped stub
            client._backoff_sleep(0)
            client._backoff_sleep(1)
            client._backoff_sleep(20)  # nominal 200k s: must cap
        finally:
            time.sleep = real_sleep
        assert 0.1 <= slept[0] <= 0.2
        assert 0.2 <= slept[1] <= 0.4
        assert slept[2] <= 10.0


class TestFollowReconnect:
    def test_follow_rides_through_a_restart(self):
        client = _client(retries=2)
        attempts = {"n": 0}

        def fake_events(job_id, after=0, follow=False):
            attempts["n"] += 1
            if attempts["n"] == 1:
                yield _event(after)
                raise ServeClientError("reset mid-stream", transient=True)
            yield from (_event(after),)

        client.events = fake_events
        client.job = lambda job_id: _done_info(job_id)
        seen = []
        client.follow_to_completion("job-x", on_event=seen.append)
        assert [e.seq for e in seen] == [0, 1]  # resumed at the cursor
        assert attempts["n"] == 2
        assert client._sleeps == [0]  # one reconnect backoff round

    def test_reconnect_budget_is_bounded(self):
        client = _client(retries=2)

        def dead_events(job_id, after=0, follow=False):
            raise ServeClientError("refused", transient=True)
            yield  # pragma: no cover — generator shape

        client.events = dead_events
        with pytest.raises(ServeClientError, match="could not reconnect"):
            client.follow_to_completion("job-x")
        assert client._sleeps == [0, 1]  # retries rounds, then give up

    def test_non_transient_stream_faults_propagate(self):
        client = _client(retries=3)

        def broken_events(job_id, after=0, follow=False):
            raise ServeClientError("malformed event line")
            yield  # pragma: no cover — generator shape

        client.events = broken_events
        with pytest.raises(ServeClientError, match="malformed"):
            client.follow_to_completion("job-x")
        assert client._sleeps == []

    def test_stall_still_checks_the_job_and_finishes(self):
        client = _client(retries=2)

        def stalling_events(job_id, after=0, follow=False):
            raise ServeStreamStalled("quiet too long")
            yield  # pragma: no cover — generator shape

        client.events = stalling_events
        client.job = lambda job_id: _done_info(job_id)
        client.follow_to_completion("job-x")  # returns: job is done

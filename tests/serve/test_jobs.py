"""Job lifecycle, content-derived ids, and the v3 job envelope."""

import pytest

from repro.api.requests import OptimizeRequest
from repro.api.scenario import build_scenario
from repro.serve.jobs import (
    TERMINAL_STATES,
    JobInfo,
    JobRecord,
    JobState,
    derive_job_id,
    job_content_key,
    resolve_state,
)
from repro.utils.errors import ConfigurationError, JobCancelled, ReproError

TOPOLOGY = "RI(3)_RI(2)"
WORKLOAD = "Turing-NLG"


def _request(total_bw=300):
    return OptimizeRequest(
        scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=total_bw)
    )


def _record(request=None):
    request = request or _request()
    key = job_content_key(request)
    return JobRecord(derive_job_id(key), request, key)


class TestContentIds:
    def test_same_content_same_id(self):
        assert job_content_key(_request()) == job_content_key(_request())

    def test_different_content_different_id(self):
        assert job_content_key(_request(300)) != job_content_key(_request(400))

    def test_id_shape(self):
        key = job_content_key(_request())
        assert derive_job_id(key) == f"job-{key[:12]}"
        assert derive_job_id(key, rerun=2) == f"job-{key[:12]}-r2"


class TestLifecycle:
    def test_legal_path_queued_running_done(self):
        record = _record()
        with record.cond:
            record.transition(JobState.RUNNING)
            record.transition(JobState.DONE)
        assert record.state is JobState.DONE
        assert record.finished_at is not None

    @pytest.mark.parametrize("terminal", sorted(TERMINAL_STATES, key=lambda s: s.value))
    def test_terminal_states_are_final(self, terminal):
        record = _record()
        with record.cond:
            if terminal is not JobState.CANCELLED:
                record.transition(JobState.RUNNING)
            record.transition(terminal, error="boom")
            with pytest.raises(ConfigurationError, match="illegal transition"):
                record.transition(JobState.RUNNING)

    def test_queued_cannot_skip_to_done(self):
        record = _record()
        with record.cond:
            with pytest.raises(ConfigurationError, match="illegal transition"):
                record.transition(JobState.DONE)

    def test_every_transition_emits_a_state_event(self):
        record = _record()
        with record.cond:
            record.transition(JobState.RUNNING)
            record.transition(JobState.FAILED, error="solver exploded")
        kinds = [(event.kind, event.data.get("state")) for event in record.events]
        assert kinds == [
            ("state", "queued"), ("state", "running"), ("state", "failed")
        ]
        assert record.events[-1].data["error"] == "solver exploded"

    def test_event_log_is_a_bounded_ring_with_global_seqs(self, monkeypatch):
        import repro.serve.jobs as jobs_module
        from repro.serve.jobs import JobHandle

        monkeypatch.setattr(jobs_module, "EVENT_LOG_LIMIT", 5)
        record = _record()  # seq 0 is the construction-time queued event
        with record.cond:
            for index in range(12):
                record.emit("cell", {"done": index})
        assert len(record.events) == 5  # ring bound holds
        assert record.next_seq == 13  # but sequence numbers keep counting
        assert [event.seq for event in record.events] == [8, 9, 10, 11, 12]
        # Reads clamp stale cursors to the oldest retained event.
        handle = JobHandle(record)
        assert [e.seq for e in handle.events(after=0)] == [8, 9, 10, 11, 12]
        assert [e.seq for e in handle.events(after=11)] == [11, 12]
        assert record.info().num_events == 13

    def test_resolve_state(self):
        assert resolve_state("cancelled") is JobState.CANCELLED
        assert resolve_state(JobState.DONE) is JobState.DONE
        with pytest.raises(ConfigurationError, match="unknown job state"):
            resolve_state("paused")


class TestJobEnvelope:
    def _info(self, **overrides):
        fields = {
            "id": "job-abc123def456",
            "kind": "optimize",
            "state": JobState.DONE,
            "created_at": 1_722_000_000.0,
            "started_at": 1_722_000_000.5,
            "finished_at": 1_722_000_003.0,
            "error": "",
            "num_events": 4,
            "result_payload": {"schema_version": 3, "scenario_key": "k"},
        }
        fields.update(overrides)
        return JobInfo(**fields)

    def test_round_trip(self):
        info = self._info()
        assert JobInfo.from_dict(info.to_dict()) == info

    def test_round_trip_queued_without_result(self):
        info = self._info(
            state=JobState.QUEUED, started_at=None, finished_at=None,
            result_payload=None, num_events=1,
        )
        restored = JobInfo.from_dict(info.to_dict())
        assert restored == info
        assert not restored.done

    def test_round_trip_survives_json(self):
        import json

        info = self._info()
        assert JobInfo.from_dict(json.loads(json.dumps(info.to_dict()))) == info

    def test_wrong_version_rejected(self):
        payload = self._info().to_dict()
        payload["schema_version"] = 2
        with pytest.raises(ConfigurationError, match="schema version"):
            JobInfo.from_dict(payload)

    def test_missing_job_object_rejected(self):
        with pytest.raises(ConfigurationError, match="'job' object"):
            JobInfo.from_dict({"schema_version": 3})

    def test_cancelled_info_raises_job_cancelled_on_decode(self):
        info = self._info(
            state=JobState.CANCELLED, error="cancelled between cells",
            result_payload=None,
        )
        with pytest.raises(JobCancelled, match="between cells"):
            info.response()

    def test_failed_info_raises_repro_error_on_decode(self):
        info = self._info(
            state=JobState.FAILED, error="OptimizationError: no feasible point",
            result_payload=None,
        )
        with pytest.raises(ReproError, match="no feasible point"):
            info.response()

    def test_undone_info_refuses_decode(self):
        info = self._info(state=JobState.RUNNING, result_payload=None)
        with pytest.raises(ConfigurationError, match="running"):
            info.response()

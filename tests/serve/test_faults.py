"""Fault-injection harness: REPRO_FAULTS parsing and firing semantics."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.serve import faults
from repro.serve.faults import CRASH_EXIT_CODE, FaultInjected, FaultPlan
from repro.utils.errors import ConfigurationError, TransientError

SRC = str(Path(__file__).parents[2] / "src")


def _run_child(script: str, **env: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-c", script],
        env={**os.environ, "PYTHONPATH": SRC, **env},
        capture_output=True,
        timeout=60,
    )


@pytest.fixture(autouse=True)
def _disarm():
    """Every test starts and ends with no plan armed in this process."""
    faults.configure(None)
    yield
    faults.configure(None)


class TestParsing:
    def test_raise_defaults_to_one_firing(self):
        plan = FaultPlan("raise:worker.solve")
        assert plan.points() == ["worker.solve"]

    def test_comma_separated_directives(self):
        plan = FaultPlan(
            "raise:worker.solve:2, delay:store.fsync=0.01,"
            "crash:store.record.after:3"
        )
        assert plan.points() == [
            "store.fsync", "store.record.after", "worker.solve"
        ]

    @pytest.mark.parametrize(
        "spec",
        [
            "explode:worker.solve",      # unknown action
            "raise:",                     # no point
            "raise:worker.solve:0",       # N must be >= 1
            "delay:store.fsync",          # delay needs =seconds
            "delay:store.fsync=fast",     # non-numeric seconds
            "delay:=0.1",                 # no point
        ],
    )
    def test_malformed_directives_raise(self, spec):
        with pytest.raises(ConfigurationError):
            FaultPlan(spec)

    def test_empty_parts_are_skipped(self):
        assert FaultPlan("raise:p, ,").points() == ["p"]


class TestFiring:
    def test_unarmed_point_is_a_noop(self):
        faults.configure("raise:other.point")
        faults.fire("worker.solve")  # must not raise

    def test_no_plan_fast_path(self):
        assert faults.active_plan() is None
        faults.fire("worker.solve")  # must not raise

    def test_raise_fires_first_n_times_then_passes(self):
        faults.configure("raise:p:2")
        with pytest.raises(FaultInjected):
            faults.fire("p")
        with pytest.raises(FaultInjected):
            faults.fire("p")
        faults.fire("p")  # third firing passes
        faults.fire("p")

    def test_injected_fault_is_transient(self):
        assert issubclass(FaultInjected, TransientError)

    def test_delay_applies_every_firing(self):
        import time

        faults.configure("delay:p=0.02")
        began = time.monotonic()
        faults.fire("p")
        faults.fire("p")
        assert time.monotonic() - began >= 0.04

    def test_configure_returns_inspectable_plan(self):
        plan = faults.configure("raise:p:1")
        assert plan is faults.active_plan()
        with pytest.raises(FaultInjected):
            faults.fire("p")

    def test_reset_rearms_from_environment(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "raise:from.env")
        faults.configure("raise:other")
        faults.reset()
        assert faults.active_plan().points() == ["from.env"]
        monkeypatch.delenv(faults.FAULTS_ENV)
        faults.reset()
        assert faults.active_plan() is None


class TestCrash:
    def test_crash_directive_kills_the_process(self):
        # os._exit cannot be observed in-process; a child takes the hit.
        script = (
            "from repro.serve import faults\n"
            "faults.configure('crash:p:2')\n"
            "faults.fire('p')\n"   # firing 1: survives
            "faults.fire('p')\n"   # firing 2: os._exit(CRASH_EXIT_CODE)
            "raise SystemExit(0)\n"
        )
        proc = _run_child(script)
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr.decode()

    def test_env_spec_arms_at_import(self):
        script = (
            "from repro.serve import faults\n"
            "assert faults.active_plan() is not None\n"
            "faults.fire('p')\n"
        )
        proc = _run_child(script, REPRO_FAULTS="crash:p")
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr.decode()

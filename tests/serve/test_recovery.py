"""Crash-safety end to end: restart recovery, retries, kill -9 survival.

Three tiers of realism:

* In-process: a second :class:`JobManager` over the same state directory
  is "the restarted server" — deterministic, fast, covers restore/requeue
  logic and the transient-retry machinery.
* Child process + injected crash: ``REPRO_FAULTS=crash:<point>`` kills a
  real manager at an exact persist boundary (``os._exit`` — the kill -9
  model); the parent then recovers whatever the filesystem kept.
* Full stack: ``repro serve --state-dir`` in a subprocess, SIGKILLed
  mid-sweep, restarted; a :class:`ServeClient` resumes the event stream
  with ``?after=N`` and rides to completion.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api.requests import (
    BatchRequest,
    OptimizeRequest,
    request_to_dict,
)
from repro.api.scenario import build_scenario
from repro.api.service import LibraService
from repro.explore.spec import SweepSpec
from repro.serve import JobManager, JobState, JobStore
from repro.serve.faults import CRASH_EXIT_CODE, FaultInjected
from repro.serve import faults
from repro.serve.jobs import derive_job_id, job_content_key
from repro.serve.store import STORE_VERSION
from repro.utils.errors import ReproError

TOPOLOGY = "RI(3)_RI(2)"
WORKLOAD = "Turing-NLG"
SRC = str(Path(__file__).parents[2] / "src")


def _request(total_bw=300):
    return OptimizeRequest(
        scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=total_bw)
    )


def _batch_request(cache_dir=None, bandwidths=(100.0, 300.0)):
    return BatchRequest(
        spec=SweepSpec(
            workloads=(WORKLOAD,), topologies=(TOPOLOGY,),
            bandwidths_gbps=bandwidths,
        ),
        cache_dir=cache_dir,
    )


def _persist_queued(store: JobStore, request) -> str:
    """Fabricate the on-disk state of a job a crash caught while queued."""
    content_key = job_content_key(request)
    job_id = derive_job_id(content_key)
    now = time.time()
    store.append_event(
        job_id,
        {
            "seq": 0, "job_id": job_id, "kind": "state", "at": now,
            "data": {"state": "queued"},
        },
        durable=True,
    )
    kind = "batch" if isinstance(request, BatchRequest) else "optimize"
    store.save_record(
        job_id,
        {
            "store_version": STORE_VERSION,
            "job": {
                "id": job_id, "kind": kind, "state": "queued",
                "created_at": now, "started_at": None, "finished_at": None,
                "error": "", "events": 1, "result": None, "metrics": None,
            },
            "request": request_to_dict(request),
            "content_key": content_key,
            "attempts": 0,
        },
    )
    return job_id


class FlakyService:
    """Raise a transient fault for the first N submits, then delegate."""

    def __init__(self, real, failures: int, exc: Exception | None = None):
        self.real = real
        self.failures = failures
        self.exc = exc
        self.calls = 0
        self._lock = threading.Lock()

    def submit(self, request, should_stop=None, on_event=None):
        with self._lock:
            self.calls += 1
            failing = self.calls <= self.failures
        if failing:
            raise self.exc or FaultInjected("injected transient failure")
        return self.real.submit(
            request, should_stop=should_stop, on_event=on_event
        )


class TestGracefulRestart:
    def test_done_job_survives_with_result_and_events(self, tmp_path):
        request = _request()
        with JobManager(
            workers=1, store=JobStore(tmp_path / "state")
        ) as manager:
            handle = manager.submit(request)
            response = handle.result(timeout=120)
            job_id = handle.id
            before = [e.to_dict() for e in handle.events()]

        restarted = JobManager(
            workers=1, store=JobStore(tmp_path / "state")
        )
        try:
            assert restarted.recovered_jobs == 0  # terminal: nothing to rerun
            handle = restarted.get(job_id)
            assert handle is not None
            assert handle.state is JobState.DONE
            assert handle.result().to_dict() == response.to_dict()
            assert [e.to_dict() for e in handle.events()] == before
        finally:
            restarted.shutdown()

    def test_queued_job_is_recovered_and_completed(self, tmp_path):
        request = _request()
        with JobStore(tmp_path / "state") as store:
            job_id = _persist_queued(store, request)

        manager = JobManager(workers=1, store=JobStore(tmp_path / "state"))
        try:
            assert manager.recovered_jobs == 1
            handle = manager.job(job_id)
            response = handle.result(timeout=120)
            assert response.to_dict() == LibraService().submit(request).to_dict()
            events = handle.events()
            assert [e.seq for e in events] == list(range(len(events)))
            assert events[0].data == {"state": "queued"}
            assert events[1].data["reason"] == "recovered after restart"
        finally:
            manager.shutdown()

    def test_recovered_batch_resumes_from_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        request = _batch_request(cache_dir=cache_dir)
        # The uninterrupted reference run — and the cache warm-up: by the
        # time "the crash" happens, every cell is durably cached.
        reference = LibraService().submit(request)

        with JobStore(tmp_path / "state") as store:
            job_id = _persist_queued(store, request)
        manager = JobManager(workers=1, store=JobStore(tmp_path / "state"))
        try:
            resumed = manager.job(job_id).result(timeout=300)
        finally:
            manager.shutdown()

        assert resumed.sweep.cache_hits == len(reference.sweep.results)
        assert resumed.sweep.solver_calls == 0  # resumed, not re-solved

        def rows(response):
            normalized = []
            for row in response.sweep.results:
                payload = row.to_dict()
                payload.pop("from_cache", None)  # provenance, not physics
                normalized.append(payload)
            return normalized

        assert rows(resumed) == rows(reference)

    def test_malformed_record_is_skipped_not_fatal(self, tmp_path):
        with JobStore(tmp_path / "state") as store:
            _persist_queued(store, _request())
            bad = store.job_dir("job-bad")
            bad.mkdir(parents=True)
            (bad / "record.json").write_text(json.dumps({
                "store_version": STORE_VERSION,
                "job": {"id": "job-bad", "state": "queued",
                        "created_at": 0.0},
                "request": {"nonsense": True},
                "content_key": "x",
                "attempts": 0,
            }))
        manager = JobManager(workers=1, store=JobStore(tmp_path / "state"))
        try:
            assert manager.recovered_jobs == 1  # the good one
            assert manager.get("job-bad") is None
        finally:
            manager.shutdown()

    def test_shutdown_without_cancel_leaves_backlog_queued(self, tmp_path):
        gate = threading.Event()
        real = LibraService()

        class GatedService:
            """First submit blocks on the gate, then delegates."""

            def __init__(self):
                self._first = True
                self._lock = threading.Lock()

            def submit(self, request, should_stop=None, on_event=None):
                with self._lock:
                    first, self._first = self._first, False
                if first:
                    assert gate.wait(timeout=60)
                return real.submit(
                    request, should_stop=should_stop, on_event=on_event
                )

        manager = JobManager(
            service=GatedService(), workers=1,
            store=JobStore(tmp_path / "state"),
        )
        running = manager.submit(_request(300))
        deadline = time.monotonic() + 30
        while running.state is not JobState.RUNNING:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        queued = manager.submit(_request(500))
        assert queued.state is JobState.QUEUED

        # Durable-restart shutdown: drain the running job, withdraw (but
        # do not cancel) the queued one.
        closer = threading.Thread(
            target=lambda: manager.shutdown(wait=True, cancel_pending=False)
        )
        closer.start()
        time.sleep(0.3)  # let shutdown cancel the queued job's future
        gate.set()
        closer.join(timeout=120)
        assert not closer.is_alive()
        assert running.state is JobState.DONE
        assert queued.state is JobState.QUEUED  # not cancelled

        restarted = JobManager(
            workers=1, store=JobStore(tmp_path / "state")
        )
        try:
            assert restarted.recovered_jobs == 1
            assert restarted.job(queued.id).result(timeout=120) is not None
            done = restarted.job(running.id)
            assert done.state is JobState.DONE
        finally:
            restarted.shutdown()


class TestTransientRetry:
    @pytest.fixture(autouse=True)
    def _disarm(self):
        faults.configure(None)
        yield
        faults.configure(None)

    def test_retry_succeeds_after_transient_failure(self):
        service = FlakyService(LibraService(), failures=1)
        with JobManager(
            service=service, workers=1, retry_backoff_s=0.01
        ) as manager:
            handle = manager.submit(_request())
            response = handle.result(timeout=120)
            assert response is not None
            assert service.calls == 2
            info = handle.info()
            assert info.metrics["attempts"] == 1
            states = [
                (e.data.get("state"), e.data.get("reason"))
                for e in handle.events() if e.kind == "state"
            ]
            assert [s for s, _ in states] == [
                "queued", "running", "queued", "running", "done"
            ]
            assert "retry 1/2" in states[2][1]

    def test_retry_budget_exhausts_to_failed(self):
        service = FlakyService(LibraService(), failures=99)
        with JobManager(
            service=service, workers=1, max_retries=2, retry_backoff_s=0.01
        ) as manager:
            handle = manager.submit(_request())
            with pytest.raises(ReproError, match="FaultInjected"):
                handle.result(timeout=120)
            assert service.calls == 3  # initial + 2 retries
            assert handle.state is JobState.FAILED

    def test_permanent_errors_never_retry(self):
        service = FlakyService(
            LibraService(), failures=99, exc=ValueError("permanent")
        )
        with JobManager(
            service=service, workers=1, retry_backoff_s=0.01
        ) as manager:
            handle = manager.submit(_request())
            with pytest.raises(ReproError, match="permanent"):
                handle.result(timeout=120)
            assert service.calls == 1
            assert handle.info().metrics.get("attempts") is None

    def test_manager_run_fault_point_drives_a_retry(self):
        faults.configure("raise:manager.run:1")
        with JobManager(workers=1, retry_backoff_s=0.01) as manager:
            handle = manager.submit(_request())
            handle.result(timeout=120)
            assert handle.info().metrics["attempts"] == 1

    def test_attempts_survive_restart(self, tmp_path):
        # A job that crashes the server on every run must not loop
        # forever: the persisted attempt counter keeps counting.
        service = FlakyService(LibraService(), failures=99)
        store_path = tmp_path / "state"
        with JobManager(
            service=service, workers=1, max_retries=2, retry_backoff_s=0.01,
            store=JobStore(store_path),
        ) as manager:
            handle = manager.submit(_request())
            with pytest.raises(ReproError):
                handle.result(timeout=120)
        record = JobStore(store_path).read_record(handle.id)
        assert record["attempts"] == 2


class TestCrashAtPersistPoints:
    """An injected os._exit at each persist boundary, then real recovery."""

    SCRIPT = """
import sys
from repro.api.requests import OptimizeRequest
from repro.api.scenario import build_scenario
from repro.serve import JobManager, JobStore

manager = JobManager(workers=1, store=JobStore(sys.argv[1]))
handle = manager.submit(OptimizeRequest(scenario=build_scenario(
    "{topology}", ["{workload}"], total_bw_gbps=300)))
handle.result(timeout=300)
manager.shutdown()
sys.exit(0)
""".format(topology=TOPOLOGY, workload=WORKLOAD)

    def _crash_child(self, tmp_path, fault: str) -> None:
        proc = subprocess.run(
            [sys.executable, "-c", self.SCRIPT, str(tmp_path / "state")],
            env={**os.environ, "PYTHONPATH": SRC, "REPRO_FAULTS": fault},
            capture_output=True,
            timeout=300,
        )
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr.decode()

    @pytest.mark.parametrize(
        "fault",
        ["crash:store.events.before:1", "crash:store.record.before:1"],
    )
    def test_crash_before_first_persist_leaves_no_acknowledged_job(
        self, tmp_path, fault
    ):
        # submit() had not returned: no client saw a job id, so recovery
        # must find nothing (an orphan event log is skipped).
        self._crash_child(tmp_path, fault)
        assert JobStore(tmp_path / "state").load() == []
        manager = JobManager(workers=1, store=JobStore(tmp_path / "state"))
        try:
            assert manager.recovered_jobs == 0
        finally:
            manager.shutdown()

    @pytest.mark.parametrize(
        "fault",
        [
            "crash:store.record.after:1",  # right after the queued persist
            "crash:manager.run:1",         # mid-run, state=running on disk
        ],
    )
    def test_crash_after_persist_recovers_and_completes(
        self, tmp_path, fault
    ):
        self._crash_child(tmp_path, fault)
        manager = JobManager(workers=1, store=JobStore(tmp_path / "state"))
        try:
            assert manager.recovered_jobs == 1
            [handle] = manager.handles()
            response = handle.result(timeout=300)
            assert response.to_dict() == (
                LibraService().submit(_request()).to_dict()
            )
            seqs = [e.seq for e in handle.events()]
            assert seqs == list(range(len(seqs)))
        finally:
            manager.shutdown()


class TestKillDashNineEndToEnd:
    """Full stack: repro serve --state-dir, SIGKILL mid-sweep, restart."""

    LISTEN = re.compile(r"listening on (http://[\d.]+:\d+)")

    def _spawn_server(self, tmp_path, extra_env=None):
        proc = subprocess.Popen(
            [
                sys.executable, "-u", "-c",
                "from repro.cli import main; main()",
                "serve", "--port", "0", "--workers", "1",
                "--state-dir", str(tmp_path / "state"),
                "--cache-root", str(tmp_path / "caches"),
            ],
            env={**os.environ, "PYTHONPATH": SRC, **(extra_env or {})},
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        deadline = time.monotonic() + 60
        while True:
            line = proc.stdout.readline()
            match = self.LISTEN.search(line or "")
            if match:
                return proc, match.group(1)
            assert proc.poll() is None, "server died before listening"
            assert time.monotonic() < deadline, "server never listened"

    def test_sigkill_midsweep_restart_resumes_gaplessly(self, tmp_path):
        from repro.serve.client import ServeClient

        # Slow each solve down so the kill reliably lands mid-sweep.
        server, base = self._spawn_server(
            tmp_path, extra_env={"REPRO_FAULTS": "delay:worker.solve=0.4"}
        )
        try:
            client = ServeClient(base, timeout=10, retry_backoff_s=0.05)
            request = _batch_request(
                cache_dir="e2e", bandwidths=(100.0, 200.0, 300.0, 400.0)
            )
            info = client.submit(request)
            job_id = info.id

            # Watch the stream until at least two cells solved (and are
            # durably cached), remembering the resume cursor.
            cursor = 0
            cells = 0
            deadline = time.monotonic() + 120
            while cells < 2:
                assert time.monotonic() < deadline
                for event in client.events(job_id, after=cursor):
                    cursor = event.seq + 1
                    if event.kind == "cell":
                        cells += 1
                time.sleep(0.05)
        finally:
            server.kill()  # SIGKILL: nothing flushes, no handlers run
            server.wait(timeout=30)

        # Restart on the same state dir (fresh port; no injected delay).
        server, base = self._spawn_server(tmp_path)
        try:
            client = ServeClient(base, timeout=30, retry_backoff_s=0.05)
            # The job survived and the stream resumes exactly at ?after=N.
            resumed = []
            client.follow_to_completion(
                job_id, after=cursor, on_event=resumed.append
            )
            assert resumed, "no events after the resume cursor"
            assert resumed[0].seq == cursor  # gapless across the crash
            assert [e.seq for e in resumed] == list(
                range(cursor, cursor + len(resumed))
            )
            reasons = [
                e.data.get("reason") for e in resumed if e.kind == "state"
            ]
            assert "recovered after restart" in reasons

            # Completed from the cache, not from scratch.
            response = client.result(job_id)
            assert len(response.sweep.results) == 4
            assert all(not row.error for row in response.sweep.results)
            assert response.sweep.cache_hits >= 2

            # The full replayed history is gapless from zero.
            replayed = list(client.events(job_id))
            assert [e.seq for e in replayed] == list(range(len(replayed)))
        finally:
            server.kill()
            server.wait(timeout=30)

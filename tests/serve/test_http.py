"""The HTTP front end, driven through a real loopback socket."""

import json
import threading
import urllib.request

import pytest

from repro.api.requests import OptimizeRequest, request_to_dict
from repro.api.scenario import build_scenario
from repro.api.service import LibraService
from repro.serve import JobManager, ServeClient, ServeClientError, create_server
from repro.serve.jobs import JobState

TOPOLOGY = "RI(3)_RI(2)"
WORKLOAD = "Turing-NLG"


def _request(total_bw=300):
    return OptimizeRequest(
        scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=total_bw)
    )


@pytest.fixture(scope="module")
def endpoint():
    """One live server + client shared by the module (boot cost is real)."""
    manager = JobManager(workers=2)
    server = create_server(manager, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServeClient(f"http://{host}:{port}", timeout=120.0)
    finally:
        server.shutdown()
        server.server_close()
        manager.shutdown()


class TestRoutes:
    def test_healthz(self, endpoint):
        assert endpoint.healthy()

    def test_submit_poll_result(self, endpoint):
        info = endpoint.submit(_request())
        assert info.id.startswith("job-")
        final = endpoint.wait(info.id, timeout=120)
        assert final.state is JobState.DONE
        assert final.result_payload is not None

    def test_listing_summaries_have_no_results(self, endpoint):
        endpoint.wait(endpoint.submit(_request()).id, timeout=120)
        listing = endpoint.jobs()
        assert listing and all(i.result_payload is None for i in listing)

    def test_unknown_job_404(self, endpoint):
        with pytest.raises(ServeClientError) as err:
            endpoint.job("job-does-not-exist")
        assert err.value.status == 404

    def test_unknown_route_404(self, endpoint):
        with pytest.raises(ServeClientError) as err:
            endpoint._call("GET", "/v2/jobs")
        assert err.value.status == 404

    def test_cancel_done_job_stays_done(self, endpoint):
        info = endpoint.submit(_request())
        endpoint.wait(info.id, timeout=120)
        assert endpoint.cancel(info.id).state is JobState.DONE


class TestSubmissionPayloads:
    def test_bare_v2_payload_up_converts(self, endpoint):
        payload = _request(310).to_dict()
        payload["schema_version"] = 2  # the pre-serve wire format
        info = endpoint.submit(payload)
        final = endpoint.wait(info.id, timeout=120)
        assert final.state is JobState.DONE

    def test_malformed_scenario_rejected_with_located_path(self, endpoint):
        payload = request_to_dict(_request())
        payload["request"]["scenario"]["network"] = 7
        with pytest.raises(ServeClientError) as err:
            endpoint.submit(payload)
        assert err.value.status == 400
        assert "network" in str(err.value)  # the ScenarioValidationError path

    def test_invalid_json_rejected(self, endpoint):
        request = urllib.request.Request(
            endpoint.base_url + "/v3/jobs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 400
        assert "not valid JSON" in json.loads(err.value.read())["error"]

    def test_unknown_kind_rejected(self, endpoint):
        with pytest.raises(ServeClientError) as err:
            endpoint.submit({"schema_version": 3, "kind": "simulate", "request": {}})
        assert err.value.status == 400

    def test_over_cap_batch_workers_rejected_not_clamped(self, endpoint):
        """A silent clamp would change the content-derived job id."""
        from repro.api.requests import BatchRequest, request_to_dict
        from repro.explore.spec import SweepSpec

        payload = request_to_dict(BatchRequest(
            spec=SweepSpec(
                workloads=(WORKLOAD,), topologies=(TOPOLOGY,),
                bandwidths_gbps=(100.0,),
            ),
            workers=100_000,
        ))
        with pytest.raises(ServeClientError) as err:
            endpoint.submit(payload)
        assert err.value.status == 400
        assert "cap" in str(err.value)


class TestEventStream:
    def test_event_log_and_resume_cursor(self, endpoint):
        info = endpoint.submit(_request(320))
        endpoint.wait(info.id, timeout=120)
        events = list(endpoint.events(info.id))
        kinds = [e.kind for e in events]
        assert kinds[0] == "state" and kinds[-1] == "state"
        assert "solve" in kinds
        assert [e.seq for e in events] == list(range(len(events)))
        # Resuming mid-stream returns exactly the suffix.
        tail = list(endpoint.events(info.id, after=2))
        assert [e.seq for e in tail] == [e.seq for e in events[2:]]
        # A negative cursor clamps to 0 — never a tail-slice replay.
        clamped = list(endpoint.events(info.id, after=-3))
        assert [e.seq for e in clamped] == [e.seq for e in events]

    def test_follow_streams_to_terminal(self, endpoint):
        info = endpoint.submit(_request(330))
        streamed = list(endpoint.events(info.id, follow=True))
        assert streamed[-1].kind == "state"
        assert streamed[-1].data["state"] in ("done", "failed")
        assert endpoint.job(info.id).done


class TestCacheDirSandbox:
    """Client-supplied batch cache paths are rejected or confined."""

    def _batch_payload(self, cache_dir):
        from repro.api.requests import BatchRequest, request_to_dict
        from repro.explore.spec import SweepSpec

        return request_to_dict(BatchRequest(
            spec=SweepSpec(
                workloads=(WORKLOAD,), topologies=(TOPOLOGY,),
                bandwidths_gbps=(100.0,),
            ),
            cache_dir=cache_dir,
        ))

    def test_cache_dir_rejected_without_cache_root(self, endpoint):
        with pytest.raises(ServeClientError) as err:
            endpoint.submit(self._batch_payload("/tmp/evil"))
        assert err.value.status == 400
        assert "cache-root" in str(err.value)

    def test_cache_dir_confined_under_cache_root(self, tmp_path):
        manager = JobManager(workers=1)
        server = create_server(manager, port=0, cache_root=tmp_path)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = ServeClient(f"http://{host}:{port}", timeout=120.0)
        try:
            # Traversal out of the root is refused.
            with pytest.raises(ServeClientError) as err:
                client.submit(self._batch_payload("../outside"))
            assert err.value.status == 400
            with pytest.raises(ServeClientError):
                client.submit(self._batch_payload("/etc/repro"))
            # A relative name lands inside the root and actually caches.
            info = client.submit(self._batch_payload("study-a"))
            assert client.wait(info.id, timeout=300).state is JobState.DONE
            assert list((tmp_path / "study-a").glob("*.json"))
        finally:
            server.shutdown()
            server.server_close()
            manager.shutdown()


class TestFacadeEquivalence:
    def test_http_response_bit_identical_to_service(self, endpoint):
        """The acceptance gate: HTTP job == LibraService.submit, bitwise."""
        request = _request(340)
        remote = endpoint.submit_and_wait(request, timeout=120)
        local = LibraService().submit(request)
        assert remote.to_dict() == local.to_dict()
        assert remote.point.bandwidths == local.point.bandwidths

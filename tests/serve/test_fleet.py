"""Fleet mode: lease safety, takeover, and multi-server recovery.

Three tiers, mirroring ``tests/serve/test_recovery``:

* Lease mechanics over a fake clock — claim/renew/release/steal unit
  tests plus a hypothesis property test driving interleaved schedules
  and asserting the core invariant: at most one live owner, ever.
* In-process fleet: two :class:`JobManager` instances over one state
  directory — takeover of a fabricated dead owner, passive mirroring,
  fleet-wide dedupe, drain, orphan cleanup.
* Two processes: a child fleet server killed by an injected ``os._exit``
  mid-sweep (the kill -9 model); the parent takes the lease over via the
  dead-pid accelerator and finishes the sweep from the shared cache,
  bit-identically.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.requests import BatchRequest, OptimizeRequest, request_to_dict
from repro.api.scenario import build_scenario
from repro.api.service import LibraService
from repro.explore.spec import SweepSpec
from repro.serve import FleetCoordinator, JobManager, JobState, JobStore
from repro.serve.faults import CRASH_EXIT_CODE
from repro.serve.fleet import LEASE_VERSION, ClaimResult, LeaseStore
from repro.serve.jobs import derive_job_id, job_content_key
from repro.serve.store import STORE_VERSION
from repro.utils.errors import ConfigurationError

TOPOLOGY = "RI(3)_RI(2)"
WORKLOAD = "Turing-NLG"
SRC = str(Path(__file__).parents[2] / "src")
JOB = "job-aaaaaaaaaaaa"


class FakeClock:
    """An injectable monotonic clock shared by every store in a test."""

    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _store(tmp_path, owner, clock, ttl=10.0) -> LeaseStore:
    return LeaseStore(tmp_path / "jobs", owner_id=owner, ttl_s=ttl, clock=clock)


def _request(total_bw=300):
    return OptimizeRequest(
        scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=total_bw)
    )


def _persist_queued(store: JobStore, request) -> str:
    """Fabricate the on-disk state of a job a crash caught while queued."""
    content_key = job_content_key(request)
    job_id = derive_job_id(content_key)
    now = time.time()
    store.append_event(
        job_id,
        {
            "seq": 0, "job_id": job_id, "kind": "state", "at": now,
            "data": {"state": "queued"},
        },
        durable=True,
    )
    kind = "batch" if isinstance(request, BatchRequest) else "optimize"
    store.save_record(
        job_id,
        {
            "store_version": STORE_VERSION,
            "job": {
                "id": job_id, "kind": kind, "state": "queued",
                "created_at": now, "started_at": None, "finished_at": None,
                "error": "", "events": 1, "result": None, "metrics": None,
            },
            "request": request_to_dict(request),
            "content_key": content_key,
            "attempts": 0,
        },
    )
    return job_id


def _write_stale_lease(
    jobs_dir: Path, job_id: str, owner: str, pid: int | None = None
) -> Path:
    """Plant a lease whose stamps expired long ago."""
    path = jobs_dir / job_id / "lease.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({
        "lease_version": LEASE_VERSION,
        "owner": owner,
        # Off-host: stale via the wall-clock ttl+skew, not the dead-pid
        # accelerator (cross-host staleness ages on renewed_at).
        "host": "elsewhere",
        "pid": pid if pid is not None else os.getpid(),
        "acquired_mono": 0.0,
        "renewed_mono": 0.0,
        "renewed_at": 0.0,  # epoch 1970: long past any ttl + skew
        "ttl_s": 5.0,
    }))
    return path


class TestLeaseMechanics:
    def test_claim_renew_release_roundtrip(self, tmp_path):
        clock = FakeClock()
        store = _store(tmp_path, "a", clock)
        claim = store.claim(JOB)
        assert claim == ClaimResult(won=True, reclaimed_from=None)
        assert store.owns(JOB)
        assert store.peek(JOB).owner == "a"
        clock.advance(4.0)
        assert store.renew(JOB)
        assert store.peek(JOB).renewed_mono == clock.now
        store.release(JOB)
        assert not store.owns(JOB)
        assert not store.lease_path(JOB).exists()

    def test_live_lease_defeats_second_claimer(self, tmp_path):
        clock = FakeClock()
        a = _store(tmp_path, "a", clock)
        b = _store(tmp_path, "b", clock)
        assert a.claim(JOB).won
        assert not b.claim(JOB).won
        assert not b.owns(JOB)
        assert a.peek(JOB).owner == "a"  # untouched by the lost claim

    def test_expired_lease_is_taken_over_with_provenance(self, tmp_path):
        clock = FakeClock()
        a = _store(tmp_path, "a", clock)
        b = _store(tmp_path, "b", clock)
        assert a.claim(JOB).won
        clock.advance(a.ttl_s + 0.1)
        claim = b.claim(JOB)
        assert claim.won
        assert claim.reclaimed_from == "a"
        assert b.peek(JOB).owner == "b"

    def test_self_fence_refuses_to_renew_an_expired_lease(self, tmp_path):
        clock = FakeClock()
        store = _store(tmp_path, "a", clock)
        assert store.claim(JOB).won
        clock.advance(store.ttl_s + 0.1)
        # Nobody stole it — but by our own rules somebody may at any
        # instant, so the only safe belief is "lost".
        assert not store.renew(JOB)
        assert not store.owns(JOB)
        assert store.lease_path(JOB).exists()  # left for the taker

    def test_release_never_unlinks_an_expired_lease(self, tmp_path):
        clock = FakeClock()
        store = _store(tmp_path, "a", clock)
        assert store.claim(JOB).won
        clock.advance(store.ttl_s + 0.1)
        store.release(JOB)
        # The file survives: a thief may be mid-takeover on it, and
        # unlinking would hand the job to a third server.
        assert store.lease_path(JOB).exists()
        assert not store.owns(JOB)

    def test_renewal_lost_when_a_thief_renamed_the_file_away(self, tmp_path):
        clock = FakeClock()
        a = _store(tmp_path, "a", clock)
        b = _store(tmp_path, "b", clock)
        assert a.claim(JOB).won
        clock.advance(a.ttl_s + 0.1)
        assert b.claim(JOB).won  # steals: a's inode is gone
        assert not a.renew(JOB)  # a's lease now names b
        assert b.renew(JOB)

    def test_dead_same_host_pid_is_stale_without_waiting_out_ttl(
        self, tmp_path
    ):
        clock = FakeClock()
        store = _store(tmp_path, "b", clock, ttl=3600.0)
        # A child that has already exited: its pid is known-dead.
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait(timeout=60)
        path = store.lease_path(JOB)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({
            "lease_version": LEASE_VERSION,
            "owner": "a", "host": store.host, "pid": child.pid,
            "acquired_mono": clock.now, "renewed_mono": clock.now,
            "renewed_at": time.time(), "ttl_s": 3600.0,
        }))
        assert store.is_stale(JOB)
        claim = store.claim(JOB)
        assert claim.won
        assert claim.reclaimed_from == "a"

    def test_invalid_job_ids_rejected(self, tmp_path):
        store = _store(tmp_path, "a", FakeClock())
        for bad in ("", "..", "a/b"):
            with pytest.raises(ConfigurationError):
                store.lease_path(bad)

    def test_cross_host_staleness_ignores_monotonic_epochs(self, tmp_path):
        # Monotonic clocks are per-boot: a peer host's stamp can sit
        # anywhere relative to ours, so cross-host staleness must come
        # from the wall-clock stamp (+ skew margin), never from
        # monotonic arithmetic.
        clock = FakeClock()
        store = _store(tmp_path, "b", clock)
        path = store.lease_path(JOB)
        path.parent.mkdir(parents=True)

        def plant(renewed_mono: float, renewed_at: float) -> None:
            path.write_text(json.dumps({
                "lease_version": LEASE_VERSION,
                "owner": "a", "host": "elsewhere", "pid": 1,
                "acquired_mono": renewed_mono, "renewed_mono": renewed_mono,
                "renewed_at": renewed_at, "ttl_s": 10.0,
            }))

        # Peer booted long before us: its monotonic stamp is tiny, ours
        # is large. The wall-clock stamp is fresh, so the lease is live
        # — a naive monotonic compare would steal it and double-run.
        plant(renewed_mono=0.0, renewed_at=time.time())
        assert not store.is_stale(JOB)
        assert not store.claim(JOB).won

        # Peer booted long after us: its monotonic stamp dwarfs ours.
        # The wall-clock stamp is old, so the lease is stale — a naive
        # monotonic compare would judge it live forever and never
        # recover the job.
        plant(renewed_mono=1e9, renewed_at=time.time() - 100.0)
        assert store.is_stale(JOB)
        claim = store.claim(JOB)
        assert claim.won
        assert claim.reclaimed_from == "a"

    def test_torn_lease_with_old_mtime_is_stale(self, tmp_path):
        clock = FakeClock()
        store = _store(tmp_path, "a", clock, ttl=0.05)
        path = store.lease_path(JOB)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        old = time.time() - 60
        os.utime(path, (old, old))
        assert store.is_stale(JOB)
        assert store.claim(JOB).won


# One job, three contenders, fully interleaved schedules: the invariant
# the whole design rests on is that *at most one* server believes it
# holds a live (unexpired) lease at any instant. "Live" is judged by the
# owner's own last successful stamp — exactly the knowledge it acts on.
_OWNERS = ("a", "b", "c")
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("claim"), st.sampled_from(_OWNERS)),
        st.tuples(st.just("renew"), st.sampled_from(_OWNERS)),
        st.tuples(st.just("release"), st.sampled_from(_OWNERS)),
        st.tuples(
            st.just("advance"),
            st.floats(min_value=0.1, max_value=15.0, allow_nan=False),
        ),
    ),
    min_size=1,
    max_size=40,
)


class TestLeaseProperty:
    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS)
    def test_at_most_one_live_owner_under_any_interleaving(
        self, tmp_path_factory, ops
    ):
        tmp_path = tmp_path_factory.mktemp("leases")
        clock = FakeClock()
        ttl = 10.0
        stores = {
            name: _store(tmp_path, name, clock, ttl=ttl) for name in _OWNERS
        }
        stamped: dict[str, float] = {}  # owner -> last successful stamp

        def live_owners() -> list[str]:
            return [
                name
                for name, store in stores.items()
                if store.owns(JOB)
                and clock.now - stamped.get(name, -1e9) <= ttl
            ]

        for op in ops:
            if op[0] == "advance":
                clock.advance(op[1])
            elif op[0] == "claim":
                if stores[op[1]].claim(JOB).won:
                    stamped[op[1]] = clock.now
            elif op[0] == "renew":
                if stores[op[1]].renew(JOB):
                    stamped[op[1]] = clock.now
            else:
                stores[op[1]].release(JOB)
            alive = live_owners()
            assert len(alive) <= 1, f"multiple live owners: {alive}"
            # A live owner's belief must match the disk: its own name on
            # an unexpired lease (a thief's claim always postdates the
            # victim's expiry, so a mismatch here would be a stolen lease
            # the victim still believes in).
            for name in alive:
                info = stores[name].peek(JOB)
                assert info is not None and info.owner == name


class TestFleetInProcess:
    def test_recovery_reclaims_from_dead_owner(self, tmp_path):
        request = _request()
        with JobStore(tmp_path / "state") as seed:
            job_id = _persist_queued(seed, request)
            _write_stale_lease(seed.jobs_dir, job_id, "srv-dead")

        store = JobStore(tmp_path / "state")
        fleet = FleetCoordinator(store, owner_id="srv-b", lease_ttl_s=5.0)
        manager = JobManager(workers=1, store=store, fleet=fleet)
        try:
            assert manager.recovered_jobs == 1
            handle = manager.job(job_id)
            assert handle.result(timeout=120) is not None
            reasons = [
                e.data.get("reason")
                for e in handle.events()
                if e.kind == "state"
            ]
            assert "reclaimed from dead owner srv-dead" in reasons
            assert fleet.owner_id == "srv-b"
        finally:
            manager.shutdown(cancel_pending=False)
        # Lease released on the terminal transition.
        assert not (store.jobs_dir / job_id / "lease.json").exists()

    def test_recovery_leaves_live_peer_jobs_alone(self, tmp_path):
        request = _request()
        with JobStore(tmp_path / "state") as seed:
            job_id = _persist_queued(seed, request)
        store_a = JobStore(tmp_path / "state")
        fleet_a = FleetCoordinator(store_a, owner_id="srv-a", lease_ttl_s=60.0)
        assert fleet_a.leases.claim(job_id).won  # a live claim by "a peer"

        store_b = JobStore(tmp_path / "state")
        fleet_b = FleetCoordinator(store_b, owner_id="srv-b", lease_ttl_s=60.0)
        manager_b = JobManager(workers=1, store=store_b, fleet=fleet_b)
        try:
            # b sees the job (read-only mirror) but did not claim or run it.
            assert manager_b.recovered_jobs == 0
            handle = manager_b.get(job_id)
            assert handle is not None
            assert handle.state is JobState.QUEUED
            assert not fleet_b.owns(job_id)
        finally:
            manager_b.shutdown(cancel_pending=False)
            fleet_a.leases.release(job_id)

    def test_terminal_peer_job_adopted_and_deduped(self, tmp_path):
        request = _request()
        store_a = JobStore(tmp_path / "state")
        fleet_a = FleetCoordinator(store_a, owner_id="srv-a")
        manager_a = JobManager(workers=1, store=store_a, fleet=fleet_a)
        try:
            handle = manager_a.submit(request)
            response = handle.result(timeout=120)
        finally:
            manager_a.shutdown(cancel_pending=False)

        store_b = JobStore(tmp_path / "state")
        fleet_b = FleetCoordinator(store_b, owner_id="srv-b")
        manager_b = JobManager(workers=1, store=store_b, fleet=fleet_b)
        try:
            adopted = manager_b.get(handle.id)
            assert adopted is not None
            assert adopted.state is JobState.DONE
            assert adopted.result().to_dict() == response.to_dict()
            # Submitting the same content to b returns the finished job —
            # fleet-wide dedupe, no second solve.
            again = manager_b.submit(request)
            assert again.id == handle.id
            assert again.state is JobState.DONE
        finally:
            manager_b.shutdown(cancel_pending=False)

    def test_scan_takes_over_job_queued_by_a_drained_peer(self, tmp_path):
        request = _request()
        with JobStore(tmp_path / "state") as seed:
            _persist_queued(seed, request)

        # Member b finds the unleased queued job on its scan and runs it.
        store = JobStore(tmp_path / "state")
        fleet = FleetCoordinator(store, owner_id="srv-b", poll_interval_s=0.05)
        manager = JobManager(workers=1, store=store, fleet=fleet)
        try:
            [handle] = manager.handles()
            assert handle.result(timeout=120) is not None
            reasons = [
                e.data.get("reason")
                for e in handle.events()
                if e.kind == "state"
            ]
            # The unleased queued job (the shape a drained peer leaves
            # behind) was claimed, not assumed.
            assert "recovered after restart" in reasons
        finally:
            manager.shutdown(cancel_pending=False)

    def test_submit_adopts_queued_disk_record_without_local_mirror(
        self, tmp_path
    ):
        # A peer drains (or dies) after this server's recovery pass: the
        # queued record sits on disk, unleased and unmirrored, until the
        # next scan. Submitting the same payload wins the claim — and
        # must adopt the disk record, because a fresh record's seq-0
        # queued event would append behind the existing log's tail and
        # break the gapless prefix.
        request = _request()
        store = JobStore(tmp_path / "state")
        fleet = FleetCoordinator(
            store, owner_id="srv-b", poll_interval_s=3600.0
        )
        manager = JobManager(workers=1, store=store, fleet=fleet)
        try:
            with JobStore(tmp_path / "state") as peer:
                job_id = _persist_queued(peer, request)
            handle = manager.submit(request)
            assert handle.id == job_id
            assert handle.result(timeout=120) is not None
            stored_seqs = [e["seq"] for e in store.read_events(job_id)]
            assert stored_seqs == list(range(len(stored_seqs)))
            reasons = [
                e.data.get("reason")
                for e in handle.events()
                if e.kind == "state"
            ]
            assert "claimed on submit" in reasons
        finally:
            manager.shutdown(cancel_pending=False)

    def test_submit_dedupes_unmirrored_terminal_peer_job(self, tmp_path):
        # A peer finishes the job after this server's recovery pass and
        # before its next scan: no local mirror, no lease. The claim
        # wins — but submit must adopt the done record rather than fork
        # a second run over its event log.
        request = _request()
        store_b = JobStore(tmp_path / "state")
        fleet_b = FleetCoordinator(
            store_b, owner_id="srv-b", poll_interval_s=3600.0
        )
        manager_b = JobManager(workers=1, store=store_b, fleet=fleet_b)
        try:
            store_a = JobStore(tmp_path / "state")
            fleet_a = FleetCoordinator(store_a, owner_id="srv-a")
            manager_a = JobManager(workers=1, store=store_a, fleet=fleet_a)
            try:
                done = manager_a.submit(request)
                response = done.result(timeout=120)
            finally:
                manager_a.shutdown(cancel_pending=False)

            again = manager_b.submit(request)
            assert again.id == done.id
            assert again.state is JobState.DONE  # adopted, not re-run
            assert again.result().to_dict() == response.to_dict()
            stored_seqs = [e["seq"] for e in store_b.read_events(done.id)]
            assert stored_seqs == list(range(len(stored_seqs)))
        finally:
            manager_b.shutdown(cancel_pending=False)

    def test_drain_refuses_submissions_and_releases_queued_leases(
        self, tmp_path
    ):
        store = JobStore(tmp_path / "state")
        fleet = FleetCoordinator(store, owner_id="srv-a")
        manager = JobManager(workers=1, store=store, fleet=fleet)
        try:
            done = manager.submit(_request())
            assert done.result(timeout=120) is not None
            fleet.drain()
            assert fleet.draining
            with pytest.raises(ConfigurationError, match="draining"):
                manager.submit(_request(500))
            assert fleet.stats()["draining"] is True
        finally:
            manager.shutdown(cancel_pending=False)

    def test_orphan_lease_directory_is_cleared_by_peer_scan(self, tmp_path):
        # The mid-claim crash shape: a lease file exists, the record never
        # followed (crash:fleet.claim). No client saw a 202 — peers may
        # clear it once the lease is stale.
        store = JobStore(tmp_path / "state")
        orphan = "job-feedfeedfeed"
        _write_stale_lease(store.jobs_dir, orphan, "srv-dead")
        fleet = FleetCoordinator(store, owner_id="srv-b", lease_ttl_s=5.0)
        manager = JobManager(workers=1, store=store, fleet=fleet)
        try:
            fleet.poll_once()
            assert not (store.jobs_dir / orphan).exists()
            assert manager.get(orphan) is None
        finally:
            manager.shutdown(cancel_pending=False)

    def test_mid_claim_crash_leaves_reclaimable_orphan(self, tmp_path):
        script = """
import sys
from repro.api.requests import OptimizeRequest
from repro.api.scenario import build_scenario
from repro.serve import FleetCoordinator, JobManager, JobStore

store = JobStore(sys.argv[1])
fleet = FleetCoordinator(store, owner_id="victim")
manager = JobManager(workers=1, store=store, fleet=fleet)
manager.submit(OptimizeRequest(scenario=build_scenario(
    "{topology}", ["{workload}"], total_bw_gbps=300)))
""".format(topology=TOPOLOGY, workload=WORKLOAD)
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path / "state")],
            env={
                **os.environ,
                "PYTHONPATH": SRC,
                "REPRO_FAULTS": "crash:fleet.claim:1",
            },
            capture_output=True,
            timeout=300,
        )
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr.decode()
        store = JobStore(tmp_path / "state")
        [job_id] = store.job_ids()
        assert store.read_record(job_id) is None  # lease only, no record
        # The dead pid makes the lease immediately stale on this host;
        # the survivor's scan clears the directory.
        fleet = FleetCoordinator(store, owner_id="survivor")
        manager = JobManager(workers=1, store=store, fleet=fleet)
        try:
            fleet.poll_once()
            assert store.job_ids() == []
        finally:
            manager.shutdown(cancel_pending=False)


class TestKillDashNineTakeover:
    """Child fleet server dies mid-sweep; the parent takes over.

    Mirrors ``TestCrashAtPersistPoints``: the child is a real fleet
    member killed by an injected ``os._exit`` (the kill -9 model) right
    after persisting its second cell event — by which point both cells
    are durably in the shared result cache. The parent reclaims the
    lease through the dead-pid accelerator and finishes the sweep
    without re-solving what the victim already paid for.
    """

    SCRIPT = """
import sys
from repro.api.requests import BatchRequest
from repro.explore.spec import SweepSpec
from repro.serve import FleetCoordinator, JobManager, JobStore

store = JobStore(sys.argv[1])
fleet = FleetCoordinator(store, owner_id="victim", lease_ttl_s=3600)
manager = JobManager(workers=1, store=store, fleet=fleet)
handle = manager.submit(BatchRequest(
    spec=SweepSpec(workloads=("{workload}",), topologies=("{topology}",),
                   bandwidths_gbps=(100.0, 200.0, 300.0, 400.0)),
    cache_dir=sys.argv[2],
))
handle.result(timeout=300)
manager.shutdown()
sys.exit(0)
""".format(topology=TOPOLOGY, workload=WORKLOAD)

    def test_takeover_resumes_from_shared_cache_bit_identically(
        self, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        # Event appends: queued, running, plan, chain-start, cell, cell —
        # crash after the 6th means exactly two cells solved and cached.
        proc = subprocess.run(
            [
                sys.executable, "-c", self.SCRIPT,
                str(tmp_path / "state"), cache_dir,
            ],
            env={
                **os.environ,
                "PYTHONPATH": SRC,
                "REPRO_FAULTS": "crash:store.events.after:6",
            },
            capture_output=True,
            timeout=300,
        )
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr.decode()

        store = JobStore(tmp_path / "state")
        # The victim's lease is still on disk (ttl 3600 — far from
        # expiring), but its pid is dead: takeover is immediate.
        fleet = FleetCoordinator(store, owner_id="survivor", lease_ttl_s=30.0)
        manager = JobManager(workers=1, store=store, fleet=fleet)
        try:
            assert manager.recovered_jobs == 1
            [handle] = manager.handles()
            response = handle.result(timeout=300)
            reasons = [
                e.data.get("reason")
                for e in handle.events()
                if e.kind == "state"
            ]
            assert any(
                r and r.startswith("reclaimed from dead owner victim")
                for r in reasons
            ), reasons

            # Resumed from the victim's cached cells, not from scratch —
            # and every cell accounted for exactly once.
            assert response.sweep.cache_hits >= 2
            assert response.sweep.cache_hits + response.sweep.solver_calls == 4

            # Bit-identical to an uninterrupted run.
            reference = LibraService().submit(BatchRequest(
                spec=SweepSpec(
                    workloads=(WORKLOAD,), topologies=(TOPOLOGY,),
                    bandwidths_gbps=(100.0, 200.0, 300.0, 400.0),
                ),
                cache_dir=cache_dir,
            ))

            def rows(resp):
                normalized = []
                for row in resp.sweep.results:
                    payload = row.to_dict()
                    payload.pop("from_cache", None)
                    normalized.append(payload)
                return normalized

            assert rows(response) == rows(reference)

            # The event log is gapless across the crash and the takeover.
            seqs = [e.seq for e in handle.events()]
            assert seqs == list(range(len(seqs)))
        finally:
            manager.shutdown(cancel_pending=False)

"""ProgressEvent values and their v3 wire form."""

import pytest

from repro.serve.events import EVENT_SCHEMA_VERSION, ProgressEvent
from repro.utils.errors import ConfigurationError


def _event(**overrides):
    fields = {
        "seq": 3,
        "job_id": "job-abc123def456",
        "kind": "cell",
        "at": 1_722_000_000.25,
        "data": {"done": 2, "total": 6, "status": "solved"},
    }
    fields.update(overrides)
    return ProgressEvent(**fields)


class TestProgressEvent:
    def test_round_trip(self):
        event = _event()
        payload = event.to_dict()
        assert payload["schema_version"] == EVENT_SCHEMA_VERSION
        assert ProgressEvent.from_dict(payload) == event

    def test_round_trip_is_json_stable(self):
        import json

        payload = _event().to_dict()
        assert ProgressEvent.from_dict(json.loads(json.dumps(payload))) == _event()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown event kind"):
            _event(kind="telemetry")

    def test_negative_seq_rejected(self):
        with pytest.raises(ConfigurationError, match="seq"):
            _event(seq=-1)

    def test_unknown_schema_version_rejected(self):
        payload = _event().to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ConfigurationError, match="schema version"):
            ProgressEvent.from_dict(payload)

    def test_malformed_payload_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            ProgressEvent.from_dict({"seq": "x"})

    def test_data_is_copied(self):
        payload = _event().to_dict()
        payload["data"]["done"] = 99
        event = ProgressEvent.from_dict(payload)
        payload["data"]["done"] = 0
        assert event.data["done"] == 99

"""JobStore: atomic records, the append-only event log, crash repair.

The property at the heart of the crash model: *any* byte truncation of an
on-disk event log replays to a gapless ``seq`` prefix of the original
events — so a ``?after=N`` resume across a kill -9 can never skip or
duplicate a sequence number.
"""

import json
import logging

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.store import (
    STORE_VERSION,
    JobStore,
    intact_event_prefix,
)
from repro.utils.errors import ConfigurationError


def _event(seq: int, kind: str = "cell") -> dict:
    return {
        "seq": seq,
        "job_id": "job-abc",
        "kind": kind,
        "at": 1000.0 + seq,
        "data": {"n": seq},
    }


def _record_payload(state: str = "queued") -> dict:
    return {
        "store_version": STORE_VERSION,
        "job": {"id": "job-abc", "state": state, "created_at": 1000.0},
        "request": {"kind": "optimize"},
        "content_key": "c" * 64,
        "attempts": 0,
    }


def _log_bytes(events: list[dict]) -> bytes:
    return b"".join(
        json.dumps(event, sort_keys=True).encode() + b"\n"
        for event in events
    )


class TestIntactEventPrefix:
    def test_empty(self):
        assert intact_event_prefix(b"") == ([], 0)

    def test_full_log(self):
        events = [_event(i) for i in range(5)]
        data = _log_bytes(events)
        payloads, offset = intact_event_prefix(data)
        assert payloads == events
        assert offset == len(data)

    def test_torn_tail_is_dropped(self):
        events = [_event(i) for i in range(3)]
        data = _log_bytes(events)
        torn = data + b'{"seq": 3, "kind": "ce'  # no newline: torn write
        payloads, offset = intact_event_prefix(torn)
        assert [p["seq"] for p in payloads] == [0, 1, 2]
        assert offset == len(data)

    def test_unparseable_line_ends_the_prefix(self):
        data = _log_bytes([_event(0)]) + b"garbage\n" + _log_bytes([_event(1)])
        payloads, offset = intact_event_prefix(data)
        assert [p["seq"] for p in payloads] == [0]
        assert offset == len(_log_bytes([_event(0)]))

    def test_seq_gap_ends_the_prefix(self):
        data = _log_bytes([_event(0), _event(2)])
        payloads, _ = intact_event_prefix(data)
        assert [p["seq"] for p in payloads] == [0]

    def test_blank_lines_are_skipped(self):
        data = b"\n" + _log_bytes([_event(0)]) + b"\n" + _log_bytes([_event(1)])
        payloads, offset = intact_event_prefix(data)
        assert [p["seq"] for p in payloads] == [0, 1]
        assert offset == len(data)

    @settings(max_examples=200, deadline=None)
    @given(
        num_events=st.integers(min_value=0, max_value=12),
        cut=st.integers(min_value=0, max_value=2000),
        junk=st.binary(max_size=16),
    )
    def test_any_truncation_replays_to_a_gapless_prefix(
        self, num_events, cut, junk
    ):
        """Truncate anywhere (and even append torn junk): replay is a
        gapless prefix of the original sequence — never a gap, never a
        reorder, never an invented event."""
        events = [_event(i) for i in range(num_events)]
        data = _log_bytes(events)[: min(cut, num_events * 200)] + junk
        payloads, offset = intact_event_prefix(data)
        seqs = [p["seq"] for p in payloads]
        assert seqs == list(range(len(seqs)))  # gapless from 0
        assert len(seqs) <= num_events
        for payload in payloads:  # every replayed event is an original
            assert payload == events[payload["seq"]]
        assert 0 <= offset <= len(data)
        # Replaying the repaired prefix is a fixed point.
        again, offset_again = intact_event_prefix(data[:offset])
        assert again == payloads
        assert offset_again == offset


class TestRecords:
    def test_roundtrip(self, tmp_path):
        with JobStore(tmp_path) as store:
            store.save_record("job-abc", _record_payload())
            assert store.read_record("job-abc") == _record_payload()

    def test_absent_is_none(self, tmp_path):
        with JobStore(tmp_path) as store:
            assert store.read_record("job-missing") is None

    def test_corrupt_record_is_none(self, tmp_path):
        with JobStore(tmp_path) as store:
            store.save_record("job-abc", _record_payload())
            path = store.job_dir("job-abc") / "record.json"
            path.write_text('{"store_version": 1, "job"')  # torn
            assert store.read_record("job-abc") is None

    def test_version_skew_is_none(self, tmp_path):
        with JobStore(tmp_path) as store:
            payload = _record_payload()
            payload["store_version"] = STORE_VERSION + 1
            store.save_record("job-abc", payload)
            assert store.read_record("job-abc") is None

    def test_no_temp_files_left_behind(self, tmp_path):
        with JobStore(tmp_path) as store:
            store.save_record("job-abc", _record_payload())
            assert not list(store.job_dir("job-abc").glob("*.tmp"))

    @pytest.mark.parametrize("job_id", ["", ".", "..", "a/b"])
    def test_invalid_job_ids_raise(self, tmp_path, job_id):
        with JobStore(tmp_path) as store:
            with pytest.raises(ConfigurationError):
                store.job_dir(job_id)

    def test_bad_fsync_settings_raise(self, tmp_path):
        with pytest.raises(ConfigurationError):
            JobStore(tmp_path, fsync_batch=0)
        with pytest.raises(ConfigurationError):
            JobStore(tmp_path, fsync_interval_s=-1)


class TestEvents:
    def test_append_and_read(self, tmp_path):
        with JobStore(tmp_path) as store:
            for seq in range(4):
                store.append_event("job-abc", _event(seq))
            assert [e["seq"] for e in store.read_events("job-abc")] == [
                0, 1, 2, 3
            ]
            assert [e["seq"] for e in store.read_events("job-abc", after=2)] == [
                2, 3
            ]

    def test_read_missing_log_is_empty(self, tmp_path):
        with JobStore(tmp_path) as store:
            assert store.read_events("job-abc") == []

    def test_state_events_are_durable_immediately(self, tmp_path):
        # fsync_batch high enough that only the durable flag can fsync.
        with JobStore(tmp_path, fsync_batch=1000) as store:
            store.append_event("job-abc", _event(0, kind="state"), durable=True)
            # A fresh store (fresh process in miniature) sees the event.
            with JobStore(tmp_path) as reader:
                assert len(reader.read_events("job-abc")) == 1

    def test_torn_tail_repaired_on_reopen_for_append(self, tmp_path):
        with JobStore(tmp_path) as store:
            for seq in range(3):
                store.append_event("job-abc", _event(seq))
        path = tmp_path / "jobs" / "job-abc" / "events.ndjson"
        with open(path, "ab") as fh:
            fh.write(b'{"seq": 3, "kind"')  # the kill -9 torn write
        # Re-opening for append truncates the torn tail first, so the next
        # event continues the gapless sequence instead of corrupting it.
        with JobStore(tmp_path) as store:
            store.append_event("job-abc", _event(3))
            seqs = [e["seq"] for e in store.read_events("job-abc")]
        assert seqs == [0, 1, 2, 3]

    def test_delete_drops_all_state(self, tmp_path):
        with JobStore(tmp_path) as store:
            store.save_record("job-abc", _record_payload())
            store.append_event("job-abc", _event(0))
            store.delete("job-abc")
            assert store.read_record("job-abc") is None
            assert store.read_events("job-abc") == []
            assert not store.job_dir("job-abc").exists()


class TestLoad:
    def test_loads_records_with_events(self, tmp_path):
        with JobStore(tmp_path) as store:
            store.save_record("job-abc", _record_payload())
            store.append_event("job-abc", _event(0), durable=True)
        jobs = JobStore(tmp_path).load()
        assert [job.job_id for job in jobs] == ["job-abc"]
        assert jobs[0].record == _record_payload()
        assert [e["seq"] for e in jobs[0].events] == [0]

    def test_orphan_dirs_are_skipped(self, tmp_path):
        # Events but no record: the crash hit before the record persist,
        # so no client ever saw the job id — not recoverable, not fatal.
        with JobStore(tmp_path) as store:
            store.append_event("job-orphan", _event(0))
            store.save_record("job-abc", _record_payload())
        assert [job.job_id for job in JobStore(tmp_path).load()] == ["job-abc"]

    def test_orphan_dirs_are_counted_and_warned(self, tmp_path):
        # Operators debugging a fleet need orphans visible, not silent:
        # each one is a structured WARNING and a counter increment.
        with JobStore(tmp_path) as store:
            store.append_event("job-orphan-a", _event(0))
            (store.jobs_dir / "job-orphan-b").mkdir()  # empty husk
            store.save_record("job-abc", _record_payload())
        reloaded = JobStore(tmp_path)
        # Capture on the store's own logger: the repro root logger stops
        # propagating once structured logging is configured, so a
        # root-level capture would be order-dependent across the suite.
        records: list[logging.LogRecord] = []
        handler = logging.Handler()
        handler.emit = records.append
        logger = logging.getLogger("repro.serve.store")
        logger.addHandler(handler)
        old_level = logger.level
        logger.setLevel(logging.WARNING)
        try:
            jobs = reloaded.load()
        finally:
            logger.removeHandler(handler)
            logger.setLevel(old_level)
        assert [job.job_id for job in jobs] == ["job-abc"]
        assert reloaded.orphans_skipped == 2
        orphan_warnings = [
            record for record in records
            if "orphan" in record.getMessage()
        ]
        assert len(orphan_warnings) == 2

    def test_oldest_first(self, tmp_path):
        with JobStore(tmp_path) as store:
            newer = _record_payload()
            newer["job"]["created_at"] = 2000.0
            newer["job"]["id"] = "job-new"
            store.save_record("job-new", newer)
            store.save_record("job-abc", _record_payload())
        assert [job.job_id for job in JobStore(tmp_path).load()] == [
            "job-abc", "job-new"
        ]

"""Utilization accounting (Fig. 9 idle gaps, Fig. 10 aggregate metric)."""

import pytest

from repro.simulator import BusyTracker, UtilizationReport, merge_reports
from repro.utils.errors import SimulationError


class TestBusyTracker:
    def test_accumulates(self):
        tracker = BusyTracker(2)
        tracker.record(0, 1.0, 100.0)
        tracker.record(0, 0.5, 50.0)
        tracker.record(1, 0.2, 10.0)
        report = tracker.report(2.0, (100.0, 100.0))
        assert report.busy_seconds == (1.5, 0.2)
        assert report.bytes_moved == (150.0, 10.0)

    def test_bad_dim(self):
        with pytest.raises(SimulationError):
            BusyTracker(2).record(2, 1.0, 1.0)

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            BusyTracker(1).record(0, -1.0, 1.0)


class TestUtilizationReport:
    def make(self):
        return UtilizationReport(
            makespan=2.0,
            bandwidths=(100.0, 100.0),
            busy_seconds=(2.0, 0.5),
            bytes_moved=(200.0, 50.0),
        )

    def test_per_dim(self):
        report = self.make()
        assert report.dim_utilization(0) == pytest.approx(1.0)
        assert report.dim_utilization(1) == pytest.approx(0.25)
        assert report.per_dim_utilization == (1.0, 0.25)

    def test_aggregate(self):
        report = self.make()
        # 250 bytes moved of 2s * 200 B/s = 400 possible.
        assert report.aggregate_utilization == pytest.approx(250 / 400)

    def test_bottleneck(self):
        assert self.make().bottleneck_dim == 0

    def test_zero_makespan(self):
        report = UtilizationReport(0.0, (1.0,), (0.0,), (0.0,))
        assert report.aggregate_utilization == 0.0
        assert report.dim_utilization(0) == 0.0

    def test_merge(self):
        merged = merge_reports([self.make(), self.make()])
        assert merged.makespan == 4.0
        assert merged.busy_seconds == (4.0, 1.0)
        assert merged.aggregate_utilization == pytest.approx(250 / 400)

    def test_merge_requires_same_bandwidths(self):
        other = UtilizationReport(1.0, (50.0, 50.0), (0.1, 0.1), (1.0, 1.0))
        with pytest.raises(SimulationError):
            self.make().merged_with(other)

    def test_merge_empty_rejected(self):
        with pytest.raises(SimulationError):
            merge_reports([])

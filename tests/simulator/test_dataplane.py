"""Value-level multi-rail collective execution (Fig. 8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import DimSpan, all_reduce, all_to_all
from repro.simulator import run_all_reduce, run_all_to_all
from repro.topology import MultiDimNetwork
from repro.utils.errors import SimulationError


class TestFig8Walkthrough:
    """The exact 3×2 example of Fig. 8."""

    def fig8_inputs(self):
        net = MultiDimNetwork.from_notation("RI(3)_RI(2)")
        # Fig. 8(a): NPUs 1-6 (row-major: NPU1-3 on top row, NPU4-6 bottom).
        # Each NPU contributes a 6-element vector; the figure's final answer
        # per element is the column sum.
        contributions = np.array(
            [
                [1, 2, 3, -6, -4, -2],
                [4, 5, 6, -5, -3, -1],
                [1, 3, 5, -2, -3, -5],
                [2, 4, 6, -1, -4, -6],
                [6, 3, 2, 4, 2, 6],
                [5, 4, 1, 1, 5, 3],
            ],
            dtype=float,
        )
        return net, contributions

    def test_all_npus_get_group_sum(self):
        net, contributions = self.fig8_inputs()
        op = all_reduce(6.0, (DimSpan(0, 3), DimSpan(1, 2)))
        result = run_all_reduce(net, op, contributions)
        expected = contributions.sum(axis=0)
        for npu in range(6):
            np.testing.assert_allclose(result[npu], expected)


class TestAllReduceGroups:
    def test_partial_span_groups_are_independent(self):
        """A TP slice over half a dimension reduces within slices only."""
        net = MultiDimNetwork.from_notation("RI(4)_RI(2)")
        # Span covers only 2 of RI(4): slices {coords 0,1} and {coords 2,3}.
        op = all_reduce(4.0, (DimSpan(0, 2),))
        contributions = np.arange(8 * 4, dtype=float).reshape(8, 4)
        result = run_all_reduce(net, op, contributions)
        for npu in range(8):
            coords = net.coordinates_of(npu)
            partner_coord = coords[0] ^ 1  # the other member of the slice
            partner = net.npu_id_of((partner_coord, coords[1]))
            np.testing.assert_allclose(
                result[npu], contributions[npu] + contributions[partner]
            )

    def test_dp_span_over_outer_dims(self):
        net = MultiDimNetwork.from_notation("RI(2)_RI(2)_RI(2)")
        op = all_reduce(8.0, (DimSpan(1, 2), DimSpan(2, 2)))
        contributions = np.random.default_rng(7).normal(size=(8, 8))
        result = run_all_reduce(net, op, contributions)
        for npu in range(8):
            coords = net.coordinates_of(npu)
            group = [
                net.npu_id_of((coords[0], b, c)) for b in range(2) for c in range(2)
            ]
            np.testing.assert_allclose(
                result[npu], contributions[group].sum(axis=0), atol=1e-12
            )

    def test_wrong_kind_rejected(self):
        net = MultiDimNetwork.from_notation("RI(2)_RI(2)")
        op = all_to_all(4.0, (DimSpan(0, 2),))
        with pytest.raises(SimulationError):
            run_all_reduce(net, op, np.zeros((4, 4)))

    def test_indivisible_vector_rejected(self):
        net = MultiDimNetwork.from_notation("RI(3)_RI(2)")
        op = all_reduce(6.0, (DimSpan(0, 3), DimSpan(1, 2)))
        with pytest.raises(SimulationError, match="divisible"):
            run_all_reduce(net, op, np.zeros((6, 5)))


class TestAllToAll:
    def test_full_network_transpose(self):
        net = MultiDimNetwork.from_notation("RI(3)_RI(2)")
        op = all_to_all(6.0, (DimSpan(0, 3), DimSpan(1, 2)))
        payloads = np.arange(36, dtype=float).reshape(6, 6)
        result = run_all_to_all(net, op, payloads)
        np.testing.assert_allclose(result, payloads.T)

    def test_three_dims(self):
        net = MultiDimNetwork.from_notation("RI(2)_RI(2)_RI(2)")
        op = all_to_all(8.0, (DimSpan(0, 2), DimSpan(1, 2), DimSpan(2, 2)))
        payloads = np.random.default_rng(3).normal(size=(8, 8))
        result = run_all_to_all(net, op, payloads)
        np.testing.assert_allclose(result, payloads.T, atol=1e-12)

    def test_grouped_transpose(self):
        """A2A over dim 0 only: transpose within each ring group."""
        net = MultiDimNetwork.from_notation("RI(3)_RI(2)")
        op = all_to_all(3.0, (DimSpan(0, 3),))
        payloads = np.arange(36, dtype=float).reshape(6, 6)
        result = run_all_to_all(net, op, payloads)
        for group in ([0, 1, 2], [3, 4, 5]):
            block = payloads[np.ix_(group, group)]
            np.testing.assert_allclose(result[np.ix_(group, group)], block.T)


@settings(deadline=None, max_examples=25)
@given(
    st.lists(st.integers(min_value=2, max_value=4), min_size=1, max_size=3),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_all_reduce_correct_on_random_networks(sizes, seed):
    """Multi-rail All-Reduce over the whole network always produces the
    global sum at every NPU, for any shape."""
    notation = "_".join(f"RI({size})" for size in sizes)
    net = MultiDimNetwork.from_notation(notation)
    spans = tuple(DimSpan(dim, size) for dim, size in enumerate(sizes))
    group = net.num_npus
    vector_len = group * 2
    rng = np.random.default_rng(seed)
    contributions = rng.integers(-50, 50, size=(group, vector_len)).astype(float)
    result = run_all_reduce(net, all_reduce(float(vector_len), spans), contributions)
    expected = contributions.sum(axis=0)
    for npu in range(group):
        np.testing.assert_allclose(result[npu], expected)


@settings(deadline=None, max_examples=25)
@given(
    st.lists(st.integers(min_value=2, max_value=4), min_size=1, max_size=3),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_all_to_all_is_transpose(sizes, seed):
    notation = "_".join(f"RI({size})" for size in sizes)
    net = MultiDimNetwork.from_notation(notation)
    spans = tuple(DimSpan(dim, size) for dim, size in enumerate(sizes))
    rng = np.random.default_rng(seed)
    payloads = rng.normal(size=(net.num_npus, net.num_npus))
    result = run_all_to_all(net, all_to_all(1.0, spans), payloads)
    np.testing.assert_allclose(result, payloads.T, atol=1e-12)

"""Discrete-event engine determinism and ordering."""

import pytest

from repro.simulator import EventQueue
from repro.utils.errors import SimulationError


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        log = []
        queue.schedule(2.0, lambda: log.append("b"))
        queue.schedule(1.0, lambda: log.append("a"))
        queue.schedule(3.0, lambda: log.append("c"))
        assert queue.run() == 3.0
        assert log == ["a", "b", "c"]

    def test_fifo_on_ties(self):
        queue = EventQueue()
        log = []
        for name in "abc":
            queue.schedule(1.0, lambda n=name: log.append(n))
        queue.run()
        assert log == ["a", "b", "c"]

    def test_schedule_after(self):
        queue = EventQueue()
        times = []
        queue.schedule(1.0, lambda: queue.schedule_after(0.5, lambda: times.append(queue.now)))
        queue.run()
        assert times == [1.5]

    def test_cannot_schedule_in_past(self):
        queue = EventQueue()
        queue.schedule(2.0, lambda: queue.schedule(1.0, lambda: None))
        with pytest.raises(SimulationError, match="before current time"):
            queue.run()

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.schedule_after(-1.0, lambda: None)

    def test_event_count(self):
        queue = EventQueue()
        for index in range(5):
            queue.schedule(float(index), lambda: None)
        queue.run()
        assert queue.events_processed == 5

    def test_runaway_guard(self):
        queue = EventQueue()

        def reschedule():
            queue.schedule_after(1.0, reschedule)

        queue.schedule(0.0, reschedule)
        with pytest.raises(SimulationError, match="exceeded"):
            queue.run(max_events=100)

"""Full training-step simulation and utilization metrics (Fig. 10)."""

import pytest

from repro.simulator import (
    ideal_comm_time,
    simulate_training_step,
    utilization_speedup_potential,
)
from repro.topology import get_topology
from repro.training import estimate_step_time, NoOverlapLoop, TPDPOverlapLoop
from repro.utils import gbps
from repro.utils.errors import ConfigurationError
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def gpt3():
    return build_workload("GPT-3", 4096)


@pytest.fixture(scope="module")
def net4k():
    return get_topology("4D-4K")


class TestStepSimulation:
    def test_total_is_compute_plus_comm(self, gpt3, net4k):
        step = simulate_training_step(gpt3, net4k, [gbps(125)] * 4, num_chunks=8)
        assert step.total_time == pytest.approx(step.compute_time + step.comm_time)

    def test_matches_analytical_estimator(self, gpt3, net4k):
        """With many chunks, simulation ≈ the closed-form estimator (the
        closed form is the infinite-chunk pipelining limit)."""
        bw = [gbps(125)] * 4
        step = simulate_training_step(gpt3, net4k, bw, num_chunks=64)
        analytical = estimate_step_time(gpt3, net4k, bw, loop=NoOverlapLoop())
        assert step.total_time == pytest.approx(analytical, rel=0.05)
        assert step.total_time >= analytical * (1 - 1e-9)

    def test_overlap_loop_not_slower(self, gpt3, net4k):
        bw = [gbps(125)] * 4
        sequential = simulate_training_step(gpt3, net4k, bw, num_chunks=8)
        overlapped = simulate_training_step(
            gpt3, net4k, bw, num_chunks=8, loop_name="tp-dp-overlap"
        )
        assert overlapped.total_time <= sequential.total_time

    def test_collective_times_recorded(self, gpt3, net4k):
        step = simulate_training_step(gpt3, net4k, [gbps(125)] * 4, num_chunks=4)
        assert len(step.collective_times) == 96 * 6
        assert all(time > 0 for time in step.collective_times.values())

    def test_unknown_loop_rejected(self, gpt3, net4k):
        with pytest.raises(ConfigurationError):
            simulate_training_step(gpt3, net4k, [gbps(125)] * 4, loop_name="magic")

    def test_comm_fraction(self, gpt3, net4k):
        step = simulate_training_step(gpt3, net4k, [gbps(125)] * 4, num_chunks=4)
        assert 0.0 < step.comm_fraction < 1.0


class TestUtilizationMetrics:
    def test_optimized_bw_beats_equal_on_utilization(self, gpt3, net4k):
        """LIBRA's allocation must raise aggregate utilization vs EqualBW."""
        from repro.core import Libra, Scheme
        from repro.utils import gbps as to_bps

        libra = Libra(net4k)
        libra.add_workload(gpt3)
        cons = libra.constraints().with_total_bandwidth(to_bps(500))
        optimized = libra.optimize(Scheme.PERF_OPT, cons)

        equal_step = simulate_training_step(gpt3, net4k, [to_bps(125)] * 4, num_chunks=8)
        opt_step = simulate_training_step(
            gpt3, net4k, list(optimized.bandwidths), num_chunks=8
        )
        assert (
            opt_step.comm_report.aggregate_utilization
            > equal_step.comm_report.aggregate_utilization
        )

    def test_ideal_comm_time_is_lower_bound(self, gpt3, net4k):
        step = simulate_training_step(gpt3, net4k, [gbps(125)] * 4, num_chunks=8)
        assert ideal_comm_time(step) <= step.comm_time

    def test_speedup_potential_at_least_one(self, gpt3, net4k):
        step = simulate_training_step(gpt3, net4k, [gbps(125)] * 4, num_chunks=8)
        assert utilization_speedup_potential(step) >= 1.0

    def test_dp_only_workload(self, net4k):
        tnlg = build_workload("Turing-NLG", 4096)
        step = simulate_training_step(tnlg, net4k, [gbps(125)] * 4, num_chunks=4)
        assert step.comm_time > 0
        assert step.comm_report.aggregate_utilization > 0

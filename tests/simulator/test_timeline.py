"""Timeline recording and ASCII rendering (the Fig. 9 picture)."""

import pytest

from repro.collectives import DimSpan, all_reduce
from repro.simulator import (
    TimelineEvent,
    busy_fraction,
    render_timeline,
    simulate_collective,
    timeline_gaps,
)
from repro.utils import gb, gbps
from repro.utils.errors import ConfigurationError


@pytest.fixture(scope="module")
def starved_dim1():
    op = all_reduce(gb(1), (DimSpan(0, 4), DimSpan(1, 4), DimSpan(2, 4)))
    return simulate_collective(op, [gbps(20), gbps(290), gbps(290)], num_chunks=4)


class TestRecording:
    def test_event_counts(self, starved_dim1):
        # 4 chunks × 6 stages (RS×3 + AG×3) = 24 transfers.
        assert len(starved_dim1.timeline) == 24

    def test_events_cover_busy_time(self, starved_dim1):
        for dim in range(3):
            total = sum(
                event.end - event.start
                for event in starved_dim1.timeline
                if event.dim == dim
            )
            assert total == pytest.approx(starved_dim1.report.busy_seconds[dim])

    def test_no_overlap_per_dim(self, starved_dim1):
        for dim in range(3):
            events = sorted(
                (e for e in starved_dim1.timeline if e.dim == dim),
                key=lambda e: e.start,
            )
            for first, second in zip(events, events[1:]):
                assert second.start >= first.end - 1e-12

    def test_phases_labeled(self, starved_dim1):
        phases = {event.phase for event in starved_dim1.timeline}
        assert phases == {"RS", "AG"}


class TestRendering:
    def test_saturated_dim_has_no_idle(self, starved_dim1):
        rows = render_timeline(starved_dim1.timeline, 3, width=40).splitlines()
        assert "-" not in rows[0].split("|")[1]  # Dim1 fully busy
        assert "-" in rows[1].split("|")[1]  # Dim2 mostly idle

    def test_phase_markers(self, starved_dim1):
        rows = render_timeline(
            starved_dim1.timeline, 3, width=40, phase_markers=True
        ).splitlines()
        dim1 = rows[0].split("|")[1]
        assert any(c in "abcd" for c in dim1)  # RS half
        assert any(c in "0123" for c in dim1)  # AG half

    def test_empty_timeline(self):
        text = render_timeline([], 2, width=10)
        assert text.splitlines() == ["Dim1 |----------|", "Dim2 |----------|"]

    def test_bad_width(self, starved_dim1):
        with pytest.raises(ConfigurationError):
            render_timeline(starved_dim1.timeline, 3, width=0)


class TestGaps:
    def test_gaps_complement_busy(self, starved_dim1):
        makespan = starved_dim1.finish_time
        for dim in range(3):
            fraction = busy_fraction(starved_dim1.timeline, dim, makespan)
            assert fraction == pytest.approx(
                starved_dim1.report.dim_utilization(dim), rel=1e-6
            )

    def test_manual_events(self):
        events = [
            TimelineEvent(0, 0, "RS", 0.0, 1.0),
            TimelineEvent(0, 1, "RS", 2.0, 3.0),
        ]
        assert timeline_gaps(events, 0, horizon=4.0) == [(1.0, 2.0), (3.0, 4.0)]
        assert busy_fraction(events, 0, horizon=4.0) == pytest.approx(0.5)

    def test_idle_dim_is_one_gap(self):
        events = [TimelineEvent(0, 0, "RS", 0.0, 2.0)]
        assert timeline_gaps(events, 1) == [(0.0, 2.0)]
        assert busy_fraction(events, 1) == 0.0

"""Chunk-level pipelined collective simulation (Fig. 9)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import (
    CollectiveOp,
    CollectiveType,
    DimSpan,
    all_gather,
    all_reduce,
    all_to_all,
    collective_time,
    reduce_scatter,
)
from repro.simulator import FixedOrderScheduler, simulate_collective
from repro.utils import gb, gbps
from repro.utils.errors import ConfigurationError


class TestAgainstAnalyticalModel:
    def test_matches_when_dim0_bottlenecks(self):
        """With the bottleneck on the first stage the pipeline hides all
        fill/drain time and the simulation equals the closed form."""
        op = all_reduce(gb(1), (DimSpan(0, 4), DimSpan(1, 8)))
        bw = [gbps(50), gbps(400)]
        sim = simulate_collective(op, bw, num_chunks=64)
        assert sim.finish_time == pytest.approx(collective_time(op, bw), rel=1e-9)

    def test_never_faster_than_analytical(self):
        """The closed form is a lower bound (it ignores pipeline bubbles)."""
        op = all_reduce(gb(1), (DimSpan(0, 4), DimSpan(1, 8), DimSpan(2, 4)))
        for bw in ([gbps(100)] * 3, [gbps(10), gbps(200), gbps(300)]):
            sim = simulate_collective(op, bw, num_chunks=64)
            assert sim.finish_time >= collective_time(op, bw) * (1 - 1e-9)

    def test_converges_with_chunk_count(self):
        """More chunks → finer pipelining → closer to the closed form."""
        op = all_reduce(gb(1), (DimSpan(0, 4), DimSpan(1, 8)))
        bw = [gbps(400), gbps(50)]  # bottleneck on dim 1 → bubbles exist
        ideal = collective_time(op, bw)
        gaps = []
        for chunks in (1, 4, 16, 64):
            sim = simulate_collective(op, bw, num_chunks=chunks)
            gaps.append(sim.finish_time - ideal)
        assert gaps[0] > gaps[-1] >= 0
        assert gaps == sorted(gaps, reverse=True)

    def test_single_chunk_is_sum_of_stages(self):
        """One chunk cannot pipeline: time = sum of stage durations."""
        from repro.collectives import decompose

        op = all_reduce(gb(1), (DimSpan(0, 4), DimSpan(1, 8)))
        bw = [gbps(100), gbps(100)]
        sim = simulate_collective(op, bw, num_chunks=1)
        expected = sum(stage.duration(bw[stage.dim]) for stage in decompose(op))
        assert sim.finish_time == pytest.approx(expected, rel=1e-9)


class TestBottleneckScenarios:
    """The three panels of Fig. 9 on a 3D network."""

    OP = all_reduce(gb(1), (DimSpan(0, 4), DimSpan(1, 4), DimSpan(2, 4)))

    def test_underprovisioned_dim1(self):
        sim = simulate_collective(self.OP, [gbps(10), gbps(500), gbps(500)], num_chunks=4)
        util = sim.report.per_dim_utilization
        assert util[0] > 0.95
        assert util[1] < 0.2 and util[2] < 0.2

    def test_underprovisioned_dim2(self):
        sim = simulate_collective(self.OP, [gbps(500), gbps(10), gbps(500)], num_chunks=4)
        util = sim.report.per_dim_utilization
        assert util[1] > 0.9
        assert util[0] < 0.3 and util[2] < 0.1

    def test_ideal_distribution(self):
        """Traffic-proportional bandwidth → near-full utilization everywhere
        outside of scheduling bubbles (Fig. 9(c))."""
        from repro.collectives import ideal_bandwidth_split

        split = ideal_bandwidth_split(self.OP, gbps(600))
        bw = [split[d] for d in range(3)]
        sim = simulate_collective(self.OP, bw, num_chunks=64)
        for value in sim.report.per_dim_utilization:
            assert value > 0.9


class TestCollectiveKinds:
    def test_reduce_scatter_half_of_all_reduce(self):
        spans = (DimSpan(0, 4), DimSpan(1, 4))
        bw = [gbps(100), gbps(100)]
        ar = simulate_collective(all_reduce(gb(1), spans), bw, num_chunks=64)
        rs = simulate_collective(reduce_scatter(gb(1), spans), bw, num_chunks=64)
        assert rs.finish_time == pytest.approx(ar.finish_time / 2, rel=0.05)

    def test_all_gather_equals_reduce_scatter(self):
        spans = (DimSpan(0, 4), DimSpan(1, 4))
        bw = [gbps(100), gbps(60)]
        rs = simulate_collective(reduce_scatter(gb(1), spans), bw, num_chunks=16)
        ag = simulate_collective(all_gather(gb(1), spans), bw, num_chunks=16)
        assert ag.finish_time == pytest.approx(rs.finish_time, rel=1e-6)

    def test_all_to_all(self):
        op = all_to_all(gb(1), (DimSpan(0, 4), DimSpan(1, 4)))
        bw = [gbps(100), gbps(100)]
        sim = simulate_collective(op, bw, num_chunks=64)
        assert sim.finish_time >= collective_time(op, bw) * (1 - 1e-9)

    def test_trivial_op(self):
        sim = simulate_collective(all_reduce(0.0, (DimSpan(0, 2),)), [gbps(1)])
        assert sim.finish_time == 0.0
        assert sim.chunk_finish_times == ()


class TestValidation:
    def test_bad_chunks(self):
        with pytest.raises(ConfigurationError):
            simulate_collective(all_reduce(1.0, (DimSpan(0, 2),)), [gbps(1)], num_chunks=0)

    def test_missing_dim_bandwidth(self):
        with pytest.raises(ConfigurationError):
            simulate_collective(all_reduce(1.0, (DimSpan(0, 2), DimSpan(1, 2))), [gbps(1)])

    def test_chunk_finish_times_monotone(self):
        op = all_reduce(gb(1), (DimSpan(0, 4), DimSpan(1, 4)))
        sim = simulate_collective(op, [gbps(100), gbps(50)], num_chunks=16)
        assert list(sim.chunk_finish_times) == sorted(sim.chunk_finish_times)
        assert sim.chunk_finish_times[-1] == pytest.approx(sim.finish_time)


@st.composite
def sim_cases(draw):
    num_spans = draw(st.integers(min_value=1, max_value=3))
    sizes = draw(
        st.lists(st.integers(min_value=2, max_value=8), min_size=num_spans, max_size=num_spans)
    )
    kind = draw(st.sampled_from(list(CollectiveType)))
    bws = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=500.0),
            min_size=num_spans,
            max_size=num_spans,
        )
    )
    chunks = draw(st.sampled_from([1, 2, 8, 32]))
    op = CollectiveOp(kind, 1e9, tuple(DimSpan(d, s) for d, s in enumerate(sizes)))
    return op, [gbps(b) for b in bws], chunks


@settings(deadline=None, max_examples=30)
@given(sim_cases())
def test_property_sim_bounded_by_analytical_model(case):
    """Closed form ≤ simulation ≤ serial sum of all stage durations."""
    from repro.collectives import decompose

    op, bw, chunks = case
    sim = simulate_collective(op, bw, num_chunks=chunks)
    lower = collective_time(op, bw)
    upper = sum(stage.duration(bw[stage.dim]) for stage in decompose(op))
    assert lower * (1 - 1e-9) <= sim.finish_time <= upper * (1 + 1e-9)


@settings(deadline=None, max_examples=20)
@given(sim_cases())
def test_property_bytes_moved_match_traffic(case):
    """The simulator moves exactly the closed-form per-dim volumes."""
    from repro.collectives import per_dim_traffic

    op, bw, chunks = case
    sim = simulate_collective(op, bw, num_chunks=chunks)
    expected = per_dim_traffic(op)
    for dim, volume in expected.items():
        assert sim.report.bytes_moved[dim] == pytest.approx(volume, rel=1e-9)

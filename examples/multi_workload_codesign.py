"""Multi-workload co-design: one cluster, a family of training jobs.

AI clusters serve ensembles of workloads, not a single model (Sec. VI-B).
This example designs a 4D fabric for three very different jobs — a
trillion-parameter LLM, a recommendation model, and a vision model — and
shows the cross-workload slowdown matrix: how badly a network tuned for one
job serves the others, and how the group-optimized design stays close to
every job's own optimum.

Run:
    python examples/multi_workload_codesign.py
"""

from repro import build_workload, gbps, get_topology, run_group_study

WORKLOADS = ("MSFT-1T", "DLRM", "ResNet-50")
BUDGET_GBPS = 1000


def main() -> None:
    network = get_topology("4D-4K")
    workloads = [build_workload(name, network.num_npus) for name in WORKLOADS]
    study = run_group_study(network, workloads, total_bandwidth=gbps(BUDGET_GBPS))

    print(f"network: {network}, budget {BUDGET_GBPS} GB/s per NPU\n")

    print("single-target allocations (GB/s):")
    for name, point in study.per_target_points.items():
        split = ", ".join(f"{bw:.0f}" for bw in point.bandwidths_gbps())
        print(f"  optimized for {name:>10}: [{split}]")
    group_split = ", ".join(f"{bw:.0f}" for bw in study.group_point.bandwidths_gbps())
    print(f"  group-optimized:        [{group_split}]\n")

    header = "".join(f"{name:>12}" for name in WORKLOADS)
    print("slowdown vs each workload's own optimal network:")
    print(f"{'network for':>14}{header}")
    for design in list(WORKLOADS) + ["group"]:
        cells = "".join(
            f"{study.slowdowns[design][name]:>11.2f}x" for name in WORKLOADS
        )
        print(f"{design:>14}{cells}")

    print()
    print(f"worst cross-workload slowdown (single targets): "
          f"{study.worst_cross_slowdown:.2f}x")
    print(f"group network average slowdown:                 "
          f"{study.average_group_slowdown:.2f}x")
    print("\nreading: each row is a network design; columns are workloads "
          "evaluated on it. The group row stays near 1.0 everywhere — one "
          "fabric can serve the whole family if designed with all targets "
          "in the objective.")


if __name__ == "__main__":
    main()

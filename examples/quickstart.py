"""Quickstart: optimize a 4D fabric's bandwidth for GPT-3 training.

This walks the core LIBRA loop from the paper's Fig. 3: pick a network
shape, register a target workload, state the design constraints, and let
the framework propose the bandwidth allocation — then compare it with the
EqualBW straw-person on speed, dollars, and perf-per-cost.

Run:
    python examples/quickstart.py
"""

from repro import Libra, Scheme, build_workload, gbps, get_topology


def main() -> None:
    # The paper's representative topology: RI(4)_FC(8)_RI(4)_SW(32), 4,096 NPUs.
    network = get_topology("4D-4K")
    print(f"network: {network}")

    # GPT-3 with its Table II parallelization (TP-16, DP-256 at this scale).
    workload = build_workload("GPT-3", network.num_npus)
    print(f"workload: {workload}\n")

    libra = Libra(network)
    libra.add_workload(workload)

    # Designer constraint: 500 GB/s aggregate bandwidth per NPU.
    constraints = libra.constraints().with_total_bandwidth(gbps(500))

    baseline = libra.equal_bw_point(gbps(500))
    perf_opt = libra.optimize(Scheme.PERF_OPT, constraints)
    cost_opt = libra.optimize(Scheme.PERF_PER_COST_OPT, constraints)

    print("design points:")
    for point in (baseline, perf_opt, cost_opt):
        print(f"  {point.describe()}")

    print()
    print(f"PerfOptBW speedup over EqualBW:          "
          f"{perf_opt.speedup_over(baseline):.2f}x")
    print(f"PerfOptBW perf-per-cost over EqualBW:    "
          f"{perf_opt.perf_per_cost_gain_over(baseline):.2f}x")
    print(f"PerfPerCostOptBW perf-per-cost gain:     "
          f"{cost_opt.perf_per_cost_gain_over(baseline):.2f}x")
    print(f"PerfPerCostOptBW network cost reduction: "
          f"{baseline.network_cost / cost_opt.network_cost:.2f}x")


if __name__ == "__main__":
    main()

"""Design analytically, validate on the chunk-level simulator.

LIBRA's optimizer works on the closed-form bandwidth model; the paper
validates its designs on ASTRA-sim. This example runs the same pipeline on
the built-in simulator: optimize MSFT-1T's fabric, then replay the training
step chunk by chunk — with and without the Themis runtime scheduler — and
compare step times and per-dimension utilization against the EqualBW
baseline (the Fig. 9/10 mechanics, end to end).

Run:
    python examples/simulate_and_validate.py
"""

from repro import Libra, Scheme, build_workload, gbps, get_topology
from repro.runtime import ThemisScheduler
from repro.simulator import simulate_training_step

BUDGET_GBPS = 500


def describe(label, step):
    utils = ", ".join(f"{u:.2f}" for u in step.comm_report.per_dim_utilization)
    print(
        f"  {label:<28} step {step.total_time * 1e3:8.2f} ms   "
        f"comm {step.comm_time * 1e3:8.2f} ms   "
        f"dim utilization [{utils}]   "
        f"aggregate {step.comm_report.aggregate_utilization:.2f}"
    )


def main() -> None:
    network = get_topology("4D-4K")
    workload = build_workload("MSFT-1T", network.num_npus)

    libra = Libra(network)
    libra.add_workload(workload)
    constraints = libra.constraints().with_total_bandwidth(gbps(BUDGET_GBPS))
    optimized = libra.optimize(Scheme.PERF_OPT, constraints)

    equal_bw = [gbps(BUDGET_GBPS) / network.num_dims] * network.num_dims
    libra_bw = list(optimized.bandwidths)

    print(f"workload: {workload}")
    print(f"network:  {network}")
    print(f"LIBRA allocation: "
          f"[{', '.join(f'{bw:.0f}' for bw in optimized.bandwidths_gbps())}] GB/s\n")

    print("chunk-level simulation (64 chunks per collective):")
    for label, bandwidths, factory in (
        ("EqualBW", equal_bw, None),
        ("EqualBW + Themis", equal_bw, ThemisScheduler),
        ("LIBRA", libra_bw, None),
        ("LIBRA + Themis", libra_bw, ThemisScheduler),
    ):
        step = simulate_training_step(
            workload, network, bandwidths, num_chunks=64,
            scheduler_factory=factory,
        )
        describe(label, step)

    analytical = optimized.step_time("MSFT-1T")
    print(f"\nanalytical model predicted {analytical * 1e3:.2f} ms for the "
          "LIBRA design — the simulation should land within a few percent "
          "(the gap is pipeline fill/drain, which the closed form ignores).")


if __name__ == "__main__":
    main()

"""Design-space exploration: sweep bandwidth budgets and constraint shapes.

Reproduces the flavour of the paper's Sec. VI-A study interactively: for a
target workload, the exploration engine sweeps the per-NPU bandwidth budget
under both optimization schemes and extracts the cost-vs-time Pareto
frontier; then a second study shows how designer constraints (a capped
scale-out dimension, an ordering requirement, a two-dimension budget split)
reshape the optimal allocation.

Run:
    python examples/design_space_exploration.py [workload] [topology]
"""

import sys

from repro import (
    Libra,
    Scheme,
    SweepSpec,
    build_workload,
    gbps,
    get_topology,
    pareto_frontier,
    run_sweep,
)


def sweep_budgets(workload_name: str, topology_name: str) -> None:
    spec = SweepSpec(
        workloads=(workload_name,),
        topologies=(topology_name,),
        bandwidths_gbps=(100, 250, 500, 750, 1000),
        schemes=("perf", "perf-per-cost"),
    )
    sweep = run_sweep(spec)

    print(f"--- {workload_name} on {topology_name}: budget sweep ---")
    print(f"{'BW/NPU':>8}  {'scheme':<17} {'speedup':>8}  {'ppc gain':>8}  "
          f"optimal split (GB/s)")
    for result in sweep.results:
        if not result.ok:
            print(f"{result.point.total_bw_gbps:>8.0f}  ERROR: {result.error}")
            continue
        split = ", ".join(f"{bw:.0f}" for bw in result.bandwidths_gbps)
        print(
            f"{result.point.total_bw_gbps:>8.0f}  "
            f"{result.point.scheme.value:<17} "
            f"{result.speedup_over_equal:>7.2f}x "
            f"{result.ppc_gain_over_equal:>8.2f}x  [{split}]"
        )

    frontier = pareto_frontier(
        sweep.results, x="network_cost", y="step_time_ms"
    )
    print(f"\ncost-vs-time Pareto frontier ({len(frontier)} of "
          f"{len(sweep.ok_results())} design points):")
    for result in frontier:
        print(
            f"  ${result.network_cost:>14,.0f}  {result.step_time_ms:>9.2f} ms  "
            f"{result.point.scheme.value} @ {result.point.total_bw_gbps:.0f} GB/s"
        )


def constrained_designs(workload_name: str, topology_name: str) -> None:
    network = get_topology(topology_name)
    libra = Libra(network)
    libra.add_workload(build_workload(workload_name, network.num_npus))
    budget = gbps(500)

    scenarios = {
        "unconstrained": libra.constraints().with_total_bandwidth(budget),
        "pod capped at 50 GB/s": (
            libra.constraints()
            .with_total_bandwidth(budget)
            .with_dim_cap(network.num_dims - 1, gbps(50))
        ),
        "B1 >= B2 >= B3": (
            libra.constraints()
            .with_total_bandwidth(budget)
            .with_ordering(list(range(min(3, network.num_dims))))
        ),
    }
    if network.num_dims >= 2:
        scenarios["B1 + B2 = 400 GB/s"] = (
            libra.constraints()
            .with_total_bandwidth(budget)
            .with_linear(
                [1.0, 1.0] + [0.0] * (network.num_dims - 2),
                lower=gbps(400),
                upper=gbps(400),
                label="b1+b2",
            )
        )

    print(f"\n--- {workload_name} on {topology_name}: constraint scenarios "
          f"(500 GB/s budget) ---")
    for label, constraints in scenarios.items():
        point = libra.optimize(Scheme.PERF_OPT, constraints)
        split = ", ".join(f"{bw:.0f}" for bw in point.bandwidths_gbps())
        print(f"{label:>24}: [{split}] GB/s, "
              f"step {point.step_time() * 1e3:.2f} ms")


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "MSFT-1T"
    topology_name = sys.argv[2] if len(sys.argv) > 2 else "4D-4K"
    sweep_budgets(workload_name, topology_name)
    constrained_designs(workload_name, topology_name)


if __name__ == "__main__":
    main()

"""Design-space exploration: sweep bandwidth budgets and constraint shapes.

Reproduces the flavour of the paper's Sec. VI-A study interactively: for a
target workload, sweep the per-NPU bandwidth budget, then show how designer
constraints (a capped scale-out dimension, an ordering requirement, a
two-dimension budget split) reshape the optimal allocation.

Run:
    python examples/design_space_exploration.py [workload] [topology]
"""

import sys

from repro import Libra, Scheme, build_workload, gbps, get_topology


def sweep_budgets(workload_name: str, topology_name: str) -> None:
    network = get_topology(topology_name)
    libra = Libra(network)
    libra.add_workload(build_workload(workload_name, network.num_npus))

    print(f"--- {workload_name} on {topology_name}: budget sweep ---")
    print(f"{'BW/NPU':>8}  {'speedup':>8}  {'ppc gain':>8}  optimal split (GB/s)")
    for budget in (100, 250, 500, 750, 1000):
        constraints = libra.constraints().with_total_bandwidth(gbps(budget))
        optimized = libra.optimize(Scheme.PERF_OPT, constraints)
        baseline = libra.equal_bw_point(gbps(budget))
        split = ", ".join(f"{bw:.0f}" for bw in optimized.bandwidths_gbps())
        print(
            f"{budget:>8}  {optimized.speedup_over(baseline):>7.2f}x "
            f"{optimized.perf_per_cost_gain_over(baseline):>8.2f}x  [{split}]"
        )


def constrained_designs(workload_name: str, topology_name: str) -> None:
    network = get_topology(topology_name)
    libra = Libra(network)
    libra.add_workload(build_workload(workload_name, network.num_npus))
    budget = gbps(500)

    scenarios = {
        "unconstrained": libra.constraints().with_total_bandwidth(budget),
        "pod capped at 50 GB/s": (
            libra.constraints()
            .with_total_bandwidth(budget)
            .with_dim_cap(network.num_dims - 1, gbps(50))
        ),
        "B1 >= B2 >= B3": (
            libra.constraints()
            .with_total_bandwidth(budget)
            .with_ordering(list(range(min(3, network.num_dims))))
        ),
    }
    if network.num_dims >= 2:
        scenarios["B1 + B2 = 400 GB/s"] = (
            libra.constraints()
            .with_total_bandwidth(budget)
            .with_linear(
                [1.0, 1.0] + [0.0] * (network.num_dims - 2),
                lower=gbps(400),
                upper=gbps(400),
                label="b1+b2",
            )
        )

    print(f"\n--- {workload_name} on {topology_name}: constraint scenarios "
          f"(500 GB/s budget) ---")
    for label, constraints in scenarios.items():
        point = libra.optimize(Scheme.PERF_OPT, constraints)
        split = ", ".join(f"{bw:.0f}" for bw in point.bandwidths_gbps())
        print(f"{label:>24}: [{split}] GB/s, "
              f"step {point.step_time() * 1e3:.2f} ms")


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "MSFT-1T"
    topology_name = sys.argv[2] if len(sys.argv) > 2 else "4D-4K"
    sweep_budgets(workload_name, topology_name)
    constrained_designs(workload_name, topology_name)


if __name__ == "__main__":
    main()

"""Design-time allocation meets runtime optimizers (Themis & TACOS).

The paper's Sec. VI-D shows runtime techniques perform best on top of a
well-designed fabric. This example reproduces both studies at small scale:

* Themis chunk scheduling on EqualBW vs LIBRA-shaped 4D networks, iso-cost
  and iso-resource (Fig. 19's setup);
* TACOS collective synthesis on the 3D torus, co-optimized with the
  bandwidth allocation (Fig. 20's setup).

Run:
    python examples/runtime_cooptimization.py
"""

from repro import Libra, Scheme, build_workload, gbps, get_topology
from repro.collectives import DimSpan, all_reduce, ideal_bandwidth_split
from repro.cost import default_cost_model, max_bandwidth_for_budget, network_cost
from repro.runtime import (
    ThemisScheduler,
    cooptimize_with_tacos,
    multirail_all_reduce_time,
    synthesize_all_gather,
)
from repro.simulator import simulate_training_step
from repro.utils import gb


def themis_study() -> None:
    print("--- Themis: runtime scheduling on top of design-time allocation ---")
    network = get_topology("4D-4K")
    workload = build_workload("GPT-3", network.num_npus)
    model = default_cost_model()

    libra = Libra(network)
    libra.add_workload(workload)
    constraints = libra.constraints().with_total_bandwidth(gbps(1000))
    shaped = libra.optimize(Scheme.PERF_PER_COST_OPT, constraints)
    total = shaped.total_bandwidth
    shares = [bw / total for bw in shaped.bandwidths]

    budget = 15e6
    for label, share_vector in (("EqualBW", [0.25] * 4), ("LIBRA", shares)):
        affordable = max_bandwidth_for_budget(network, share_vector, budget, model)
        bandwidths = [affordable * share for share in share_vector]
        step = simulate_training_step(
            workload, network, bandwidths, num_chunks=8,
            scheduler_factory=ThemisScheduler,
        )
        print(
            f"  iso-cost $15M  {label:>8}: {affordable / 1e9:7.0f} GB/s total, "
            f"step {step.total_time * 1e3:8.2f} ms"
        )


def tacos_study() -> None:
    print("\n--- TACOS: synthesized collectives on the 3D torus ---")
    torus = get_topology("3D-Torus")
    model = default_cost_model()
    payload = gb(1)

    equal_bw = [gbps(1000 / 3)] * 3
    tacos_only = synthesize_all_gather(torus, equal_bw, payload, chunks_per_npu=8)

    op = all_reduce(payload, tuple(DimSpan(dim, 4) for dim in range(3)))
    split = ideal_bandwidth_split(op, gbps(1000))
    libra_bw = [split[dim] for dim in range(3)]
    libra_only = multirail_all_reduce_time(torus, libra_bw, payload, num_chunks=8)

    codesign = cooptimize_with_tacos(
        torus, gbps(1000), payload, chunks_per_npu=8, objective="perf_per_cost"
    )

    rows = (
        ("EqualBW + TACOS", tacos_only.all_reduce_time,
         network_cost(torus, equal_bw, model)),
        ("LIBRA-only (multi-rail)", libra_only,
         network_cost(torus, libra_bw, model)),
        ("LIBRA + TACOS", codesign.all_reduce_time, codesign.network_cost),
    )
    for label, time, cost in rows:
        print(f"  {label:<26} All-Reduce {time * 1e3:7.3f} ms   "
              f"cost ${cost:,.0f}   time x cost {time * cost:8.2f}")


def main() -> None:
    themis_study()
    tacos_study()


if __name__ == "__main__":
    main()

"""Inspect a design point: structure, timelines, and marginal values.

After LIBRA proposes an allocation, this example answers the designer's
follow-up questions with the library's analysis tools:

* **structure** — hop diameter, per-dimension bisection cuts, injection
  bandwidth (`repro.topology.metrics`);
* **timelines** — the Fig. 9 occupancy picture for the dominant collective,
  drawn from the chunk simulator (`repro.simulator.timeline`);
* **marginal values** — where the next GB/s helps most, and how flat the
  optimum is (`repro.core.sensitivity`).

Run:
    python examples/inspect_design.py
"""

from repro import Libra, Scheme, build_workload, gbps, get_topology
from repro.core import bandwidth_sensitivity
from repro.simulator import render_timeline, simulate_collective
from repro.topology import describe_structure
from repro.training import resolve_workload_comms

BUDGET_GBPS = 500


def main() -> None:
    network = get_topology("4D-4K")
    workload = build_workload("GPT-3", network.num_npus)
    libra = Libra(network)
    libra.add_workload(workload)
    point = libra.optimize(
        Scheme.PERF_OPT, libra.constraints().with_total_bandwidth(gbps(BUDGET_GBPS))
    )

    print("=== design point ===")
    print(point.describe())

    print("\n=== structure ===")
    print(describe_structure(network, point.bandwidths))

    print("\n=== dominant collective timeline (8 chunks) ===")
    resolved = resolve_workload_comms(workload, network)
    dominant = max(resolved, key=lambda r: r.op.size_bytes)
    print(f"collective: {dominant.op.label} "
          f"({dominant.op.size_bytes / 1e6:.1f} MB, {dominant.op.kind.value})")
    sim = simulate_collective(dominant.op, list(point.bandwidths), num_chunks=8)
    print(render_timeline(sim.timeline, network.num_dims, width=64,
                          phase_markers=True))
    print("(letters = Reduce-Scatter, digits = All-Gather, '-' = idle)")

    print("\n=== marginal value of bandwidth ===")
    expression = libra.combined_expression()
    report = bandwidth_sensitivity(expression, point.bandwidths)
    for dim, seconds in enumerate(report.seconds_per_extra_gbps()):
        marker = "  <- most valuable" if dim == report.most_valuable_dim else ""
        print(f"dim {dim + 1}: {seconds * 1e3:.4f} ms saved per extra GB/s{marker}")
    binding = [dim + 1 for dim in report.binding_dims()]
    print(f"binding dimensions (co-bottlenecked): {binding}")


if __name__ == "__main__":
    main()

"""Bring your own workload: the text format end to end.

LIBRA's front end parses workload descriptions from text files (the
"Workload Parser" box in Fig. 3). This example writes a custom
mixture-of-experts-flavoured model to disk in the text format, loads it
back, and optimizes a 3D fabric for it — the full path a user with their
own profiler output would follow.

Run:
    python examples/custom_workload_file.py
"""

import tempfile
from pathlib import Path

from repro import Libra, Scheme, gbps, get_topology
from repro.workloads import load_workload_file

CUSTOM_WORKLOAD = """\
# A hand-written MoE-style workload: wide FFN experts exchanged with
# All-to-All, attention sharded TP-16, ZeRO-2 data parallelism.
WORKLOAD Custom-MoE
DTYPE 2
PARALLELISM TP 16 DP 256

LAYER attention-block
  FWD_COMPUTE_FLOPS 2.1e12
  FWD_COMM ALL_REDUCE TP 1.0e8
  TP_COMPUTE_FLOPS 2.1e12
  TP_COMM ALL_REDUCE TP 1.0e8
  DP_COMPUTE_FLOPS 2.1e12
  DP_COMM REDUCE_SCATTER DP 6.0e8
  DP_COMM ALL_GATHER DP 6.0e8
  PARAMS 4.8e9
END

LAYER expert-dispatch
  FWD_COMM ALL_TO_ALL GLOBAL 5.0e7
  TP_COMM ALL_TO_ALL GLOBAL 5.0e7
END

LAYER expert-ffn
  FWD_COMPUTE_FLOPS 5.6e12
  TP_COMPUTE_FLOPS 5.6e12
  DP_COMPUTE_FLOPS 5.6e12
  DP_COMM REDUCE_SCATTER DP 1.6e9
  DP_COMM ALL_GATHER DP 1.6e9
  PARAMS 1.28e10
END
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "custom_moe.workload"
        path.write_text(CUSTOM_WORKLOAD)
        workload = load_workload_file(path)

    print(f"loaded: {workload}")
    scopes = {
        scope.value: f"{size / 1e6:.1f} MB"
        for scope, size in workload.comm_bytes_by_scope().items()
    }
    print(f"communication by scope per step: {scopes}\n")

    network = get_topology("3D-4K")
    libra = Libra(network)
    libra.add_workload(workload)
    constraints = libra.constraints().with_total_bandwidth(gbps(600))

    baseline = libra.equal_bw_point(gbps(600))
    optimized = libra.optimize(Scheme.PERF_OPT, constraints)

    print(f"EqualBW:   {baseline.describe()}")
    print(f"optimized: {optimized.describe()}")
    print(f"\nspeedup {optimized.speedup_over(baseline):.2f}x, "
          f"perf-per-cost {optimized.perf_per_cost_gain_over(baseline):.2f}x")


if __name__ == "__main__":
    main()

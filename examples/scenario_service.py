"""The Scenario/Service API: declarative, serializable problem statements.

Instead of assembling a `Libra` object step by step, state the whole
problem — network, workloads, constraints, models — as one frozen
`Scenario` value and submit requests against a stateless `LibraService`:

* scenarios serialize to versioned JSON (`examples/scenarios/*.json` are
  exactly these payloads; `repro-libra optimize --scenario file.json`
  consumes them),
* two structurally identical scenarios share one canonical key, so the
  service compiles each distinct problem exactly once,
* a whole grid is one `BatchRequest`, routed through the explore engine
  and its content-addressed cache.

Run:
    python examples/scenario_service.py
"""

from repro.api import (
    BatchRequest,
    LibraService,
    OptimizeRequest,
    Scenario,
    build_scenario,
)
from repro.core import Scheme
from repro.explore import SweepSpec


def main() -> None:
    service = LibraService()

    # One declarative problem statement: GPT-3 on the paper's 4D fabric
    # under a 500 GB/s per-NPU budget.
    scenario = build_scenario("4D-4K", ["GPT-3"], total_bw_gbps=500)
    print(f"scenario key: {scenario.key()[:16]}…")

    # The scenario is a value: it round-trips through JSON and the copy
    # answers to the same content address.
    rebuilt = Scenario.from_dict(scenario.to_dict())
    assert rebuilt.key() == scenario.key()

    # Submit both optimization schemes. The service compiles the scenario
    # once (memoized on its key); the second request reuses the engine.
    for scheme in (Scheme.PERF_OPT, Scheme.PERF_PER_COST_OPT):
        response = service.submit(OptimizeRequest(scenario=scenario, scheme=scheme))
        print(f"\n{response.point.describe()}")
        print(f"  speedup over EqualBW:       {response.speedup_over_baseline:.2f}x")
        print(f"  perf-per-cost over EqualBW: {response.ppc_gain_over_baseline:.2f}x")
    print(f"\ncompiled engines in service memo: {service.compiled_count}")

    # Explicit-bandwidth evaluation: no solver, just the analytical model.
    probe = service.submit(
        OptimizeRequest(scenario=scenario, bandwidths_gbps=(200, 150, 100, 50))
    )
    print(f"\nprobe [200,150,100,50] GB/s: {probe.point.describe()}")

    # A whole budget sweep as one batch request through the explore engine.
    batch = service.submit(
        BatchRequest(
            spec=SweepSpec(
                workloads=("GPT-3",),
                topologies=("4D-4K",),
                bandwidths_gbps=(300.0, 500.0, 1000.0),
                schemes=("perf",),
            )
        )
    )
    print("\nbatch sweep (PerfOptBW):")
    for row in batch.sweep.results:
        print(
            f"  {row.point.total_bw_gbps:>6.0f} GB/s -> "
            f"{row.step_time_ms:8.3f} ms, speedup {row.speedup_over_equal:.2f}x"
        )


if __name__ == "__main__":
    main()

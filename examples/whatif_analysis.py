"""A what-if session: from a Table-II optimum to bottleneck structure.

Solving tells you *where* the optimal bandwidth allocation lands;
analysis tells you *why* it landed there and what a design change would
buy. This example solves one Table-II scenario, prints its bottleneck
structure (binding set, kink gaps, transfer gradients, the wasteless
baseline), then runs a what-if session — targeted perturbations answered
from the evaluator and the analyze memo, never the solver — and finally
sweeps a budget column and re-analyzes a cached cell to show the
read-only cache path.

Run:
    python examples/whatif_analysis.py
"""

from repro.analysis import WhatIfQuery, format_report
from repro.api import (
    AnalyzeRequest,
    BatchRequest,
    LibraService,
    OptimizeRequest,
    build_scenario,
)
from repro.core import Scheme
from repro.explore.spec import ExplorationPoint, SweepSpec

TOPOLOGY = "4D-4K"
WORKLOAD = "GPT-3"
BUDGET_GBPS = 500.0


def main() -> None:
    service = LibraService()
    scenario = build_scenario(
        TOPOLOGY, [WORKLOAD], total_bw_gbps=BUDGET_GBPS
    )

    # 1. Solve, then ask why the optimum looks the way it does. The
    #    analyze request re-uses the service's solution memo, so the
    #    solve below is paid once.
    optimum = service.submit(OptimizeRequest(scenario=scenario))
    print(f"{WORKLOAD} on {TOPOLOGY} @ {BUDGET_GBPS:.0f} GB/s:")
    print(optimum.point.describe())
    print()

    response = service.submit(AnalyzeRequest(scenario=scenario))
    print(format_report(response.report))
    print()

    # 2. A targeted what-if session. Each query perturbs the analyzed
    #    point and re-evaluates the step time — no solver involved, and
    #    repeat probes hit the what-if memo.
    session = service.submit(
        AnalyzeRequest(
            scenario=scenario,
            queries=(
                WhatIfQuery(op="scale", dim=0, factor=2.0),
                WhatIfQuery(op="move", source=0, target=3, delta_gbps=50.0),
                WhatIfQuery(op="budget", delta_gbps=100.0),
                WhatIfQuery(op="budget", delta_gbps=-100.0),
            ),
        )
    )
    print("what-if session:")
    for result in session.report.whatifs:
        print(
            f"  {result.query.label():<34} "
            f"{result.delta_step_time * 1e3:+9.3f} ms "
            f"({result.speedup:.3f}x)"
        )
    print()

    # 3. Sweep a budget column, then analyze a cached cell: the point
    #    comes straight from the result cache (source="cache"), and a
    #    repeated analysis is served from the analyze memo without any
    #    re-computation (memo_hit=True).
    spec = SweepSpec(
        workloads=(WORKLOAD,), topologies=(TOPOLOGY,),
        bandwidths_gbps=(300.0, BUDGET_GBPS, 1000.0),
    )
    service.submit(BatchRequest(spec=spec))
    cell = ExplorationPoint(WORKLOAD, TOPOLOGY, 1000.0, Scheme.PERF_OPT)
    cached = service.submit(AnalyzeRequest(cell=cell))
    again = service.submit(AnalyzeRequest(cell=cell))
    print(
        f"cached cell {cell.label()}: source={cached.source}, "
        f"binding dims {list(cached.report.binding_dims)}, "
        f"repeat memo_hit={again.memo_hit}"
    )


if __name__ == "__main__":
    main()

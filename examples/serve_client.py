"""Drive a live `repro serve` endpoint: submit, stream, cancel, resume.

This example boots its own server on a free port (so it is self-contained
and runnable offline), then behaves exactly like a remote client would:

1. submit an optimize job over HTTP and stream its events to completion,
2. show that the remote answer is bit-identical to a local
   ``LibraService.submit()`` for the same scenario,
3. submit a sweep (batch) job, cancel it mid-run, and resubmit — the
   resumed job reuses every cell the cancelled run completed.

Against an already-running server (``repro serve --port 8350``), replace
the boot block with ``client = ServeClient("http://127.0.0.1:8350")``.

Run with::

    PYTHONPATH=src python examples/serve_client.py
"""

import tempfile
import threading

from repro.api.requests import BatchRequest, OptimizeRequest
from repro.api.scenario import build_scenario
from repro.api.service import LibraService
from repro.explore.spec import SweepSpec
from repro.serve import JobManager, ServeClient, create_server

TOPOLOGY = "RI(3)_RI(2)"  # tiny 6-NPU fabric: the example runs in seconds
WORKLOAD = "Turing-NLG"


def boot_server(cache_root: str):
    # cache_root opts in to client-supplied cache_dir names, sandboxed
    # under that directory; without it the server rejects them.
    manager = JobManager(workers=2)
    server = create_server(manager, port=0, cache_root=cache_root)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    return manager, server, ServeClient(f"http://{host}:{port}")


def main() -> None:
    cache_root = tempfile.mkdtemp(prefix="repro-serve-example-")
    manager, server, client = boot_server(cache_root)
    print(f"server up at {client.base_url}, healthy={client.healthy()}")

    # -- 1. submit + stream ---------------------------------------------------
    request = OptimizeRequest(
        scenario=build_scenario(TOPOLOGY, [WORKLOAD], total_bw_gbps=300)
    )
    info = client.submit(request)
    print(f"\nsubmitted {info.id} ({info.state.value}); streaming events:")
    for event in client.events(info.id, follow=True):
        print(f"  [{event.seq}] {event.kind:<6} {event.data}")

    # -- 2. remote == local, bitwise -----------------------------------------
    remote = client.result(info.id)
    local = LibraService().submit(request)
    assert remote.to_dict() == local.to_dict()
    print(f"\nremote result: {remote.point.describe()}")
    print("bit-identical to the local facade path: True")

    # -- 3. cancel a sweep mid-run, then resume from its cache ----------------
    batch = BatchRequest(
        spec=SweepSpec(
            workloads=(WORKLOAD,),
            topologies=(TOPOLOGY,),
            bandwidths_gbps=(100.0, 200.0, 300.0, 400.0, 500.0, 600.0),
        ),
        cache_dir="sweep-study",  # resolved under the server's cache root
    )
    info = client.submit(batch)
    print(f"\nsubmitted sweep {info.id}; cancelling at the first solved cell…")
    for event in client.events(info.id, follow=True):
        if event.kind == "cell":
            client.cancel(info.id)
            break
    final = client.wait(info.id)
    print(f"sweep job ended {final.state.value!r}: {final.error}")

    resumed = client.submit_and_wait(batch)  # fresh id: prior run cancelled
    sweep = resumed.sweep
    print(
        f"resumed sweep: {len(sweep.results)} rows, "
        f"{sweep.cache_hits} served from the cancelled run's cache, "
        f"{sweep.solver_calls} freshly solved"
    )
    print(f"diagnostics: warm hit rate {resumed.diagnostics['warm_hit_rate']:.0%}, "
          f"chains {resumed.diagnostics['profile']['chains']}")

    server.shutdown()
    server.server_close()
    manager.shutdown()
    print("\nserver stopped; done")


if __name__ == "__main__":
    main()

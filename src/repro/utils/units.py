"""Unit conversions used throughout the library.

Internally the library uses a single unit system:

* data sizes are in **bytes**,
* bandwidths are in **bytes per second**,
* compute rates are in **FLOP per second**,
* times are in **seconds**.

The helpers here convert human-friendly magnitudes (GB, GB/s, TFLOPS) into
those base units and format base-unit values back for reports. The paper
quotes bandwidths in GB/s and costs in $/GBps, so benchmarks convert at the
boundary and never mix units internally.
"""

from __future__ import annotations

KB: float = 1e3
MB: float = 1e6
GB: float = 1e9
TB: float = 1e12

GBPS: float = 1e9
TFLOPS: float = 1e12


def kb(value: float) -> float:
    """Convert kilobytes to bytes."""
    return value * KB


def mb(value: float) -> float:
    """Convert megabytes to bytes."""
    return value * MB


def gb(value: float) -> float:
    """Convert gigabytes to bytes."""
    return value * GB


def tb(value: float) -> float:
    """Convert terabytes to bytes."""
    return value * TB


def gbps(value: float) -> float:
    """Convert GB/s to bytes/s."""
    return value * GBPS


def tflops(value: float) -> float:
    """Convert TFLOPS to FLOP/s."""
    return value * TFLOPS


def bytes_to_mb(value: float) -> float:
    """Convert bytes to megabytes."""
    return value / MB


def bytes_to_gb(value: float) -> float:
    """Convert bytes to gigabytes."""
    return value / GB


def format_bytes(value: float) -> str:
    """Render a byte count with an appropriate SI suffix.

    >>> format_bytes(2.5e9)
    '2.50 GB'
    >>> format_bytes(512)
    '512 B'
    """
    if value < 0:
        raise ValueError(f"byte count must be non-negative, got {value}")
    for threshold, suffix in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if value >= threshold:
            return f"{value / threshold:.2f} {suffix}"
    return f"{value:.0f} B"


def format_time(seconds: float) -> str:
    """Render a duration with an appropriate suffix.

    >>> format_time(0.0042)
    '4.200 ms'
    """
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3f} us"
    return f"{seconds * 1e9:.3f} ns"

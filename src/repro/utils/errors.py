"""Exception hierarchy for the repro library.

Every exception raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one base type at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NotationError(ReproError, ValueError):
    """A multi-dimensional network notation string could not be parsed.

    Raised by :mod:`repro.topology.notation` for malformed strings such as
    ``"RI(0)_XX(4)"``.
    """


class ConfigurationError(ReproError, ValueError):
    """An input object (workload, cost model, topology) is inconsistent."""


class MappingError(ReproError, ValueError):
    """A parallelization strategy cannot be mapped onto a network shape.

    For example, ``HP-(3, 5)`` cannot be placed on a 16-NPU network, and a
    TP degree that does not factor across dimension sizes cannot be split.

    Attributes:
        parallelism: The offending strategy, when the raiser knows it (the
            strategy-space enumerator prunes on this instead of re-parsing
            the message).
        network: Name/notation of the network the strategy failed against,
            when known.
    """

    def __init__(
        self,
        message: str,
        *,
        parallelism: object | None = None,
        network: str = "",
    ) -> None:
        super().__init__(message)
        self.parallelism = parallelism
        self.network = network


class OptimizationError(ReproError, RuntimeError):
    """The bandwidth optimizer failed to produce a feasible design point."""


class AnalysisCacheMiss(ConfigurationError):
    """An analyze request named a sweep cell absent from the result cache.

    Analysis is read-only by contract: it never runs the solver to
    materialize a missing cell. Its own subclass (rather than a bare
    :class:`ConfigurationError`) so serving layers can distinguish
    "that resource does not exist" (HTTP 404) from "that request is
    malformed" (HTTP 400)."""


class TransientError(ReproError, RuntimeError):
    """A failure that may succeed if simply tried again.

    The retry taxonomy's root: raising (or deriving from) this marks a
    failure as *transient* — a dead pool worker, an injected fault, a
    momentarily unavailable resource — so retry layers (solve-level cell
    retry in :mod:`repro.explore.executor`, job requeue in
    :mod:`repro.serve.manager`) re-attempt it with bounded backoff
    instead of recording it as a permanent error. Anything else (bad
    input, infeasible problem) stays permanent: retrying a deterministic
    failure only burns time.
    """


class JobCancelled(ReproError, RuntimeError):
    """A cooperative cancellation checkpoint observed a cancel request.

    Raised by the solver (between multi-start seeds), the sweep executor
    (between cells/chains), and :class:`repro.serve` job workers when the
    caller-supplied ``should_stop`` predicate turns true. Deliberately
    *not* a :class:`ConfigurationError`: a cancelled operation is neither
    a bad input nor a failure, and error-containment layers (sweep error
    rows, job failure states) must let it propagate instead of recording
    it as a fault.
    """


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state."""

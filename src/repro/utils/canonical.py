"""Canonical JSON encoding and content addressing.

Every cacheable object in the library exposes a ``canonical()`` dict; this
module turns those payloads into stable content addresses. The encoding is
deterministic — sorted keys, no whitespace drift — so two structurally
identical payloads digest identically on any platform and Python version.

Shared by :mod:`repro.explore.keys` (sweep-cell cache keys) and
:mod:`repro.api.scenario` (scenario identity for service-level memoization).
"""

from __future__ import annotations

import hashlib
import json


def canonical_json(payload: object) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace drift."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def digest(payload: object) -> str:
    """SHA-256 hex digest of a payload's canonical JSON encoding."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()

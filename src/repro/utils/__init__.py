"""Shared helpers: unit conversions, validation, canonical JSON, errors."""

from repro.utils.canonical import canonical_json, digest
from repro.utils.errors import (
    ConfigurationError,
    MappingError,
    NotationError,
    OptimizationError,
    ReproError,
    SimulationError,
)
from repro.utils.units import (
    GB,
    GBPS,
    KB,
    MB,
    TB,
    TFLOPS,
    bytes_to_gb,
    bytes_to_mb,
    format_bytes,
    format_time,
    gb,
    gbps,
    mb,
    tflops,
)
from repro.utils.validation import (
    check_positive,
    check_positive_int,
    check_probability,
    is_power_of_two,
    prod,
)

__all__ = [
    "canonical_json",
    "digest",
    "ConfigurationError",
    "MappingError",
    "NotationError",
    "OptimizationError",
    "ReproError",
    "SimulationError",
    "GB",
    "GBPS",
    "KB",
    "MB",
    "TB",
    "TFLOPS",
    "bytes_to_gb",
    "bytes_to_mb",
    "format_bytes",
    "format_time",
    "gb",
    "gbps",
    "mb",
    "tflops",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "is_power_of_two",
    "prod",
]

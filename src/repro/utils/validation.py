"""Small validation helpers shared across packages."""

from __future__ import annotations

import math
from typing import Iterable


def check_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive and finite, else raise ValueError."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Return ``value`` if a strictly positive int, else raise ValueError.

    Booleans are rejected even though they subclass ``int`` — a ``True`` NPU
    count is always a caller bug.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an int, got {value!r}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Return ``value`` if within [0, 1], else raise ValueError."""
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return isinstance(value, int) and value > 0 and (value & (value - 1)) == 0


def prod(values: Iterable[int]) -> int:
    """Integer product of an iterable (1 for an empty iterable)."""
    result = 1
    for value in values:
        result *= value
    return result

"""Parallelization-strategy space: valid (tp, cp, ep, pp, dp) factorizations.

The joint co-optimization (TopoOpt-style) searches over *strategies*, not
just bandwidths: every way of factoring the node count into tensor-,
context-, expert-, pipeline-, and data-parallel degrees is one candidate.
:class:`StrategySpace` bounds that space (per-axis caps, power-of-two
degrees) and enumerates it deterministically — sorted by the degree tuple,
so adjacent candidates differ in as few degrees as possible and the search
can warm-start each strategy from its predecessor's optima.

Candidates that cannot be *placed* on the target network (a degree that
does not factor across the dimension sizes) are pruned up front via
:func:`~repro.workloads.parallelism.map_parallelism`; the located
:class:`~repro.utils.errors.MappingError` each one raises becomes the
prune reason. Additional pluggable rules (``rules=``) can veto candidates
programmatically — they are execution-side configuration and never
serialize.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro.topology.network import MultiDimNetwork
from repro.utils.errors import ConfigurationError, MappingError
from repro.utils.validation import check_positive_int
from repro.workloads.parallelism import Parallelism, map_parallelism

#: A pruning rule: given a candidate, return a non-empty reason string to
#: prune it, or ``""`` to keep it.
PruneRule = Callable[[Parallelism], str]


@dataclass(frozen=True)
class PrunedStrategy:
    """One candidate removed from the space, with the reason."""

    strategy: Parallelism
    reason: str

    def to_dict(self) -> dict:
        return {"strategy": self.strategy.to_dict(), "reason": self.reason}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "PrunedStrategy":
        return cls(
            strategy=Parallelism.from_dict(payload["strategy"]),
            reason=str(payload.get("reason", "")),
        )


@dataclass(frozen=True)
class StrategySpace:
    """Bounds of the factorization space the joint search enumerates.

    Attributes:
        max_tp: Largest tensor-parallel degree (``None`` = the node count).
        max_cp: Largest context-parallel degree (1 disables the axis).
        max_ep: Largest expert-parallel degree (1 disables the axis).
        max_pp: Largest pipeline-parallel degree (1 disables the axis).
        min_tp: Smallest tensor-parallel degree.
        power_of_two: Restrict every inner degree to powers of two (the
            degrees real systems deploy, and the only ones guaranteed to
            factor across power-of-two fabrics).
        rules: Extra pruning rules, applied after the bounds. Programmatic
            only — a space carrying custom rules cannot be serialized.
    """

    max_tp: int | None = None
    max_cp: int = 1
    max_ep: int = 1
    max_pp: int = 1
    min_tp: int = 1
    power_of_two: bool = True
    rules: tuple[PruneRule, ...] = ()

    def __post_init__(self) -> None:
        if self.max_tp is not None:
            check_positive_int(self.max_tp, "max_tp")
        check_positive_int(self.max_cp, "max_cp")
        check_positive_int(self.max_ep, "max_ep")
        check_positive_int(self.max_pp, "max_pp")
        check_positive_int(self.min_tp, "min_tp")
        object.__setattr__(self, "rules", tuple(self.rules))
        if self.max_tp is not None and self.min_tp > self.max_tp:
            raise ConfigurationError(
                f"min_tp {self.min_tp} exceeds max_tp {self.max_tp}"
            )

    def _axis_degrees(self, limit: int, num_npus: int, floor: int = 1) -> list[int]:
        """Candidate degrees for one axis, ascending."""
        upper = min(limit, num_npus)
        if self.power_of_two:
            degrees, degree = [], 1
            while degree <= upper:
                if degree >= floor:
                    degrees.append(degree)
                degree *= 2
            return degrees
        return [d for d in range(max(floor, 1), upper + 1) if num_npus % d == 0]

    def enumerate(
        self,
        num_npus: int,
        network: MultiDimNetwork | None = None,
    ) -> list[Parallelism]:
        """Valid strategies for ``num_npus``, in deterministic degree order."""
        return self.split(num_npus, network)[0]

    def split(
        self,
        num_npus: int,
        network: MultiDimNetwork | None = None,
    ) -> tuple[list[Parallelism], list[PrunedStrategy]]:
        """Enumerate the space: ``(kept, pruned)``.

        Every kept strategy's degrees multiply to ``num_npus`` exactly (dp
        absorbs the cofactor). With a ``network``, candidates that cannot
        be placed on it are pruned with their located
        :class:`~repro.utils.errors.MappingError` message; the caller's
        ``rules`` veto whatever else they like. The kept list is sorted by
        the (tp, cp, ep, pp) tuple, so neighbors differ minimally — the
        adjacency the warm-start chain exploits.
        """
        check_positive_int(num_npus, "num_npus")
        kept: list[Parallelism] = []
        pruned: list[PrunedStrategy] = []
        seen: set[tuple[int, ...]] = set()
        tp_limit = self.max_tp if self.max_tp is not None else num_npus
        for tp in self._axis_degrees(tp_limit, num_npus, floor=self.min_tp):
            for cp in self._axis_degrees(self.max_cp, num_npus):
                for ep in self._axis_degrees(self.max_ep, num_npus):
                    for pp in self._axis_degrees(self.max_pp, num_npus):
                        inner = tp * cp * ep * pp
                        if inner > num_npus or num_npus % inner != 0:
                            continue
                        candidate = Parallelism(
                            tp=tp, dp=num_npus // inner, pp=pp, cp=cp, ep=ep
                        )
                        if candidate.degrees in seen:
                            continue
                        seen.add(candidate.degrees)
                        reason = self._prune_reason(candidate, network)
                        if reason:
                            pruned.append(PrunedStrategy(candidate, reason))
                        else:
                            kept.append(candidate)
        order = sorted(range(len(kept)), key=lambda i: kept[i].degrees)
        return [kept[i] for i in order], pruned

    def _prune_reason(
        self,
        candidate: Parallelism,
        network: MultiDimNetwork | None,
    ) -> str:
        """Why ``candidate`` leaves the space, or ``""`` to keep it."""
        if network is not None:
            try:
                map_parallelism(network, candidate)
            except MappingError as exc:
                return f"unmappable: {exc}"
        for rule in self.rules:
            reason = rule(candidate)
            if reason:
                return reason
        return ""

    def to_dict(self) -> dict:
        """JSON-ready payload; inverse of :meth:`from_dict`.

        Custom ``rules`` are callables and cannot cross a wire boundary —
        mirroring how sweep specs reject custom cost models.
        """
        if self.rules:
            raise ConfigurationError(
                "a StrategySpace with custom pruning rules cannot be "
                "serialized; apply rules programmatically"
            )
        return {
            "max_tp": self.max_tp,
            "max_cp": self.max_cp,
            "max_ep": self.max_ep,
            "max_pp": self.max_pp,
            "min_tp": self.min_tp,
            "power_of_two": self.power_of_two,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StrategySpace":
        """Rebuild a space from :meth:`to_dict` output."""
        unknown = set(payload) - {
            "max_tp", "max_cp", "max_ep", "max_pp", "min_tp", "power_of_two",
        }
        if unknown:
            raise ConfigurationError(
                f"unknown strategy-space fields: {sorted(unknown)}"
            )
        max_tp = payload.get("max_tp")
        try:
            return cls(
                max_tp=None if max_tp is None else int(max_tp),
                max_cp=int(payload.get("max_cp", 1)),
                max_ep=int(payload.get("max_ep", 1)),
                max_pp=int(payload.get("max_pp", 1)),
                min_tp=int(payload.get("min_tp", 1)),
                power_of_two=bool(payload.get("power_of_two", True)),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed strategy-space payload: {exc}"
            ) from exc


def strategy_slug(strategy: Parallelism) -> str:
    """Stable compact identifier for one strategy (row/workload tagging)."""
    parts = [f"tp{strategy.tp}"]
    if strategy.cp != 1:
        parts.append(f"cp{strategy.cp}")
    if strategy.ep != 1:
        parts.append(f"ep{strategy.ep}")
    if strategy.pp != 1:
        parts.append(f"pp{strategy.pp}")
    parts.append(f"dp{strategy.dp}")
    return "-".join(parts)

"""Joint parallelization-strategy × topology co-optimization.

The TopoOpt-style outer loop over the bandwidth solver: enumerate valid
(tp, cp, ep, pp, dp) factorizations of the node count
(:mod:`repro.strategy.space`), solve each strategy's bandwidth column with
warm-start reuse within and across strategies through the shared result
cache (:mod:`repro.strategy.search`), and report the decision surface —
best strategy per budget, the strategy × bandwidth Pareto set, and
per-strategy binding-dimension attribution
(:mod:`repro.strategy.frontier`).

This package sits *above* the api/explore layers (it drives
``LibraService`` solves through :func:`~repro.explore.executor.solve_point`)
— nothing below may import it.
"""

from repro.strategy.frontier import (
    STRATEGY_FRONTIER_SCHEMA_VERSION,
    FrontierCell,
    StrategyAttribution,
    StrategyFrontier,
    build_frontier,
)
from repro.strategy.search import (
    StrategyRun,
    StrategySearchResult,
    base_workload_name,
    joint_search,
    tagged_workload,
)
from repro.strategy.space import (
    PrunedStrategy,
    StrategySpace,
    strategy_slug,
)

__all__ = [
    "STRATEGY_FRONTIER_SCHEMA_VERSION",
    "FrontierCell",
    "StrategyAttribution",
    "StrategyFrontier",
    "build_frontier",
    "StrategyRun",
    "StrategySearchResult",
    "base_workload_name",
    "joint_search",
    "tagged_workload",
    "PrunedStrategy",
    "StrategySpace",
    "strategy_slug",
]

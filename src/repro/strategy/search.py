"""Joint parallelization-strategy × bandwidth search.

:func:`joint_search` runs the TopoOpt-style outer grid: for every strategy
the :class:`~repro.strategy.space.StrategySpace` admits, solve the full
bandwidth-budget column through the existing cell primitive
(:func:`~repro.explore.executor.solve_point`), content-addressed in the
same :class:`~repro.explore.cache.ResultCache` the sweep pipeline uses.

Warm-start reuse happens on two axes:

* *within* a strategy, budgets solve ascending and each cell seeds the next
  (the PR 4 continuation discipline);
* *across* strategies, the first cell of each strategy seeds from the
  previous — adjacent — strategy's optimum at the same budget
  (``cross_warm=True``). The space enumerates strategies sorted by degree
  tuple precisely so neighbors differ minimally and those seeds survive
  the solver's trust check.

Every cell is cached under its content key, so re-running any single
strategy's column independently (``run_sweep`` over its points, or another
``joint_search``) replays bit-identical rows from the cache — the
determinism contract the serve tier's recovery path and the CI smoke job
lean on.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field, replace

from repro.core.results import Scheme
from repro.cost.model import CostModel
from repro.explore.cache import ResultCache
from repro.explore.executor import solve_point
from repro.explore.keys import point_key, resolve_topology
from repro.explore.records import ExplorationResult
from repro.explore.spec import ExplorationPoint
from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names
from repro.obs import trace as obs_trace
from repro.utils.errors import ConfigurationError, JobCancelled
from repro.workloads.parallelism import Parallelism
from repro.workloads.presets import build_workload
from repro.workloads.workload import Workload

from repro.strategy.space import PrunedStrategy, StrategySpace, strategy_slug

#: Separator between the preset name and the strategy slug in the tagged
#: per-strategy workload name (``"Turing-NLG#tp2-dp3"``).
STRATEGY_TAG = "#"

#: Structured-progress callback; dicts carry a ``"type"`` discriminator:
#: ``"plan"`` (once, after enumeration), ``"strategy"`` (start/done around
#: each strategy column), ``"cell"`` (one cell resolved — same shape the
#: sweep executor emits, so serve-tier progress adapters work unchanged).
EventCallback = Callable[[dict], None]


@dataclass(frozen=True)
class StrategyRun:
    """One strategy's solved bandwidth column, budget-ascending."""

    strategy: Parallelism
    results: tuple[ExplorationResult, ...]

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy.to_dict(),
            "results": [result.to_dict() for result in self.results],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StrategyRun":
        return cls(
            strategy=Parallelism.from_dict(payload["strategy"]),
            results=tuple(
                ExplorationResult.from_dict(row)
                for row in payload.get("results", ())
            ),
        )


@dataclass
class StrategySearchResult:
    """Everything one joint search produced.

    Attributes:
        workload: Base preset name the strategies were applied to.
        topology: Target topology (preset name or notation).
        scheme: Optimization scheme of every cell.
        budgets_gbps: The bandwidth column, ascending.
        runs: One :class:`StrategyRun` per kept strategy, in search order.
        pruned: Strategies the space removed, with reasons.
        diagnostics: Execution accounting (cache/warm/cross-warm splits).
    """

    workload: str
    topology: str
    scheme: Scheme
    budgets_gbps: tuple[float, ...]
    runs: list[StrategyRun]
    pruned: list[PrunedStrategy] = field(default_factory=list)
    diagnostics: dict = field(default_factory=dict)

    def rows(self) -> list[ExplorationResult]:
        """Every cell of the search, strategy-major, budget-ascending."""
        return [result for run in self.runs for result in run.results]


def tagged_workload(preset: str, num_npus: int, strategy: Parallelism) -> Workload:
    """The concrete workload of one (preset, strategy) candidate.

    The name is tagged with the strategy slug so result rows, continuation
    signatures, and frontier groupings separate cleanly per strategy; the
    content key already separates on the full canonical payload (which
    includes the parallelization degrees).
    """
    workload = build_workload(preset, num_npus, parallelism=strategy)
    return replace(
        workload, name=f"{workload.name}{STRATEGY_TAG}{strategy_slug(strategy)}"
    )


def base_workload_name(tagged: str) -> str:
    """Invert :func:`tagged_workload`'s naming for display/grouping."""
    return tagged.split(STRATEGY_TAG, 1)[0]


def joint_search(
    workload: str,
    topology: str,
    budgets_gbps: Sequence[float],
    *,
    space: StrategySpace | None = None,
    scheme: Scheme = Scheme.PERF_OPT,
    cost_model: CostModel | None = None,
    dim_caps_gbps: Iterable[tuple[int, float]] = (),
    cache: ResultCache | None = None,
    cross_warm: bool = True,
    continuation: bool = True,
    service=None,
    should_stop: Callable[[], bool] | None = None,
    on_event: EventCallback | None = None,
) -> StrategySearchResult:
    """Search strategy × bandwidth jointly; return every solved column.

    Args:
        workload: Preset workload name (the strategy axis re-materializes
            it per candidate via ``build_workload``).
        topology: Preset topology name or notation.
        budgets_gbps: Bandwidth budgets; solved ascending per strategy.
        space: The strategy space to enumerate; ``None`` uses the default
            (power-of-two TP splits only).
        scheme: Optimization scheme for every cell.
        cost_model: Cost table override; ``None`` = Table I defaults.
        dim_caps_gbps: Per-dimension caps applied to every cell.
        cache: Result cache; hits skip the solver, fresh solves store back.
        cross_warm: Seed each strategy's first cell from the previous
            strategy's same-budget optimum. ``False`` keeps strategies
            independent (the cold reference for the benchmark harness).
        continuation: Thread warm starts through each budget column.
            ``False`` solves every cell cold (benchmark baseline).
        service: Executing :class:`~repro.api.service.LibraService`;
            ``None`` uses the per-process default.
        should_stop: Cooperative-cancellation predicate, polled between
            cells. Raises :class:`~repro.utils.errors.JobCancelled` — after
            caching every completed cell, so a recovered job replays them.
        on_event: Structured-progress seam (see :data:`EventCallback`).

    Raises:
        ConfigurationError: empty budget column, or a space that prunes
            every candidate.
    """
    started = time.perf_counter()
    budgets = tuple(sorted(float(b) for b in budgets_gbps))
    if not budgets:
        raise ConfigurationError("joint search needs at least one budget")
    if len(set(budgets)) != len(budgets):
        raise ConfigurationError(f"duplicate budgets in {budgets}")
    space = space if space is not None else StrategySpace()
    network = resolve_topology(topology)
    strategies, pruned = space.split(network.num_npus, network)
    if not strategies:
        raise ConfigurationError(
            f"strategy space admits no candidate for {network.num_npus} NPUs "
            f"on {topology!r} ({len(pruned)} pruned)"
        )

    registry = obs_metrics.get_registry()
    candidates = registry.counter(
        obs_names.STRATEGY_CANDIDATES,
        "Joint-search candidate cells resolved, by outcome.",
        labels=("outcome",),
    )
    if pruned:
        candidates.labels(outcome="pruned").inc(len(pruned))

    def emit(payload: dict) -> None:
        if on_event is not None:
            on_event(payload)

    total = len(strategies) * len(budgets)
    emit({
        "type": "plan",
        "total": total,
        "strategies": len(strategies),
        "budgets": len(budgets),
        "pruned": len(pruned),
    })

    counts = {"solved": 0, "cached": 0, "error": 0}
    warm = {"accepted": 0, "rejected": 0, "cold": 0, "cross_accepted": 0}
    runs: list[StrategyRun] = []
    done = 0
    # Previous strategy's optimum per budget — the cross-strategy seeds.
    prev_optima: dict[float, tuple[float, ...]] = {}

    with obs_trace.get_tracer().span(
        "strategy.search",
        attrs={"workload": workload, "topology": topology, "cells": total},
    ) as search_span:
        for index, strategy in enumerate(strategies):
            emit({
                "type": "strategy",
                "status": "start",
                "index": index,
                "strategies": len(strategies),
                "label": str(strategy),
            })
            with obs_trace.get_tracer().span(
                "strategy.candidate", attrs={"label": str(strategy)}
            ) as span:
                results, optima, done = _solve_column(
                    workload, strategy, topology, budgets, scheme,
                    cost_model, tuple(dim_caps_gbps), cache,
                    prev_optima if cross_warm else {},
                    continuation, service, should_stop,
                    candidates, counts, warm, emit, done, total,
                    network.num_npus,
                )
                span.set("ok", all(r.ok for r in results))
            runs.append(StrategyRun(strategy=strategy, results=tuple(results)))
            prev_optima = optima
            emit({
                "type": "strategy",
                "status": "done",
                "index": index,
                "strategies": len(strategies),
                "label": str(strategy),
            })
        search_span.set("solved", counts["solved"])
        search_span.set("cached", counts["cached"])
        search_span.set("errors", counts["error"])

    elapsed = time.perf_counter() - started
    registry.histogram(
        obs_names.STRATEGY_SECONDS,
        "Wall time of one joint strategy × bandwidth search.",
    ).observe(elapsed)

    solves = warm["accepted"] + warm["rejected"] + warm["cold"]
    return StrategySearchResult(
        workload=workload,
        topology=topology,
        scheme=scheme,
        budgets_gbps=budgets,
        runs=runs,
        pruned=pruned,
        diagnostics={
            "strategies": len(strategies),
            "pruned": len(pruned),
            "cells": total,
            "solved": counts["solved"],
            "cached": counts["cached"],
            "errors": counts["error"],
            "warm_accepted": warm["accepted"],
            "warm_rejected": warm["rejected"],
            "cold_solves": warm["cold"],
            "cross_warm_accepted": warm["cross_accepted"],
            "warm_hit_rate": warm["accepted"] / solves if solves else 0.0,
            "search_s": elapsed,
        },
    )


def _solve_column(
    preset: str,
    strategy: Parallelism,
    topology: str,
    budgets: tuple[float, ...],
    scheme: Scheme,
    cost_model: CostModel | None,
    dim_caps: tuple[tuple[int, float], ...],
    cache: ResultCache | None,
    cross_seeds: Mapping[float, tuple[float, ...]],
    continuation: bool,
    service,
    should_stop: Callable[[], bool] | None,
    candidates,
    counts: dict,
    warm_counts: dict,
    emit: Callable[[dict], None],
    done: int,
    total: int,
    num_npus: int,
):
    """One strategy's budget column; returns (results, optima, done)."""
    concrete = tagged_workload(preset, num_npus, strategy)
    results: list[ExplorationResult] = []
    optima: dict[float, tuple[float, ...]] = {}
    warm: tuple[float, ...] | None = None
    for budget in budgets:
        if should_stop is not None and should_stop():
            raise JobCancelled("joint search cancelled between cells")
        point = ExplorationPoint(
            workload=concrete,
            topology=topology,
            total_bw_gbps=budget,
            scheme=scheme,
            cost_model=cost_model,
            dim_caps_gbps=dim_caps,
        )
        try:
            key = point_key(point)
        except Exception as exc:  # noqa: BLE001 — error containment
            result = ExplorationResult(
                point=point, error=f"{type(exc).__name__}: {exc}"
            )
            key = ""
        else:
            result = None
        cross_seeded = False
        if result is None:
            cached = cache.get(key) if cache is not None else None
            if cached is not None:
                result = replace(cached, point=point, from_cache=True)
            else:
                seed = warm if continuation else None
                if seed is None and continuation:
                    seed = cross_seeds.get(budget)
                    cross_seeded = seed is not None
                if scheme is Scheme.EQUAL_BW:
                    seed = None
                result = solve_point(
                    point, key=key, warm_start=seed,
                    should_stop=should_stop, service=service,
                )
                if cache is not None:
                    cache.put(key, result)
        status = (
            "cached" if result.from_cache
            else ("error" if not result.ok else "solved")
        )
        counts[status] = counts.get(status, 0) + 1
        candidates.labels(outcome=status).inc()
        if status == "solved":
            if result.warm_start == "accepted":
                warm_counts["accepted"] += 1
                if cross_seeded:
                    warm_counts["cross_accepted"] += 1
            elif result.warm_start.startswith("rejected"):
                warm_counts["rejected"] += 1
            else:
                warm_counts["cold"] += 1
        results.append(result)
        done += 1
        emit({
            "type": "cell",
            "done": done,
            "total": total,
            "label": point.label(),
            "key": result.key,
            "status": status,
            "warm_start": result.warm_start,
            "error": result.error,
        })
        if result.ok and scheme is not Scheme.EQUAL_BW:
            optima[budget] = result.bandwidths_gbps
            if continuation:
                warm = result.bandwidths_gbps
    return results, optima, done

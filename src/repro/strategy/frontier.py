"""The strategy frontier: what the joint search actually answers.

A :class:`StrategyFrontier` condenses one
:class:`~repro.strategy.search.StrategySearchResult` into the three
decision artifacts (stable JSON schema,
:data:`STRATEGY_FRONTIER_SCHEMA_VERSION`):

* **best strategy per budget** — which factorization wins at each
  bandwidth budget (the Fig. 21-style headline);
* **Pareto set across strategy × bandwidth** — the non-dominated
  (network cost, step time) cells over the whole joint grid, via the
  existing :func:`~repro.explore.pareto.frontier_indices`;
* **per-strategy attribution** — which network dimensions bind at each
  strategy's best point, answered read-only through the
  :mod:`repro.analysis` service path.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.results import Scheme
from repro.explore.pareto import frontier_indices
from repro.explore.records import ExplorationResult
from repro.utils.errors import ConfigurationError
from repro.workloads.parallelism import Parallelism

from repro.strategy.search import StrategyRun, StrategySearchResult
from repro.strategy.space import PrunedStrategy

#: Version of the frontier JSON payload. Bump when the shape changes.
STRATEGY_FRONTIER_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FrontierCell:
    """One referenced cell of the joint grid (a winner or a Pareto point)."""

    budget_gbps: float
    strategy: Parallelism
    key: str
    step_time_ms: float
    network_cost: float

    def to_dict(self) -> dict:
        return {
            "budget_gbps": self.budget_gbps,
            "strategy": self.strategy.to_dict(),
            "key": self.key,
            "step_time_ms": self.step_time_ms,
            "network_cost": self.network_cost,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FrontierCell":
        return cls(
            budget_gbps=float(payload["budget_gbps"]),
            strategy=Parallelism.from_dict(payload["strategy"]),
            key=str(payload.get("key", "")),
            step_time_ms=float(payload["step_time_ms"]),
            network_cost=float(payload["network_cost"]),
        )


@dataclass(frozen=True)
class StrategyAttribution:
    """Binding-dimension attribution of one strategy's best cell."""

    strategy: Parallelism
    budget_gbps: float
    binding_dims: tuple[int, ...]
    most_valuable_dim: int
    source: str

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy.to_dict(),
            "budget_gbps": self.budget_gbps,
            "binding_dims": list(self.binding_dims),
            "most_valuable_dim": self.most_valuable_dim,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StrategyAttribution":
        return cls(
            strategy=Parallelism.from_dict(payload["strategy"]),
            budget_gbps=float(payload["budget_gbps"]),
            binding_dims=tuple(int(d) for d in payload.get("binding_dims", ())),
            most_valuable_dim=int(payload["most_valuable_dim"]),
            source=str(payload.get("source", "")),
        )


@dataclass
class StrategyFrontier:
    """The joint search's decision surface, with a stable JSON schema."""

    workload: str
    topology: str
    scheme: Scheme
    budgets_gbps: tuple[float, ...]
    runs: tuple[StrategyRun, ...]
    best_per_budget: tuple[FrontierCell, ...] = ()
    pareto: tuple[FrontierCell, ...] = ()
    attributions: tuple[StrategyAttribution, ...] = ()
    pruned: tuple[PrunedStrategy, ...] = ()
    diagnostics: dict = field(default_factory=dict)

    def rows(self) -> list[ExplorationResult]:
        """Every cell, strategy-major, budget-ascending."""
        return [result for run in self.runs for result in run.results]

    def best_at(self, budget_gbps: float) -> FrontierCell:
        """The winning cell at one budget (exact-match lookup)."""
        for cell in self.best_per_budget:
            if cell.budget_gbps == float(budget_gbps):
                return cell
        raise ConfigurationError(
            f"no frontier winner at {budget_gbps} GB/s; "
            f"budgets: {list(self.budgets_gbps)}"
        )

    def to_dict(self) -> dict:
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        return {
            "schema_version": STRATEGY_FRONTIER_SCHEMA_VERSION,
            "workload": self.workload,
            "topology": self.topology,
            "scheme": self.scheme.value,
            "budgets_gbps": list(self.budgets_gbps),
            "runs": [run.to_dict() for run in self.runs],
            "best_per_budget": [cell.to_dict() for cell in self.best_per_budget],
            "pareto": [cell.to_dict() for cell in self.pareto],
            "attributions": [attr.to_dict() for attr in self.attributions],
            "pruned": [entry.to_dict() for entry in self.pruned],
            "diagnostics": dict(self.diagnostics),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StrategyFrontier":
        """Rebuild a frontier from :meth:`to_dict` output."""
        from repro.api.registry import resolve_scheme

        version = payload.get(
            "schema_version", STRATEGY_FRONTIER_SCHEMA_VERSION
        )
        if version != STRATEGY_FRONTIER_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unreadable strategy-frontier payload: schema_version "
                f"{version!r} (this build reads "
                f"{STRATEGY_FRONTIER_SCHEMA_VERSION})"
            )
        try:
            return cls(
                workload=str(payload["workload"]),
                topology=str(payload["topology"]),
                scheme=resolve_scheme(payload["scheme"]),
                budgets_gbps=tuple(
                    float(b) for b in payload.get("budgets_gbps", ())
                ),
                runs=tuple(
                    StrategyRun.from_dict(run)
                    for run in payload.get("runs", ())
                ),
                best_per_budget=tuple(
                    FrontierCell.from_dict(cell)
                    for cell in payload.get("best_per_budget", ())
                ),
                pareto=tuple(
                    FrontierCell.from_dict(cell)
                    for cell in payload.get("pareto", ())
                ),
                attributions=tuple(
                    StrategyAttribution.from_dict(attr)
                    for attr in payload.get("attributions", ())
                ),
                pruned=tuple(
                    PrunedStrategy.from_dict(entry)
                    for entry in payload.get("pruned", ())
                ),
                diagnostics=dict(payload.get("diagnostics", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed strategy-frontier payload: {exc}"
            ) from exc


def build_frontier(
    search: StrategySearchResult,
    *,
    attribution: bool = True,
    service=None,
) -> StrategyFrontier:
    """Condense a search result into its :class:`StrategyFrontier`.

    ``attribution=True`` analyzes each strategy's best cell (inline, no
    solver) through the service's analyze path to report which dimensions
    bind; errors there degrade to a missing attribution entry, never a
    frontier failure.
    """
    cells: list[tuple[Parallelism, ExplorationResult]] = [
        (run.strategy, result)
        for run in search.runs
        for result in run.results
        if result.ok
    ]

    winners: dict[float, tuple[Parallelism, ExplorationResult]] = {}
    for strategy, result in cells:
        budget = result.point.total_bw_gbps
        incumbent = winners.get(budget)
        if incumbent is None or result.step_time_ms < incumbent[1].step_time_ms:
            winners[budget] = (strategy, result)
    best = tuple(
        _cell(strategy, result)
        for _, (strategy, result) in sorted(winners.items())
    )

    coordinates = [
        (result.network_cost, result.step_time_ms) for _, result in cells
    ]
    pareto = tuple(
        _cell(*cells[i]) for i in frontier_indices(coordinates)
    )

    attributions: list[StrategyAttribution] = []
    if attribution:
        for run in search.runs:
            entry = _attribute_best(run, service)
            if entry is not None:
                attributions.append(entry)

    return StrategyFrontier(
        workload=search.workload,
        topology=search.topology,
        scheme=search.scheme,
        budgets_gbps=search.budgets_gbps,
        runs=tuple(search.runs),
        best_per_budget=best,
        pareto=pareto,
        attributions=tuple(attributions),
        pruned=tuple(search.pruned),
        diagnostics=dict(search.diagnostics),
    )


def _cell(strategy: Parallelism, result: ExplorationResult) -> FrontierCell:
    return FrontierCell(
        budget_gbps=result.point.total_bw_gbps,
        strategy=strategy,
        key=result.key,
        step_time_ms=result.step_time_ms,
        network_cost=result.network_cost,
    )


def _attribute_best(run: StrategyRun, service) -> StrategyAttribution | None:
    """Binding-dim attribution of one strategy's best solved cell."""
    from repro.api.requests import AnalyzeRequest
    from repro.api.service import get_service
    from repro.explore.executor import point_scenario

    solved = [r for r in run.results if r.ok and r.bandwidths_gbps]
    if not solved:
        return None
    best = min(solved, key=lambda r: r.step_time_ms)
    try:
        response = (service if service is not None else get_service()).submit(
            AnalyzeRequest(
                scenario=point_scenario(best.point),
                bandwidths_gbps=best.bandwidths_gbps,
                scheme=best.point.scheme,
            )
        )
    except Exception:  # noqa: BLE001 — attribution must not fail the frontier
        return None
    return StrategyAttribution(
        strategy=run.strategy,
        budget_gbps=best.point.total_bw_gbps,
        binding_dims=response.report.binding_dims,
        most_valuable_dim=response.report.most_valuable_dim,
        source=response.source,
    )

"""Vectorized SLSQP kernel: matrix-form constraint blocks + a slim driver.

The closure-based solver path (``solver._scipy_constraints``) hands SLSQP
one Python callable per epigraph constraint — hundreds for group objectives
at GPT-3/MSFT-1T scale — and rebuilds them for every multi-start seed. This
module replaces that inner loop with three stacked blocks, built **once**
per compiled program and shared across all seeds and both schemes:

* **equality block** — the designer's equality rows as ``A_eq · x = b_eq``;
* **linear inequality block** — inequality rows *and* every max-epigraph
  row ``u ≥ const + Σ w·aux`` stacked into ``A_in · x ≥ b_in`` (the max
  rows are sparse: one ``+1`` and a few ``-w`` entries in the aux columns);
* **comm block** — the hyperbolic rows ``aux ≥ coeff / B[dim]`` as gathered
  index/coefficient arrays with one vectorized value/Jacobian evaluation.

Two execution paths consume the blocks:

1. :func:`minimize_slsqp` — a reverse-communication driver around scipy's
   compiled SLSQP core (``scipy.optimize._slsqplib``, scipy ≥ 1.16). It is
   a faithful transcription of ``scipy.optimize._slsqp_py._minimize_slsqp``
   minus the per-iteration ``ScalarFunction`` / per-constraint dict
   machinery: constraint values and normals are written straight into the
   solver's work arrays by the blocks. Same iterates, same exit modes, a
   fraction of the Python overhead.
2. :meth:`ConstraintBlocks.scipy_constraints` — the same blocks as two
   vector-valued constraint dicts for ``scipy.optimize.minimize``, used
   when the private core is unavailable (older/newer scipy layouts). The
   availability switch is :data:`HAS_FAST_SLSQP`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

try:  # scipy >= 1.16 ships the SLSQP core as a C extension with this ABI.
    from scipy.optimize._slsqplib import slsqp as _slsqp_core

    HAS_FAST_SLSQP = True
except ImportError:  # pragma: no cover - depends on installed scipy
    _slsqp_core = None
    HAS_FAST_SLSQP = False

#: SLSQP exit modes (mirrors scipy's table; mode 0 is success).
EXIT_MESSAGES = {
    -1: "Gradient evaluation required (g & a)",
    0: "Optimization terminated successfully",
    1: "Function evaluation required (f & c)",
    2: "More equality constraints than independent variables",
    3: "More than 3*n iterations in LSQ subproblem",
    4: "Inequality constraints incompatible",
    5: "Singular matrix E in LSQ subproblem",
    6: "Singular matrix C in LSQ subproblem",
    7: "Rank-deficient equality constraint subproblem HFTI",
    8: "Positive directional derivative for linesearch",
    9: "Iteration limit reached",
}

#: Guard against division blow-up at B = 0 (matches the closure path).
_TINY = 1e-12


@dataclass
class ConstraintBlocks:
    """Stacked matrix form of one compiled program + designer constraint set.

    Variables are ``x = [B_scaled (num_dims), aux (num_aux)]``. Row order is
    equalities, then linear inequalities (designer rows followed by max
    rows), then comm rows — the same constraint *set* the closure path
    builds, assembled once and evaluated vectorized.
    """

    num_vars: int
    a_eq: np.ndarray  # (num_eq, num_vars)
    b_eq: np.ndarray  # (num_eq,)
    a_in: np.ndarray  # (num_lin, num_vars) — rows satisfy a_in · x >= b_in
    b_in: np.ndarray  # (num_lin,)
    comm_aux: np.ndarray  # (num_comm,) variable index of each row's aux
    comm_dim: np.ndarray  # (num_comm,) variable index of each row's bandwidth
    comm_coeff: np.ndarray  # (num_comm,) scaled traffic coefficients
    lower: np.ndarray  # (num_vars,) box lower bounds (np.inf never)
    upper: np.ndarray  # (num_vars,) box upper bounds (np.inf = open)
    _meq: int = field(init=False, repr=False)
    _nlin: int = field(init=False, repr=False)
    _comm_rows: np.ndarray = field(init=False, repr=False)
    _scratch: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._meq = len(self.b_eq)
        self._nlin = len(self.b_in)
        offset = self._meq + self._nlin
        self._comm_rows = offset + np.arange(len(self.comm_aux))
        # Per-call scratch for the comm block (instances are not shared
        # across threads; the solver is single-threaded per process).
        self._scratch = np.empty(len(self.comm_aux))
        # The overwhelmingly common designer set is one budget equality;
        # special-case it to scalar math in the per-iteration hot path.
        self._eq_row = self.a_eq[0] if self._meq == 1 else None
        self._eq_shift = float(self.b_eq[0]) if self._meq == 1 else 0.0

    @property
    def num_eq(self) -> int:
        return self._meq

    @property
    def num_rows(self) -> int:
        return self._meq + self._nlin + len(self.comm_aux)

    # -- fast-driver interface (in-place writes into SLSQP work arrays) ------

    def values_into(self, d: np.ndarray, x: np.ndarray) -> None:
        """Write every constraint's value at ``x`` into ``d`` (length m)."""
        meq, nlin = self._meq, self._nlin
        if self._eq_row is not None:
            d[0] = np.dot(self._eq_row, x) - self._eq_shift
        elif meq:
            d[:meq] = self.a_eq @ x - self.b_eq
        if nlin:
            d[meq:meq + nlin] = self.a_in @ x - self.b_in
        if self.comm_aux.size:
            scratch = self._scratch
            np.take(x, self.comm_dim, out=scratch)
            np.maximum(scratch, _TINY, out=scratch)
            np.divide(self.comm_coeff, scratch, out=scratch)
            np.subtract(
                np.take(x, self.comm_aux), scratch, out=d[meq + nlin:]
            )

    def init_normals(self, c: np.ndarray) -> None:
        """Write the constant part of the constraint Jacobian into ``c``.

        Everything except the comm rows' bandwidth columns is constant, so
        the per-iteration update (:meth:`normals_into`) only rewrites one
        entry per comm row.
        """
        meq, nlin = self._meq, self._nlin
        if meq:
            c[:meq, :] = self.a_eq
        if nlin:
            c[meq:meq + nlin, :] = self.a_in
        if self.comm_aux.size:
            c[meq + nlin:, :] = 0.0
            c[self._comm_rows, self.comm_aux] = 1.0

    def normals_into(self, c: np.ndarray, x: np.ndarray) -> None:
        """Refresh the state-dependent Jacobian entries at ``x``."""
        if self.comm_aux.size:
            scratch = self._scratch
            np.take(x, self.comm_dim, out=scratch)
            np.maximum(scratch, _TINY, out=scratch)
            np.multiply(scratch, scratch, out=scratch)
            np.divide(self.comm_coeff, scratch, out=scratch)
            c[self._comm_rows, self.comm_dim] = scratch

    # -- scipy.optimize.minimize fallback ------------------------------------

    def scipy_constraints(self) -> list[dict]:
        """The blocks as at most two vector-valued SLSQP constraint dicts."""
        rows: list[dict] = []
        if self.num_eq:
            a_eq, b_eq = self.a_eq, self.b_eq

            rows.append(
                {
                    "type": "eq",
                    "fun": lambda x: a_eq @ x - b_eq,
                    "jac": lambda x: a_eq,
                }
            )
        num_ineq = len(self.b_in) + len(self.comm_aux)
        if num_ineq:
            nlin = len(self.b_in)
            jac = np.zeros((num_ineq, self.num_vars))
            jac[:nlin, :] = self.a_in
            comm_rows = nlin + np.arange(len(self.comm_aux))
            jac[comm_rows, self.comm_aux] = 1.0

            def fun(x: np.ndarray) -> np.ndarray:
                values = np.empty(num_ineq)
                values[:nlin] = self.a_in @ x - self.b_in
                values[nlin:] = x[self.comm_aux] - self.comm_coeff / np.maximum(
                    x[self.comm_dim], _TINY
                )
                return values

            def jacobian(x: np.ndarray) -> np.ndarray:
                jac[comm_rows, self.comm_dim] = self.comm_coeff / np.maximum(
                    x[self.comm_dim], _TINY
                ) ** 2
                return jac

            rows.append({"type": "ineq", "fun": fun, "jac": jacobian})
        return rows

    def scipy_bounds(self) -> list[tuple[float, float | None]]:
        """Old-style bounds for ``scipy.optimize.minimize``."""
        return [
            (float(lo), None if np.isinf(up) else float(up))
            for lo, up in zip(self.lower, self.upper)
        ]


@dataclass(frozen=True)
class KernelResult:
    """Outcome of one SLSQP run through either execution path."""

    x: np.ndarray
    fun: float
    nit: int
    status: int
    success: bool
    message: str


def minimize_slsqp(
    objective: Callable[[np.ndarray], float],
    gradient: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    blocks: ConstraintBlocks,
    maxiter: int,
    ftol: float,
) -> KernelResult:
    """One SLSQP run over vectorized blocks, bypassing scipy's wrappers.

    Transcribes the reverse-communication loop of scipy's
    ``_minimize_slsqp`` (state dict, workspace sizing, nan convention for
    open bounds) while writing constraint values/normals in place via the
    blocks. Falls back to ``scipy.optimize.minimize`` when the compiled
    core is unavailable.
    """
    if not HAS_FAST_SLSQP:
        return _minimize_slsqp_fallback(
            objective, gradient, x0, blocks, maxiter, ftol
        )

    n = len(x0)
    m, meq = blocks.num_rows, blocks.num_eq
    mineq = m - meq
    x = np.clip(np.asarray(x0, dtype=np.float64), blocks.lower, blocks.upper)

    xl = blocks.lower.astype(np.float64).copy()
    xu = blocks.upper.astype(np.float64).copy()
    xl[~np.isfinite(xl)] = np.nan  # the core marks open bounds with nan
    xu[~np.isfinite(xu)] = np.nan

    state = {
        "acc": float(ftol),
        "alpha": 0.0,
        "f0": 0.0,
        "gs": 0.0,
        "h1": 0.0,
        "h2": 0.0,
        "h3": 0.0,
        "h4": 0.0,
        "t": 0.0,
        "t0": 0.0,
        "tol": 10.0 * float(ftol),
        "exact": 0,
        "inconsistent": 0,
        "reset": 0,
        "iter": 0,
        "itermax": int(maxiter),
        "line": 0,
        "m": m,
        "meq": meq,
        "mode": 0,
        "n": n,
    }

    indices = np.zeros(max(m + 2 * n + 2, 1), dtype=np.int32)
    buffer_size = (
        n * (n + 1) // 2
        + 3 * m * n
        - (m + 5 * n + 7) * meq
        + 9 * m
        + 8 * n * n
        + 35 * n
        + meq * meq
        + 28
    )
    if mineq == 0:
        buffer_size += 2 * n * (n + 1)
    buffer = np.zeros(max(buffer_size, 1), dtype=np.float64)
    mult = np.zeros(max(1, m + 2 * n + 2), dtype=np.float64)

    c = np.zeros((max(1, m), n), dtype=np.float64, order="F")
    d = np.zeros(max(1, m), dtype=np.float64)
    values_into = blocks.values_into
    normals_into = blocks.normals_into
    blocks.init_normals(c)
    normals_into(c, x)
    values_into(d, x)
    fx = float(objective(x))
    g = np.asarray(gradient(x), dtype=np.float64)

    while True:
        _slsqp_core(state, fx, g, c, d, x, mult, xl, xu, buffer, indices)
        mode = state["mode"]
        if mode == 1:  # objective and constraint values required
            fx = float(objective(x))
            values_into(d, x)
        elif mode == -1:  # gradients and constraint normals required
            g = np.asarray(gradient(x), dtype=np.float64)
            normals_into(c, x)
        else:
            break

    return KernelResult(
        x=x,
        fun=fx,
        nit=state["iter"],
        status=mode,
        success=(mode == 0),
        message=EXIT_MESSAGES.get(mode, f"exit mode {mode}"),
    )


def _minimize_slsqp_fallback(
    objective: Callable[[np.ndarray], float],
    gradient: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    blocks: ConstraintBlocks,
    maxiter: int,
    ftol: float,
) -> KernelResult:
    """Same vectorized blocks through the public scipy entry point."""
    from scipy.optimize import minimize

    result = minimize(
        objective,
        x0,
        jac=gradient,
        method="SLSQP",
        bounds=blocks.scipy_bounds(),
        constraints=blocks.scipy_constraints(),
        options={"maxiter": maxiter, "ftol": ftol},
    )
    return KernelResult(
        x=result.x,
        fun=float(result.fun),
        nit=result.nit,
        status=result.status,
        success=bool(result.success),
        message=str(result.message),
    )

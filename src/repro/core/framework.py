"""The LIBRA framework facade (Fig. 3).

:class:`Libra` binds together every input of the paper's block diagram —
target workloads, network shape, training loop, compute model, and network
cost model — and exposes the two optimization schemes plus the EqualBW
baseline.

Since the :mod:`repro.api` layer landed, ``Libra`` doubles as the *compiled
engine* behind the declarative API: :meth:`repro.api.Scenario.compile`
produces one, and :class:`repro.api.LibraService` memoizes them on the
scenario's canonical key. New consumers should prefer stating problems as
scenarios; the imperative facade below remains fully supported for
step-by-step sessions. A typical session::

    libra = Libra(network=get_topology("4D-4K"))
    libra.add_workload(build_workload("GPT-3", 4096))
    constraints = libra.constraints().with_total_bandwidth(gbps(500))
    best = libra.optimize(Scheme.PERF_OPT, constraints)
    baseline = libra.equal_bw_point(gbps(500))
    speedup = best.speedup_over(baseline)
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.core.constraints import ConstraintSet
from repro.training.expr import Expr, Sum, simplify, vector_evaluator
from repro.core.results import DesignPoint, Scheme
from repro.core.solver import (
    SolverResult,
    minimize_time_cost_product,
    minimize_training_time,
)
from repro.cost.estimator import cost_rates, network_cost
from repro.cost.model import CostModel, default_cost_model
from repro.topology.network import MultiDimNetwork
from repro.training.compute import ComputeModel, a100_compute_model
from repro.training.estimator import training_time_expression
from repro.training.loops import NoOverlapLoop, TrainingLoop
from repro.utils.errors import ConfigurationError, OptimizationError
from repro.workloads.workload import Workload


class Libra:
    """Workload-aware multi-dimensional network bandwidth optimizer.

    Args:
        network: Target multi-dimensional network shape.
        cost_model: Dollar-cost table; defaults to Table I.
        compute_model: NPU compute rate; defaults to the paper's A100.
        loop: Training loop; defaults to the no-overlap loop of Fig. 5(b).
        in_network_dims: Dimensions with in-network collective offload.
    """

    def __init__(
        self,
        network: MultiDimNetwork,
        cost_model: CostModel | None = None,
        compute_model: ComputeModel | None = None,
        loop: TrainingLoop | None = None,
        in_network_dims: Sequence[int] = (),
    ):
        self.network = network
        self.cost_model = cost_model or default_cost_model()
        self.compute_model = compute_model or a100_compute_model()
        self.loop = loop or NoOverlapLoop()
        self.in_network_dims = frozenset(in_network_dims)
        self._workloads: list[tuple[Workload, float]] = []
        self._expr_cache: dict[str, Expr] = {}

    # -- workload management -------------------------------------------------

    def add_workload(self, workload: Workload, weight: float = 1.0) -> "Libra":
        """Register a target workload with an importance weight (Sec. IV-F)."""
        if weight <= 0:
            raise ConfigurationError(f"workload weight must be positive, got {weight}")
        if workload.parallelism.total_npus != self.network.num_npus:
            raise ConfigurationError(
                f"{workload.name} occupies {workload.parallelism.total_npus} NPUs "
                f"but the network has {self.network.num_npus}"
            )
        if any(existing.name == workload.name for existing, _ in self._workloads):
            raise ConfigurationError(f"workload {workload.name!r} already added")
        self._workloads.append((workload, weight))
        return self

    @property
    def workloads(self) -> list[Workload]:
        return [workload for workload, _ in self._workloads]

    def _require_workloads(self) -> None:
        if not self._workloads:
            raise ConfigurationError("add at least one workload before optimizing")

    # -- modeling --------------------------------------------------------------

    def training_expression(self, workload: Workload) -> Expr:
        """Symbolic step time of one workload on this network (cached)."""
        cached = self._expr_cache.get(workload.name)
        if cached is None:
            cached = training_time_expression(
                workload,
                self.network,
                compute_model=self.compute_model,
                loop=self.loop,
                in_network_dims=self.in_network_dims,
            )
            self._expr_cache[workload.name] = cached
        return cached

    def combined_expression(self) -> Expr:
        """Weighted sum of all target workloads' step times (group objective)."""
        self._require_workloads()
        children = tuple(
            self.training_expression(workload) for workload, _ in self._workloads
        )
        weights = tuple(weight for _, weight in self._workloads)
        return simplify(Sum(children, weights))

    def constraints(self) -> ConstraintSet:
        """A fresh constraint set sized for this network."""
        return ConstraintSet(self.network.num_dims)

    # -- evaluation --------------------------------------------------------------

    def evaluate(
        self,
        bandwidths: Sequence[float],
        scheme: Scheme = Scheme.EQUAL_BW,
        solver_message: str = "",
    ) -> DesignPoint:
        """Evaluate an explicit bandwidth vector into a design point."""
        self._require_workloads()
        if len(bandwidths) != self.network.num_dims:
            raise ConfigurationError(
                f"expected {self.network.num_dims} bandwidths, got {len(bandwidths)}"
            )
        # vector_evaluator flattens each expression once per process; sweep
        # baselines evaluating thousands of points hit the memoized arrays.
        # Its np.float64 results are coerced to native floats so design
        # points stay json.dumps-able without a custom encoder.
        step_times = {
            workload.name: float(
                vector_evaluator(self.training_expression(workload))(bandwidths)
            )
            for workload, _ in self._workloads
        }
        return DesignPoint(
            scheme=scheme,
            bandwidths=tuple(float(b) for b in bandwidths),
            step_times=step_times,
            network_cost=float(
                network_cost(self.network, bandwidths, self.cost_model)
            ),
            solver_message=solver_message,
        )

    def equal_bw_point(self, total_bandwidth: float) -> DesignPoint:
        """The EqualBW baseline: the budget split evenly across dimensions."""
        if total_bandwidth <= 0:
            raise ConfigurationError(
                f"total bandwidth must be positive, got {total_bandwidth}"
            )
        per_dim = total_bandwidth / self.network.num_dims
        return self.evaluate(
            [per_dim] * self.network.num_dims, scheme=Scheme.EQUAL_BW
        )

    # -- optimization ---------------------------------------------------------

    def optimize(
        self,
        scheme: Scheme,
        constraints: ConstraintSet,
        kernel: str = "vectorized",
        warm_start: Sequence[float] | None = None,
        max_starts: int | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> DesignPoint:
        """Run one optimization scheme under the given constraints.

        ``kernel`` selects the solver's inner loop: ``"vectorized"``
        (matrix-form constraint blocks, default) or ``"closures"`` (the
        per-constraint reference path kept for equivalence checks and
        benchmarking). ``warm_start`` (bytes/s) is a prior optimum used as
        a continuation seed; ``max_starts`` caps the multi-start family;
        ``should_stop`` is the solver's cooperative cancellation predicate
        (polled between multi-start seeds).
        """
        point, _ = self.optimize_result(
            scheme, constraints, kernel=kernel,
            warm_start=warm_start, max_starts=max_starts,
            should_stop=should_stop,
        )
        return point

    def optimize_result(
        self,
        scheme: Scheme,
        constraints: ConstraintSet,
        kernel: str = "vectorized",
        warm_start: Sequence[float] | None = None,
        max_starts: int | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> tuple[DesignPoint, SolverResult | None]:
        """:meth:`optimize`, also returning the raw solver diagnostics.

        The second element is ``None`` for the EqualBW baseline (no solver
        runs); otherwise it is the :class:`SolverResult` whose ``starts``
        and ``warm_start`` fields feed the service's response diagnostics.
        """
        self._require_workloads()
        if constraints.num_dims != self.network.num_dims:
            raise ConfigurationError(
                f"constraint set covers {constraints.num_dims} dims, "
                f"network has {self.network.num_dims}"
            )
        if scheme is Scheme.EQUAL_BW:
            if constraints.total_bandwidth is None:
                raise OptimizationError("EqualBW needs a total-bandwidth budget")
            return self.equal_bw_point(constraints.total_bandwidth), None

        expression = self.combined_expression()
        if scheme is Scheme.PERF_OPT:
            result = minimize_training_time(
                expression, constraints, kernel=kernel,
                warm_start=warm_start, max_starts=max_starts,
                should_stop=should_stop,
            )
        elif scheme is Scheme.PERF_PER_COST_OPT:
            rates = np.asarray(cost_rates(self.network, self.cost_model))
            rates_total = rates * self.network.num_npus
            result = minimize_time_cost_product(
                expression, constraints, rates_total, kernel=kernel,
                warm_start=warm_start, max_starts=max_starts,
                should_stop=should_stop,
            )
        else:
            raise ConfigurationError(f"unknown scheme {scheme!r}")
        point = self.evaluate(
            result.bandwidths, scheme=scheme, solver_message=result.message
        )
        return point, result

    # -- reporting ---------------------------------------------------------------

    def describe(self) -> str:
        """Multi-line summary of the configured inputs (Fig. 3's obrounds)."""
        lines = [
            f"network: {self.network}",
            f"cost model: {self.cost_model.name}",
            f"compute model: {self.compute_model.name} "
            f"({self.compute_model.effective_flops / 1e12:.0f} TFLOPS effective)",
            f"training loop: {self.loop.name}",
        ]
        if self.in_network_dims:
            lines.append(f"in-network dims: {sorted(self.in_network_dims)}")
        for workload, weight in self._workloads:
            lines.append(f"workload: {workload} (weight {weight:g})")
        return "\n".join(lines)

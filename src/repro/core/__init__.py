"""LIBRA's core: symbolic time expressions, constraints, solver, facade.

This package is the paper's primary contribution (Sec. IV):

* :mod:`repro.training.expr` — training time as a symbolic function of the
  bandwidth vector.
* :mod:`repro.core.constraints` — the designer constraint DSL (Sec. IV-F).
* :mod:`repro.core.solver` — the constrained optimizer replacing Gurobi.
* :class:`Libra` — the framework facade of Fig. 3.
* :func:`run_group_study` — the multi-workload protocol of Fig. 17.
"""

from repro.core.constraints import (
    DEFAULT_MIN_BANDWIDTH,
    ConstraintSet,
    LinearConstraint,
)
from repro.training.expr import (
    CommTerm,
    Const,
    Expr,
    MaxExpr,
    Sum,
    VectorEvaluator,
    count_nodes,
    simplify,
    vector_evaluator,
)
from repro.core.framework import Libra
from repro.core.group import GroupStudyResult, run_group_study
from repro.core.kernel import HAS_FAST_SLSQP, ConstraintBlocks, KernelResult
from repro.core.results import DesignPoint, Scheme
from repro.core.sensitivity import (
    OptimalityCertificate,
    SensitivityReport,
    bandwidth_sensitivity,
    certify_optimum,
    one_sided_gap,
)
from repro.core.solver import (
    KERNELS,
    CompiledProgram,
    SolverResult,
    build_constraint_blocks,
    build_seeds,
    clear_solver_caches,
    compile_expression,
    minimize_time_cost_product,
    minimize_training_time,
    traffic_totals,
)

__all__ = [
    "DEFAULT_MIN_BANDWIDTH",
    "ConstraintSet",
    "LinearConstraint",
    "CommTerm",
    "Const",
    "Expr",
    "MaxExpr",
    "Sum",
    "count_nodes",
    "simplify",
    "Libra",
    "GroupStudyResult",
    "run_group_study",
    "DesignPoint",
    "OptimalityCertificate",
    "SensitivityReport",
    "bandwidth_sensitivity",
    "certify_optimum",
    "one_sided_gap",
    "Scheme",
    "CompiledProgram",
    "ConstraintBlocks",
    "HAS_FAST_SLSQP",
    "KERNELS",
    "KernelResult",
    "SolverResult",
    "VectorEvaluator",
    "build_constraint_blocks",
    "build_seeds",
    "clear_solver_caches",
    "compile_expression",
    "minimize_time_cost_product",
    "minimize_training_time",
    "traffic_totals",
    "vector_evaluator",
]

"""Designer constraint DSL (Sec. IV-F).

LIBRA accepts flexible linear constraints on the bandwidth vector, e.g.:

* total bandwidth per NPU: ``Σ B_i = 1000 GB/s``,
* per-dimension caps: ``B_4 ≤ 50 GB/s``,
* relations: ``B_1 + B_2 = 500 GB/s``, ``B_1 ≥ B_2 ≥ B_3``,
* ranges: ``25 ≤ B_3 ≤ 150 GB/s``.

All of these are rows of a single canonical form ``lower ≤ cᵀB ≤ upper``,
which :class:`ConstraintSet` accumulates and hands to the solver. Bandwidths
are in bytes/s everywhere; benchmarks convert from GB/s at the boundary.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.utils.errors import ConfigurationError, OptimizationError
from repro.utils.units import GBPS

#: Dimensions may never be sized to zero — a zero-bandwidth dimension would
#: make collective times infinite. 0.01 GB/s is far below any design point
#: of interest and keeps the solver away from the singularity at B = 0.
DEFAULT_MIN_BANDWIDTH: float = 0.01 * GBPS

#: Upper sanity bound (1 PB/s) used only when the designer supplies no cap.
DEFAULT_MAX_BANDWIDTH: float = 1e15


@dataclass(frozen=True)
class LinearConstraint:
    """One row ``lower ≤ coeffs · B ≤ upper`` (either side may be open)."""

    coeffs: tuple[float, ...]
    lower: float | None = None
    upper: float | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.lower is None and self.upper is None:
            raise ConfigurationError(f"constraint {self.label!r} has neither bound")
        if (
            self.lower is not None
            and self.upper is not None
            and self.lower > self.upper
        ):
            raise ConfigurationError(
                f"constraint {self.label!r} has lower {self.lower} > upper {self.upper}"
            )
        if not any(self.coeffs):
            raise ConfigurationError(f"constraint {self.label!r} has all-zero coefficients")

    @property
    def is_equality(self) -> bool:
        return self.lower is not None and self.lower == self.upper

    def violation(self, bandwidths: Sequence[float]) -> float:
        """Amount by which ``bandwidths`` violates this row (0 when satisfied)."""
        value = float(np.dot(self.coeffs, bandwidths))
        worst = 0.0
        if self.lower is not None:
            worst = max(worst, self.lower - value)
        if self.upper is not None:
            worst = max(worst, value - self.upper)
        return worst


class ConstraintSet:
    """Accumulates linear constraints and per-dimension bounds.

    The builder methods return ``self`` so constraints chain fluently::

        ConstraintSet(4).with_total_bandwidth(gbps(1000)).with_dim_cap(3, gbps(50))
    """

    def __init__(self, num_dims: int, min_bandwidth: float = DEFAULT_MIN_BANDWIDTH):
        if num_dims < 1:
            raise ConfigurationError(f"num_dims must be >= 1, got {num_dims}")
        if min_bandwidth <= 0:
            raise ConfigurationError(f"min_bandwidth must be positive, got {min_bandwidth}")
        self.num_dims = num_dims
        self.min_bandwidth = min_bandwidth
        self.rows: list[LinearConstraint] = []
        self._lower_bounds = np.full(num_dims, min_bandwidth)
        self._upper_bounds = np.full(num_dims, DEFAULT_MAX_BANDWIDTH)
        self.total_bandwidth: float | None = None
        self._feasible_point: np.ndarray | None = None
        self._feasible_key: tuple | None = None

    # -- builders ------------------------------------------------------------

    def with_total_bandwidth(self, total: float, equality: bool = True) -> "ConstraintSet":
        """Budget the aggregate per-NPU bandwidth: ``Σ B_i = total`` (or ≤)."""
        if total <= 0:
            raise ConfigurationError(f"total bandwidth must be positive, got {total}")
        if total < self.num_dims * self.min_bandwidth:
            raise ConfigurationError(
                f"total bandwidth {total} cannot cover {self.num_dims} dimensions "
                f"at the minimum of {self.min_bandwidth} each"
            )
        coeffs = tuple(1.0 for _ in range(self.num_dims))
        lower = total if equality else None
        self.rows.append(
            LinearConstraint(coeffs, lower=lower, upper=total, label="total-bandwidth")
        )
        self.total_bandwidth = total
        return self

    def with_dim_bounds(
        self,
        dim: int,
        lower: float | None = None,
        upper: float | None = None,
    ) -> "ConstraintSet":
        """Clamp one dimension's bandwidth: ``lower ≤ B_dim ≤ upper``."""
        self._check_dim(dim)
        if lower is not None:
            if lower < self.min_bandwidth:
                raise ConfigurationError(
                    f"dim {dim} lower bound {lower} is below the minimum bandwidth "
                    f"{self.min_bandwidth}"
                )
            self._lower_bounds[dim] = max(self._lower_bounds[dim], lower)
        if upper is not None:
            if upper <= 0:
                raise ConfigurationError(f"dim {dim} upper bound must be positive, got {upper}")
            self._upper_bounds[dim] = min(self._upper_bounds[dim], upper)
        if self._lower_bounds[dim] > self._upper_bounds[dim]:
            raise ConfigurationError(
                f"dim {dim} bounds are empty: "
                f"[{self._lower_bounds[dim]}, {self._upper_bounds[dim]}]"
            )
        return self

    def with_dim_cap(self, dim: int, cap: float) -> "ConstraintSet":
        """Shorthand for an upper bound on one dimension (``B_4 ≤ 50 GB/s``)."""
        return self.with_dim_bounds(dim, upper=cap)

    def with_linear(
        self,
        coeffs: Sequence[float],
        lower: float | None = None,
        upper: float | None = None,
        label: str = "",
    ) -> "ConstraintSet":
        """General row ``lower ≤ coeffs · B ≤ upper`` (``B_1 + B_2 = 500`` etc.)."""
        if len(coeffs) != self.num_dims:
            raise ConfigurationError(
                f"expected {self.num_dims} coefficients, got {len(coeffs)}"
            )
        self.rows.append(LinearConstraint(tuple(coeffs), lower, upper, label))
        return self

    def with_ordering(self, dims: Sequence[int]) -> "ConstraintSet":
        """Require ``B_{dims[0]} ≥ B_{dims[1]} ≥ …`` (e.g. lower dims fatter)."""
        if len(dims) < 2:
            raise ConfigurationError("ordering needs at least two dimensions")
        for left, right in zip(dims, dims[1:]):
            self._check_dim(left)
            self._check_dim(right)
            coeffs = [0.0] * self.num_dims
            coeffs[left] = 1.0
            coeffs[right] = -1.0
            self.rows.append(
                LinearConstraint(tuple(coeffs), lower=0.0, label=f"B{left}>=B{right}")
            )
        return self

    # -- queries ---------------------------------------------------------------

    @property
    def lower_bounds(self) -> np.ndarray:
        return self._lower_bounds.copy()

    @property
    def upper_bounds(self) -> np.ndarray:
        return self._upper_bounds.copy()

    def violations(
        self, bandwidths: Sequence[float], tolerance: float = 1e-6
    ) -> list[str]:
        """Human-readable list of violated constraints (empty = feasible).

        ``tolerance`` is relative to each row's scale.
        """
        if len(bandwidths) != self.num_dims:
            raise ConfigurationError(
                f"expected {self.num_dims} bandwidths, got {len(bandwidths)}"
            )
        messages = []
        values = np.asarray(bandwidths, dtype=float)
        for dim in range(self.num_dims):
            scale = max(abs(self._lower_bounds[dim]), 1.0)
            if values[dim] < self._lower_bounds[dim] - tolerance * scale:
                messages.append(
                    f"B{dim} = {values[dim]:.4g} below lower bound {self._lower_bounds[dim]:.4g}"
                )
            if values[dim] > self._upper_bounds[dim] + tolerance * max(self._upper_bounds[dim], 1.0):
                messages.append(
                    f"B{dim} = {values[dim]:.4g} above upper bound {self._upper_bounds[dim]:.4g}"
                )
        for row in self.rows:
            scale = max(abs(row.lower or 0.0), abs(row.upper or 0.0), 1.0)
            amount = row.violation(values)
            if amount > tolerance * scale:
                messages.append(f"{row.label or 'linear row'} violated by {amount:.4g}")
        return messages

    def is_feasible(self, bandwidths: Sequence[float], tolerance: float = 1e-6) -> bool:
        return not self.violations(bandwidths, tolerance)

    def canonical(self) -> dict:
        """Content-identity payload for hashing and result caching.

        Covers every input the solver reads: box bounds, the linear rows
        (order-normalized, labels excluded), and the budget. Two constraint
        sets built through different chains of builder calls hash equally
        when they describe the same feasible region rows.
        """
        rows = sorted(
            ((list(row.coeffs), row.lower, row.upper) for row in self.rows),
            key=lambda row: (
                row[0],
                row[1] is not None,
                row[1] or 0.0,
                row[2] is not None,
                row[2] or 0.0,
            ),
        )
        return {
            "num_dims": self.num_dims,
            "min_bandwidth": self.min_bandwidth,
            "lower_bounds": [float(b) for b in self._lower_bounds],
            "upper_bounds": [float(b) for b in self._upper_bounds],
            "rows": [
                {"coeffs": coeffs, "lower": lower, "upper": upper}
                for coeffs, lower, upper in rows
            ],
            "total_bandwidth": self.total_bandwidth,
        }

    def to_dict(self) -> dict:
        """JSON-ready payload; inverse of :meth:`from_dict`.

        Unlike :meth:`canonical`, this keeps row labels and row order so a
        round-tripped set reports the same diagnostics — but the two sets
        still hash identically under :meth:`canonical`.
        """
        return {
            "num_dims": self.num_dims,
            "min_bandwidth": self.min_bandwidth,
            "lower_bounds": [float(b) for b in self._lower_bounds],
            "upper_bounds": [float(b) for b in self._upper_bounds],
            "rows": [
                {
                    "coeffs": [float(c) for c in row.coeffs],
                    "lower": row.lower,
                    "upper": row.upper,
                    "label": row.label,
                }
                for row in self.rows
            ],
            "total_bandwidth": self.total_bandwidth,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ConstraintSet":
        """Rebuild a constraint set from :meth:`to_dict` output."""
        try:
            built = cls(
                num_dims=int(payload["num_dims"]),
                min_bandwidth=float(payload.get("min_bandwidth", DEFAULT_MIN_BANDWIDTH)),
            )
            lower = payload.get("lower_bounds")
            upper = payload.get("upper_bounds")
            if lower is not None:
                if len(lower) != built.num_dims:
                    raise ConfigurationError(
                        f"expected {built.num_dims} lower bounds, got {len(lower)}"
                    )
                built._lower_bounds = np.asarray([float(b) for b in lower])
            if upper is not None:
                if len(upper) != built.num_dims:
                    raise ConfigurationError(
                        f"expected {built.num_dims} upper bounds, got {len(upper)}"
                    )
                built._upper_bounds = np.asarray([float(b) for b in upper])
            if np.any(built._lower_bounds > built._upper_bounds):
                raise ConfigurationError("constraint payload has empty box bounds")
            for row in payload.get("rows", ()):
                if len(row["coeffs"]) != built.num_dims:
                    raise ConfigurationError(
                        f"constraint row {row.get('label') or ''!r} has "
                        f"{len(row['coeffs'])} coefficients for "
                        f"{built.num_dims} dims"
                    )
                built.rows.append(
                    LinearConstraint(
                        coeffs=tuple(float(c) for c in row["coeffs"]),
                        lower=None if row.get("lower") is None else float(row["lower"]),
                        upper=None if row.get("upper") is None else float(row["upper"]),
                        label=str(row.get("label", "")),
                    )
                )
            total = payload.get("total_bandwidth")
            built.total_bandwidth = None if total is None else float(total)
            return built
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed constraint-set payload: {exc}"
            ) from exc

    def equal_split(self) -> np.ndarray:
        """The EqualBW baseline point: the total budget divided evenly.

        Requires a total-bandwidth budget (the paper's EqualBW baseline is
        defined relative to one). The point ignores general linear rows —
        EqualBW is a straw-person allocation, not an optimized one — but it
        is projected into the box bounds with the clipped surplus
        redistributed, so it always honours the budget and per-dim caps.
        """
        if self.total_bandwidth is None:
            raise OptimizationError(
                "EqualBW requires a total-bandwidth budget "
                "(call with_total_bandwidth first)"
            )
        total = self.total_bandwidth
        point = np.clip(
            np.full(self.num_dims, total / self.num_dims),
            self._lower_bounds,
            self._upper_bounds,
        )
        # Redistribute whatever clipping removed (or added) onto dimensions
        # that still have room, keeping the budget row satisfied.
        for _ in range(self.num_dims):
            slack = total - point.sum()
            if abs(slack) < 1e-9 * total:
                break
            room = (self._upper_bounds - point) if slack > 0 else (point - self._lower_bounds)
            movable = room > 1e-12
            if not movable.any():
                break
            point[movable] += slack * room[movable] / room[movable].sum()
            point = np.clip(point, self._lower_bounds, self._upper_bounds)
        return point

    def find_feasible_point(self) -> np.ndarray:
        """A strictly feasible bandwidth vector, via linear programming.

        Used to seed the nonlinear solver when the constraint set is more
        intricate than a single budget row. The LP result is cached on the
        instance (invalidated by builder calls), so back-to-back solves
        over one constraint set — e.g. the PerfPerCost warm start — pay for
        it once.
        """
        key = (
            len(self.rows),
            self._lower_bounds.tobytes(),
            self._upper_bounds.tobytes(),
        )
        if self._feasible_point is not None and key == self._feasible_key:
            return self._feasible_point.copy()
        from scipy.optimize import linprog

        num = self.num_dims
        # Feasibility LP with a slack-maximizing twist: maximize the margin s
        # subject to every inequality having slack >= s (equalities exact).
        a_ub: list[list[float]] = []
        b_ub: list[float] = []
        a_eq: list[list[float]] = []
        b_eq: list[float] = []
        for row in self.rows:
            coeffs = list(row.coeffs)
            scale = max(float(np.abs(row.coeffs).sum()), 1e-12)
            if row.is_equality:
                a_eq.append(coeffs + [0.0])
                b_eq.append(float(row.lower))  # type: ignore[arg-type]
                continue
            if row.upper is not None:
                a_ub.append(coeffs + [scale])
                b_ub.append(row.upper)
            if row.lower is not None:
                a_ub.append([-c for c in coeffs] + [scale])
                b_ub.append(-row.lower)
        bounds = [
            (self._lower_bounds[dim], self._upper_bounds[dim]) for dim in range(num)
        ]
        # The slack margin must be bounded or a constraint set with only
        # equality rows (where the slack never appears) makes the LP
        # unbounded. Any finite cap works; it only shapes the interior point.
        bounds.append((0.0, float(self._upper_bounds.max())))
        objective = [0.0] * num + [-1.0]
        result = linprog(
            objective,
            A_ub=np.array(a_ub) if a_ub else None,
            b_ub=np.array(b_ub) if b_ub else None,
            A_eq=np.array(a_eq) if a_eq else None,
            b_eq=np.array(b_eq) if b_eq else None,
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            raise OptimizationError(
                f"constraint set is infeasible: {result.message}"
            )
        self._feasible_point = np.asarray(result.x[:num], dtype=float)
        self._feasible_key = key
        return self._feasible_point.copy()

    def _check_dim(self, dim: int) -> None:
        if not 0 <= dim < self.num_dims:
            raise ConfigurationError(
                f"dimension {dim} out of range for {self.num_dims} dims"
            )

"""Multi-workload (group) optimization study helpers (Sec. VI-B, Fig. 17).

The paper's group study optimizes a network for each workload separately,
then cross-evaluates every workload on every network, and finally optimizes
one network for the whole group at once. :class:`GroupStudy` packages that
protocol; the Fig. 17 benchmark prints its matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constraints import ConstraintSet
from repro.core.framework import Libra
from repro.core.results import DesignPoint, Scheme
from repro.cost.model import CostModel
from repro.topology.network import MultiDimNetwork
from repro.training.compute import ComputeModel
from repro.training.loops import TrainingLoop
from repro.utils.errors import ConfigurationError
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class GroupStudyResult:
    """Everything Fig. 17 reads off.

    Attributes:
        per_target_points: Design point of the network optimized for each
            single target, keyed by target workload name.
        group_point: Design point of the group-optimized network.
        equal_point: EqualBW baseline point.
        speedups: ``speedups[design][workload]`` — training speedup of
            ``workload`` on ``design``'s network over EqualBW. ``design`` is
            a workload name or ``"group"``.
        slowdowns: ``slowdowns[design][workload]`` — slowdown of ``workload``
            on ``design``'s network relative to the network optimized for
            that same workload (1.0 on the diagonal by construction).
    """

    per_target_points: dict[str, DesignPoint]
    group_point: DesignPoint
    equal_point: DesignPoint
    speedups: dict[str, dict[str, float]]
    slowdowns: dict[str, dict[str, float]]

    @property
    def average_group_slowdown(self) -> float:
        """Mean slowdown of the group network — the paper reports 1.01×."""
        values = list(self.slowdowns["group"].values())
        return sum(values) / len(values)

    @property
    def worst_cross_slowdown(self) -> float:
        """Worst off-diagonal slowdown among single-target networks."""
        worst = 1.0
        for design, row in self.slowdowns.items():
            if design == "group":
                continue
            for workload, value in row.items():
                if workload != design:
                    worst = max(worst, value)
        return worst


def run_group_study(
    network: MultiDimNetwork,
    workloads: list[Workload],
    total_bandwidth: float,
    cost_model: CostModel | None = None,
    compute_model: ComputeModel | None = None,
    loop: TrainingLoop | None = None,
    scheme: Scheme = Scheme.PERF_OPT,
) -> GroupStudyResult:
    """Execute the full Fig. 17 protocol on one network.

    Args:
        network: The shared network shape (paper: 4D-4K).
        workloads: Target workloads (all sized for this network).
        total_bandwidth: Per-NPU bandwidth budget, bytes/s (paper: 1 TB/s).
        scheme: Optimization scheme for the per-target and group networks.
    """
    if len(workloads) < 2:
        raise ConfigurationError("a group study needs at least two workloads")

    def fresh_libra() -> Libra:
        return Libra(
            network,
            cost_model=cost_model,
            compute_model=compute_model,
            loop=loop,
        )

    def budget(libra: Libra) -> ConstraintSet:
        return libra.constraints().with_total_bandwidth(total_bandwidth)

    # A shared evaluator that knows every workload's expression.
    evaluator = fresh_libra()
    for workload in workloads:
        evaluator.add_workload(workload)
    equal_point = evaluator.equal_bw_point(total_bandwidth)

    per_target_points: dict[str, DesignPoint] = {}
    for target in workloads:
        libra = fresh_libra().add_workload(target)
        optimized = libra.optimize(scheme, budget(libra))
        # Re-evaluate the single-target bandwidths against all workloads.
        per_target_points[target.name] = evaluator.evaluate(
            optimized.bandwidths, scheme=scheme,
            solver_message=optimized.solver_message,
        )

    # Group objective: weight each workload by the reciprocal of its own
    # optimized step time, so the weighted sum is (up to a constant) the sum
    # of per-workload *slowdowns*. Every target then contributes comparably
    # regardless of its absolute scale — otherwise a trillion-parameter
    # model's seconds drown a vision model's milliseconds and the "group"
    # network ignores the small workloads entirely.
    group_libra = fresh_libra()
    for workload in workloads:
        own_optimal = per_target_points[workload.name].step_time(workload.name)
        group_libra.add_workload(workload, weight=1.0 / own_optimal)
    group_point = group_libra.optimize(scheme, budget(group_libra))

    designs: dict[str, DesignPoint] = dict(per_target_points)
    designs["group"] = group_point

    speedups: dict[str, dict[str, float]] = {}
    slowdowns: dict[str, dict[str, float]] = {}
    for design_name, point in designs.items():
        speedups[design_name] = {}
        slowdowns[design_name] = {}
        for workload in workloads:
            time_here = point.step_time(workload.name)
            time_equal = equal_point.step_time(workload.name)
            time_own = per_target_points[workload.name].step_time(workload.name)
            speedups[design_name][workload.name] = time_equal / time_here
            slowdowns[design_name][workload.name] = time_here / time_own

    return GroupStudyResult(
        per_target_points=per_target_points,
        group_point=group_point,
        equal_point=equal_point,
        speedups=speedups,
        slowdowns=slowdowns,
    )

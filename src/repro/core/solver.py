"""Constrained bandwidth optimizer (Sec. IV-E, IV-F).

The paper drives a commercial QP solver (Gurobi); this module implements the
same optimization with scipy, in three layers:

1. **Epigraph compilation** — the symbolic training-time expression
   (:mod:`repro.training.expr`) is compiled so every ``max`` node becomes an
   auxiliary variable ``u`` with one inequality per operand, and every
   collective term contributes smooth constraints ``t ≥ coeff / B_dim``.
   After compilation the objective is *linear* in the auxiliaries, and all
   the nonlinearity lives in those hyperbolic constraints — which describe a
   convex region over ``B > 0``. ``PerfOptBW`` is therefore a convex program
   that SLSQP solves to global optimality.

2. **SLSQP with analytic gradients** — variables are scaled to GB/s
   internally so the problem is well-conditioned; seeds include the EqualBW
   split, the traffic-proportional water-filling allocation, and cost-aware
   variants; ``trust-constr`` is the fallback when SLSQP stalls.

3. **Multi-start for PerfPerCostOptBW** — time × cost is bilinear (the same
   nonconvexity Gurobi's QP handles); deterministic multi-start from the
   seed family recovers the global design point in practice, and the result
   records which start won.

Two interchangeable kernels execute the per-seed SLSQP runs:

* ``"vectorized"`` (default) — the compiled program becomes stacked
  matrix-form constraint blocks (:mod:`repro.core.kernel`) built once and
  shared across every seed and both schemes, driven through a slim
  reverse-communication loop around scipy's compiled SLSQP core.
* ``"closures"`` — the original one-Python-closure-per-constraint path,
  rebuilt per seed. Kept as the reference implementation: the equivalence
  suite and the perf harness (``repro bench``) assert both kernels return
  the same design points.

A memoization tier keyed on the frozen expression —
:func:`compile_expression`, :func:`traffic_totals`, and (in
:mod:`repro.training.expr`) ``simplify`` / ``vector_evaluator`` — makes
repeat solves over one workload (warm starts, budget sweeps) skip all tree
work. :func:`clear_solver_caches` resets every tier (used by benchmarks for
cold-path timing).

**Continuation solving** — both entry points accept ``warm_start``: a prior
optimum (e.g. the neighboring cell of a budget sweep). The warm point is
projected onto the new feasible region (budget-rescaled, box-clipped) and
solved first; the full multi-start family then runs *only* when that warm
run's achieved objective drifts past :data:`WARM_TRUST_RTOL` relative to
the best raw seed evaluation (the adaptive fan-out that keeps correctness
from silently degrading). ``warm_start=None`` is the cold path and stays
the default everywhere.
"""

from __future__ import annotations

import functools
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field, replace
from functools import lru_cache

import numpy as np
from scipy.optimize import NonlinearConstraint, minimize

from repro.core.constraints import ConstraintSet
from repro.core.kernel import ConstraintBlocks, minimize_slsqp
from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names
from repro.obs import trace as obs_trace
from repro.training.expr import (
    CommTerm,
    Const,
    Expr,
    MaxExpr,
    Sum,
    simplify,
    vector_evaluator,
)
from repro.utils.errors import JobCancelled, OptimizationError
from repro.utils.units import GBPS

#: Internal bandwidth unit (GB/s) — keeps decision variables O(1)–O(1000).
_SCALE = GBPS

#: Solver kernel names accepted by the ``kernel=`` arguments below.
KERNELS = ("vectorized", "closures")

#: Relative objective drift past which a warm-started solve is distrusted.
#: A warm run is accepted only when it converged (or stopped on a
#: line-search stall of the same trajectory), its iterate is feasible, and
#: its *true* (re-evaluated) objective is within this factor of the best
#: raw seed evaluation; otherwise the full multi-start family runs with
#: the warm run's result kept as one more candidate. The
#: documented continuation tolerance: accepted warm results match the cold
#: path's objective within ~1e-2 relative in practice, and never sit above
#: the seed family's own evaluations by more than this threshold.
WARM_TRUST_RTOL = 1e-4

#: Seed-family truncation used by PerfPerCostOptBW's internal PerfOpt warm
#: start on the vectorized kernel (PerfOpt is convex — any converging seed
#: reaches the optimum; two seeds are kept as a numerical safety net).
#: Overridable per call via ``perf_warm_starts``.
DEFAULT_PERF_WARM_STARTS = 2


# ---------------------------------------------------------------------------
# Epigraph compilation
# ---------------------------------------------------------------------------


@dataclass
class _Affine:
    """``const + Σ weight_a · aux_a`` — the value of a compiled subtree."""

    const: float = 0.0
    aux_weights: dict[int, float] = field(default_factory=dict)

    def add(self, other: "_Affine", weight: float = 1.0) -> None:
        self.const += weight * other.const
        for aux, aux_weight in other.aux_weights.items():
            self.aux_weights[aux] = self.aux_weights.get(aux, 0.0) + weight * aux_weight


@dataclass(frozen=True)
class CommConstraint:
    """``aux_t ≥ coeff / B_dim`` (coefficients pre-scaled to GB/s units)."""

    aux: int
    dim: int
    coeff: float


@dataclass(frozen=True)
class MaxConstraint:
    """``aux_u ≥ const + Σ weight_a · aux_a`` (linear in the variables)."""

    aux: int
    const: float
    aux_weights: tuple[tuple[int, float], ...]


@dataclass(frozen=True)
class _AuxPlan:
    """Flat arrays for vectorized tight-aux evaluation (see ``initial_aux``).

    Comm aux values come from one gathered division plus a segment-max;
    max aux values are folded in descending aux order — compilation
    allocates every max aux *before* visiting its children, so a max row
    only ever references strictly larger aux indices.
    """

    comm_aux: np.ndarray  # (num_comm_aux,) aux index per segment
    comm_dims: np.ndarray  # (num_comm_rows,)
    comm_coeffs: np.ndarray  # (num_comm_rows,) scaled coefficients
    comm_starts: np.ndarray  # (num_comm_aux,) reduceat segment offsets
    max_rows: tuple[tuple[int, float, np.ndarray, np.ndarray], ...]
    max_aux_ids: np.ndarray  # aux indices that are max nodes


@dataclass
class CompiledProgram:
    """The epigraph form of one training-time expression.

    Variables are ``x = [B_scaled (num_dims), aux (num_aux)]`` with
    bandwidths in GB/s. ``objective(x) = objective_const + w · aux`` equals
    the expression value at any point where every aux is tight.

    Instances returned by :func:`compile_expression` are memoized and shared
    across solves — treat them as immutable.
    """

    num_dims: int
    num_aux: int
    objective_const: float
    objective_weights: np.ndarray  # length num_aux
    comm_constraints: list[CommConstraint]
    max_constraints: list[MaxConstraint]
    aux_expressions: list[Expr]  # defining subtree per aux, for reference
    _aux_plan: _AuxPlan | None = field(default=None, repr=False, compare=False)

    def objective_value(self, x: np.ndarray) -> float:
        return self.objective_const + float(
            self.objective_weights @ x[self.num_dims:]
        )

    def _ensure_aux_plan(self) -> _AuxPlan:
        if self._aux_plan is None:
            comm_aux: list[int] = []
            starts: list[int] = []
            for index, row in enumerate(self.comm_constraints):
                if not comm_aux or comm_aux[-1] != row.aux:
                    comm_aux.append(row.aux)  # rows are grouped per aux
                    starts.append(index)
            max_rows = tuple(
                (
                    row.aux,
                    row.const,
                    np.asarray([aux for aux, _ in row.aux_weights], dtype=np.intp),
                    np.asarray([w for _, w in row.aux_weights], dtype=float),
                )
                for row in sorted(
                    self.max_constraints, key=lambda row: -row.aux
                )
            )
            self._aux_plan = _AuxPlan(
                comm_aux=np.asarray(comm_aux, dtype=np.intp),
                comm_dims=np.asarray(
                    [row.dim for row in self.comm_constraints], dtype=np.intp
                ),
                comm_coeffs=np.asarray(
                    [row.coeff for row in self.comm_constraints], dtype=float
                ),
                comm_starts=np.asarray(starts, dtype=np.intp),
                max_rows=max_rows,
                max_aux_ids=np.asarray(
                    sorted({row.aux for row in self.max_constraints}),
                    dtype=np.intp,
                ),
            )
        return self._aux_plan

    def initial_aux(self, bandwidths_scaled: np.ndarray) -> np.ndarray:
        """Tight aux values at a bandwidth point (feasible by construction)."""
        if self.num_aux == 0:
            return np.zeros(0)
        plan = self._ensure_aux_plan()
        aux = np.zeros(self.num_aux)
        if plan.comm_aux.size:
            ratios = plan.comm_coeffs / np.asarray(bandwidths_scaled, dtype=float)[
                plan.comm_dims
            ]
            aux[plan.comm_aux] = np.maximum.reduceat(ratios, plan.comm_starts)
        if plan.max_aux_ids.size:
            aux[plan.max_aux_ids] = -np.inf
            for aux_id, const, children, weights in plan.max_rows:
                value = const + (weights @ aux[children] if children.size else 0.0)
                if value > aux[aux_id]:
                    aux[aux_id] = value
        return aux


@lru_cache(maxsize=128)
def compile_expression(expr: Expr, num_dims: int) -> CompiledProgram:
    """Compile ``expr`` into epigraph form over ``num_dims`` bandwidths.

    Memoized on ``(expr, num_dims)``: ``PerfPerCostOptBW`` warm-starting
    through ``PerfOptBW`` and sweeps revisiting one workload reuse the
    compiled program instead of re-walking the tree.
    """
    expr = simplify(expr)
    if expr.max_dim() >= num_dims:
        raise OptimizationError(
            f"expression references dimension {expr.max_dim()} "
            f"but the network has {num_dims}"
        )
    comm_constraints: list[CommConstraint] = []
    max_constraints: list[MaxConstraint] = []
    aux_expressions: list[Expr] = []

    def visit(node: Expr) -> _Affine:
        if isinstance(node, Const):
            return _Affine(const=node.value)
        if isinstance(node, CommTerm):
            if not node.coefficients:
                return _Affine()
            aux = len(aux_expressions)
            aux_expressions.append(node)
            for dim, coeff in node.coefficients:
                comm_constraints.append(CommConstraint(aux, dim, coeff / _SCALE))
            value = _Affine()
            value.aux_weights[aux] = 1.0
            return value
        if isinstance(node, Sum):
            value = _Affine()
            for weight, child in zip(node.weights, node.children):
                value.add(visit(child), weight)
            return value
        if isinstance(node, MaxExpr):
            aux = len(aux_expressions)
            aux_expressions.append(node)
            for child in node.children:
                child_value = visit(child)
                max_constraints.append(
                    MaxConstraint(
                        aux,
                        child_value.const,
                        tuple(child_value.aux_weights.items()),
                    )
                )
            value = _Affine()
            value.aux_weights[aux] = 1.0
            return value
        raise OptimizationError(f"unknown expression node {type(node).__name__}")

    root = visit(expr)
    num_aux = len(aux_expressions)
    weights = np.zeros(num_aux)
    for aux, weight in root.aux_weights.items():
        weights[aux] = weight
    return CompiledProgram(
        num_dims=num_dims,
        num_aux=num_aux,
        objective_const=root.const,
        objective_weights=weights,
        comm_constraints=comm_constraints,
        max_constraints=max_constraints,
        aux_expressions=aux_expressions,
    )


# ---------------------------------------------------------------------------
# Seeds
# ---------------------------------------------------------------------------


@lru_cache(maxsize=128)
def traffic_totals(expr: Expr, num_dims: int) -> np.ndarray:
    """Aggregate collective traffic per dimension (bytes), tree-wide.

    The water-filling seed allocates bandwidth proportionally to this — the
    exact optimum for a single collective under a pure budget constraint,
    and an excellent starting point otherwise.

    Memoized on ``(expr, num_dims)``; the returned array is marked
    read-only because it is shared between callers.
    """
    totals = np.zeros(num_dims)

    def visit(node: Expr, weight: float) -> None:
        if isinstance(node, CommTerm):
            for dim, coeff in node.coefficients:
                totals[dim] += weight * coeff
        elif isinstance(node, Sum):
            for child_weight, child in zip(node.weights, node.children):
                if child_weight > 0:
                    visit(child, weight * child_weight)
        elif isinstance(node, MaxExpr):
            for child in node.children:
                visit(child, weight)

    visit(simplify(expr), 1.0)
    totals.flags.writeable = False
    return totals


def _proportional_split(
    shares: np.ndarray, constraints: ConstraintSet
) -> np.ndarray | None:
    """Distribute the budget along ``shares``, clipped into the box bounds."""
    if constraints.total_bandwidth is None:
        return None
    total = constraints.total_bandwidth
    positive = np.maximum(shares, 0.0)
    if positive.sum() <= 0:
        return None
    point = total * positive / positive.sum()
    lower = constraints.lower_bounds
    upper = constraints.upper_bounds
    point = np.clip(point, lower, upper)
    # Re-distribute any clipping slack onto unclamped dimensions.
    for _ in range(constraints.num_dims):
        slack = total - point.sum()
        if abs(slack) < 1e-9 * total:
            break
        room = (upper - point) if slack > 0 else (point - lower)
        movable = room > 1e-12
        if not movable.any():
            break
        point[movable] += slack * room[movable] / room[movable].sum()
        point = np.clip(point, lower, upper)
    return point


def build_seeds(
    expr: Expr,
    constraints: ConstraintSet,
    cost_rates: Sequence[float] | None = None,
) -> list[np.ndarray]:
    """Deterministic multi-start seed family (bytes/s)."""
    seeds: list[np.ndarray] = []

    def push(point: np.ndarray | None) -> None:
        if point is None:
            return
        for existing in seeds:
            if np.allclose(existing, point, rtol=1e-6):
                return
        seeds.append(point)

    totals = traffic_totals(expr, constraints.num_dims)
    if constraints.total_bandwidth is not None:
        push(constraints.equal_split())
        proportional = _proportional_split(totals, constraints)
        push(proportional)
        if cost_rates is not None and np.any(totals > 0):
            rates = np.asarray(cost_rates, dtype=float)
            value_density = np.divide(
                totals, np.maximum(rates, 1e-30), out=np.zeros(totals.shape),
                where=rates > 0,
            )
            push(_proportional_split(value_density, constraints))
        # Mild skews of the proportional seed to escape flat regions.
        if proportional is not None:
            for exponent in (0.5, 2.0):
                push(_proportional_split(proportional ** exponent, constraints))
    try:
        push(constraints.find_feasible_point())
    except OptimizationError:
        pass
    if not seeds:
        raise OptimizationError("no feasible seed point found for the constraint set")
    return seeds


def project_warm_start(
    warm_start: Sequence[float], constraints: ConstraintSet
) -> np.ndarray | None:
    """Project a prior optimum onto a constraint set's feasible region.

    Continuation neighbors usually differ only by the budget scalar, so the
    projection keeps the warm point's *shape*: the bandwidth shares are
    redistributed onto the new budget and clipped into the box bounds
    (general linear rows are left to SLSQP, exactly as for the cold seed
    family). Returns ``None`` when the point cannot seed this set — wrong
    dimensionality, non-finite, or all-zero — which callers treat as
    "fall back to cold".
    """
    point = np.asarray(warm_start, dtype=float)
    if point.shape != (constraints.num_dims,):
        return None
    if not np.all(np.isfinite(point)) or np.sum(np.maximum(point, 0.0)) <= 0:
        return None
    if constraints.total_bandwidth is not None:
        return _proportional_split(point, constraints)
    return np.clip(point, constraints.lower_bounds, constraints.upper_bounds)


# ---------------------------------------------------------------------------
# Solve
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SolverResult:
    """Outcome of one bandwidth optimization.

    Attributes:
        bandwidths: Optimal per-dimension bandwidths, bytes/s.
        objective: Final objective value (seconds for PerfOpt; seconds ×
            dollars for PerfPerCost).
        success: Whether a solver run converged; when False the best
            feasible iterate (a line-search stall point or a seed
            evaluation) is returned instead.
        message: Solver diagnostics (which start won, fallbacks used).
        starts: Number of seed points tried.
        warm_start: Continuation diagnostics — empty for cold solves,
            ``"accepted"`` when the warm run passed the trust check and the
            multi-start family was skipped, ``"rejected:<reason>"`` when the
            solve fell back to the full fan-out.
    """

    bandwidths: tuple[float, ...]
    objective: float
    success: bool
    message: str
    starts: int
    warm_start: str = ""


def _scipy_constraints(
    program: CompiledProgram, constraints: ConstraintSet
) -> list[NonlinearConstraint | dict]:
    """Assemble SLSQP-style constraint dicts over the scaled variables."""
    num_dims = program.num_dims
    rows: list[dict] = []

    for row in constraints.rows:
        coeffs = np.asarray(row.coeffs, dtype=float)

        def make_fun(coeffs: np.ndarray, shift: float, sign: float) -> Callable:
            def fun(x: np.ndarray) -> float:
                return sign * (float(coeffs @ x[:num_dims]) - shift)

            return fun

        def make_jac(coeffs: np.ndarray, sign: float) -> Callable:
            gradient = np.zeros(num_dims + program.num_aux)
            gradient[:num_dims] = sign * coeffs

            def jac(x: np.ndarray) -> np.ndarray:
                return gradient

            return jac

        if row.is_equality:
            shift = float(row.lower) / _SCALE  # type: ignore[arg-type]
            rows.append(
                {"type": "eq", "fun": make_fun(coeffs, shift, 1.0),
                 "jac": make_jac(coeffs, 1.0)}
            )
            continue
        if row.upper is not None:
            shift = row.upper / _SCALE
            rows.append(
                {"type": "ineq", "fun": make_fun(coeffs, shift, -1.0),
                 "jac": make_jac(coeffs, -1.0)}
            )
        if row.lower is not None:
            shift = row.lower / _SCALE
            rows.append(
                {"type": "ineq", "fun": make_fun(coeffs, shift, 1.0),
                 "jac": make_jac(coeffs, 1.0)}
            )

    for comm in program.comm_constraints:

        def make_comm(comm: CommConstraint) -> tuple[Callable, Callable]:
            aux_index = num_dims + comm.aux

            def fun(x: np.ndarray) -> float:
                return x[aux_index] - comm.coeff / max(x[comm.dim], 1e-12)

            def jac(x: np.ndarray) -> np.ndarray:
                gradient = np.zeros(num_dims + program.num_aux)
                gradient[aux_index] = 1.0
                gradient[comm.dim] = comm.coeff / max(x[comm.dim], 1e-12) ** 2
                return gradient

            return fun, jac

        fun, jac = make_comm(comm)
        rows.append({"type": "ineq", "fun": fun, "jac": jac})

    for max_row in program.max_constraints:

        def make_max(max_row: MaxConstraint) -> tuple[Callable, Callable]:
            gradient = np.zeros(num_dims + program.num_aux)
            gradient[num_dims + max_row.aux] = 1.0
            for aux, weight in max_row.aux_weights:
                gradient[num_dims + aux] -= weight

            def fun(x: np.ndarray) -> float:
                value = x[num_dims + max_row.aux] - max_row.const
                for aux, weight in max_row.aux_weights:
                    value -= weight * x[num_dims + aux]
                return value

            def jac(x: np.ndarray) -> np.ndarray:
                return gradient

            return fun, jac

        fun, jac = make_max(max_row)
        rows.append({"type": "ineq", "fun": fun, "jac": jac})

    return rows


def _variable_bounds(
    program: CompiledProgram, constraints: ConstraintSet
) -> list[tuple[float, float | None]]:
    bounds: list[tuple[float, float | None]] = []
    lower = constraints.lower_bounds / _SCALE
    upper = constraints.upper_bounds / _SCALE
    for dim in range(program.num_dims):
        bounds.append((float(lower[dim]), float(upper[dim])))
    for _ in range(program.num_aux):
        bounds.append((0.0, None))
    return bounds


def build_constraint_blocks(
    program: CompiledProgram, constraints: ConstraintSet
) -> ConstraintBlocks:
    """Stack the program + designer rows into vectorized constraint blocks.

    Built **once** per compiled program and shared by every multi-start
    seed and both optimization schemes — this replaces the per-seed
    closure rebuild of :func:`_scipy_constraints`. Row semantics match the
    closure path exactly: designer rows are scaled to GB/s, max-epigraph
    rows join the linear inequality block, and comm rows stay hyperbolic.
    """
    num_dims = program.num_dims
    num_vars = num_dims + program.num_aux

    eq_rows: list[np.ndarray] = []
    eq_shift: list[float] = []
    lin_rows: list[np.ndarray] = []
    lin_shift: list[float] = []
    for row in constraints.rows:
        coeffs = np.zeros(num_vars)
        coeffs[:num_dims] = row.coeffs
        if row.is_equality:
            eq_rows.append(coeffs)
            eq_shift.append(float(row.lower) / _SCALE)  # type: ignore[arg-type]
            continue
        if row.upper is not None:
            lin_rows.append(-coeffs)
            lin_shift.append(-row.upper / _SCALE)
        if row.lower is not None:
            lin_rows.append(coeffs)
            lin_shift.append(row.lower / _SCALE)
    for max_row in program.max_constraints:
        coeffs = np.zeros(num_vars)
        coeffs[num_dims + max_row.aux] = 1.0
        for aux, weight in max_row.aux_weights:
            coeffs[num_dims + aux] -= weight
        lin_rows.append(coeffs)
        lin_shift.append(max_row.const)

    lower = np.concatenate(
        [constraints.lower_bounds / _SCALE, np.zeros(program.num_aux)]
    )
    upper = np.concatenate(
        [constraints.upper_bounds / _SCALE, np.full(program.num_aux, np.inf)]
    )
    return ConstraintBlocks(
        num_vars=num_vars,
        a_eq=(
            np.asarray(eq_rows) if eq_rows else np.zeros((0, num_vars))
        ),
        b_eq=np.asarray(eq_shift, dtype=float),
        a_in=(
            np.asarray(lin_rows) if lin_rows else np.zeros((0, num_vars))
        ),
        b_in=np.asarray(lin_shift, dtype=float),
        comm_aux=np.asarray(
            [num_dims + row.aux for row in program.comm_constraints],
            dtype=np.intp,
        ),
        comm_dim=np.asarray(
            [row.dim for row in program.comm_constraints], dtype=np.intp
        ),
        comm_coeff=np.asarray(
            [row.coeff for row in program.comm_constraints], dtype=float
        ),
        lower=lower,
        upper=upper,
    )


def _solve_from_seed(
    program: CompiledProgram,
    constraints: ConstraintSet,
    objective: Callable[[np.ndarray], float],
    objective_grad: Callable[[np.ndarray], np.ndarray],
    seed: np.ndarray,
    blocks: ConstraintBlocks | None = None,
) -> tuple[np.ndarray, float, bool, str]:
    """One SLSQP run (long-retry fallback) from one bandwidth seed.

    With ``blocks`` the run goes through the vectorized kernel; without,
    it rebuilds the per-constraint closures (the reference path).
    """
    tracer = obs_trace.get_tracer()
    if tracer is obs_trace.NULL_TRACER:
        return _solve_from_seed_impl(
            program, constraints, objective, objective_grad, seed, blocks
        )
    kernel = "vectorized" if blocks is not None else "closures"
    with tracer.span("solve.seed", attrs={"kernel": kernel}) as span:
        result = _solve_from_seed_impl(
            program, constraints, objective, objective_grad, seed, blocks
        )
        span.set("converged", result[2])
        span.set("path", result[3])
        return result


def _solve_from_seed_impl(
    program: CompiledProgram,
    constraints: ConstraintSet,
    objective: Callable[[np.ndarray], float],
    objective_grad: Callable[[np.ndarray], np.ndarray],
    seed: np.ndarray,
    blocks: ConstraintBlocks | None,
) -> tuple[np.ndarray, float, bool, str]:
    seed_scaled = seed / _SCALE
    x0 = np.concatenate([seed_scaled, program.initial_aux(seed_scaled) * 1.0001])

    if blocks is not None:
        result = minimize_slsqp(
            objective, objective_grad, x0, blocks, maxiter=400, ftol=1e-12
        )
        if result.success:
            return result.x, result.fun, True, "slsqp"
        if result.status == 8:
            # "Positive directional derivative for linesearch": the line
            # search hit machine precision. SLSQP's iterate path does not
            # depend on ftol (it only gates the stopping tests), so the
            # closure path's looser re-solve from the same start stops at
            # an *earlier* point of this same trajectory — the stall
            # iterate is already at least as optimized. Keep it as a
            # candidate; `_finish` re-checks feasibility and true value.
            return result.x, result.fun, False, f"stalled: {result.message}"
        fallback = minimize_slsqp(
            objective, objective_grad, x0, blocks, maxiter=1500, ftol=1e-10
        )
        if fallback.success:
            return fallback.x, fallback.fun, True, "slsqp-long"
        return result.x, result.fun, False, f"failed: {result.message}"

    scipy_rows = _scipy_constraints(program, constraints)
    bounds = _variable_bounds(program, constraints)

    result = minimize(
        objective,
        x0,
        jac=objective_grad,
        method="SLSQP",
        bounds=bounds,
        constraints=scipy_rows,
        options={"maxiter": 400, "ftol": 1e-12},
    )
    if result.success:
        return result.x, float(result.fun), True, "slsqp"

    fallback = minimize(
        objective,
        x0,
        jac=objective_grad,
        method="SLSQP",
        bounds=bounds,
        constraints=scipy_rows,
        options={"maxiter": 1500, "ftol": 1e-10},
    )
    if fallback.success:
        return fallback.x, float(fallback.fun), True, "slsqp-long"
    return result.x, float(result.fun), False, f"failed: {result.message}"


def _finish(
    program: CompiledProgram,
    constraints: ConstraintSet,
    evaluate_true: Callable[[np.ndarray], float],
    candidates: list[tuple[np.ndarray, float, bool, str]],
    starts: int,
) -> SolverResult:
    """Pick the best feasible candidate and re-evaluate the true objective."""
    best: tuple[np.ndarray, float, bool, str] | None = None
    for x, value, success, message in candidates:
        bandwidths = np.maximum(x[: program.num_dims] * _SCALE, 0.0)
        if not constraints.is_feasible(bandwidths, tolerance=1e-4):
            continue
        true_value = evaluate_true(bandwidths)
        if best is None or true_value < best[1]:
            best = (bandwidths, true_value, success, message)
    if best is None:
        raise OptimizationError(
            "no solver run produced a feasible design point "
            f"(tried {starts} starts)"
        )
    bandwidths, value, success, message = best
    return SolverResult(
        bandwidths=tuple(float(b) for b in bandwidths),
        objective=value,
        success=success,
        message=message,
        starts=starts,
    )


def _seed_fallbacks(
    program: CompiledProgram,
    seeds: Sequence[np.ndarray],
    value_at: Callable[[np.ndarray], float],
) -> list[tuple[np.ndarray, float, bool, str]]:
    """Feasible tight-aux candidates at every seed (the no-solve floor)."""
    fallbacks = []
    for seed in seeds:
        scaled = seed / _SCALE
        x = np.concatenate([scaled, program.initial_aux(scaled)])
        fallbacks.append((x, value_at(x), False, "seed"))
    return fallbacks


def _try_warm(
    program: CompiledProgram,
    constraints: ConstraintSet,
    objective: Callable[[np.ndarray], float],
    objective_grad: Callable[[np.ndarray], np.ndarray],
    evaluate_true: Callable[[np.ndarray], float],
    warm_seed: np.ndarray,
    seeds: list[np.ndarray],
    blocks: ConstraintBlocks | None,
    trust_rtol: float,
) -> tuple[tuple[np.ndarray, float, bool, str], str]:
    """One SLSQP run from the projected warm point, trust-checked.

    Returns ``(candidate, "")`` when the run is trustworthy: it either
    converged or stopped on a line-search stall (a point of the same
    iterate trajectory — see :func:`_solve_from_seed`), its iterate is
    feasible, and its *re-evaluated* objective is no worse (within the
    trust rtol) than the tightest cheap floor available — the best raw
    seed evaluation *and* the projected warm seed's own evaluation, so an
    SLSQP run that wanders into a stale basin below its feasible starting
    point is rejected. Returns ``(candidate, reason)`` when the caller
    must fan out cold; the candidate is still returned so the fallback
    can pool it instead of re-running the identical deterministic solve.

    This floor is deliberately evaluation-only: the cold PerfPerCost
    path's PerfOpt-anchored guarantee would cost the inner solve that
    continuation exists to skip. The residual risk — a basin shift the
    floor cannot see — is bounded by the documented continuation
    tolerance and measured by the sweep benchmark's per-cell gate.
    """
    tracer = obs_trace.get_tracer()
    if tracer is obs_trace.NULL_TRACER:
        return _try_warm_impl(
            program, constraints, objective, objective_grad,
            evaluate_true, warm_seed, seeds, blocks, trust_rtol,
        )
    with tracer.span("solve.warm_trust") as span:
        candidate, reason = _try_warm_impl(
            program, constraints, objective, objective_grad,
            evaluate_true, warm_seed, seeds, blocks, trust_rtol,
        )
        span.set("accepted", not reason)
        if reason:
            span.set("reason", reason)
        return candidate, reason


def _try_warm_impl(
    program: CompiledProgram,
    constraints: ConstraintSet,
    objective: Callable[[np.ndarray], float],
    objective_grad: Callable[[np.ndarray], np.ndarray],
    evaluate_true: Callable[[np.ndarray], float],
    warm_seed: np.ndarray,
    seeds: list[np.ndarray],
    blocks: ConstraintBlocks | None,
    trust_rtol: float,
) -> tuple[tuple[np.ndarray, float, bool, str], str]:
    candidate = _solve_from_seed(
        program, constraints, objective, objective_grad, warm_seed, blocks=blocks
    )
    if not candidate[2] and not candidate[3].startswith("stalled"):
        return candidate, "solver-failure"
    bandwidths = np.maximum(candidate[0][: program.num_dims] * _SCALE, 0.0)
    if not constraints.is_feasible(bandwidths, tolerance=1e-4):
        return candidate, "infeasible-iterate"
    warm_true = evaluate_true(bandwidths)
    floor = min(
        min(evaluate_true(seed) for seed in seeds),
        evaluate_true(warm_seed),
    )
    if warm_true > floor * (1.0 + trust_rtol):
        return candidate, "drift"
    return candidate, ""


def _checkpoint(should_stop: Callable[[], bool] | None, context: str) -> None:
    """Cooperative cancellation checkpoint (between multi-start seeds).

    Seeds are the natural granularity: one SLSQP run is seconds at most,
    so a cancel request is observed promptly without polluting the kernel
    inner loop. Raising :class:`JobCancelled` (never returning a partial
    result) keeps the solver's contract simple — a cancelled solve
    produced nothing.
    """
    if should_stop is not None and should_stop():
        raise JobCancelled(f"optimization cancelled {context}")


def _check_kernel(kernel: str) -> None:
    if kernel not in KERNELS:
        raise OptimizationError(
            f"unknown solver kernel {kernel!r}; choose from {KERNELS}"
        )


def clear_solver_caches() -> None:
    """Reset every memoization tier (cold-path timing, test isolation)."""
    from repro.training.expr import simplify as _simplify
    from repro.training.expr import vector_evaluator as _vector_evaluator

    compile_expression.cache_clear()
    traffic_totals.cache_clear()
    _simplify.cache_clear()
    _vector_evaluator.cache_clear()


def _warm_label(warm_start: str) -> str:
    """Collapse the warm diagnostic to a bounded metric label value."""
    if not warm_start:
        return "cold"
    return "accepted" if warm_start == "accepted" else "rejected"


def _observed_solve(scheme: str):
    """Wrap a solver entry point in a ``solve`` span plus solver metrics.

    When both the tracer and the registry are their null singletons the
    wrapper is two global reads and a tail call — the zero-overhead
    default the BENCH_solver floor pins. The PerfOpt solve that
    PerfPerCost runs internally is counted as its own ``scheme="perf"``
    solve (it goes through this same wrapper).
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = obs_trace.get_tracer()
            registry = obs_metrics.get_registry()
            if (
                tracer is obs_trace.NULL_TRACER
                and registry is obs_metrics.NULL_REGISTRY
            ):
                return fn(*args, **kwargs)
            begin = time.perf_counter()
            with tracer.span("solve", attrs={"scheme": scheme}) as span:
                result = fn(*args, **kwargs)
                warm = _warm_label(result.warm_start)
                span.set("warm", warm)
                span.set("starts", result.starts)
                span.set("objective", result.objective)
            elapsed = time.perf_counter() - begin
            registry.counter(
                obs_names.SOLVER_SOLVES,
                "Solver entry-point solves by scheme and warm-start outcome.",
                labels=("scheme", "warm"),
            ).labels(scheme=scheme, warm=warm).inc()
            registry.counter(
                obs_names.SOLVER_STARTS,
                "Multi-start seed attempts by scheme.",
                labels=("scheme",),
            ).labels(scheme=scheme).inc(result.starts)
            registry.histogram(
                obs_names.SOLVER_SECONDS,
                "Wall time of one solver entry-point call.",
                labels=("scheme",),
            ).labels(scheme=scheme).observe(elapsed)
            return result

        return wrapper

    return decorate


@_observed_solve("perf")
def minimize_training_time(
    expr: Expr,
    constraints: ConstraintSet,
    kernel: str = "vectorized",
    max_starts: int | None = None,
    warm_start: Sequence[float] | None = None,
    trust_rtol: float | None = None,
    should_stop: Callable[[], bool] | None = None,
    _blocks: ConstraintBlocks | None = None,
) -> SolverResult:
    """PerfOptBW: minimize the training-time expression (convex program).

    Args:
        expr: Training-time expression.
        constraints: Designer constraint set.
        kernel: ``"vectorized"`` or ``"closures"``.
        max_starts: Cap on the multi-start seed family; ``None`` keeps every
            seed (the historical behavior). The convex program reaches the
            optimum from any converging seed, so truncation is a speed knob,
            not a correctness one.
        warm_start: Prior optimum (bytes/s) used as a continuation seed; the
            multi-start family is skipped when the warm run passes the trust
            check. ``None`` is the cold path (default).
        trust_rtol: Relative drift tolerance of the trust check;
            ``None`` reads :data:`WARM_TRUST_RTOL` at call time.
        should_stop: Cooperative cancellation predicate, polled between
            multi-start seeds; a true return raises :class:`JobCancelled`.
    """
    _check_kernel(kernel)
    _checkpoint(should_stop, "before the first start")
    program = compile_expression(expr, constraints.num_dims)
    if program.num_aux == 0:
        # Pure-compute workload: any feasible point is optimal. A warm
        # seed has nothing to continue from, so diagnostics say so rather
        # than claiming a cold solve against a warm_source that says hit.
        point = build_seeds(expr, constraints)[0]
        return SolverResult(
            bandwidths=tuple(float(b) for b in point),
            objective=program.objective_const,
            success=True,
            message="bandwidth-independent objective",
            starts=1,
            warm_start=(
                "" if warm_start is None else "rejected:bandwidth-independent"
            ),
        )

    blocks = _blocks
    if blocks is None and kernel == "vectorized":
        blocks = build_constraint_blocks(program, constraints)

    gradient = np.concatenate([np.zeros(program.num_dims), program.objective_weights])

    num_dims = program.num_dims
    objective_const = program.objective_const
    objective_weights = program.objective_weights

    def objective(x: np.ndarray) -> float:
        return objective_const + objective_weights @ x[num_dims:]

    def objective_grad(x: np.ndarray) -> np.ndarray:
        return gradient

    evaluate_true = vector_evaluator(simplify(expr))
    seeds = build_seeds(expr, constraints)
    if max_starts is not None:
        seeds = seeds[: max(1, max_starts)]

    warm_tag = ""
    warm_candidates: list[tuple[np.ndarray, float, bool, str]] = []
    if warm_start is not None:
        if trust_rtol is None:
            trust_rtol = WARM_TRUST_RTOL
        warm_seed = project_warm_start(warm_start, constraints)
        if warm_seed is None:
            warm_tag = "rejected:unprojectable"
        else:
            candidate, reason = _try_warm(
                program, constraints, objective, objective_grad,
                evaluate_true, warm_seed, seeds, blocks, trust_rtol,
            )
            if not reason:
                # The projected warm seed joins the fallback pool: the
                # returned point can never be worse than the continuation
                # anchor (the prior optimum reshaped onto this budget).
                result = _finish(
                    program, constraints, evaluate_true,
                    [candidate] + _seed_fallbacks(
                        program, seeds + [warm_seed], program.objective_value
                    ),
                    starts=1,
                )
                return replace(result, warm_start="accepted")
            warm_tag = f"rejected:{reason}"
            # Pool the warm run instead of re-seeding: _solve_from_seed is
            # deterministic, so re-running from warm_seed would just pay
            # the dominant per-cell cost twice for the identical result.
            warm_candidates = [candidate]

    candidates = list(warm_candidates)
    for index, seed in enumerate(seeds):
        _checkpoint(should_stop, f"before start {index + 1} of {len(seeds)}")
        candidates.append(
            _solve_from_seed(
                program, constraints, objective, objective_grad, seed,
                blocks=blocks,
            )
        )
    # The seeds themselves are feasible fallbacks (aux tight = true value).
    candidates.extend(_seed_fallbacks(program, seeds, program.objective_value))
    result = _finish(
        program, constraints, evaluate_true, candidates,
        len(seeds) + len(warm_candidates),
    )
    return replace(result, warm_start=warm_tag) if warm_tag else result


@_observed_solve("ppc")
def minimize_time_cost_product(
    expr: Expr,
    constraints: ConstraintSet,
    cost_rates: Sequence[float],
    fixed_cost: float = 0.0,
    kernel: str = "vectorized",
    max_starts: int | None = None,
    warm_start: Sequence[float] | None = None,
    trust_rtol: float | None = None,
    perf_warm_starts: int | None = None,
    should_stop: Callable[[], bool] | None = None,
) -> SolverResult:
    """PerfPerCostOptBW: minimize time × dollar-cost (bilinear objective).

    Args:
        expr: Training-time expression.
        constraints: Designer constraint set.
        cost_rates: ``$ per (byte/s)`` per dimension — network-cost slope,
            *already multiplied by the NPU count* (see
            :func:`repro.cost.estimator.cost_rates`).
        fixed_cost: Bandwidth-independent cost offset in dollars.
        kernel: ``"vectorized"`` (matrix-form blocks, default) or
            ``"closures"`` (the per-constraint reference path).
        max_starts: Cap on the multi-start seed family (the PerfOpt warm
            start is appended on top); ``None`` keeps every seed.
        warm_start: Prior optimum (bytes/s) used as a continuation seed;
            a trusted warm run skips both the seed fan-out *and* the inner
            PerfOpt warm-start solve. ``None`` is the cold path (default).
        trust_rtol: Relative drift tolerance of the trust check;
            ``None`` reads :data:`WARM_TRUST_RTOL` at call time.
        perf_warm_starts: Seed cap for the internal PerfOpt warm-start
            solve; ``None`` picks :data:`DEFAULT_PERF_WARM_STARTS` on the
            vectorized kernel and the full family on the closure kernel
            (the historical behavior).
        should_stop: Cooperative cancellation predicate, polled between
            multi-start seeds (including the inner PerfOpt solve's); a
            true return raises :class:`JobCancelled`.
    """
    _check_kernel(kernel)
    _checkpoint(should_stop, "before the first start")
    program = compile_expression(expr, constraints.num_dims)
    rates = np.asarray(cost_rates, dtype=float)
    if rates.shape != (constraints.num_dims,):
        raise OptimizationError(
            f"expected {constraints.num_dims} cost rates, got {rates.shape}"
        )
    rates_scaled = rates * _SCALE  # $ per GB/s

    blocks: ConstraintBlocks | None = None
    if kernel == "vectorized" and program.num_aux > 0:
        blocks = build_constraint_blocks(program, constraints)

    time_evaluator = vector_evaluator(simplify(expr))

    def evaluate_true(bandwidths: np.ndarray) -> float:
        return time_evaluator(bandwidths) * (
            fixed_cost + float(rates @ bandwidths)
        )

    seeds = build_seeds(expr, constraints, cost_rates=rates)
    if max_starts is not None:
        seeds = seeds[: max(1, max_starts)]

    # Normalize the product objective to O(1): raw time×dollar values reach
    # 1e7+, which defeats SLSQP's convergence tests and line search.
    scale = max(evaluate_true(seeds[0]), 1e-30)

    num_dims = program.num_dims
    objective_const = program.objective_const
    objective_weights = program.objective_weights

    def objective(x: np.ndarray) -> float:
        return (
            (objective_const + objective_weights @ x[num_dims:])
            * (fixed_cost + rates_scaled @ x[:num_dims])
            / scale
        )

    # One reusable gradient buffer: SLSQP consumes the values before the
    # next gradient evaluation, so in-place rewrites are safe and avoid a
    # per-iteration allocation.
    gradient_buffer = np.zeros(num_dims + program.num_aux)

    def objective_grad(x: np.ndarray) -> np.ndarray:
        time_value = objective_const + objective_weights @ x[num_dims:]
        cost_value = fixed_cost + rates_scaled @ x[:num_dims]
        gradient_buffer[:num_dims] = time_value * rates_scaled / scale
        gradient_buffer[num_dims:] = cost_value * objective_weights / scale
        return gradient_buffer

    # Continuation: a trusted warm run skips the whole fan-out below —
    # including the inner PerfOpt solve, the dominant cost of a cold
    # PerfPerCost call. A distrusted warm run joins the candidate pool.
    warm_tag = ""
    warm_candidates: list[tuple[np.ndarray, float, bool, str]] = []
    if warm_start is not None and program.num_aux > 0:
        if trust_rtol is None:
            trust_rtol = WARM_TRUST_RTOL
        warm_seed = project_warm_start(warm_start, constraints)
        if warm_seed is None:
            warm_tag = "rejected:unprojectable"
        else:
            candidate, reason = _try_warm(
                program, constraints, objective, objective_grad,
                evaluate_true, warm_seed, seeds, blocks, trust_rtol,
            )
            if not reason:
                # As in minimize_training_time: the projected warm seed is
                # the continuation anchor and joins the fallback pool.
                result = _finish(
                    program, constraints, evaluate_true,
                    [candidate] + _seed_fallbacks(
                        program, seeds + [warm_seed], objective
                    ),
                    starts=1,
                )
                return replace(result, warm_start="accepted")
            warm_tag = f"rejected:{reason}"
            # Pool, don't re-seed: the solve is deterministic (see
            # minimize_training_time).
            warm_candidates = [candidate]

    # Warm-start from the PerfOpt solution: the time-cost product is
    # bilinear, and the pure-performance optimum is both a strong basin and
    # a guarantee that PerfPerCostOpt never reports a worse perf-per-cost
    # than PerfOpt (its evaluation joins the candidate pool below). The
    # compiled program and constraint blocks are shared with that inner
    # solve, so the warm start never recompiles anything — and since
    # PerfOpt is convex (every converging seed reaches the same optimum),
    # the vectorized kernel runs it from the two strongest seeds only.
    try:
        perf_result = minimize_training_time(
            expr,
            constraints,
            kernel=kernel,
            _blocks=blocks,
            max_starts=(
                perf_warm_starts if perf_warm_starts is not None
                else (DEFAULT_PERF_WARM_STARTS if kernel == "vectorized" else None)
            ),
            should_stop=should_stop,
        )
        seeds.append(np.asarray(perf_result.bandwidths, dtype=float))
    except OptimizationError:
        pass
    if program.num_aux == 0:
        # Compute-bound: minimizing cost alone is optimal — push bandwidth to
        # the cheapest feasible corner via the linear cost objective.
        candidates = []
        for seed in seeds:
            x = seed / _SCALE
            candidates.append((x, evaluate_true(seed), True, "cost-only"))
        result = _finish(
            program, constraints, evaluate_true, candidates, len(seeds)
        )
        if warm_start is not None:
            return replace(result, warm_start="rejected:bandwidth-independent")
        return result

    candidates = list(warm_candidates)
    for index, seed in enumerate(seeds):
        _checkpoint(should_stop, f"before start {index + 1} of {len(seeds)}")
        candidates.append(
            _solve_from_seed(
                program, constraints, objective, objective_grad, seed,
                blocks=blocks,
            )
        )
    candidates.extend(_seed_fallbacks(program, seeds, objective))
    result = _finish(
        program, constraints, evaluate_true, candidates,
        len(seeds) + len(warm_candidates),
    )
    return replace(result, warm_start=warm_tag) if warm_tag else result

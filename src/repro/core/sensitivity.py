"""Bandwidth sensitivity analysis at a design point.

Once LIBRA proposes an allocation, a designer's next question is *where the
next GB/s should go* — which dimension's bandwidth is the binding resource,
and how flat the optimum is. This module differentiates the symbolic
training-time expression numerically and turns the result into a marginal-
value report:

* ``dT/dB_i`` — seconds saved per extra byte/s on dimension *i* (≤ 0);
* the *binding set* — dimensions whose marginal value is within tolerance
  of the best;
* transfer gradients — the benefit of moving budget from one dimension to
  another at fixed total, exposing constraint pressure.

A caveat for points *at* a water-filling optimum: the objective has a kink
there (several dimensions co-bottleneck a ``max``), so central differences
report half-slopes that scale as ``T/B_i`` — smaller dimensions look more
"valuable" even though no budget transfer actually helps. Use direct
re-evaluation (as the optimality tests do) to certify an optimum; use this
module to rank *off-optimum* points and to find the binding structure.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.training.expr import Expr
from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class SensitivityReport:
    """Marginal values of bandwidth at one design point.

    Attributes:
        bandwidths: The evaluated point, bytes/s.
        step_time: Training-step seconds at the point.
        marginals: ``dT/dB_i`` in seconds per (byte/s); non-positive.
    """

    bandwidths: tuple[float, ...]
    step_time: float
    marginals: tuple[float, ...]

    @property
    def most_valuable_dim(self) -> int:
        """Dimension where an extra unit of bandwidth helps most."""
        return int(np.argmin(self.marginals))  # most negative

    def binding_dims(self, tolerance: float = 0.05) -> tuple[int, ...]:
        """Dimensions whose marginal value is within ``tolerance`` (relative)
        of the best. A singleton means one dimension bottlenecks the step;
        at a clean water-filling optimum every loaded dimension appears."""
        best = min(self.marginals)
        if best >= 0.0:
            return ()
        return tuple(
            dim
            for dim, value in enumerate(self.marginals)
            if value <= best * (1 - tolerance)
        )

    def transfer_gradient(self, source: int, target: int) -> float:
        """Seconds saved per byte/s moved from ``source`` to ``target``.

        Positive = the move helps. Zero across all pairs characterizes an
        interior optimum of the budget-constrained problem.
        """
        num = len(self.marginals)
        if not (0 <= source < num and 0 <= target < num):
            raise ConfigurationError(f"dimension out of range: {source}, {target}")
        return self.marginals[source] - self.marginals[target]

    def seconds_per_extra_gbps(self) -> tuple[float, ...]:
        """Marginals rescaled to seconds saved per extra GB/s (≥ 0)."""
        return tuple(-value * 1e9 for value in self.marginals)


def bandwidth_sensitivity(
    expression: Expr,
    bandwidths: Sequence[float],
    relative_step: float = 1e-4,
) -> SensitivityReport:
    """Central-difference sensitivity of a time expression at a point.

    Args:
        expression: Symbolic step time (from the estimator or pipeline
            model).
        bandwidths: Evaluation point, bytes/s; all entries must be positive.
        relative_step: Finite-difference step as a fraction of each
            bandwidth.
    """
    point = np.asarray(bandwidths, dtype=float)
    if point.ndim != 1 or point.size == 0:
        raise ConfigurationError("bandwidths must be a non-empty vector")
    if np.any(point <= 0):
        raise ConfigurationError(f"bandwidths must be positive, got {point}")
    if not 0 < relative_step < 0.5:
        raise ConfigurationError(f"relative_step must be in (0, 0.5), got {relative_step}")

    base_time = expression.evaluate(point)
    marginals = []
    for dim in range(point.size):
        step = point[dim] * relative_step
        upper = point.copy()
        lower = point.copy()
        upper[dim] += step
        lower[dim] -= step
        marginals.append(
            (expression.evaluate(upper) - expression.evaluate(lower)) / (2 * step)
        )
    return SensitivityReport(
        bandwidths=tuple(float(value) for value in point),
        step_time=base_time,
        marginals=tuple(marginals),
    )

"""Bandwidth sensitivity analysis at a design point.

Once LIBRA proposes an allocation, a designer's next question is *where the
next GB/s should go* — which dimension's bandwidth is the binding resource,
and how flat the optimum is. This module differentiates the symbolic
training-time expression numerically and turns the result into a marginal-
value report:

* ``dT/dB_i`` — seconds saved per extra byte/s on dimension *i* (≤ 0);
* the *binding set* — dimensions whose marginal value is within tolerance
  of the best;
* transfer gradients — the benefit of moving budget from one dimension to
  another at fixed total, exposing constraint pressure.

The objective has a kink at a water-filling optimum (several dimensions
co-bottleneck a ``max``), where the two one-sided slopes genuinely differ:
shrinking a loaded dimension costs ``~T/B_i`` while growing it buys
nothing. ``mode="central"`` (the historical default) averages the two and
reports half-slopes — fine for ranking *off-optimum* points, misleading at
the kink itself. ``mode="backward"`` measures the loss from *taking
bandwidth away* (what "binding" means at an optimum) and ``mode="forward"``
the gain from adding it; :func:`one_sided_gap` exposes the difference as a
per-dimension kink detector. To certify a solved point, skip derivatives
entirely and use :func:`certify_optimum` — direct re-evaluation of
budget-preserving transfers, the correct first-order statement at a kink.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.training.expr import Expr
from repro.utils.errors import ConfigurationError

#: Finite-difference modes accepted by :func:`bandwidth_sensitivity`.
SENSITIVITY_MODES = ("central", "forward", "backward")


@dataclass(frozen=True)
class SensitivityReport:
    """Marginal values of bandwidth at one design point.

    Every field is a plain Python float — the payload round-trips through
    ``json.dumps`` with no custom encoder.

    Attributes:
        bandwidths: The evaluated point, bytes/s.
        step_time: Training-step seconds at the point.
        marginals: ``dT/dB_i`` in seconds per (byte/s); non-positive.
        mode: Finite-difference mode the marginals were computed with.
    """

    bandwidths: tuple[float, ...]
    step_time: float
    marginals: tuple[float, ...]
    mode: str = "central"

    @property
    def most_valuable_dim(self) -> int:
        """Dimension where an extra unit of bandwidth helps most."""
        return int(np.argmin(self.marginals))  # most negative

    def binding_dims(self, tolerance: float = 0.05) -> tuple[int, ...]:
        """Dimensions whose marginal value is within ``tolerance`` (relative)
        of the best. A singleton means one dimension bottlenecks the step;
        at a clean water-filling optimum every loaded dimension appears
        (use ``mode="backward"`` there — see the module docstring)."""
        best = min(self.marginals)
        if best >= 0.0:
            return ()
        return tuple(
            dim
            for dim, value in enumerate(self.marginals)
            if value <= best * (1 - tolerance)
        )

    def transfer_gradient(self, source: int, target: int) -> float:
        """Seconds saved per byte/s moved from ``source`` to ``target``.

        Positive = the move helps. Zero across all pairs characterizes an
        interior optimum of the budget-constrained problem.
        """
        num = len(self.marginals)
        if not (0 <= source < num and 0 <= target < num):
            raise ConfigurationError(f"dimension out of range: {source}, {target}")
        return self.marginals[source] - self.marginals[target]

    def seconds_per_extra_gbps(self) -> tuple[float, ...]:
        """Marginals rescaled to seconds saved per extra GB/s (≥ 0)."""
        return tuple(-value * 1e9 for value in self.marginals)

    def to_dict(self) -> dict:
        """A ``json.dumps``-able payload (plain floats throughout)."""
        return {
            "bandwidths": list(self.bandwidths),
            "step_time": self.step_time,
            "marginals": list(self.marginals),
            "mode": self.mode,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> SensitivityReport:
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"sensitivity payload must be a mapping, got {type(payload).__name__}"
            )
        try:
            return cls(
                bandwidths=tuple(float(v) for v in payload["bandwidths"]),
                step_time=float(payload["step_time"]),
                marginals=tuple(float(v) for v in payload["marginals"]),
                mode=str(payload.get("mode", "central")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad sensitivity payload: {exc}") from exc


@dataclass(frozen=True)
class OptimalityCertificate:
    """Result of certifying a point by direct re-evaluation.

    Attributes:
        step_time: Step seconds at the certified point.
        relative_delta: Transfer size as a fraction of the smallest
            bandwidth at the point.
        tolerance: Relative improvement below which a move counts as noise.
        best_gain: Largest relative step-time *reduction* any probed
            budget-preserving transfer achieved (≥ 0; ≤ ``tolerance``
            iff the point certifies).
        best_move: ``(source, target)`` of the most improving transfer,
            or ``None`` when nothing helped at all.
        certified: True when no transfer beats the tolerance.
    """

    step_time: float
    relative_delta: float
    tolerance: float
    best_gain: float
    best_move: tuple[int, int] | None
    certified: bool

    def to_dict(self) -> dict:
        return {
            "step_time": self.step_time,
            "relative_delta": self.relative_delta,
            "tolerance": self.tolerance,
            "best_gain": self.best_gain,
            "best_move": list(self.best_move) if self.best_move else None,
            "certified": self.certified,
        }


def _validated_point(bandwidths: Sequence[float]) -> np.ndarray:
    point = np.asarray(bandwidths, dtype=float)
    if point.ndim != 1 or point.size == 0:
        raise ConfigurationError("bandwidths must be a non-empty vector")
    if np.any(point <= 0):
        raise ConfigurationError(f"bandwidths must be positive, got {point}")
    return point


def bandwidth_sensitivity(
    expression: Expr,
    bandwidths: Sequence[float],
    relative_step: float = 1e-4,
    mode: str = "central",
) -> SensitivityReport:
    """Finite-difference sensitivity of a time expression at a point.

    Args:
        expression: Symbolic step time (from the estimator or pipeline
            model).
        bandwidths: Evaluation point, bytes/s; all entries must be positive.
        relative_step: Finite-difference step as a fraction of each
            bandwidth.
        mode: ``"central"`` (default), ``"forward"`` (slope of adding
            bandwidth), or ``"backward"`` (slope of removing it). At a
            water-filling kink the one-sided modes are exact where central
            reports half-slopes.
    """
    point = _validated_point(bandwidths)
    if not 0 < relative_step < 0.5:
        raise ConfigurationError(f"relative_step must be in (0, 0.5), got {relative_step}")
    if mode not in SENSITIVITY_MODES:
        raise ConfigurationError(
            f"mode must be one of {SENSITIVITY_MODES}, got {mode!r}"
        )

    base_time = float(expression.evaluate(point))
    marginals = []
    for dim in range(point.size):
        step = point[dim] * relative_step
        upper = point.copy()
        lower = point.copy()
        upper[dim] += step
        lower[dim] -= step
        if mode == "forward":
            slope = (float(expression.evaluate(upper)) - base_time) / step
        elif mode == "backward":
            slope = (base_time - float(expression.evaluate(lower))) / step
        else:
            slope = (
                float(expression.evaluate(upper)) - float(expression.evaluate(lower))
            ) / (2 * step)
        marginals.append(float(slope))
    return SensitivityReport(
        bandwidths=tuple(float(value) for value in point),
        step_time=base_time,
        marginals=tuple(marginals),
        mode=mode,
    )


def one_sided_gap(
    expression: Expr,
    bandwidths: Sequence[float],
    relative_step: float = 1e-4,
) -> tuple[float, ...]:
    """Per-dimension ``forward − backward`` slope gap (≥ 0 up to noise).

    Zero where the objective is smooth; ``~T/B_i`` where dimension *i*
    sits on a water-filling kink (the backward slope is steeply negative
    there while the forward slope vanishes) — a direct kink detector.
    """
    forward = bandwidth_sensitivity(
        expression, bandwidths, relative_step, mode="forward"
    )
    backward = bandwidth_sensitivity(
        expression, bandwidths, relative_step, mode="backward"
    )
    return tuple(
        float(f - b) for f, b in zip(forward.marginals, backward.marginals)
    )


def certify_optimum(
    expression: Expr,
    bandwidths: Sequence[float],
    relative_delta: float = 0.01,
    tolerance: float = 1e-6,
) -> OptimalityCertificate:
    """Certify a budget-constrained optimum by direct re-evaluation.

    Probes every ordered pair ``(source, target)`` with a budget-preserving
    transfer of ``relative_delta × min(bandwidths)`` and reports the best
    relative improvement found. This is the statement the optimality tests
    make and the one that stays correct at water-filling kinks, where
    derivative-based checks mis-rank.

    Args:
        expression: Symbolic step time.
        bandwidths: Candidate optimum, bytes/s; all entries positive.
        relative_delta: Transfer size as a fraction of the smallest
            bandwidth (keeps every probe strictly feasible).
        tolerance: Relative improvement below which the point certifies.
    """
    point = _validated_point(bandwidths)
    if not 0 < relative_delta < 1:
        raise ConfigurationError(
            f"relative_delta must be in (0, 1), got {relative_delta}"
        )
    if tolerance <= 0:
        raise ConfigurationError(f"tolerance must be positive, got {tolerance}")
    base = float(expression.evaluate(point))
    delta = float(point.min()) * relative_delta
    best_gain = 0.0
    best_move: tuple[int, int] | None = None
    for source in range(point.size):
        for target in range(point.size):
            if source == target:
                continue
            moved = point.copy()
            moved[source] -= delta
            moved[target] += delta
            time = float(expression.evaluate(moved))
            gain = (base - time) / base if base > 0 else 0.0
            if gain > best_gain:
                best_gain = gain
                best_move = (source, target)
    return OptimalityCertificate(
        step_time=base,
        relative_delta=relative_delta,
        tolerance=tolerance,
        best_gain=best_gain,
        best_move=best_move,
        certified=best_gain <= tolerance,
    )

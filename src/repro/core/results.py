"""Design-point result objects returned by the framework."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.utils.errors import ConfigurationError
from repro.utils.units import GBPS


class Scheme(enum.Enum):
    """The bandwidth-allocation schemes of Sec. IV-F and the baseline."""

    EQUAL_BW = "EqualBW"
    PERF_OPT = "PerfOptBW"
    PERF_PER_COST_OPT = "PerfPerCostOptBW"


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated network bandwidth configuration.

    Attributes:
        scheme: How the configuration was produced.
        bandwidths: Per-dimension per-NPU bandwidth, bytes/s.
        step_times: Training-step seconds per workload name.
        network_cost: Dollar cost of the whole network.
        solver_message: Diagnostics from the optimizer (empty for baselines).
    """

    scheme: Scheme
    bandwidths: tuple[float, ...]
    step_times: dict[str, float]
    network_cost: float
    solver_message: str = ""

    def __post_init__(self) -> None:
        if not self.bandwidths:
            raise ConfigurationError("design point needs at least one bandwidth")
        if any(b < 0 for b in self.bandwidths):
            raise ConfigurationError(f"negative bandwidth in {self.bandwidths}")
        if self.network_cost < 0:
            raise ConfigurationError(f"negative network cost {self.network_cost}")

    @property
    def total_bandwidth(self) -> float:
        """Aggregate per-NPU bandwidth, bytes/s."""
        return sum(self.bandwidths)

    @property
    def weighted_step_time(self) -> float:
        """Sum of workload step times (the group objective with unit weights)."""
        return sum(self.step_times.values())

    def step_time(self, workload_name: str | None = None) -> float:
        """Step time of one workload (or the only one when unnamed)."""
        if workload_name is None:
            if len(self.step_times) != 1:
                raise ConfigurationError(
                    f"design point covers {sorted(self.step_times)}; name one"
                )
            return next(iter(self.step_times.values()))
        try:
            return self.step_times[workload_name]
        except KeyError:
            raise ConfigurationError(
                f"no step time recorded for {workload_name!r}; "
                f"known: {sorted(self.step_times)}"
            ) from None

    def speedup_over(self, baseline: "DesignPoint", workload_name: str | None = None) -> float:
        """Training speedup vs a baseline point: ``T_base / T_this``."""
        return baseline.step_time(workload_name) / self.step_time(workload_name)

    def perf_per_cost_gain_over(
        self, baseline: "DesignPoint", workload_name: str | None = None
    ) -> float:
        """Perf-per-cost ratio vs a baseline: ``(T·C)_base / (T·C)_this``.

        Perf-per-cost is ``1 / (time × cost)``, so the *gain* is the inverse
        ratio of the time-cost products (Sec. IV-F).
        """
        ours = self.step_time(workload_name) * self.network_cost
        theirs = baseline.step_time(workload_name) * baseline.network_cost
        if ours <= 0:
            raise ConfigurationError("degenerate design point with zero time-cost product")
        return theirs / ours

    def bandwidths_gbps(self) -> tuple[float, ...]:
        """Bandwidths in GB/s for reports."""
        return tuple(b / GBPS for b in self.bandwidths)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready payload; inverse of :meth:`from_dict`.

        Every number is coerced to a native float: solver paths hand design
        points numpy scalars, which ``json.dumps`` refuses to encode.
        """
        return {
            "scheme": self.scheme.value,
            "bandwidths": [float(b) for b in self.bandwidths],
            "step_times": {
                name: float(time) for name, time in self.step_times.items()
            },
            "network_cost": float(self.network_cost),
            "solver_message": self.solver_message,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DesignPoint":
        """Rebuild a design point from :meth:`to_dict` output."""
        try:
            return cls(
                scheme=Scheme(payload["scheme"]),
                bandwidths=tuple(float(b) for b in payload["bandwidths"]),
                step_times={
                    str(name): float(t)
                    for name, t in payload["step_times"].items()
                },
                network_cost=float(payload["network_cost"]),
                solver_message=str(payload.get("solver_message", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed design-point payload: {exc}"
            ) from exc

    def describe(self) -> str:
        """One-line summary for logs and benchmark output."""
        bws = ", ".join(f"{b:.1f}" for b in self.bandwidths_gbps())
        times = ", ".join(
            f"{name}: {time * 1e3:.2f} ms" for name, time in sorted(self.step_times.items())
        )
        return (
            f"{self.scheme.value}: [{bws}] GB/s, cost ${self.network_cost:,.0f}, {times}"
        )

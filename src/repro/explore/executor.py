"""Sweep execution: cache lookup, chained continuation solving, assembly.

:func:`run_sweep` is the engine's entry point. It expands a spec (or takes
an explicit point list), serves every cell it can from the cache, and
partitions the remainder into *continuation chains*
(:mod:`repro.explore.chains`): same workload × topology × scheme × cost
model × caps, sorted by ascending budget. Chains solve sequentially —
each cell's optimum becomes the next cell's ``warm_start`` seed — and are
the unit of process-pool fan-out, so warm-start propagation survives
parallel execution without any cross-process state. Rows are assembled
back in grid order, so serial, parallel, and cached runs of the same spec
are indistinguishable except for wall-clock time.

``continuation=False`` restores the cold path (every cell pays the full
multi-start bill from cold seeds) — the reference the sweep benchmark and
the warm-vs-cold equivalence suite compare against.

Failure containment: a cell that cannot be built or solved becomes an error
row (``ExplorationResult.error`` set), never a sweep abort. *Transient*
failures retry first — :class:`~repro.utils.errors.TransientError` cells
re-attempt in place (:data:`CELL_RETRY_ATTEMPTS`, exponential backoff) and
a chain whose pool worker died requeues on a fresh pool
(:data:`CHAIN_RETRY_ATTEMPTS` rounds) — and only past those budgets is the
work *quarantined* into error rows, which are never cached. Identical cells
appearing more than once in a grid are solved once and fanned back out;
``SweepResult.fanout_cells`` reports how many rows were served that way.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable, Iterable
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from functools import lru_cache

from repro.api.registry import resolve_workload
from repro.api.requests import OptimizeRequest
from repro.api.scenario import Scenario, ScenarioWorkload
from repro.api.service import get_service
from repro.core.results import Scheme
from repro.serve import faults
from repro.utils.errors import JobCancelled, ReproError, TransientError
from repro.workloads.workload import Workload

from repro.explore.cache import ResultCache
from repro.explore.chains import build_chains, chain_label, chain_signature
from repro.explore.keys import point_constraints, point_key, resolve_topology
from repro.explore.records import ExplorationResult, SweepProfile, SweepResult
from repro.explore.spec import ExplorationPoint, SweepSpec
from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names
from repro.obs import trace as obs_trace

#: Solve attempts per cell before a transient failure is quarantined as
#: an error row. Permanent failures (bad input, infeasible problem) never
#: retry — only :class:`~repro.utils.errors.TransientError` does.
CELL_RETRY_ATTEMPTS = 3

#: Base of the per-cell retry backoff (``base * 2**(attempt-1)`` seconds).
CELL_RETRY_BACKOFF_S = 0.05

#: Requeue rounds a chain survives after its pool worker died before its
#: remaining cells are quarantined as error rows. Worker death takes all
#: in-flight chains down with it, so attribution is round-grained: every
#: unfinished chain's counter bumps and the poisoned one exhausts the
#: budget within this many rounds.
CHAIN_RETRY_ATTEMPTS = 2

#: Base backoff between pool-rebuild rounds (seconds, exponential).
POOL_RETRY_BACKOFF_S = 0.25

#: Called after each resolved cell with (done, total, result).
ProgressCallback = Callable[[int, int, ExplorationResult], None]

#: Called with structured progress dicts (the callback seam consumers such
#: as ``repro.serve`` adapt into typed events). Every dict carries a
#: ``"type"`` discriminator:
#:
#: * ``"plan"`` — after cache lookup: ``total``, ``cached``, ``chains``,
#:   ``solver_calls``, ``fanout_cells``.
#: * ``"cell"`` — one grid cell resolved: ``done``, ``total``, ``label``,
#:   ``key``, ``status`` (``cached`` / ``solved`` / ``error``),
#:   ``warm_start``, ``error``.
#: * ``"chain"`` — continuation-chain progress: ``status``, ``chain``,
#:   ``chains``, ``cells``, ``label``. Inline runs emit ``start``/``done``
#:   around each chain; pool runs emit ``queued`` at submission (the
#:   coordinator cannot observe when a worker actually picks a chain up)
#:   and ``done`` at completion, plus ``requeued`` when a dead pool
#:   worker forces a chain onto a fresh pool and ``quarantined`` when a
#:   chain exhausts its requeue budget (its cells become error rows).
EventCallback = Callable[[dict], None]


def _init_pool_worker(registry_entries) -> None:
    """Pool-worker initializer: replay the parent's custom registrations.

    Only needed for non-``fork`` start methods, whose workers re-import
    the registry module and would otherwise know just the builtins.
    """
    from repro.api.registry import install_entries

    install_entries(registry_entries)


@lru_cache(maxsize=64)
def _resolve_topology_cached(name_or_notation: str):
    """Per-worker LRU over topology resolution.

    A budget sweep hands every cell of one grid column the same topology
    string; without this, each process-pool worker rebuilds the network
    graph for every cell it solves. Networks are treated as immutable
    downstream, so sharing one instance per worker is safe. Failures
    propagate uncached, preserving per-point error capture.
    """
    return resolve_topology(name_or_notation)


@lru_cache(maxsize=64)
def _build_workload_cached(preset: str, num_npus: int) -> Workload:
    """Per-worker LRU over preset workload construction (same rationale)."""
    return resolve_workload(preset, num_npus)


def point_scenario(point: ExplorationPoint) -> Scenario:
    """The :class:`Scenario` one exploration cell describes.

    This is the payload actually shipped through the service — the worker
    no longer hand-assembles a ``Libra``; it states the problem and lets
    the per-process service compile it (memoized on the canonical key, so
    every cell of a grid column sharing one workload × topology reuses one
    compiled engine).
    """
    network = _resolve_topology_cached(point.topology)
    if isinstance(point.workload, Workload):
        entry = ScenarioWorkload(workload=point.workload)
    else:
        entry = ScenarioWorkload(
            workload=_build_workload_cached(point.workload, network.num_npus),
            preset=point.workload,
        )
    return Scenario(
        network=network,
        workloads=(entry,),
        constraints=point_constraints(point, network.num_dims),
        cost_model=point.cost_model,
    )


def solve_point(
    point: ExplorationPoint,
    key: str = "",
    warm_start: tuple[float, ...] | None = None,
    should_stop: Callable[[], bool] | None = None,
    service=None,
) -> ExplorationResult:
    """Solve one exploration cell, capturing any failure as an error row.

    ``warm_start`` (GB/s) is a prior optimum from a continuation neighbor;
    ``None`` is the cold path (the default, and the only path for EqualBW
    cells, where the request layer ignores warm seeds). ``should_stop``
    reaches the solver's between-seed cancellation checkpoints; a
    :class:`JobCancelled` raised there *propagates* — cancellation is not
    a cell failure and must never be pinned as an error row. ``service``
    is the executing :class:`~repro.api.service.LibraService`; ``None``
    uses the per-process default.

    Transient failures (:class:`~repro.utils.errors.TransientError`, e.g.
    injected worker faults) are retried in place up to
    :data:`CELL_RETRY_ATTEMPTS` times with bounded exponential backoff;
    past the budget the cell is *quarantined* — an error row whose
    message says so — rather than failing the sweep. Error rows are never
    cached, so a quarantined cell re-solves on the next run.
    """
    last_transient: TransientError | None = None
    for attempt in range(CELL_RETRY_ATTEMPTS):
        if attempt:
            time.sleep(CELL_RETRY_BACKOFF_S * 2 ** (attempt - 1))
            obs_metrics.get_registry().counter(
                obs_names.JOB_RETRIES,
                "Transient-failure retries (job requeues and chain requeues).",
            ).inc()
        try:
            faults.fire("worker.solve")
            response = (
                service if service is not None else get_service()
            ).submit(
                OptimizeRequest(
                    scenario=point_scenario(point),
                    scheme=point.scheme,
                    warm_start=warm_start,
                ),
                should_stop=should_stop,
            )
            optimized = response.point
            diagnostics = response.diagnostics or {}
            return ExplorationResult(
                point=point,
                key=key,
                bandwidths_gbps=optimized.bandwidths_gbps(),
                step_times_ms={
                    name: time * 1e3
                    for name, time in optimized.step_times.items()
                },
                network_cost=optimized.network_cost,
                speedup_over_equal=response.speedup_over_baseline or 0.0,
                ppc_gain_over_equal=response.ppc_gain_over_baseline or 0.0,
                solver_message=optimized.solver_message,
                solver_starts=int(diagnostics.get("starts", 0)),
                warm_start=str(diagnostics.get("warm_start", "")),
            )
        except JobCancelled:
            raise
        except TransientError as exc:
            last_transient = exc
            continue
        except Exception as exc:  # noqa: BLE001 — error containment is the contract
            return ExplorationResult(
                point=point,
                key=key,
                error=f"{type(exc).__name__}: {exc}",
            )
    return ExplorationResult(
        point=point,
        key=key,
        error=(
            f"quarantined after {CELL_RETRY_ATTEMPTS} transient failures: "
            f"{type(last_transient).__name__}: {last_transient}"
        ),
    )


def _iter_chain(
    chain: list[tuple[str, ExplorationPoint]],
    continuation: bool,
    initial_warm: tuple[float, ...] | None = None,
    should_stop: Callable[[], bool] | None = None,
    service=None,
):
    """Solve one continuation chain in budget order, yielding per cell.

    Each cell warm-starts from the most recent *successful* optimum in the
    chain; the first cell starts from ``initial_warm`` — a budget-neighbor
    the cache already answered, when one exists — or cold. The whole chain
    runs in one process, so propagation needs no cross-worker state.

    Yielding cell-by-cell (rather than returning the finished chain) is
    what makes cancellation lossless on the inline path: every yielded row
    is installed — and cached — before the next cell's ``should_stop``
    checkpoint can raise :class:`JobCancelled`.
    """
    warm = initial_warm if continuation else None
    for key, point in chain:
        if should_stop is not None and should_stop():
            raise JobCancelled("sweep cancelled between cells")
        # Cell spans record on whichever process runs the chain: the
        # coordinator inline, or a pool worker — where the tracer is the
        # fresh process's no-op default, so pool results stay bit-identical
        # to serial ones whether or not the coordinator traces.
        tracer = obs_trace.get_tracer()
        if tracer is obs_trace.NULL_TRACER:
            result = solve_point(
                point, key=key, warm_start=warm, should_stop=should_stop,
                service=service,
            )
        else:
            with tracer.span("cell", attrs={"label": point.label()}) as span:
                result = solve_point(
                    point, key=key, warm_start=warm, should_stop=should_stop,
                    service=service,
                )
                span.set("status", "solved" if result.ok else "error")
                span.set("warm_start", result.warm_start)
        yield key, result
        if continuation and result.ok and point.scheme is not Scheme.EQUAL_BW:
            warm = result.bandwidths_gbps


def _solve_chain(
    chain: list[tuple[str, ExplorationPoint]],
    continuation: bool,
    initial_warm: tuple[float, ...] | None = None,
) -> list[tuple[str, ExplorationResult]]:
    """Pool-worker entry: one whole chain, solved in its worker process.

    No ``should_stop`` here — predicates do not cross process boundaries;
    in pool mode the *coordinator* cancels between chain completions.
    """
    return list(_iter_chain(chain, continuation, initial_warm))


def _cached_neighbor_seed(
    chain: list[tuple[str, ExplorationPoint]],
    cached_by_signature: dict[tuple, list[tuple[float, tuple[float, ...]]]],
) -> tuple[float, ...] | None:
    """The warm seed a chain's first cell inherits from cached neighbors.

    Widening a cached sweep by one budget must not pay a cold solve while
    the neighboring optima sit in the rows phase 1 just served: the
    nearest cached budget of the same continuation family (preferring the
    largest at-or-below, matching ascending chain order) seeds the chain.
    """
    _, first = chain[0]
    if first.scheme is Scheme.EQUAL_BW:
        return None
    candidates = cached_by_signature.get(chain_signature(first))
    if not candidates:
        return None
    budget = first.total_bw_gbps
    below = [entry for entry in candidates if entry[0] <= budget]
    pool = below or candidates
    return min(pool, key=lambda entry: abs(entry[0] - budget))[1]


def run_sweep(
    spec: SweepSpec | Iterable[ExplorationPoint],
    *,
    cache: ResultCache | None = None,
    workers: int = 1,
    progress: ProgressCallback | None = None,
    continuation: bool = True,
    on_event: EventCallback | None = None,
    should_stop: Callable[[], bool] | None = None,
    service=None,
    mp_context: str | None = None,
) -> SweepResult:
    """Run a sweep: cache-serve, chain-solve the rest, return grid-order rows.

    Args:
        spec: A :class:`SweepSpec` (expanded deterministically) or an
            explicit sequence of points.
        cache: Optional result cache; hits skip the solver entirely and
            fresh solves are stored back.
        workers: Process-pool width; ``1`` solves inline in this process.
            Chains (not single cells) are the unit of fan-out.
        progress: Optional callback invoked after each resolved cell with
            ``(done, total, result)`` — cache hits first, then solves in
            completion order. Each grid cell reports exactly once, so
            ``done`` never exceeds ``total``.
        continuation: Propagate warm starts through budget-ordered chains
            (default). ``False`` solves every cell from cold seeds — the
            reference path for benchmarks and equivalence checks.
        on_event: Structured-progress seam (see :data:`EventCallback`):
            one ``plan`` dict after cache lookup, one ``cell`` dict per
            resolved cell, ``chain`` start/done dicts around each
            continuation chain. Called from the coordinating process only.
        should_stop: Cooperative cancellation predicate, polled between
            cells (inline) or between chain completions (process pool),
            and forwarded to the solver's between-seed checkpoints on the
            inline path. When it turns true the sweep raises
            :class:`JobCancelled` — but only *after* installing every
            already-solved row, so with a cache all completed cells are
            persisted and reusable (atomic per-cell writes; no partial
            rows by construction).
        service: The :class:`~repro.api.service.LibraService` inline
            solves run through (so a caller's engine/solution memos are
            actually used); ``None`` falls back to the per-process
            default. Pool workers always use their own per-process
            service — a service cannot cross a process boundary.
        mp_context: Multiprocessing start method for the pool (``None``
            keeps the platform default). Single-threaded drivers (the
            CLI) keep the default, but multithreaded callers (the serve
            layer) must pass ``"spawn"``: forking a multithreaded
            process can deadlock children on locks held by other
            threads at fork time. Non-fork workers replay the parent's
            picklable custom registry entries via an initializer, so
            dynamically registered names keep resolving (unpicklable
            factories — lambdas, closures — cannot cross a spawn
            boundary and degrade to per-cell error rows).
    """
    tracer = obs_trace.get_tracer()
    if tracer is obs_trace.NULL_TRACER:
        return _run_sweep_impl(
            spec, cache, workers, progress, continuation, on_event,
            should_stop, service, mp_context,
        )
    with tracer.span("sweep") as span:
        sweep = _run_sweep_impl(
            spec, cache, workers, progress, continuation, on_event,
            should_stop, service, mp_context,
        )
        span.set("total", len(sweep.results))
        span.set("cache_hits", sweep.cache_hits)
        span.set("solver_calls", sweep.solver_calls)
        span.set("chains", sweep.profile.chains)
        return sweep


def _run_sweep_impl(
    spec: SweepSpec | Iterable[ExplorationPoint],
    cache: ResultCache | None,
    workers: int,
    progress: ProgressCallback | None,
    continuation: bool,
    on_event: EventCallback | None,
    should_stop: Callable[[], bool] | None,
    service,
    mp_context: str | None,
) -> SweepResult:
    started = time.perf_counter()
    points = spec.expand() if isinstance(spec, SweepSpec) else list(spec)
    total = len(points)
    results: list[ExplorationResult | None] = [None] * total
    done = 0

    def emit(payload: dict) -> None:
        if on_event is not None:
            on_event(payload)

    cells_counter = obs_metrics.get_registry().counter(
        obs_names.SWEEP_CELLS,
        "Sweep grid cells resolved, by outcome.",
        labels=("status",),
    )

    def resolved(index: int, result: ExplorationResult) -> None:
        nonlocal done
        results[index] = result
        done += 1
        status = (
            "cached" if result.from_cache
            else ("error" if not result.ok else "solved")
        )
        cells_counter.labels(status=status).inc()
        if progress is not None:
            progress(done, total, result)
        emit({
            "type": "cell",
            "done": done,
            "total": total,
            "label": result.point.label(),
            "key": result.key,
            "status": status,
            "warm_start": result.warm_start,
            "error": result.error,
        })

    # Phase 1 — content-address every cell and serve what the cache knows.
    # A key failure (bad topology notation, malformed point) is itself an
    # error row: it would fail identically inside the solver.
    keys: list[str] = [""] * total
    pending: dict[str, list[int]] = {}
    cache_hits = 0
    with obs_trace.get_tracer().span("sweep.lookup") as lookup_span:
        for index, point in enumerate(points):
            try:
                keys[index] = point_key(point)
            except Exception as exc:  # noqa: BLE001 — error containment
                resolved(
                    index,
                    ExplorationResult(
                        point=point, error=f"{type(exc).__name__}: {exc}"
                    ),
                )
                continue
            cached = cache.get(keys[index]) if cache is not None else None
            if cached is not None:
                cache_hits += 1
                resolved(index, replace(cached, point=point, from_cache=True))
            else:
                pending.setdefault(keys[index], []).append(index)
        lookup_span.set("total", total)
        lookup_span.set("cache_hits", cache_hits)
    lookup_s = time.perf_counter() - started

    # Phase 2 — solve each distinct uncached cell once, chained so later
    # budgets continue from earlier optima. Duplicate grid cells fan the
    # one result back out to every index that asked for it.
    warm_accepted = 0
    warm_rejected = 0
    cold_solves = 0

    def install(key: str, result: ExplorationResult) -> None:
        nonlocal warm_accepted, warm_rejected, cold_solves
        if result.warm_start == "accepted":
            warm_accepted += 1
        elif result.warm_start.startswith("rejected"):
            warm_rejected += 1
        elif result.ok:
            cold_solves += 1
        if cache is not None:
            cache.put(key, result)
        for index in pending[key]:
            resolved(index, replace(result, point=points[index]))

    representatives = [(key, points[indices[0]]) for key, indices in pending.items()]
    if continuation:
        chains = build_chains(representatives)
        # Optima phase 1 served from the cache seed their chains' first
        # cells, so widening a cached grid never pays a cold solve.
        cached_by_signature: dict[tuple, list[tuple[float, tuple[float, ...]]]] = {}
        for index, row in enumerate(results):
            if row is None or not row.from_cache or not row.ok:
                continue
            if points[index].scheme is Scheme.EQUAL_BW:
                continue
            cached_by_signature.setdefault(
                chain_signature(points[index]), []
            ).append((points[index].total_bw_gbps, row.bandwidths_gbps))
        warm_seeds = [
            _cached_neighbor_seed(chain, cached_by_signature)
            for chain in chains
        ]
    else:
        chains = [[item] for item in representatives]
        warm_seeds = [None] * len(chains)
    solver_calls = len(representatives)
    fanout_cells = sum(len(indices) - 1 for indices in pending.values())
    if chains:
        obs_metrics.get_registry().counter(
            obs_names.SWEEP_CHAINS,
            "Continuation chains executed by sweeps.",
        ).inc(len(chains))
    emit({
        "type": "plan",
        "total": total,
        "cached": cache_hits,
        "chains": len(chains),
        "solver_calls": solver_calls,
        "fanout_cells": fanout_cells,
    })

    def chain_event(status: str, index: int) -> dict:
        _, first = chains[index][0]
        return {
            "type": "chain",
            "status": status,
            "chain": index,
            "chains": len(chains),
            "cells": len(chains[index]),
            "label": chain_label(first),
        }

    solve_started = time.perf_counter()
    if workers <= 1 or len(chains) <= 1:
        for index, (chain, seed) in enumerate(zip(chains, warm_seeds)):
            emit(chain_event("start", index))
            with obs_trace.get_tracer().span(
                "chain",
                attrs={"cells": len(chain), "label": chain_label(chain[0][1])},
            ):
                for key, result in _iter_chain(
                    chain, continuation, seed, should_stop, service
                ):
                    install(key, result)
            emit(chain_event("done", index))
    else:
        if mp_context:
            from repro.api.registry import custom_entries

            pool_kwargs = {
                "mp_context": multiprocessing.get_context(mp_context),
                "initializer": _init_pool_worker,
                "initargs": (custom_entries(),),
            }
        else:
            pool_kwargs = {}
        for index in range(len(chains)):
            emit(chain_event("queued", index))
        # Chain index -> requeue count. A dead pool worker poisons the
        # whole pool (BrokenProcessPool on every in-flight future), so
        # recovery is round-grained: unfinished chains requeue on a fresh
        # pool with backoff, and a chain that exhausts its requeue budget
        # is quarantined — its cells become error rows (never cached) and
        # the rest of the sweep completes. Attribution is imprecise by
        # construction (the coordinator cannot see which chain killed the
        # worker), hence counters on every unfinished chain of a broken
        # round; an innocent chain pays at most CHAIN_RETRY_ATTEMPTS
        # requeues before the poisoned one is quarantined with it.
        todo: dict[int, int] = dict.fromkeys(range(len(chains)), 0)
        round_index = 0
        while todo:
            if round_index:
                time.sleep(
                    min(POOL_RETRY_BACKOFF_S * 2 ** (round_index - 1), 5.0)
                )
            broken: BrokenProcessPool | None = None
            with ProcessPoolExecutor(
                max_workers=min(workers, len(todo)), **pool_kwargs
            ) as pool:
                futures = {
                    pool.submit(
                        _solve_chain, chains[index], continuation,
                        warm_seeds[index],
                    ): index
                    for index in sorted(todo)
                }
                remaining = set(futures)
                cancelled = False
                while remaining:
                    finished, remaining = wait(
                        remaining, return_when=FIRST_COMPLETED
                    )
                    for future in finished:
                        index = futures[future]
                        try:
                            rows = future.result()
                        except BrokenProcessPool as exc:
                            broken = exc
                            continue
                        for key, result in rows:
                            install(key, result)
                        emit(chain_event("done", index))
                        del todo[index]
                    if broken is not None:
                        break  # unfinished chains requeue on a fresh pool
                    if (
                        not cancelled
                        and remaining  # a finished sweep is never "cancelled"
                        and should_stop is not None
                        and should_stop()
                    ):
                        # Predicates do not cross process boundaries, so pool
                        # cancellation is chain-grained: unstarted chains are
                        # withdrawn, running ones drain normally (their rows
                        # still install and cache), then the sweep raises.
                        cancelled = True
                        remaining = {
                            future for future in remaining
                            if not future.cancel()
                        }
                if cancelled:
                    raise JobCancelled(
                        f"sweep cancelled after {done} of {total} cells"
                    )
            if broken is None:
                break  # every chain completed; todo is empty
            survivors: dict[int, int] = {}
            for index, requeues in sorted(todo.items()):
                if requeues >= CHAIN_RETRY_ATTEMPTS:
                    for key, point in chains[index]:
                        if results[pending[key][0]] is None:
                            install(key, ExplorationResult(
                                point=point,
                                key=key,
                                error=(
                                    "quarantined: pool worker died "
                                    f"{requeues + 1} times while this chain "
                                    f"was in flight ({broken})"
                                ),
                            ))
                    emit(chain_event("quarantined", index))
                else:
                    survivors[index] = requeues + 1
                    emit(chain_event("requeued", index))
                    obs_metrics.get_registry().counter(
                        obs_names.JOB_RETRIES,
                        "Transient-failure retries (job requeues and "
                        "chain requeues).",
                    ).inc()
            todo = survivors
            round_index += 1
    solve_s = time.perf_counter() - solve_started

    assemble_started = time.perf_counter()
    _require_complete(results, total)
    now = time.perf_counter()
    profile = SweepProfile(
        lookup_s=lookup_s,
        solve_s=solve_s,
        assemble_s=now - assemble_started,
        total_s=now - started,
        chains=len(chains),
        warm_accepted=warm_accepted,
        warm_rejected=warm_rejected,
        cold_solves=cold_solves,
    )
    return SweepResult(
        results=list(results),  # type: ignore[arg-type]
        cache_hits=cache_hits,
        solver_calls=solver_calls,
        fanout_cells=fanout_cells,
        profile=profile,
    )


def _require_complete(
    results: list[ExplorationResult | None], total: int
) -> None:
    """Fail loudly if any grid cell was left unresolved.

    Must never trigger (every index is either cache-served, errored at
    keying, or installed by a solve) — but if the accounting ever breaks,
    an explicit :class:`ReproError` beats silently returning partial rows.
    A bare ``assert`` would vanish under ``python -O``.
    """
    missing = [index for index, result in enumerate(results) if result is None]
    if missing:
        shown = ", ".join(str(index) for index in missing[:10])
        suffix = "…" if len(missing) > 10 else ""
        raise ReproError(
            f"sweep accounting bug: {len(missing)} of {total} cells "
            f"unresolved (grid indices {shown}{suffix})"
        )

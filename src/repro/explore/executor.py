"""Sweep execution: cache lookup, parallel solving, deterministic assembly.

:func:`run_sweep` is the engine's entry point. It expands a spec (or takes
an explicit point list), serves every cell it can from the cache, solves the
remainder — inline, or fanned out over a ``ProcessPoolExecutor`` — and
assembles the rows back in grid order, so serial, parallel, and cached runs
of the same spec are indistinguishable except for wall-clock time.

Failure containment: a cell that cannot be built or solved becomes an error
row (``ExplorationResult.error`` set), never a sweep abort. Identical cells
appearing more than once in a grid are solved once and fanned back out.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import replace
from functools import lru_cache

from repro.api.registry import resolve_workload
from repro.api.requests import OptimizeRequest
from repro.api.scenario import Scenario, ScenarioWorkload
from repro.api.service import get_service
from repro.utils.errors import ReproError
from repro.workloads.workload import Workload

from repro.explore.cache import ResultCache
from repro.explore.keys import point_constraints, point_key, resolve_topology
from repro.explore.records import ExplorationResult, SweepResult
from repro.explore.spec import ExplorationPoint, SweepSpec

#: Called after each resolved cell with (done, total, result).
ProgressCallback = Callable[[int, int, ExplorationResult], None]


@lru_cache(maxsize=64)
def _resolve_topology_cached(name_or_notation: str):
    """Per-worker LRU over topology resolution.

    A budget sweep hands every cell of one grid column the same topology
    string; without this, each process-pool worker rebuilds the network
    graph for every cell it solves. Networks are treated as immutable
    downstream, so sharing one instance per worker is safe. Failures
    propagate uncached, preserving per-point error capture.
    """
    return resolve_topology(name_or_notation)


@lru_cache(maxsize=64)
def _build_workload_cached(preset: str, num_npus: int) -> Workload:
    """Per-worker LRU over preset workload construction (same rationale)."""
    return resolve_workload(preset, num_npus)


def point_scenario(point: ExplorationPoint) -> Scenario:
    """The :class:`Scenario` one exploration cell describes.

    This is the payload actually shipped through the service — the worker
    no longer hand-assembles a ``Libra``; it states the problem and lets
    the per-process service compile it (memoized on the canonical key, so
    every cell of a grid column sharing one workload × topology reuses one
    compiled engine).
    """
    network = _resolve_topology_cached(point.topology)
    if isinstance(point.workload, Workload):
        entry = ScenarioWorkload(workload=point.workload)
    else:
        entry = ScenarioWorkload(
            workload=_build_workload_cached(point.workload, network.num_npus),
            preset=point.workload,
        )
    return Scenario(
        network=network,
        workloads=(entry,),
        constraints=point_constraints(point, network.num_dims),
        cost_model=point.cost_model,
    )


def solve_point(point: ExplorationPoint, key: str = "") -> ExplorationResult:
    """Solve one exploration cell, capturing any failure as an error row."""
    try:
        response = get_service().submit(
            OptimizeRequest(scenario=point_scenario(point), scheme=point.scheme)
        )
        optimized = response.point
        return ExplorationResult(
            point=point,
            key=key,
            bandwidths_gbps=optimized.bandwidths_gbps(),
            step_times_ms={
                name: time * 1e3 for name, time in optimized.step_times.items()
            },
            network_cost=optimized.network_cost,
            speedup_over_equal=response.speedup_over_baseline or 0.0,
            ppc_gain_over_equal=response.ppc_gain_over_baseline or 0.0,
            solver_message=optimized.solver_message,
        )
    except Exception as exc:  # noqa: BLE001 — error containment is the contract
        return ExplorationResult(
            point=point,
            key=key,
            error=f"{type(exc).__name__}: {exc}",
        )


def _solve_indexed(key: str, point: ExplorationPoint) -> ExplorationResult:
    """Top-level worker entry (must be picklable for the process pool)."""
    return solve_point(point, key=key)


def run_sweep(
    spec: SweepSpec | Iterable[ExplorationPoint],
    *,
    cache: ResultCache | None = None,
    workers: int = 1,
    progress: ProgressCallback | None = None,
) -> SweepResult:
    """Run a sweep: cache-serve, solve the rest, return rows in grid order.

    Args:
        spec: A :class:`SweepSpec` (expanded deterministically) or an
            explicit sequence of points.
        cache: Optional result cache; hits skip the solver entirely and
            fresh solves are stored back.
        workers: Process-pool width; ``1`` solves inline in this process.
        progress: Optional callback invoked after each resolved cell with
            ``(done, total, result)`` — cache hits first, then solves in
            completion order.
    """
    points = spec.expand() if isinstance(spec, SweepSpec) else list(spec)
    total = len(points)
    results: list[ExplorationResult | None] = [None] * total
    done = 0

    def resolved(index: int, result: ExplorationResult) -> None:
        nonlocal done
        results[index] = result
        done += 1
        if progress is not None:
            progress(done, total, result)

    # Phase 1 — content-address every cell and serve what the cache knows.
    # A key failure (bad topology notation, malformed point) is itself an
    # error row: it would fail identically inside the solver.
    keys: list[str] = [""] * total
    pending: dict[str, list[int]] = {}
    cache_hits = 0
    for index, point in enumerate(points):
        try:
            keys[index] = point_key(point)
        except Exception as exc:  # noqa: BLE001 — error containment
            resolved(
                index,
                ExplorationResult(
                    point=point, error=f"{type(exc).__name__}: {exc}"
                ),
            )
            continue
        cached = cache.get(keys[index]) if cache is not None else None
        if cached is not None:
            cache_hits += 1
            resolved(index, replace(cached, point=point, from_cache=True))
        else:
            pending.setdefault(keys[index], []).append(index)

    # Phase 2 — solve each distinct uncached cell once.
    def install(key: str, result: ExplorationResult) -> None:
        if cache is not None:
            cache.put(key, result)
        for index in pending[key]:
            resolved(index, replace(result, point=points[index]))

    solver_calls = len(pending)
    if workers <= 1 or solver_calls <= 1:
        for key, indices in pending.items():
            install(key, solve_point(points[indices[0]], key=key))
    else:
        with ProcessPoolExecutor(max_workers=min(workers, solver_calls)) as pool:
            futures = {
                pool.submit(_solve_indexed, key, points[indices[0]]): key
                for key, indices in pending.items()
            }
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    install(futures[future], future.result())

    _require_complete(results, total)
    return SweepResult(
        results=list(results),  # type: ignore[arg-type]
        cache_hits=cache_hits,
        solver_calls=solver_calls,
    )


def _require_complete(
    results: list[ExplorationResult | None], total: int
) -> None:
    """Fail loudly if any grid cell was left unresolved.

    Must never trigger (every index is either cache-served, errored at
    keying, or installed by a solve) — but if the accounting ever breaks,
    an explicit :class:`ReproError` beats silently returning partial rows.
    A bare ``assert`` would vanish under ``python -O``.
    """
    missing = [index for index, result in enumerate(results) if result is None]
    if missing:
        shown = ", ".join(str(index) for index in missing[:10])
        suffix = "…" if len(missing) > 10 else ""
        raise ReproError(
            f"sweep accounting bug: {len(missing)} of {total} cells "
            f"unresolved (grid indices {shown}{suffix})"
        )

"""Result records produced by the exploration executor.

An :class:`ExplorationResult` flattens one solved cell into plain scalars —
the optimized split, step times, dollar cost, and the two headline metrics
relative to the cell's own EqualBW baseline — so it serializes to JSON
losslessly and compares exactly across serial, parallel, and cached runs. A
failed solve is a first-class row with ``error`` set instead of a sweep
abort.

A :class:`SweepResult` is the ordered collection for a whole grid plus the
execution accounting (cache hits, solver calls, failures).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from repro.core.results import Scheme
from repro.utils.errors import ConfigurationError

from repro.explore.spec import ExplorationPoint, resolve_scheme


@dataclass(frozen=True)
class ExplorationResult:
    """One solved (or failed) exploration cell.

    Attributes:
        point: The cell this result answers.
        key: Content address of the cell (empty until the executor sets it).
        bandwidths_gbps: Optimized per-dimension split, GB/s.
        step_times_ms: Per-workload training-step time, milliseconds.
        network_cost: Dollar cost of the optimized network.
        speedup_over_equal: Training speedup vs the EqualBW baseline.
        ppc_gain_over_equal: Perf-per-cost gain vs the EqualBW baseline.
        solver_message: Optimizer diagnostics.
        error: Failure description; empty for successful solves.
        from_cache: True when this run served the row from the cache.
    """

    point: ExplorationPoint
    key: str = ""
    bandwidths_gbps: tuple[float, ...] = ()
    step_times_ms: dict[str, float] = field(default_factory=dict)
    network_cost: float = 0.0
    speedup_over_equal: float = 0.0
    ppc_gain_over_equal: float = 0.0
    solver_message: str = ""
    error: str = ""
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        """True when the cell solved successfully."""
        return not self.error

    @property
    def step_time_ms(self) -> float:
        """Aggregate step time across the cell's workloads (unit weights)."""
        return sum(self.step_times_ms.values())

    def metric(self, name: str) -> float:
        """Look up a named result metric (the Pareto/summary axes)."""
        try:
            extractor = METRICS[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown metric {name!r}; known: {sorted(METRICS)}"
            ) from None
        return extractor(self)

    def to_dict(self) -> dict:
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        return {
            "point": self.point.to_dict(),
            "key": self.key,
            "bandwidths_gbps": list(self.bandwidths_gbps),
            "step_times_ms": dict(self.step_times_ms),
            "network_cost": self.network_cost,
            "speedup_over_equal": self.speedup_over_equal,
            "ppc_gain_over_equal": self.ppc_gain_over_equal,
            "solver_message": self.solver_message,
            "error": self.error,
            "from_cache": self.from_cache,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExplorationResult":
        """Rebuild a result row from :meth:`to_dict` output."""
        try:
            return cls(
                point=ExplorationPoint.from_dict(payload["point"]),
                key=str(payload.get("key", "")),
                bandwidths_gbps=tuple(
                    float(b) for b in payload.get("bandwidths_gbps", ())
                ),
                step_times_ms={
                    str(name): float(t)
                    for name, t in payload.get("step_times_ms", {}).items()
                },
                network_cost=float(payload.get("network_cost", 0.0)),
                speedup_over_equal=float(payload.get("speedup_over_equal", 0.0)),
                ppc_gain_over_equal=float(payload.get("ppc_gain_over_equal", 0.0)),
                solver_message=str(payload.get("solver_message", "")),
                error=str(payload.get("error", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed exploration-result payload: {exc}"
            ) from exc


#: Named result metrics available to Pareto analysis and summary tables.
METRICS: dict[str, Callable[[ExplorationResult], float]] = {
    "total_bw_gbps": lambda r: r.point.total_bw_gbps,
    "step_time_ms": lambda r: r.step_time_ms,
    "network_cost": lambda r: r.network_cost,
    "speedup": lambda r: r.speedup_over_equal,
    "ppc_gain": lambda r: r.ppc_gain_over_equal,
}


@dataclass
class SweepResult:
    """All rows of one sweep, in grid order, plus execution accounting.

    Attributes:
        results: One row per grid cell, in :meth:`SweepSpec.expand` order.
        cache_hits: Rows served from the cache without solving.
        solver_calls: Distinct optimizations actually executed.
    """

    results: list[ExplorationResult]
    cache_hits: int = 0
    solver_calls: int = 0

    @property
    def cache_misses(self) -> int:
        return len(self.results) - self.cache_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of rows served from the cache (0.0 for an empty sweep)."""
        return self.cache_hits / len(self.results) if self.results else 0.0

    @property
    def num_errors(self) -> int:
        return sum(1 for result in self.results if not result.ok)

    def ok_results(self) -> list[ExplorationResult]:
        """The successfully solved rows, in grid order."""
        return [result for result in self.results if result.ok]

    def get(
        self,
        workload: str | None = None,
        topology: str | None = None,
        total_bw_gbps: float | None = None,
        scheme: Scheme | str | None = None,
    ) -> ExplorationResult:
        """The unique row matching the given coordinates.

        Raises :class:`ConfigurationError` when no row or several rows match
        — a misaddressed lookup is a bug in the caller, not an empty answer.
        """
        matches = self.filter(
            workload=workload,
            topology=topology,
            total_bw_gbps=total_bw_gbps,
            scheme=scheme,
        )
        if len(matches) != 1:
            raise ConfigurationError(
                f"expected exactly one row for workload={workload!r} "
                f"topology={topology!r} bw={total_bw_gbps!r} scheme={scheme!r}, "
                f"found {len(matches)}"
            )
        return matches[0]

    def filter(
        self,
        workload: str | None = None,
        topology: str | None = None,
        total_bw_gbps: float | None = None,
        scheme: Scheme | str | None = None,
    ) -> list[ExplorationResult]:
        """Rows matching every given coordinate, in grid order."""
        wanted_scheme = resolve_scheme(scheme) if scheme is not None else None
        matches = []
        for result in self.results:
            point = result.point
            if workload is not None and point.workload_name != workload:
                continue
            if topology is not None and point.topology != topology:
                continue
            if total_bw_gbps is not None and point.total_bw_gbps != float(total_bw_gbps):
                continue
            if wanted_scheme is not None and point.scheme is not wanted_scheme:
                continue
            matches.append(result)
        return matches

    def to_dict(self) -> dict:
        """JSON-ready payload for result artifacts."""
        return {
            "results": [result.to_dict() for result in self.results],
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "solver_calls": self.solver_calls,
            "num_errors": self.num_errors,
        }

"""Result records produced by the exploration executor.

An :class:`ExplorationResult` flattens one solved cell into plain scalars —
the optimized split, step times, dollar cost, and the two headline metrics
relative to the cell's own EqualBW baseline — so it serializes to JSON
losslessly and compares exactly across serial, parallel, and cached runs. A
failed solve is a first-class row with ``error`` set instead of a sweep
abort.

A :class:`SweepResult` is the ordered collection for a whole grid plus the
execution accounting (cache hits, solver calls, failures).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from repro.core.results import Scheme
from repro.utils.errors import ConfigurationError

from repro.explore.spec import ExplorationPoint, resolve_scheme


@dataclass(frozen=True)
class ExplorationResult:
    """One solved (or failed) exploration cell.

    Attributes:
        point: The cell this result answers.
        key: Content address of the cell (empty until the executor sets it).
        bandwidths_gbps: Optimized per-dimension split, GB/s.
        step_times_ms: Per-workload training-step time, milliseconds.
        network_cost: Dollar cost of the optimized network.
        speedup_over_equal: Training speedup vs the EqualBW baseline.
        ppc_gain_over_equal: Perf-per-cost gain vs the EqualBW baseline.
        solver_message: Optimizer diagnostics.
        solver_starts: Seeds the multi-start actually ran (0 when unknown,
            e.g. EqualBW rows and pre-continuation cache entries).
        warm_start: Continuation diagnostics — ``"cold"``, ``"accepted"``,
            or ``"rejected:<reason>"``; empty when the solve predates
            continuation or never reached the solver.
        error: Failure description; empty for successful solves.
        from_cache: True when this run served the row from the cache.
    """

    point: ExplorationPoint
    key: str = ""
    bandwidths_gbps: tuple[float, ...] = ()
    step_times_ms: dict[str, float] = field(default_factory=dict)
    network_cost: float = 0.0
    speedup_over_equal: float = 0.0
    ppc_gain_over_equal: float = 0.0
    solver_message: str = ""
    solver_starts: int = 0
    warm_start: str = ""
    error: str = ""
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        """True when the cell solved successfully."""
        return not self.error

    @property
    def step_time_ms(self) -> float:
        """Aggregate step time across the cell's workloads (unit weights)."""
        return sum(self.step_times_ms.values())

    def metric(self, name: str) -> float:
        """Look up a named result metric (the Pareto/summary axes)."""
        try:
            extractor = METRICS[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown metric {name!r}; known: {sorted(METRICS)}"
            ) from None
        return extractor(self)

    def to_dict(self) -> dict:
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        return {
            "point": self.point.to_dict(),
            "key": self.key,
            "bandwidths_gbps": list(self.bandwidths_gbps),
            "step_times_ms": dict(self.step_times_ms),
            "network_cost": self.network_cost,
            "speedup_over_equal": self.speedup_over_equal,
            "ppc_gain_over_equal": self.ppc_gain_over_equal,
            "solver_message": self.solver_message,
            "solver_starts": self.solver_starts,
            "warm_start": self.warm_start,
            "error": self.error,
            "from_cache": self.from_cache,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExplorationResult":
        """Rebuild a result row from :meth:`to_dict` output."""
        try:
            return cls(
                point=ExplorationPoint.from_dict(payload["point"]),
                key=str(payload.get("key", "")),
                bandwidths_gbps=tuple(
                    float(b) for b in payload.get("bandwidths_gbps", ())
                ),
                step_times_ms={
                    str(name): float(t)
                    for name, t in payload.get("step_times_ms", {}).items()
                },
                network_cost=float(payload.get("network_cost", 0.0)),
                speedup_over_equal=float(payload.get("speedup_over_equal", 0.0)),
                ppc_gain_over_equal=float(payload.get("ppc_gain_over_equal", 0.0)),
                solver_message=str(payload.get("solver_message", "")),
                solver_starts=int(payload.get("solver_starts", 0)),
                warm_start=str(payload.get("warm_start", "")),
                error=str(payload.get("error", "")),
                from_cache=bool(payload.get("from_cache", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed exploration-result payload: {exc}"
            ) from exc


#: Named result metrics available to Pareto analysis and summary tables.
METRICS: dict[str, Callable[[ExplorationResult], float]] = {
    "total_bw_gbps": lambda r: r.point.total_bw_gbps,
    "step_time_ms": lambda r: r.step_time_ms,
    "network_cost": lambda r: r.network_cost,
    "speedup": lambda r: r.speedup_over_equal,
    "ppc_gain": lambda r: r.ppc_gain_over_equal,
}


@dataclass(frozen=True)
class SweepProfile:
    """Per-stage timing and warm-start telemetry of one ``run_sweep`` call.

    Wall-clock numbers are never serialized with the sweep rows (they vary
    run to run and would break row-identity comparisons); the profile rides
    on :attr:`SweepResult.profile` for the CLI's ``--profile`` report and
    the sweep benchmark's cache-hit breakdown.

    Attributes:
        lookup_s: Phase-1 time — content-addressing cells, cache lookups.
        solve_s: Phase-2 time — chain solving (inline or pool drain).
        assemble_s: Row re-assembly and completeness accounting.
        total_s: End-to-end ``run_sweep`` wall time.
        chains: Continuation chains the grid partitioned into.
        warm_accepted: Solved cells whose warm start passed the trust check.
        warm_rejected: Solved cells that fell back to the full fan-out.
        cold_solves: Solved cells that never had a warm seed.
    """

    lookup_s: float = 0.0
    solve_s: float = 0.0
    assemble_s: float = 0.0
    total_s: float = 0.0
    chains: int = 0
    warm_accepted: int = 0
    warm_rejected: int = 0
    cold_solves: int = 0

    @property
    def warm_hit_rate(self) -> float:
        """Trusted warm starts over all solver calls (0.0 when none ran)."""
        solves = self.warm_accepted + self.warm_rejected + self.cold_solves
        return self.warm_accepted / solves if solves else 0.0

    def to_dict(self) -> dict:
        """JSON-ready payload (benchmark artifacts only, never cache rows)."""
        return {
            "lookup_s": self.lookup_s,
            "solve_s": self.solve_s,
            "assemble_s": self.assemble_s,
            "total_s": self.total_s,
            "chains": self.chains,
            "warm_accepted": self.warm_accepted,
            "warm_rejected": self.warm_rejected,
            "cold_solves": self.cold_solves,
            "warm_hit_rate": self.warm_hit_rate,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SweepProfile":
        """Rebuild a profile from :meth:`to_dict` output.

        (``warm_hit_rate`` is a derived property and is ignored on input.)
        """
        try:
            return cls(
                lookup_s=float(payload.get("lookup_s", 0.0)),
                solve_s=float(payload.get("solve_s", 0.0)),
                assemble_s=float(payload.get("assemble_s", 0.0)),
                total_s=float(payload.get("total_s", 0.0)),
                chains=int(payload.get("chains", 0)),
                warm_accepted=int(payload.get("warm_accepted", 0)),
                warm_rejected=int(payload.get("warm_rejected", 0)),
                cold_solves=int(payload.get("cold_solves", 0)),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed sweep-profile payload: {exc}"
            ) from exc

    def format(self) -> str:
        """Human-readable per-stage summary (the ``--profile`` report)."""
        solves = self.warm_accepted + self.warm_rejected + self.cold_solves
        lines = [
            "sweep profile:",
            f"  cache lookup: {self.lookup_s * 1e3:>9.1f} ms",
            f"  solving:      {self.solve_s * 1e3:>9.1f} ms "
            f"({solves} solves in {self.chains} chains)",
            f"  assembly:     {self.assemble_s * 1e3:>9.1f} ms",
            f"  total:        {self.total_s * 1e3:>9.1f} ms",
            f"  warm starts:  {self.warm_accepted} accepted / "
            f"{self.warm_rejected} rejected / {self.cold_solves} cold "
            f"({self.warm_hit_rate:.1%} hit rate)",
        ]
        return "\n".join(lines)


@dataclass
class SweepResult:
    """All rows of one sweep, in grid order, plus execution accounting.

    Attributes:
        results: One row per grid cell, in :meth:`SweepSpec.expand` order.
        cache_hits: Rows served from the cache without solving.
        solver_calls: Distinct optimizations actually executed.
        fanout_cells: Cells resolved by copying another identical cell's
            result (grid duplicates) — so ``cache_hits + solver_calls +
            fanout_cells + error rows`` accounts for every cell exactly
            once and progress callbacks never over-report.
        profile: Per-stage timing/warm-start telemetry; excluded from
            :meth:`to_dict` because wall-clock numbers are not row data.
    """

    results: list[ExplorationResult]
    cache_hits: int = 0
    solver_calls: int = 0
    fanout_cells: int = 0
    profile: SweepProfile | None = None

    @property
    def cache_misses(self) -> int:
        return len(self.results) - self.cache_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of rows served from the cache (0.0 for an empty sweep)."""
        return self.cache_hits / len(self.results) if self.results else 0.0

    @property
    def num_errors(self) -> int:
        return sum(1 for result in self.results if not result.ok)

    def ok_results(self) -> list[ExplorationResult]:
        """The successfully solved rows, in grid order."""
        return [result for result in self.results if result.ok]

    def get(
        self,
        workload: str | None = None,
        topology: str | None = None,
        total_bw_gbps: float | None = None,
        scheme: Scheme | str | None = None,
    ) -> ExplorationResult:
        """The unique row matching the given coordinates.

        Raises :class:`ConfigurationError` when no row or several rows match
        — a misaddressed lookup is a bug in the caller, not an empty answer.
        """
        matches = self.filter(
            workload=workload,
            topology=topology,
            total_bw_gbps=total_bw_gbps,
            scheme=scheme,
        )
        if len(matches) != 1:
            raise ConfigurationError(
                f"expected exactly one row for workload={workload!r} "
                f"topology={topology!r} bw={total_bw_gbps!r} scheme={scheme!r}, "
                f"found {len(matches)}"
            )
        return matches[0]

    def filter(
        self,
        workload: str | None = None,
        topology: str | None = None,
        total_bw_gbps: float | None = None,
        scheme: Scheme | str | None = None,
    ) -> list[ExplorationResult]:
        """Rows matching every given coordinate, in grid order."""
        wanted_scheme = resolve_scheme(scheme) if scheme is not None else None
        matches = []
        for result in self.results:
            point = result.point
            if workload is not None and point.workload_name != workload:
                continue
            if topology is not None and point.topology != topology:
                continue
            if total_bw_gbps is not None and point.total_bw_gbps != float(total_bw_gbps):
                continue
            if wanted_scheme is not None and point.scheme is not wanted_scheme:
                continue
            matches.append(result)
        return matches

    def to_dict(self) -> dict:
        """JSON-ready payload for result artifacts."""
        return {
            "results": [result.to_dict() for result in self.results],
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "solver_calls": self.solver_calls,
            "fanout_cells": self.fanout_cells,
            "num_errors": self.num_errors,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SweepResult":
        """Rebuild a sweep from :meth:`to_dict` output.

        The inverse remote clients (``repro.serve.client``) need to turn a
        batch-job result payload back into first-class rows. Derived
        accounting (``cache_misses``, ``hit_rate``, ``num_errors``) is
        recomputed, not read; the profile is wall-clock telemetry and is
        never serialized with the rows, so it comes back ``None``.
        """
        try:
            return cls(
                results=[
                    ExplorationResult.from_dict(row)
                    for row in payload.get("results", ())
                ],
                cache_hits=int(payload.get("cache_hits", 0)),
                solver_calls=int(payload.get("solver_calls", 0)),
                fanout_cells=int(payload.get("fanout_cells", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed sweep-result payload: {exc}"
            ) from exc

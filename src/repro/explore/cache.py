"""Content-addressed result cache for design-space exploration.

Results are keyed by :func:`repro.explore.keys.point_key` — a canonical hash
of everything a solve reads — so a cache entry is valid wherever the same
question is asked again: re-running a sweep, widening one axis, or two
different studies sharing cells. The cache is an in-memory map with an
optional on-disk JSON store (one file per key), so exploration survives
process restarts and can be shared between CLI invocations.

Only successful solves are cached; error rows are recomputed on the next
run so transient failures do not get pinned.

Effectiveness is visible two ways: :meth:`ResultCache.stats` reports this
instance's lifetime tallies (memory/disk hits and misses, writes,
evictions) — batch responses embed it under ``diagnostics["cache"]`` —
and the same events feed the process-wide metrics registry
(``repro_cache_*`` families) when metrics are enabled.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import replace
from pathlib import Path

from repro.utils.errors import ConfigurationError, ReproError

from repro.explore.records import ExplorationResult
from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names

#: On-disk wrapper schema version (the solve semantics are versioned in the
#: key itself via ``keys.ENGINE_VERSION``; this guards the record format).
STORE_VERSION = 1

#: Bound on the per-instance provenance set that splits ``disk_hits``
#: into own vs. ``peer_hits``. Purely statistical bookkeeping, so it is
#: LRU-bounded rather than exact: on a long-running fleet server an
#: unbounded set of one digest per ``put()`` is a slow memory leak. A
#: key evicted here re-counts as a peer hit later — a stats skew in the
#: conservative direction, never a correctness issue.
OWN_KEYS_LIMIT = 65_536

#: Keys of the :meth:`ResultCache.stats` payload, in reporting order.
STAT_KEYS = (
    "memory_hits",
    "memory_misses",
    "disk_hits",
    "disk_misses",
    "peer_hits",
    "writes",
    "evictions",
    "corrupt",
)


def _lookup_counter():
    return obs_metrics.get_registry().counter(
        obs_names.CACHE_LOOKUPS,
        "ResultCache lookups by tier and outcome.",
        labels=("tier", "outcome"),
    )


class ResultCache:
    """In-memory, optionally disk-backed store of exploration results.

    Thread-safe: the memory map is guarded by a lock (the serve layer
    shares one cache across concurrent batch jobs), and disk writes use
    writer-unique temp names with an atomic replace.

    Safe to share across *processes* too (fleet mode points every server
    at one directory): content addressing makes concurrent puts of the
    same key idempotent (last atomic replace wins, both replaces carry
    the same bytes), every disk lookup reads the live file rather than
    trusting a listing snapshot, and eviction only ever touches this
    instance's memory tier under its lock — one process's LRU pressure
    can never unlink a peer's disk entry. The stats split disk hits by
    provenance: a hit on an entry this instance wrote is a plain
    ``disk_hits``; one written by a peer process (or an earlier run)
    additionally counts under ``peer_hits`` and the
    ``repro_cache_peer_hits_total`` counter, which is how a fleet
    operator sees cross-server reuse actually happening.

    Args:
        directory: Where to persist entries as ``<key>.json`` files;
            ``None`` keeps the cache purely in memory.
        max_memory: Bound on the in-memory map (LRU eviction). ``None``
            (the default, and the historical behavior) keeps everything —
            right for one-shot CLI sweeps; long-running servers pass a
            bound so repeated large grids cannot grow memory without
            limit. With a directory, evicted entries reload from disk;
            memory-only caches genuinely forget them (re-solve on demand).
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        max_memory: int | None = None,
    ):
        if max_memory is not None and max_memory < 1:
            raise ConfigurationError(
                f"max_memory must be >= 1, got {max_memory}"
            )
        self._memory: OrderedDict[str, ExplorationResult] = OrderedDict()
        self._max_memory = max_memory
        self._lock = threading.Lock()
        self._stats = dict.fromkeys(STAT_KEYS, 0)
        # Keys this instance has put to disk — the provenance line
        # between disk_hits and peer_hits (guarded by the same lock).
        # An LRU bounded at OWN_KEYS_LIMIT, not an ever-growing set.
        self._own_keys: OrderedDict[str, None] = OrderedDict()
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            try:
                self._directory.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise ConfigurationError(
                    f"cannot create cache directory {self._directory}: {exc}"
                ) from exc

    @property
    def directory(self) -> Path | None:
        return self._directory

    def __len__(self) -> int:
        if self._directory is None:
            with self._lock:
                return len(self._memory)
        return sum(1 for _ in self._directory.glob("*.json"))

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def stats(self) -> dict[str, int]:
        """Lifetime tallies of this instance, as a plain dict snapshot.

        ``memory_misses`` counts every lookup that fell past the memory
        tier (so for a disk-backed cache, disk hits + disk misses ==
        memory misses); ``peer_hits`` is the subset of ``disk_hits``
        whose entry this instance never wrote (a peer process, or an
        earlier run, did — judged against the :data:`OWN_KEYS_LIMIT`-
        bounded provenance LRU); ``writes`` counts accepted :meth:`put`
        stores; ``evictions`` counts memory-tier LRU drops; ``corrupt``
        counts disk entries quarantined as unreadable (each also a disk
        miss).
        """
        with self._lock:
            return dict(self._stats)

    def _count(self, stat: str, amount: int = 1) -> None:
        with self._lock:
            self._stats[stat] += amount

    def _remember(self, key: str, result: ExplorationResult) -> None:
        """LRU-insert into the memory map (bounded when configured)."""
        evicted = False
        with self._lock:
            self._memory[key] = result
            self._memory.move_to_end(key)
            if (
                self._max_memory is not None
                and len(self._memory) > self._max_memory
            ):
                self._memory.popitem(last=False)
                self._stats["evictions"] += 1
                evicted = True
        if evicted:
            obs_metrics.get_registry().counter(
                obs_names.CACHE_EVICTIONS,
                "ResultCache memory-tier LRU evictions.",
            ).inc()

    def get(self, key: str) -> ExplorationResult | None:
        """The cached result for ``key``, or ``None``.

        Unreadable or schema-incompatible disk entries are treated as
        misses, not errors — a corrupted cache degrades to re-solving.
        Entries that are actually *corrupt* (truncated JSON from a kill
        -9 mid-write, an undecodable record) are additionally
        quarantined: renamed to ``<key>.json.corrupt`` so the defect is
        preserved for inspection but never re-read, counted under
        ``stats()["corrupt"]`` and ``repro_cache_corrupt_total``. A
        missing file or a ``store_version`` from another release is a
        plain miss — absence and version skew are not corruption.
        """
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                self._stats["memory_hits"] += 1
            else:
                self._stats["memory_misses"] += 1
        if cached is not None:
            _lookup_counter().labels(tier="memory", outcome="hit").inc()
            return cached
        _lookup_counter().labels(tier="memory", outcome="miss").inc()
        if self._directory is None:
            return None
        path = self._entry_path(key)
        try:
            wrapper = json.loads(path.read_text())
            if not isinstance(wrapper, dict):
                return self._quarantine(path)
            if wrapper.get("store_version") != STORE_VERSION:
                return self._disk_miss()
            result = ExplorationResult.from_dict(wrapper["result"])
        except FileNotFoundError:
            return self._disk_miss()
        except OSError:
            return self._disk_miss()  # unreadable, not provably corrupt
        except (
            json.JSONDecodeError, UnicodeDecodeError,
            KeyError, TypeError, ReproError,
        ):
            return self._quarantine(path)
        with self._lock:
            self._stats["disk_hits"] += 1
            peer = key not in self._own_keys
            if peer:
                self._stats["peer_hits"] += 1
            else:
                self._own_keys.move_to_end(key)  # hot provenance stays
        _lookup_counter().labels(tier="disk", outcome="hit").inc()
        if peer:
            obs_metrics.get_registry().counter(
                obs_names.CACHE_PEER_HITS,
                "Disk-tier cache hits on entries written by another process.",
            ).inc()
        self._remember(key, result)
        return result

    def _disk_miss(self) -> None:
        self._count("disk_misses")
        _lookup_counter().labels(tier="disk", outcome="miss").inc()
        return None

    def _quarantine(self, path: Path) -> None:
        """Sideline a corrupt entry; the lookup itself is a disk miss.

        ``os.replace`` to ``<name>.corrupt`` (outside the ``*.json`` glob,
        so it never counts toward ``len(cache)`` and never re-parses) —
        best-effort, because two threads may race to quarantine the same
        entry and the loser must not raise.
        """
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            pass
        self._count("corrupt")
        obs_metrics.get_registry().counter(
            obs_names.CACHE_CORRUPT,
            "Corrupt/truncated ResultCache disk entries quarantined.",
        ).inc()
        return self._disk_miss()

    def put(self, key: str, result: ExplorationResult) -> None:
        """Store a successful result under its content address."""
        if not result.ok:
            return
        stored = replace(result, key=key, from_cache=False)
        self._remember(key, stored)
        with self._lock:
            self._stats["writes"] += 1
            self._own_keys[key] = None
            self._own_keys.move_to_end(key)
            while len(self._own_keys) > OWN_KEYS_LIMIT:
                self._own_keys.popitem(last=False)
        obs_metrics.get_registry().counter(
            obs_names.CACHE_WRITES,
            "ResultCache entries stored via put().",
        ).inc()
        if self._directory is None:
            return
        path = self._entry_path(key)
        wrapper = {"store_version": STORE_VERSION, "result": stored.to_dict()}
        # Writer-unique temp name: concurrent threads/processes storing the
        # same key must not collide on one .tmp (the os.replace loser would
        # otherwise hit FileNotFoundError); last atomic replace wins. The
        # fsync before the replace means a crash at any instant leaves
        # either no entry or a complete one — a half-written entry can
        # only ever exist under the temp name, which lookups never read.
        tmp_path = path.with_name(
            f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            with open(tmp_path, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(wrapper, sort_keys=True, indent=1))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_path, path)
        except OSError as exc:
            try:
                tmp_path.unlink()
            except OSError:
                pass
            raise ConfigurationError(
                f"cannot write cache entry {path}: {exc}"
            ) from exc

    def clear(self) -> None:
        """Drop every entry, in memory and on disk (stats are kept)."""
        with self._lock:
            self._memory.clear()
        if self._directory is None:
            return
        for path in self._directory.glob("*.json"):
            try:
                path.unlink()
            except OSError:
                pass

    def _entry_path(self, key: str) -> Path:
        assert self._directory is not None
        return self._directory / f"{key}.json"

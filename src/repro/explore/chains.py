"""Continuation-chain partitioning for sweep grids.

Neighboring cells of a sweep column — same workload × topology × scheme ×
cost model × caps, different budget — are near-identical optimizations, so
their optima make excellent warm starts for each other. This module turns a
flat set of grid cells into *continuation chains*: within a chain, cells
are sorted by ascending budget and the executor solves them sequentially,
threading each optimum into the next cell's ``warm_start``. Chains are
independent of each other, so they are also the unit of process-pool
fan-out (warm-start propagation never has to cross a process boundary).

The partition is a pure function of the cell list: every cell lands in
exactly one chain (the property the test suite pins), chains appear in
first-cell-encounter order, and equal budgets keep their input order — so
serial and parallel executions of one grid see identical chains.

The chain signature is a *grouping heuristic*, not a correctness boundary:
two cells that share a signature but would not actually continue well
(e.g. distinct custom workloads registered under one name) merely hand the
solver a poor warm seed, which the trust check in
:mod:`repro.core.solver` demotes to one extra cold start.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import TypeVar

from repro.explore.spec import ExplorationPoint

T = TypeVar("T")


def chain_signature(point: ExplorationPoint) -> tuple:
    """The continuation-family key of one grid cell.

    Everything but the budget axis: cells differing only in
    ``total_bw_gbps`` share a signature and therefore a chain.
    """
    return (
        point.workload_name,
        point.topology,
        point.scheme.value,
        point.cost_model_name,
        point.dim_caps_gbps,
    )


def chain_label(point: ExplorationPoint) -> str:
    """Compact human-readable continuation-family label.

    The executor stamps this onto chain progress events so streaming
    clients (``repro.serve``) can say *which* column of the grid is
    advancing without reverse-engineering the signature tuple.
    """
    caps = (
        "" if not point.dim_caps_gbps
        else " caps=" + ",".join(
            f"{dim}:{cap:g}" for dim, cap in point.dim_caps_gbps
        )
    )
    return (
        f"{point.workload_name} @ {point.topology} "
        f"[{point.scheme.value}/{point.cost_model_name}]{caps}"
    )


def build_chains(
    items: Sequence[tuple[T, ExplorationPoint]],
) -> list[list[tuple[T, ExplorationPoint]]]:
    """Partition ``(tag, point)`` pairs into budget-ordered chains.

    ``tag`` is opaque payload carried alongside each point (the executor
    passes cache keys). Each input pair appears in exactly one chain;
    within a chain, pairs are sorted by ascending ``total_bw_gbps`` with
    ties keeping input order (``sorted`` is stable).
    """
    groups: dict[tuple, list[tuple[T, ExplorationPoint]]] = {}
    for tag, point in items:
        groups.setdefault(chain_signature(point), []).append((tag, point))
    return [
        sorted(group, key=lambda item: item[1].total_bw_gbps)
        for group in groups.values()
    ]


def iter_chain_cells(
    chains: Iterable[list[tuple[T, ExplorationPoint]]],
) -> list[tuple[T, ExplorationPoint]]:
    """Flatten chains back to a cell list (chain order, then budget order)."""
    return [item for chain in chains for item in chain]

"""Content-addressed keys for exploration points.

A point's cache key is the SHA-256 digest of a canonical JSON payload
assembled from the ``canonical()`` hooks of every model object the solve
reads: the workload, the network (notation + tiers), the constraint set the
point induces, the cost model, and the scheme. Anything that changes the
answer changes the key; anything cosmetic (names, labels, axis ordering)
does not. A version salt invalidates all cached entries when the engine's
result schema or solve semantics change.
"""

from __future__ import annotations

from repro.api.registry import resolve_topology  # noqa: F401
from repro.core.constraints import ConstraintSet
from repro.cost.model import default_cost_model
from repro.utils.canonical import canonical_json, digest  # noqa: F401
from repro.utils.units import gbps
from repro.workloads.workload import Workload

from repro.explore.spec import ExplorationPoint

# resolve_topology now lives in repro.api.registry (so user-registered
# topology presets are sweepable) and canonical_json/digest in
# repro.utils.canonical; both are re-exported here for compatibility.

#: Bump to invalidate every cached exploration result (schema / semantics).
#: v2: continuation solving — sweep cells may be warm-started from chain
#: neighbors, so results carry new diagnostics and can differ from v1
#: entries within the documented objective tolerance.
ENGINE_VERSION = 2


def point_constraints(point: ExplorationPoint, num_dims: int) -> ConstraintSet:
    """The constraint set an exploration point induces on an ``num_dims``-D net.

    Single source of truth: the executor solves under exactly this set and
    :func:`point_payload` hashes exactly this set, so the cache key can
    never drift from the problem actually solved.
    """
    constraints = ConstraintSet(num_dims).with_total_bandwidth(
        gbps(point.total_bw_gbps)
    )
    for dim, cap in point.dim_caps_gbps:
        constraints.with_dim_cap(dim, gbps(cap))
    return constraints


def point_payload(point: ExplorationPoint) -> dict:
    """Canonical content payload of one exploration point.

    Preset workloads hash as ``(preset name, NPU count)`` — the builders are
    pure functions of that pair — while concrete :class:`Workload` objects
    hash their full layer-level fingerprint, so custom workloads from files
    participate in caching too.
    """
    network = resolve_topology(point.topology)
    if isinstance(point.workload, Workload):
        workload_payload = point.workload.canonical()
    else:
        workload_payload = {"preset": point.workload, "num_npus": network.num_npus}
    cost_model = point.cost_model or default_cost_model()
    constraints = point_constraints(point, network.num_dims)
    return {
        "engine_version": ENGINE_VERSION,
        "workload": workload_payload,
        "network": network.canonical(),
        "constraints": constraints.canonical(),
        "cost_model": cost_model.canonical(),
        "scheme": point.scheme.value,
    }


def point_key(point: ExplorationPoint) -> str:
    """Content address of one exploration point (SHA-256 hex)."""
    return digest(point_payload(point))

"""Design-space exploration engine (sweeps, caching, Pareto analysis).

The paper's headline results are all *sweeps* — optimize a workload across
bandwidth budgets, topologies, and schemes, then compare frontiers. This
package makes that a first-class subsystem instead of hand-rolled loops:

* :class:`SweepSpec` / :class:`ExplorationPoint` — declarative grids over
  workloads × topologies × budgets × schemes × cost models.
* :func:`run_sweep` — parallel, cached, failure-contained execution with
  deterministic row ordering; grids partition into continuation chains
  (:func:`build_chains`) so budget-neighbors warm-start each other.
* :class:`ResultCache` / :func:`point_key` — content-addressed result reuse
  (re-running a sweep or widening an axis only solves new cells).
* :func:`pareto_frontier` and friends — trade-off analysis over any two
  result metrics.

Typical session::

    from repro.explore import ResultCache, SweepSpec, pareto_frontier, run_sweep

    spec = SweepSpec(
        workloads=("GPT-3", "Turing-NLG"),
        topologies=("3D-4K", "4D-4K"),
        bandwidths_gbps=(100, 300, 500, 1000),
        schemes=("perf", "perf-per-cost"),
    )
    sweep = run_sweep(spec, cache=ResultCache(".repro-cache"), workers=4)
    frontier = pareto_frontier(sweep.results, x="network_cost", y="step_time_ms")
"""

from repro.explore.cache import ResultCache
from repro.explore.chains import build_chains, chain_signature
from repro.explore.executor import run_sweep, solve_point
from repro.explore.keys import (
    ENGINE_VERSION,
    canonical_json,
    point_key,
    point_payload,
    resolve_topology,
)
from repro.explore.pareto import (
    best_per_budget,
    frontier_indices,
    pareto_frontier,
    summary_rows,
)
from repro.explore.records import (
    METRICS,
    ExplorationResult,
    SweepProfile,
    SweepResult,
)
from repro.explore.spec import (
    SCHEME_ALIASES,
    ExplorationPoint,
    SweepSpec,
    load_sweep_spec,
    resolve_scheme,
)

__all__ = [
    "ResultCache",
    "build_chains",
    "chain_signature",
    "run_sweep",
    "solve_point",
    "ENGINE_VERSION",
    "canonical_json",
    "point_key",
    "point_payload",
    "resolve_topology",
    "best_per_budget",
    "frontier_indices",
    "pareto_frontier",
    "summary_rows",
    "METRICS",
    "ExplorationResult",
    "SweepProfile",
    "SweepResult",
    "SCHEME_ALIASES",
    "ExplorationPoint",
    "SweepSpec",
    "load_sweep_spec",
    "resolve_scheme",
]

"""Pareto-frontier extraction and summary tables over sweep results.

The headline artifacts of a design-space study (paper Figs. 13–18, TopoOpt's
topology × parallelization frontiers) are two-metric trade-off curves:
dollar cost vs step time, budget vs speedup, and so on. This module extracts
non-dominated frontiers over any two named result metrics and builds the
speedup / perf-per-cost summary rows the benchmarks print.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from statistics import mean

from repro.utils.errors import ConfigurationError

from repro.explore.records import METRICS, ExplorationResult


def frontier_indices(
    points: Sequence[tuple[float, float]],
    minimize_x: bool = True,
    minimize_y: bool = True,
) -> list[int]:
    """Indices of the non-dominated points, sorted by the x metric.

    A point is dominated when another point is at least as good on both
    metrics and strictly better on one; coincident points survive together.

    >>> frontier_indices([(1.0, 3.0), (2.0, 1.0), (2.0, 4.0), (3.0, 2.0)])
    [0, 1]
    """

    def oriented(value: float, minimize: bool) -> float:
        return value if minimize else -value

    normalized = [
        (oriented(x, minimize_x), oriented(y, minimize_y)) for x, y in points
    ]
    keep = []
    for index, (x, y) in enumerate(normalized):
        dominated = any(
            (ox <= x and oy < y) or (ox < x and oy <= y)
            for ox, oy in normalized
        )
        if not dominated:
            keep.append(index)
    keep.sort(key=lambda i: (normalized[i][0], normalized[i][1]))
    return keep


def pareto_frontier(
    results: Iterable[ExplorationResult],
    x: str = "network_cost",
    y: str = "step_time_ms",
    minimize_x: bool = True,
    minimize_y: bool = True,
) -> list[ExplorationResult]:
    """The non-dominated sweep rows over two named metrics.

    Error rows are excluded — a failed solve has no coordinates. Metric
    names come from :data:`repro.explore.records.METRICS`.
    """
    if x not in METRICS or y not in METRICS:
        raise ConfigurationError(
            f"unknown Pareto metrics ({x!r}, {y!r}); known: {sorted(METRICS)}"
        )
    candidates = [result for result in results if result.ok]
    coordinates = [(r.metric(x), r.metric(y)) for r in candidates]
    return [
        candidates[i] for i in frontier_indices(coordinates, minimize_x, minimize_y)
    ]


def summary_rows(
    results: Iterable[ExplorationResult],
) -> list[tuple[str, str, str, float, float, float, float]]:
    """Per-(workload, topology, scheme) aggregate rows across budgets.

    Each row is ``(workload, topology, scheme, mean speedup, max speedup,
    mean ppc gain, max ppc gain)`` over the EqualBW baseline — the numbers
    the paper quotes as panel headlines.
    """
    groups: dict[tuple[str, str, str], list[ExplorationResult]] = {}
    for result in results:
        if not result.ok:
            continue
        key = (
            result.point.workload_name,
            result.point.topology,
            result.point.scheme.value,
        )
        groups.setdefault(key, []).append(result)
    rows = []
    for (workload, topology, scheme), members in groups.items():
        speedups = [r.speedup_over_equal for r in members]
        gains = [r.ppc_gain_over_equal for r in members]
        rows.append(
            (
                workload,
                topology,
                scheme,
                mean(speedups),
                max(speedups),
                mean(gains),
                max(gains),
            )
        )
    return rows


def best_per_budget(
    results: Iterable[ExplorationResult],
    metric: str = "step_time_ms",
    minimize: bool = True,
) -> dict[float, ExplorationResult]:
    """The winning row at each bandwidth budget, by a named metric.

    Useful for "which (workload, topology, scheme) wins at 500 GB/s"
    questions across a heterogeneous sweep.
    """
    if metric not in METRICS:
        raise ConfigurationError(
            f"unknown metric {metric!r}; known: {sorted(METRICS)}"
        )
    winners: dict[float, ExplorationResult] = {}
    for result in results:
        if not result.ok:
            continue
        budget = result.point.total_bw_gbps
        incumbent = winners.get(budget)
        if incumbent is None:
            winners[budget] = result
            continue
        better = (
            result.metric(metric) < incumbent.metric(metric)
            if minimize
            else result.metric(metric) > incumbent.metric(metric)
        )
        if better:
            winners[budget] = result
    return dict(sorted(winners.items()))

"""Declarative sweep specifications for design-space exploration.

A :class:`SweepSpec` names the *axes* of a study — workloads, topologies,
total-bandwidth budgets, optimization schemes, cost models — and expands to
the full grid of :class:`ExplorationPoint`\\ s in a deterministic order
(workload-major, scheme varying fastest). Each point is a self-contained,
picklable description of one solve, so the executor can ship it to a worker
process and the cache can hash it into a content address.

Specs can also be loaded from a small JSON file (the ``repro explore --spec``
input)::

    {
      "workloads": ["GPT-3", "Turing-NLG"],
      "topologies": ["3D-4K", "4D-4K"],
      "bandwidths_gbps": [100, 300, 500, 1000],
      "schemes": ["perf", "perf-per-cost"],
      "dim_caps_gbps": {"3": 50}
    }
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path

from repro.api.registry import SCHEME_ALIASES, resolve_scheme  # noqa: F401
from repro.core.results import Scheme
from repro.cost.model import CostModel
from repro.utils.errors import ConfigurationError
from repro.workloads.workload import Workload

# SCHEME_ALIASES / resolve_scheme moved to repro.api.registry (the one
# registry for every name the API accepts); re-exported here so existing
# `from repro.explore.spec import SCHEME_ALIASES` imports keep working.


@dataclass(frozen=True)
class ExplorationPoint:
    """One cell of an exploration grid: a single constrained optimization.

    Attributes:
        workload: Preset workload name (Table II) or a concrete
            :class:`~repro.workloads.workload.Workload` object.
        topology: Preset topology name (Table III / Fig. 11) or notation.
        total_bw_gbps: Per-NPU aggregate bandwidth budget, GB/s.
        scheme: Optimization scheme to run at this cell.
        cost_model: Cost table override; ``None`` means Table I defaults.
        dim_caps_gbps: Per-dimension bandwidth caps as ``(dim, GB/s)`` pairs.
    """

    workload: str | Workload
    topology: str
    total_bw_gbps: float
    scheme: Scheme
    cost_model: CostModel | None = None
    dim_caps_gbps: tuple[tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        if self.total_bw_gbps <= 0:
            raise ConfigurationError(
                f"bandwidth budget must be positive, got {self.total_bw_gbps}"
            )
        object.__setattr__(self, "total_bw_gbps", float(self.total_bw_gbps))
        object.__setattr__(
            self,
            "dim_caps_gbps",
            tuple((int(dim), float(cap)) for dim, cap in self.dim_caps_gbps),
        )

    @property
    def workload_name(self) -> str:
        return self.workload.name if isinstance(self.workload, Workload) else self.workload

    @property
    def cost_model_name(self) -> str:
        return self.cost_model.name if self.cost_model is not None else "table1-default"

    def label(self) -> str:
        """Compact human-readable cell label for progress lines and errors."""
        return (
            f"{self.workload_name} @ {self.topology} "
            f"@ {self.total_bw_gbps:g} GB/s [{self.scheme.value}]"
        )

    def to_dict(self) -> dict:
        """JSON-ready description (used by result artifacts and the cache)."""
        return {
            "workload": self.workload_name,
            "topology": self.topology,
            "total_bw_gbps": self.total_bw_gbps,
            "scheme": self.scheme.value,
            "cost_model": self.cost_model_name,
            "dim_caps_gbps": [list(pair) for pair in self.dim_caps_gbps],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExplorationPoint":
        """Rebuild a (preset-workload) point from :meth:`to_dict` output."""
        return cls(
            workload=str(payload["workload"]),
            topology=str(payload["topology"]),
            total_bw_gbps=float(payload["total_bw_gbps"]),
            scheme=resolve_scheme(payload["scheme"]),
            dim_caps_gbps=tuple(
                (int(dim), float(cap))
                for dim, cap in payload.get("dim_caps_gbps", ())
            ),
        )


@dataclass(frozen=True)
class SweepSpec:
    """Axes of a design-space exploration study.

    Every combination of the five axes becomes one :class:`ExplorationPoint`;
    :meth:`expand` enumerates them deterministically so two runs of the same
    spec — serial or parallel, cached or cold — see the identical grid in
    the identical order.
    """

    workloads: tuple[str | Workload, ...]
    topologies: tuple[str, ...]
    bandwidths_gbps: tuple[float, ...]
    schemes: tuple[Scheme, ...] = (Scheme.PERF_OPT,)
    cost_models: tuple[CostModel | None, ...] = (None,)
    dim_caps_gbps: tuple[tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "topologies", tuple(self.topologies))
        object.__setattr__(
            self, "bandwidths_gbps", tuple(float(b) for b in self.bandwidths_gbps)
        )
        object.__setattr__(
            self, "schemes", tuple(resolve_scheme(s) for s in self.schemes)
        )
        object.__setattr__(self, "cost_models", tuple(self.cost_models))
        object.__setattr__(
            self,
            "dim_caps_gbps",
            tuple((int(dim), float(cap)) for dim, cap in self.dim_caps_gbps),
        )
        for name, axis in (
            ("workloads", self.workloads),
            ("topologies", self.topologies),
            ("bandwidths_gbps", self.bandwidths_gbps),
            ("schemes", self.schemes),
            ("cost_models", self.cost_models),
        ):
            if not axis:
                raise ConfigurationError(f"sweep axis {name!r} must not be empty")
        if any(b <= 0 for b in self.bandwidths_gbps):
            raise ConfigurationError(
                f"bandwidth budgets must be positive, got {self.bandwidths_gbps}"
            )

    @property
    def num_points(self) -> int:
        """Grid size: the product of all axis lengths."""
        return (
            len(self.workloads)
            * len(self.topologies)
            * len(self.bandwidths_gbps)
            * len(self.schemes)
            * len(self.cost_models)
        )

    def expand(self) -> list[ExplorationPoint]:
        """The full grid, workload-major with the scheme varying fastest."""
        points = []
        for workload in self.workloads:
            for topology in self.topologies:
                for cost_model in self.cost_models:
                    for budget in self.bandwidths_gbps:
                        for scheme in self.schemes:
                            points.append(
                                ExplorationPoint(
                                    workload=workload,
                                    topology=topology,
                                    total_bw_gbps=budget,
                                    scheme=scheme,
                                    cost_model=cost_model,
                                    dim_caps_gbps=self.dim_caps_gbps,
                                )
                            )
        return points

    def to_dict(self) -> dict:
        """JSON-ready description for result artifacts and spec files."""
        return {
            "workloads": [
                w.name if isinstance(w, Workload) else w for w in self.workloads
            ],
            "topologies": list(self.topologies),
            "bandwidths_gbps": list(self.bandwidths_gbps),
            "schemes": [scheme.value for scheme in self.schemes],
            "cost_models": [
                model.name if model is not None else "table1-default"
                for model in self.cost_models
            ],
            "dim_caps_gbps": {
                str(dim): cap for dim, cap in self.dim_caps_gbps
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SweepSpec":
        """Build a spec from a parsed JSON mapping (spec-file schema)."""
        unknown = set(payload) - {
            "workloads", "topologies", "bandwidths_gbps", "schemes",
            "dim_caps_gbps", "cost_models",
        }
        if unknown:
            raise ConfigurationError(
                f"unknown sweep-spec fields: {sorted(unknown)}"
            )
        for required in ("workloads", "topologies", "bandwidths_gbps"):
            if required not in payload:
                raise ConfigurationError(f"sweep spec is missing {required!r}")
        caps_payload = payload.get("dim_caps_gbps", {})
        if isinstance(caps_payload, Mapping):
            caps = tuple(
                (int(dim), float(cap)) for dim, cap in sorted(caps_payload.items())
            )
        else:
            caps = tuple((int(dim), float(cap)) for dim, cap in caps_payload)
        # Cost models are objects, not names — a spec file (or a round-tripped
        # to_dict) can only ever describe the default table.
        models = payload.get("cost_models", ["table1-default"])
        if any(model != "table1-default" for model in models):
            raise ConfigurationError(
                "spec files cannot carry custom cost models; pass CostModel "
                "objects to SweepSpec directly"
            )
        return cls(
            workloads=tuple(payload["workloads"]),
            topologies=tuple(payload["topologies"]),
            bandwidths_gbps=tuple(payload["bandwidths_gbps"]),
            schemes=tuple(payload.get("schemes", ("perf",))),
            dim_caps_gbps=caps,
        )


def load_sweep_spec(path: str | Path) -> SweepSpec:
    """Load a :class:`SweepSpec` from a JSON file."""
    try:
        payload = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ConfigurationError(f"cannot read sweep spec {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"sweep spec {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, Mapping):
        raise ConfigurationError(f"sweep spec {path} must be a JSON object")
    return SweepSpec.from_dict(payload)

"""Performance microbenchmark harness (``repro bench``).

Times the solver/compile/sweep hot paths on Table-II-scale workloads,
checks vectorized-vs-closure solver equivalence, and writes the
``BENCH_solver.json`` artifact that records the perf trajectory across PRs.
See ``benchmarks/perf/README.md`` for the artifact schema.
"""

from repro.perfbench.harness import (
    BENCH_SCHEMA_VERSION,
    BenchConfig,
    format_report,
    quick_config,
    run_benchmarks,
    write_artifact,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchConfig",
    "format_report",
    "quick_config",
    "run_benchmarks",
    "write_artifact",
]

"""Performance microbenchmark harness (``repro bench``).

Times the solver/compile/sweep hot paths on Table-II-scale workloads,
checks vectorized-vs-closure solver equivalence, and writes the
``BENCH_solver.json`` artifact that records the perf trajectory across PRs.
:mod:`repro.perfbench.sweep` benchmarks whole grids — continuation (warm)
vs cold — into ``BENCH_sweep.json`` with a per-cell equivalence gate.
:mod:`repro.perfbench.analyze` times cached what-if probes into
``BENCH_analyze.json`` with a p95 latency floor.
:mod:`repro.perfbench.strategy` benchmarks the joint strategy × bandwidth
search — warm-start reuse vs independent cold columns — into
``BENCH_strategy.json`` with a solver-start reduction floor.
See ``benchmarks/perf/README.md`` for the artifact schemas.
"""

from repro.perfbench.analyze import (
    ANALYZE_BENCH_SCHEMA_VERSION,
    AnalyzeBenchConfig,
    format_analyze_report,
    quick_analyze_config,
    run_analyze_benchmark,
)
from repro.perfbench.harness import (
    BENCH_SCHEMA_VERSION,
    BenchConfig,
    format_report,
    quick_config,
    run_benchmarks,
    write_artifact,
)
from repro.perfbench.strategy import (
    STRATEGY_BENCH_SCHEMA_VERSION,
    StrategyBenchConfig,
    format_strategy_report,
    quick_strategy_config,
    run_strategy_benchmark,
)
from repro.perfbench.sweep import (
    SWEEP_BENCH_SCHEMA_VERSION,
    SweepBenchConfig,
    format_sweep_report,
    quick_sweep_config,
    run_sweep_benchmark,
)

__all__ = [
    "ANALYZE_BENCH_SCHEMA_VERSION",
    "AnalyzeBenchConfig",
    "format_analyze_report",
    "quick_analyze_config",
    "run_analyze_benchmark",
    "BENCH_SCHEMA_VERSION",
    "BenchConfig",
    "format_report",
    "quick_config",
    "run_benchmarks",
    "write_artifact",
    "STRATEGY_BENCH_SCHEMA_VERSION",
    "StrategyBenchConfig",
    "format_strategy_report",
    "quick_strategy_config",
    "run_strategy_benchmark",
    "SWEEP_BENCH_SCHEMA_VERSION",
    "SweepBenchConfig",
    "format_sweep_report",
    "quick_sweep_config",
    "run_sweep_benchmark",
]

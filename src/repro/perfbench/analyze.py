"""What-if probe latency benchmark: the sub-second analysis promise.

Where :mod:`repro.perfbench.harness` times solves and
:mod:`repro.perfbench.sweep` times grids, this module times the *analysis*
fast path: repeat :class:`~repro.api.requests.AnalyzeRequest` probes
against a sweep cell that is already cache-resident. The first probe pays
the evaluator (structure + what-ifs); every later identical probe must be
served from the service's analyze memo. The artifact —
``BENCH_analyze.json`` — records the cold latency plus the p50/p95 of the
memo-served probes, and the CLI's ``--max-p95-ms`` floor turns the "cached
probes answer in well under 50 ms" claim into a CI gate (exit 3 on miss).

The benchmark never touches the solver beyond the one sweep that seeds
the cache: analysis is read-only, and a latency number that silently
included a solve would be measuring the wrong tier.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.utils.errors import ReproError

#: Bump when the BENCH_analyze.json layout changes.
ANALYZE_BENCH_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class AnalyzeBenchConfig:
    """One analyze-benchmark invocation.

    Attributes:
        workload: Preset workload of the probed sweep cell.
        topology: Preset topology / notation of the cell.
        budget_gbps: The cell's bandwidth budget, GB/s.
        probes: Memo-served probes to sample for the percentiles.
        quick: True for the seconds-scale CI smoke configuration.
        label: Free-form tag recorded in the artifact.
    """

    workload: str = "GPT-3"
    topology: str = "4D-4K"
    budget_gbps: float = 500.0
    probes: int = 200
    quick: bool = False
    label: str = ""


def quick_analyze_config() -> AnalyzeBenchConfig:
    """A seconds-scale configuration for CI smoke runs."""
    return AnalyzeBenchConfig(
        workload="Turing-NLG",
        topology="3D-512",
        budget_gbps=300.0,
        probes=50,
        quick=True,
        label="quick",
    )


def _percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def run_analyze_benchmark(config: AnalyzeBenchConfig) -> dict:
    """Run the probe-latency benchmark; returns the artifact payload."""
    from repro.api.requests import AnalyzeRequest, BatchRequest
    from repro.api.service import LibraService
    from repro.explore.spec import ExplorationPoint, SweepSpec

    if config.probes < 1:
        raise ReproError(f"probes must be >= 1, got {config.probes}")

    service = LibraService()
    spec = SweepSpec(
        workloads=(config.workload,),
        topologies=(config.topology,),
        bandwidths_gbps=(config.budget_gbps,),
    )
    seed_start = time.perf_counter()
    batch = service.submit(BatchRequest(spec=spec))
    seed_s = time.perf_counter() - seed_start
    if batch.sweep.num_errors:
        raise ReproError(
            f"seeding sweep failed for {config.workload} on "
            f"{config.topology}: {batch.sweep.num_errors} error cells"
        )

    cell = ExplorationPoint(
        workload=config.workload,
        topology=config.topology,
        total_bw_gbps=config.budget_gbps,
        scheme=next(iter(spec.schemes)),
    )
    request = AnalyzeRequest(cell=cell)

    cold_start = time.perf_counter()
    cold = service.submit(request)
    cold_s = time.perf_counter() - cold_start
    if cold.memo_hit or cold.source != "cache":
        raise ReproError(
            f"cold probe should be a fresh cache-sourced analysis, got "
            f"source={cold.source!r} memo_hit={cold.memo_hit}"
        )

    samples: list[float] = []
    for _ in range(config.probes):
        start = time.perf_counter()
        response = service.submit(request)
        samples.append(time.perf_counter() - start)
        if not response.memo_hit:
            raise ReproError(
                "repeat probe missed the analyze memo; the benchmark "
                "would be timing re-evaluation, not the cached path"
            )

    return {
        "schema_version": ANALYZE_BENCH_SCHEMA_VERSION,
        "unix_time": time.time(),
        "config": {
            "workload": config.workload,
            "topology": config.topology,
            "budget_gbps": config.budget_gbps,
            "probes": config.probes,
            "quick": config.quick,
            "label": config.label,
        },
        "seed_sweep_s": seed_s,
        "cold_ms": cold_s * 1e3,
        "cached_p50_ms": _percentile(samples, 0.50) * 1e3,
        "cached_p95_ms": _percentile(samples, 0.95) * 1e3,
        "cached_max_ms": max(samples) * 1e3,
        "probes_per_sec": len(samples) / max(sum(samples), 1e-12),
        "whatif_memo": dict(cold.diagnostics or {}).get("whatif_memo"),
    }


def format_analyze_report(artifact: dict) -> str:
    """Human-readable summary of one BENCH_analyze.json payload."""
    config = artifact["config"]
    return "\n".join([
        f"analyze bench — {config['workload']} on {config['topology']} @ "
        f"{config['budget_gbps']:.0f} GB/s ({config['probes']} probes)",
        f"  seed sweep:        {artifact['seed_sweep_s'] * 1e3:>9.1f} ms "
        f"(one-time, not the measured tier)",
        f"  cold analysis:     {artifact['cold_ms']:>9.3f} ms",
        f"  cached probe p50:  {artifact['cached_p50_ms']:>9.3f} ms",
        f"  cached probe p95:  {artifact['cached_p95_ms']:>9.3f} ms",
        f"  cached probe max:  {artifact['cached_max_ms']:>9.3f} ms "
        f"({artifact['probes_per_sec']:.0f} probes/s)",
    ])

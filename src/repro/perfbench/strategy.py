"""Strategy-search wall-clock benchmark: warm-start reuse vs cold columns.

Where :mod:`repro.perfbench.sweep` times one budget column, this module
times the whole joint strategy × bandwidth search twice — once with every
cell solved cold (``cross_warm=False, continuation=False``: each strategy's
column pays the full multi-start bill independently) and once with the
default warm-start threading (within columns and across adjacent
strategies) — and writes the ``BENCH_strategy.json`` artifact: end-to-end
wall clock, candidates per second, the warm-hit breakdown, and the
solver-start reduction the reuse actually buys.

The equivalence check is the benchmark's gate, same contract as the sweep
bench: for every strategy × budget cell the warm path's achieved objective
must not sit *above* the cold path's by more than ``objective_rtol`` or
the run raises :class:`~repro.perfbench.harness.BenchEquivalenceError` and
no artifact is written. One-sided: a warm seed landing on a *better* point
is reported (``max_objective_gain``), never a failure.

Both runs start from cleared solver caches, a fresh service, and a fresh
result cache, so the measured ratio isolates warm-start reuse itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.api.service import reset_service
from repro.core.solver import clear_solver_caches
from repro.obs import Tracer, use_tracer
from repro.perfbench.harness import BenchEquivalenceError
from repro.utils.errors import ReproError

#: Bump when the BENCH_strategy.json layout changes.
STRATEGY_BENCH_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class StrategyBenchConfig:
    """One strategy-benchmark invocation.

    Attributes:
        workload: Preset workload the strategy axis re-parallelizes.
        topology: Topology whose node count the space factorizes.
        budgets_gbps: The bandwidth column every strategy solves.
        max_tp: Strategy-space TP bound (power-of-two degrees below it).
        scheme: Scheme every cell runs (registry alias).
        repeats: Best-of-N wall-clock repetitions per path.
        objective_rtol: Per-cell relative objective tolerance, warm vs
            cold (the documented continuation tolerance).
        quick: True for the seconds-scale CI smoke configuration.
        label: Free-form tag recorded in the artifact.
    """

    workload: str = "Turing-NLG"
    topology: str = "3D-512"
    budgets_gbps: tuple[float, ...] = (100.0, 200.0, 300.0, 400.0, 500.0)
    max_tp: int = 8
    scheme: str = "perf"
    repeats: int = 3
    objective_rtol: float = 2e-2
    quick: bool = False
    label: str = ""


def quick_strategy_config() -> StrategyBenchConfig:
    """A seconds-scale configuration for CI smoke runs."""
    return StrategyBenchConfig(
        workload="Turing-NLG",
        topology="Google TPUv2",
        budgets_gbps=(100.0, 200.0, 300.0),
        max_tp=2,
        repeats=2,
        quick=True,
        label="quick",
    )


def _cell_objective(result) -> float:
    """The scheme-appropriate scalar a cell optimizes (for equivalence)."""
    if result.point.scheme.value == "PerfPerCostOptBW":
        return result.step_time_ms * result.network_cost
    return result.step_time_ms


def _timed_search(config: StrategyBenchConfig, warm: bool):
    """Best-of-N cold-cache run of one joint search; (seconds, result)."""
    from repro.api.registry import resolve_scheme
    from repro.explore import ResultCache
    from repro.strategy import StrategySpace, joint_search

    best = float("inf")
    search = None
    for _ in range(max(1, config.repeats)):
        # Every repetition pays the full pipeline — workload construction,
        # expression compilation, solving — like a fresh CLI invocation.
        clear_solver_caches()
        reset_service()
        start = time.perf_counter()
        candidate = joint_search(
            config.workload,
            config.topology,
            config.budgets_gbps,
            space=StrategySpace(max_tp=config.max_tp),
            scheme=resolve_scheme(config.scheme),
            cache=ResultCache(),
            cross_warm=warm,
            continuation=warm,
        )
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            search = candidate
    return best, search


def _equivalence(cold, warm, rtol: float) -> dict:
    """Per-cell objective comparison; raises on drift past ``rtol``."""
    cold_rows, warm_rows = cold.rows(), warm.rows()
    if len(cold_rows) != len(warm_rows):
        raise ReproError(
            f"search shape drifted: cold has {len(cold_rows)} cells, "
            f"warm {len(warm_rows)}"
        )
    worst = 0.0  # warm worse than cold (the failure direction)
    best_gain = 0.0  # warm better than cold (reported, never a failure)
    worst_label = ""
    for cold_row, warm_row in zip(cold_rows, warm_rows):
        if cold_row.ok != warm_row.ok:
            raise BenchEquivalenceError(
                f"warm-start reuse changed cell outcome at "
                f"{cold_row.point.label()}: cold ok={cold_row.ok}, "
                f"warm ok={warm_row.ok}"
            )
        if not cold_row.ok:
            continue
        reference = _cell_objective(cold_row)
        drift = (_cell_objective(warm_row) - reference) / max(
            abs(reference), 1e-30
        )
        if drift > worst:
            worst = drift
            worst_label = cold_row.point.label()
        best_gain = max(best_gain, -drift)
    if worst > rtol:
        raise BenchEquivalenceError(
            f"warm-start reuse drifted past tolerance: objective rel diff "
            f"{worst:.3e} > {rtol:g} at {worst_label}"
        )
    return {
        "max_objective_rel_diff": worst,
        "max_objective_gain": best_gain,
        "rtol": rtol,
        "ok": True,
    }


def _total_starts(search) -> int:
    """Multi-start seed attempts the whole search paid for."""
    return sum(row.solver_starts for row in search.rows() if row.ok)


def run_strategy_benchmark(config: StrategyBenchConfig) -> dict:
    """Run the warm-vs-cold strategy benchmark; returns the artifact.

    Raises :class:`BenchEquivalenceError` when the warm path's design
    points drift past ``config.objective_rtol`` — drifted timings cannot
    be trusted, so no artifact escapes.
    """
    tracer = Tracer()
    with use_tracer(tracer):
        cold_s, cold = _timed_search(config, warm=False)
        warm_s, warm = _timed_search(config, warm=True)
    equivalence = _equivalence(cold, warm, config.objective_rtol)

    cells = len(warm.rows())
    diag = warm.diagnostics
    starts_cold = _total_starts(cold)
    starts_warm = _total_starts(warm)
    return {
        "schema_version": STRATEGY_BENCH_SCHEMA_VERSION,
        "unix_time": time.time(),
        "config": {
            "workload": config.workload,
            "topology": config.topology,
            "budgets_gbps": list(config.budgets_gbps),
            "max_tp": config.max_tp,
            "scheme": config.scheme,
            "repeats": config.repeats,
            "objective_rtol": config.objective_rtol,
            "quick": config.quick,
            "label": config.label,
        },
        "strategies": diag.get("strategies", len(warm.runs)),
        "pruned": diag.get("pruned", 0),
        "cells": cells,
        "errors": diag.get("errors", 0),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / max(warm_s, 1e-12),
        "candidates_per_sec_cold": cells / max(cold_s, 1e-12),
        "candidates_per_sec_warm": cells / max(warm_s, 1e-12),
        "breakdown": {
            "warm_accepted": diag.get("warm_accepted", 0),
            "warm_rejected": diag.get("warm_rejected", 0),
            "cold_solves": diag.get("cold_solves", 0),
            "cross_warm_accepted": diag.get("cross_warm_accepted", 0),
            "warm_hit_rate": diag.get("warm_hit_rate", 0.0),
            "solver_starts_cold": starts_cold,
            "solver_starts_warm": starts_warm,
            # The reuse metric the CI floor gates on: the fraction of the
            # cold baseline's multi-start work the warm path never runs.
            "start_reduction": (
                1.0 - starts_warm / starts_cold if starts_cold else 0.0
            ),
        },
        "equivalence": equivalence,
        "spans": tracer.summary(),
    }


def format_strategy_report(artifact: dict) -> str:
    """Human-readable summary of one BENCH_strategy.json payload."""
    config = artifact["config"]
    breakdown = artifact["breakdown"]
    equivalence = artifact["equivalence"]
    return "\n".join([
        f"strategy bench — {config['workload']} on {config['topology']}, "
        f"{artifact['strategies']} strategies × "
        f"{len(config['budgets_gbps'])} budgets = {artifact['cells']} cells "
        f"(repeats={config['repeats']})",
        f"  cold (independent):  {artifact['cold_s'] * 1e3:>9.1f} ms "
        f"({artifact['candidates_per_sec_cold']:.1f} candidates/s)",
        f"  warm (reuse):        {artifact['warm_s'] * 1e3:>9.1f} ms "
        f"({artifact['candidates_per_sec_warm']:.1f} candidates/s)",
        f"  speedup:             {artifact['speedup']:>9.2f}x",
        f"  warm starts: {breakdown['warm_accepted']} accepted / "
        f"{breakdown['warm_rejected']} rejected / "
        f"{breakdown['cold_solves']} cold "
        f"({breakdown['warm_hit_rate']:.1%} hit rate, "
        f"{breakdown['cross_warm_accepted']} across strategies)",
        f"  solver starts: {breakdown['solver_starts_cold']} cold → "
        f"{breakdown['solver_starts_warm']} warm "
        f"({breakdown['start_reduction']:.1%} reduction)",
        f"  equivalence: ok (max objective rel diff "
        f"{equivalence['max_objective_rel_diff']:.1e}, "
        f"tolerance {equivalence['rtol']:g})",
    ])

"""Microbenchmarks for the solver, memoization, and sweep hot paths.

Every benchmark here is an *end-to-end* timing of a public code path at
Table-II scale, never a synthetic kernel:

* ``solver_perf`` / ``solver_perf_per_cost`` — one full
  ``minimize_training_time`` / ``minimize_time_cost_product`` call per
  kernel, caches cleared before each repetition so both kernels pay the
  cold path. The closure kernel is the pre-vectorization reference; the
  reported ``speedup`` is the headline number.
* ``compile_memo`` — cold vs. warm ``simplify`` + ``compile_expression`` +
  ``traffic_totals``, demonstrating the memoization tier.
* ``sweep`` — a small cached ``run_sweep`` grid through the explore engine.

Solver benchmarks double as an equivalence gate: when both kernels
converge, bandwidths must agree within ``tolerance`` (rtol); when either
stalls, the returned objectives must agree within ``value_tolerance`` —
line-search stall iterates sit on flat ridges where the bandwidth vector is
not unique, but the achieved objective is. ``repro bench`` fails the run on
any drift, which is what the CI smoke job enforces.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.api.scenario import build_scenario
from repro.api.service import get_service
from repro.core.solver import (
    clear_solver_caches,
    compile_expression,
    minimize_time_cost_product,
    minimize_training_time,
    traffic_totals,
)
from repro.cost.estimator import cost_rates
from repro.obs import Tracer, use_tracer
from repro.training.expr import simplify
from repro.utils.errors import ReproError
from repro.utils.units import gbps

#: Bump when the BENCH_solver.json layout changes.
BENCH_SCHEMA_VERSION = 1


class BenchEquivalenceError(ReproError):
    """The vectorized and closure kernels disagreed on a design point."""


@dataclass(frozen=True)
class BenchConfig:
    """One harness invocation (defaults are the GPT-3-scale hot path)."""

    workloads: tuple[str, ...] = ("GPT-3",)
    topology: str = "4D-4K"
    total_bw_gbps: float = 500.0
    repeats: int = 3
    tolerance: float = 1e-6  # bandwidth rtol when both kernels converge
    value_tolerance: float = 1e-2  # objective rtol when either kernel stalls
    sweep_budgets_gbps: tuple[float, ...] = (300.0, 500.0, 1000.0)
    quick: bool = False
    label: str = ""


def quick_config() -> BenchConfig:
    """A seconds-scale configuration for CI smoke runs."""
    return BenchConfig(
        workloads=("Turing-NLG",),
        topology="3D-512",
        total_bw_gbps=300.0,
        repeats=1,
        sweep_budgets_gbps=(200.0, 300.0),
        quick=True,
        label="quick",
    )


def _build_problem(config: BenchConfig):
    """Expression + constraint factory + cost rates for one configuration.

    The benchmark states its problem as a :class:`~repro.api.scenario
    .Scenario` and pulls the compiled engine from the service, exactly as
    production requests do; only the solver kernels below are hand-timed.
    """
    scenario = build_scenario(
        topology=config.topology,
        workloads=config.workloads,
        total_bw_gbps=config.total_bw_gbps,
    )
    engine = get_service().engine(scenario)
    network = scenario.network
    expression = engine.combined_expression()
    rates = np.asarray(cost_rates(network, engine.cost_model)) * network.num_npus

    def make_constraints():
        # Fresh per solve so every repetition pays the feasibility LP, as
        # the pre-API harness did (timings stay comparable across PRs).
        return engine.constraints().with_total_bandwidth(gbps(config.total_bw_gbps))

    return expression, make_constraints, rates


def _time_solves(solve, repeats: int, cold: bool) -> tuple[float, Any]:
    """Best-of-N wall time of one end-to-end solve.

    ``cold=True`` clears the memoization tier before every repetition (the
    pre-PR closure path had no caches, so this is its faithful cost, and
    the first-ever solve of the vectorized path). ``cold=False`` measures
    the steady state — what every sweep cell after the first pays, with
    ``simplify``/``compile_expression``/``traffic_totals`` warm.
    """
    best = float("inf")
    result = None
    if not cold:
        clear_solver_caches()
        solve()  # untimed warm-up populates the memo tier
    for _ in range(max(1, repeats)):
        if cold:
            clear_solver_caches()
        start = time.perf_counter()
        result = solve()
        best = min(best, time.perf_counter() - start)
    return best, result


def _equivalence(reference, candidate, config: BenchConfig) -> dict:
    """Compare two SolverResults; raises on drift past the tolerances."""
    ref_bw = np.asarray(reference.bandwidths)
    cand_bw = np.asarray(candidate.bandwidths)
    bw_rel = float(
        np.max(np.abs(ref_bw - cand_bw) / np.maximum(np.abs(ref_bw), 1e-9))
    )
    obj_rel = float(
        abs(reference.objective - candidate.objective)
        / max(abs(reference.objective), 1e-30)
    )
    converged = reference.success and candidate.success
    ok = (bw_rel <= config.tolerance) if converged else (
        obj_rel <= config.value_tolerance
    )
    report = {
        "both_converged": converged,
        "max_bandwidth_rel_diff": bw_rel,
        "objective_rel_diff": obj_rel,
        "ok": ok,
    }
    if not ok:
        raise BenchEquivalenceError(
            "solver kernels disagree: "
            f"bandwidth rel diff {bw_rel:.3e}, objective rel diff {obj_rel:.3e} "
            f"(converged={converged}, tolerance={config.tolerance:g}/"
            f"{config.value_tolerance:g})"
        )
    return report


def bench_solver(config: BenchConfig) -> list[dict]:
    """Closure-vs-vectorized end-to-end timings for both schemes."""
    expression, make_constraints, rates = _build_problem(config)
    records = []
    schemes = [
        (
            "solver_perf",
            lambda kernel: minimize_training_time(
                expression, make_constraints(), kernel=kernel
            ),
        ),
        (
            "solver_perf_per_cost",
            lambda kernel: minimize_time_cost_product(
                expression, make_constraints(), rates, kernel=kernel
            ),
        ),
    ]
    for name, solve in schemes:
        closures_s, closures_result = _time_solves(
            lambda: solve("closures"), config.repeats, cold=True
        )
        vectorized_cold_s, vectorized_result = _time_solves(
            lambda: solve("vectorized"), config.repeats, cold=True
        )
        vectorized_warm_s, _ = _time_solves(
            lambda: solve("vectorized"), config.repeats, cold=False
        )
        records.append(
            {
                "name": name,
                "closures_s": closures_s,
                "vectorized_cold_s": vectorized_cold_s,
                "vectorized_warm_s": vectorized_warm_s,
                "speedup_cold": closures_s / max(vectorized_cold_s, 1e-12),
                "speedup_warm": closures_s / max(vectorized_warm_s, 1e-12),
                "equivalence": _equivalence(
                    closures_result, vectorized_result, config
                ),
            }
        )
    return records


def bench_compile_memo(config: BenchConfig) -> dict:
    """Cold vs. warm tree pipeline (simplify → compile → traffic totals)."""
    expression, make_constraints, _ = _build_problem(config)
    num_dims = make_constraints().num_dims

    def pipeline() -> None:
        simplify(expression)
        compile_expression(expression, num_dims)
        traffic_totals(expression, num_dims)

    clear_solver_caches()
    start = time.perf_counter()
    pipeline()
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    pipeline()
    warm_s = time.perf_counter() - start
    hits_after = compile_expression.cache_info().hits
    return {
        "name": "compile_memo",
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / max(warm_s, 1e-12),
        "warm_hits": hits_after,
    }


def bench_sweep(config: BenchConfig) -> dict:
    """A small cached exploration grid through the real sweep engine."""
    from repro.explore import ResultCache, SweepSpec, run_sweep

    spec = SweepSpec(
        workloads=tuple(config.workloads[:1]),
        topologies=(config.topology,),
        bandwidths_gbps=tuple(config.sweep_budgets_gbps),
        schemes=("perf",),
    )
    cache = ResultCache()
    clear_solver_caches()
    start = time.perf_counter()
    cold = run_sweep(spec, cache=cache)
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    warm = run_sweep(spec, cache=cache)
    warm_s = time.perf_counter() - start
    return {
        "name": "sweep",
        "cells": len(cold.results),
        "cold_s": cold_s,
        "warm_cached_s": warm_s,
        "cold_errors": cold.num_errors,
        "warm_cache_hits": warm.cache_hits,
    }


def run_benchmarks(config: BenchConfig) -> dict:
    """Run every benchmark; returns the ``BENCH_solver.json`` payload.

    Equivalence drift raises :class:`BenchEquivalenceError` and the
    in-progress payload is discarded — drifted timings cannot be trusted,
    so no artifact escapes (the CLI maps this to exit code 3).
    """
    artifact: dict = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "unix_time": time.time(),
        "config": {
            "workloads": list(config.workloads),
            "topology": config.topology,
            "total_bw_gbps": config.total_bw_gbps,
            "repeats": config.repeats,
            "tolerance": config.tolerance,
            "value_tolerance": config.value_tolerance,
            "quick": config.quick,
            "label": config.label,
        },
        "benchmarks": [],
    }
    # The harness is the one caller that always opts into tracing: the
    # artifact carries per-span aggregates ("spans") next to the timings,
    # so a regression bisects to a stage (seed solves? warm-trust checks?
    # compile?) without rerunning anything. Production stays no-op.
    tracer = Tracer()
    with use_tracer(tracer):
        artifact["benchmarks"].extend(bench_solver(config))
        artifact["benchmarks"].append(bench_compile_memo(config))
        artifact["benchmarks"].append(bench_sweep(config))
    artifact["spans"] = tracer.summary()
    return artifact


def write_artifact(path: str, artifact: dict) -> None:
    """Write the payload as deterministic, diff-friendly JSON."""
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=1, sort_keys=True)
        handle.write("\n")


def format_report(artifact: dict) -> str:
    """Human-readable table of one artifact (CLI / script output)."""
    lines = [
        f"perf bench — {'+'.join(artifact['config']['workloads'])} on "
        f"{artifact['config']['topology']} @ "
        f"{artifact['config']['total_bw_gbps']:.0f} GB/s "
        f"(repeats={artifact['config']['repeats']})",
        f"{'benchmark':<22} {'closures':>10} {'vec cold':>9} {'vec warm':>9} "
        f"{'cold':>6} {'warm':>6}",
    ]
    for bench in artifact["benchmarks"]:
        name = bench["name"]
        if name.startswith("solver_"):
            eq = bench["equivalence"]
            tag = "ok" if eq["ok"] else "DRIFT"
            lines.append(
                f"{name:<22} {bench['closures_s'] * 1e3:>8.1f}ms "
                f"{bench['vectorized_cold_s'] * 1e3:>7.1f}ms "
                f"{bench['vectorized_warm_s'] * 1e3:>7.1f}ms "
                f"{bench['speedup_cold']:>5.2f}x {bench['speedup_warm']:>5.2f}x"
                f"  equivalence {tag} "
                f"(bw {eq['max_bandwidth_rel_diff']:.1e}, "
                f"obj {eq['objective_rel_diff']:.1e})"
            )
        elif name == "compile_memo":
            lines.append(
                f"{name:<22} {bench['cold_s'] * 1e3:>8.2f}ms "
                f"{bench['warm_s'] * 1e3:>9.3f}ms {bench['speedup']:>7.0f}x  "
                f"(cold vs memoized)"
            )
        elif name == "sweep":
            lines.append(
                f"{name:<22} {bench['cold_s'] * 1e3:>8.1f}ms "
                f"{bench['warm_cached_s'] * 1e3:>9.1f}ms {'':>8}  "
                f"({bench['cells']} cells, warm = {bench['warm_cache_hits']} "
                f"cache hits)"
            )
    return "\n".join(lines)

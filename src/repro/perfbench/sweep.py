"""Sweep-level wall-clock benchmark: continuation (warm) vs cold grids.

Where :mod:`repro.perfbench.harness` times one solve, this module times a
whole fig13-style budget column through the real explore engine twice —
once with ``continuation=False`` (every cell pays the full multi-start
bill) and once with the default chained warm-start propagation — and
writes the ``BENCH_sweep.json`` artifact: end-to-end wall clock, cells per
second, the warm-start hit breakdown, and a per-cell equivalence check.

The equivalence check is the benchmark's gate: for every grid cell the
warm path's achieved objective (step time for PerfOpt, time × cost for
PerfPerCost) must not sit *above* the cold path's by more than
``objective_rtol`` — the documented continuation tolerance — or the run
raises :class:`~repro.perfbench.harness.BenchEquivalenceError` and no
artifact is written. The gate is one-sided: a warm seed occasionally
escapes a line-search stall the cold family hits and lands on a *better*
point, which is reported (``max_objective_gain``) but never a failure.
Speed that costs solution quality is a bug, not a result.

Both runs start from cleared solver caches and a fresh result cache, so
the measured ratio isolates continuation itself (not memo-tier effects).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.api.service import reset_service
from repro.core.solver import clear_solver_caches
from repro.obs import Tracer, use_tracer
from repro.perfbench.harness import BenchEquivalenceError
from repro.utils.errors import ReproError

#: Bump when the BENCH_sweep.json layout changes.
SWEEP_BENCH_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SweepBenchConfig:
    """One sweep-benchmark invocation (defaults are a fig13-style column).

    Attributes:
        workloads: Workload axis (each workload is one chain per scheme).
        topology: Topology every cell shares.
        budgets_gbps: The budget axis — the continuation direction.
        schemes: Scheme axis (registry aliases).
        repeats: Best-of-N wall-clock repetitions per path.
        objective_rtol: Per-cell relative objective tolerance, warm vs
            cold (the documented continuation tolerance).
        quick: True for the seconds-scale CI smoke configuration.
        label: Free-form tag recorded in the artifact.
    """

    workloads: tuple[str, ...] = ("GPT-3",)
    topology: str = "4D-4K"
    budgets_gbps: tuple[float, ...] = (
        100.0, 200.0, 300.0, 400.0, 500.0, 700.0, 1000.0,
    )
    schemes: tuple[str, ...] = ("perf", "perf-per-cost")
    repeats: int = 3
    objective_rtol: float = 2e-2
    quick: bool = False
    label: str = ""


def quick_sweep_config() -> SweepBenchConfig:
    """A seconds-scale configuration for CI smoke runs."""
    return SweepBenchConfig(
        workloads=("Turing-NLG",),
        topology="3D-512",
        budgets_gbps=(100.0, 150.0, 200.0, 300.0, 400.0, 500.0),
        repeats=2,
        quick=True,
        label="quick",
    )


def _cell_objective(result) -> float:
    """The scheme-appropriate scalar a cell optimizes (for equivalence)."""
    if result.point.scheme.value == "PerfPerCostOptBW":
        return result.step_time_ms * result.network_cost
    return result.step_time_ms


def _timed_sweep(spec, continuation: bool, repeats: int):
    """Best-of-N cold-cache run of one grid; returns (seconds, SweepResult)."""
    from repro.explore import ResultCache, run_sweep

    best = float("inf")
    sweep = None
    for _ in range(max(1, repeats)):
        # Every repetition pays the full pipeline — expression compilation,
        # seed construction, solving — exactly like a fresh CLI invocation.
        clear_solver_caches()
        reset_service()
        start = time.perf_counter()
        candidate = run_sweep(
            spec, cache=ResultCache(), continuation=continuation
        )
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            sweep = candidate
    return best, sweep


def _equivalence(cold, warm, rtol: float) -> dict:
    """Per-cell objective comparison; raises on drift past ``rtol``."""
    if len(cold.results) != len(warm.results):
        raise ReproError(
            f"sweep shape drifted: cold has {len(cold.results)} rows, "
            f"warm {len(warm.results)}"
        )
    worst = 0.0  # warm worse than cold (the failure direction)
    best_gain = 0.0  # warm better than cold (reported, never a failure)
    worst_label = ""
    for cold_row, warm_row in zip(cold.results, warm.results):
        if cold_row.ok != warm_row.ok:
            raise BenchEquivalenceError(
                f"continuation changed cell outcome at "
                f"{cold_row.point.label()}: cold ok={cold_row.ok}, "
                f"warm ok={warm_row.ok}"
            )
        if not cold_row.ok:
            continue
        reference = _cell_objective(cold_row)
        drift = (_cell_objective(warm_row) - reference) / max(
            abs(reference), 1e-30
        )
        if drift > worst:
            worst = drift
            worst_label = cold_row.point.label()
        best_gain = max(best_gain, -drift)
    if worst > rtol:
        raise BenchEquivalenceError(
            f"continuation drifted past tolerance: objective rel diff "
            f"{worst:.3e} > {rtol:g} at {worst_label}"
        )
    return {
        "max_objective_rel_diff": worst,
        "max_objective_gain": best_gain,
        "rtol": rtol,
        "ok": True,
    }


def run_sweep_benchmark(config: SweepBenchConfig) -> dict:
    """Run the warm-vs-cold sweep benchmark; returns the artifact payload.

    Raises :class:`BenchEquivalenceError` when the warm path's design
    points drift past ``config.objective_rtol`` — drifted timings cannot
    be trusted, so no artifact escapes.
    """
    from repro.explore import SweepSpec

    spec = SweepSpec(
        workloads=config.workloads,
        topologies=(config.topology,),
        bandwidths_gbps=config.budgets_gbps,
        schemes=config.schemes,
    )
    # Both paths trace identically (same instrumented call sites), so the
    # warm/cold ratio is unperturbed and the artifact's "spans" aggregates
    # say where each grid spent its time.
    tracer = Tracer()
    with use_tracer(tracer):
        cold_s, cold = _timed_sweep(
            spec, continuation=False, repeats=config.repeats
        )
        warm_s, warm = _timed_sweep(
            spec, continuation=True, repeats=config.repeats
        )
    equivalence = _equivalence(cold, warm, config.objective_rtol)

    cells = len(warm.results)
    profile = warm.profile
    return {
        "schema_version": SWEEP_BENCH_SCHEMA_VERSION,
        "unix_time": time.time(),
        "config": {
            "workloads": list(config.workloads),
            "topology": config.topology,
            "budgets_gbps": list(config.budgets_gbps),
            "schemes": list(config.schemes),
            "repeats": config.repeats,
            "objective_rtol": config.objective_rtol,
            "quick": config.quick,
            "label": config.label,
        },
        "cells": cells,
        "errors": warm.num_errors,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / max(warm_s, 1e-12),
        "cells_per_sec_cold": cells / max(cold_s, 1e-12),
        "cells_per_sec_warm": cells / max(warm_s, 1e-12),
        "breakdown": {
            "chains": profile.chains if profile else 0,
            "warm_accepted": profile.warm_accepted if profile else 0,
            "warm_rejected": profile.warm_rejected if profile else 0,
            "cold_solves": profile.cold_solves if profile else 0,
            "warm_hit_rate": profile.warm_hit_rate if profile else 0.0,
            "cache_hits": warm.cache_hits,
        },
        "equivalence": equivalence,
        "spans": tracer.summary(),
    }


def format_sweep_report(artifact: dict) -> str:
    """Human-readable summary of one BENCH_sweep.json payload."""
    config = artifact["config"]
    breakdown = artifact["breakdown"]
    equivalence = artifact["equivalence"]
    return "\n".join([
        f"sweep bench — {'+'.join(config['workloads'])} on "
        f"{config['topology']}, {artifact['cells']} cells "
        f"({len(config['budgets_gbps'])} budgets × "
        f"{len(config['schemes'])} schemes, repeats={config['repeats']})",
        f"  cold (no continuation): {artifact['cold_s'] * 1e3:>9.1f} ms "
        f"({artifact['cells_per_sec_cold']:.1f} cells/s)",
        f"  warm (continuation):    {artifact['warm_s'] * 1e3:>9.1f} ms "
        f"({artifact['cells_per_sec_warm']:.1f} cells/s)",
        f"  speedup:                {artifact['speedup']:>9.2f}x",
        f"  warm starts: {breakdown['warm_accepted']} accepted / "
        f"{breakdown['warm_rejected']} rejected / "
        f"{breakdown['cold_solves']} cold "
        f"({breakdown['warm_hit_rate']:.1%} hit rate, "
        f"{breakdown['chains']} chains)",
        f"  equivalence: ok (max objective rel diff "
        f"{equivalence['max_objective_rel_diff']:.1e}, "
        f"tolerance {equivalence['rtol']:g})",
    ])

"""Multi-rail collective stage decomposition (Sec. II-C).

A multi-rail All-Reduce on an N-span group runs 2N stages: Reduce-Scatter on
spans 1..N ascending, then All-Gather on spans N..1 descending. Each stage
runs that dimension's topology-aware unit algorithm on the payload that
survives the preceding reductions. Fig. 8 walks this through for a 3×2
network.

The decomposition here is consumed by the chunk-level simulator (each chunk
traverses the stage list as a little pipeline job) and by the Themis-style
scheduler (which reorders the RS stages per chunk).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.collectives.types import CollectiveOp, CollectiveType
from repro.utils.errors import ConfigurationError


class StagePhase(enum.Enum):
    """Which half of the multi-rail pipeline a stage belongs to."""

    REDUCE_SCATTER = "RS"
    ALL_GATHER = "AG"
    ALL_TO_ALL = "A2A"
    POINT_TO_POINT = "P2P"


@dataclass(frozen=True)
class Stage:
    """One stage of a multi-rail collective.

    Attributes:
        phase: RS / AG / A2A.
        dim: Physical dimension index the stage runs on.
        span_size: Effective group size on that dimension.
        payload_bytes: Payload entering the stage, per NPU.
        volume_bytes: Bytes each NPU transfers during the stage.
    """

    phase: StagePhase
    dim: int
    span_size: int
    payload_bytes: float
    volume_bytes: float

    def duration(self, bandwidth: float) -> float:
        """Stage time at ``bandwidth`` bytes/s per NPU."""
        if bandwidth <= 0:
            raise ConfigurationError(f"bandwidth must be positive, got {bandwidth}")
        return self.volume_bytes / bandwidth


def decompose(op: CollectiveOp) -> list[Stage]:
    """Stage list for ``op``, in execution order.

    * All-Reduce → RS ascending then AG descending (2N stages).
    * Reduce-Scatter → RS ascending only.
    * All-Gather → AG descending only (payload grows back out).
    * All-to-All → one A2A stage per span, ascending (no reduction).

    Trivial ops decompose to an empty list.
    """
    if op.is_trivial:
        return []
    if op.kind is CollectiveType.ALL_REDUCE:
        return _reduce_scatter_stages(op) + _all_gather_stages(op)
    if op.kind is CollectiveType.REDUCE_SCATTER:
        return _reduce_scatter_stages(op)
    if op.kind is CollectiveType.ALL_GATHER:
        return _all_gather_stages(op)
    if op.kind is CollectiveType.ALL_TO_ALL:
        return _all_to_all_stages(op)
    if op.kind is CollectiveType.POINT_TO_POINT:
        return _point_to_point_stages(op)
    raise ConfigurationError(f"unsupported collective type {op.kind!r}")


def _reduce_scatter_stages(op: CollectiveOp) -> list[Stage]:
    """RS stages in ascending span order; payload shrinks by each span size."""
    stages = []
    payload = op.size_bytes
    for span in op.spans:
        volume = payload * (span.size - 1) / span.size
        stages.append(
            Stage(StagePhase.REDUCE_SCATTER, span.dim, span.size, payload, volume)
        )
        payload /= span.size
    return stages


def _all_gather_stages(op: CollectiveOp) -> list[Stage]:
    """AG stages in descending span order; payload regrows by each span size.

    The payload entering the AG stage on span ``j`` equals the payload that
    entered the RS stage on the same span divided by ``e_j`` — i.e. the
    volumes mirror the RS half exactly, which is why RS and AG share the
    traffic formula in :mod:`repro.collectives.traffic`.
    """
    shard = op.size_bytes / op.group_size
    stages = []
    for span in reversed(op.spans):
        payload_out = shard * span.size
        volume = payload_out * (span.size - 1) / span.size
        stages.append(Stage(StagePhase.ALL_GATHER, span.dim, span.size, shard, volume))
        shard = payload_out
    return stages


def _all_to_all_stages(op: CollectiveOp) -> list[Stage]:
    """A2A stages: every span moves ``m·(e−1)/e`` — no payload decay."""
    return [
        Stage(
            StagePhase.ALL_TO_ALL,
            span.dim,
            span.size,
            op.size_bytes,
            op.size_bytes * (span.size - 1) / span.size,
        )
        for span in op.spans
    ]


def _point_to_point_stages(op: CollectiveOp) -> list[Stage]:
    """P2P stages: the full payload hops once through each spanned dim."""
    return [
        Stage(
            StagePhase.POINT_TO_POINT,
            span.dim,
            span.size,
            op.size_bytes,
            op.size_bytes,
        )
        for span in op.spans
    ]


def stage_volumes_per_dim(op: CollectiveOp) -> dict[int, float]:
    """Sum of stage volumes per dimension.

    Must agree with :func:`repro.collectives.traffic.per_dim_traffic` — the
    stage decomposition and the closed-form traffic are two derivations of
    the same quantity, and the test suite asserts their equality.
    """
    totals: dict[int, float] = {}
    for stage in decompose(op):
        totals[stage.dim] = totals.get(stage.dim, 0.0) + stage.volume_bytes
    return totals

"""Topology-aware unit collective algorithms (Fig. 7).

Each building block has a matching contention-free algorithm:

* Ring → **Ring** algorithm: ``e − 1`` steps, each moving ``m/e`` per NPU.
* FullyConnected → **Direct**: a single step exchanging ``m/e`` with each of
  the ``e − 1`` peers simultaneously.
* Switch → **Recursive Halving-Doubling**: ``log2(e)`` steps of
  exponentially shrinking (RS) or growing (AG) payloads; for non-power-of-two
  sizes the switch falls back to the Direct pattern through the crossbar
  (same total volume, one step).

All three move identical total volume — ``m·(e−1)/e`` per NPU for a
Reduce-Scatter or All-Gather phase — which is why the bandwidth-only
analytical model does not distinguish them. The per-step schedules produced
here feed the simulator (latency-per-step effects) and give tests a
structural invariant to verify: the per-step volumes of every algorithm must
sum to the closed-form total.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.errors import ConfigurationError
from repro.utils.validation import is_power_of_two


@dataclass(frozen=True)
class AlgorithmStep:
    """One synchronous step of a unit collective algorithm.

    Attributes:
        volume_bytes: Bytes each NPU transmits during this step.
        peer_count: Number of distinct peers each NPU exchanges with.
    """

    volume_bytes: float
    peer_count: int


@dataclass(frozen=True)
class AlgorithmSchedule:
    """The full step list for one phase (RS or AG) on one dimension.

    Attributes:
        algorithm: Algorithm name (``ring`` / ``direct`` / ``halving_doubling``).
        steps: Ordered steps.
    """

    algorithm: str
    steps: tuple[AlgorithmStep, ...]

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def total_volume(self) -> float:
        """Total bytes each NPU transmits over the whole phase."""
        return sum(step.volume_bytes for step in self.steps)

    def duration(self, bandwidth: float, step_latency: float = 0.0) -> float:
        """Phase time under per-NPU ``bandwidth``, with optional per-step latency.

        The bandwidth-only model sets ``step_latency = 0`` and recovers
        ``total_volume / bandwidth`` regardless of the algorithm.
        """
        if bandwidth <= 0:
            raise ConfigurationError(f"bandwidth must be positive, got {bandwidth}")
        return self.total_volume / bandwidth + step_latency * self.num_steps


def ring_schedule(size: int, payload_bytes: float) -> AlgorithmSchedule:
    """Ring Reduce-Scatter / All-Gather phase on a ring of ``size`` NPUs.

    ``size − 1`` steps; each NPU forwards one ``payload/size`` shard per step.
    """
    _check_phase_args(size, payload_bytes)
    shard = payload_bytes / size
    steps = tuple(AlgorithmStep(volume_bytes=shard, peer_count=1) for _ in range(size - 1))
    return AlgorithmSchedule("ring", steps)


def direct_schedule(size: int, payload_bytes: float) -> AlgorithmSchedule:
    """Direct phase on a fully-connected group: one step, all peers at once."""
    _check_phase_args(size, payload_bytes)
    shard = payload_bytes / size
    steps = (AlgorithmStep(volume_bytes=shard * (size - 1), peer_count=size - 1),)
    return AlgorithmSchedule("direct", steps)


def halving_doubling_schedule(size: int, payload_bytes: float) -> AlgorithmSchedule:
    """Recursive halving (RS) phase behind a switch.

    Step ``k`` (1-based) exchanges ``payload / 2^k`` with one partner;
    ``log2(size)`` steps total. The mirrored doubling (AG) phase has the same
    volumes in reverse order, which does not change the totals this library
    consumes, so one schedule serves both phases. Non-power-of-two sizes fall
    back to the Direct pattern through the crossbar.
    """
    _check_phase_args(size, payload_bytes)
    if not is_power_of_two(size):
        fallback = direct_schedule(size, payload_bytes)
        return AlgorithmSchedule("halving_doubling", fallback.steps)
    steps = tuple(
        AlgorithmStep(volume_bytes=payload_bytes / (2 ** k), peer_count=1)
        for k in range(1, int(math.log2(size)) + 1)
    )
    return AlgorithmSchedule("halving_doubling", steps)


_SCHEDULE_BUILDERS = {
    "ring": ring_schedule,
    "direct": direct_schedule,
    "halving_doubling": halving_doubling_schedule,
}


def phase_schedule(algorithm: str, size: int, payload_bytes: float) -> AlgorithmSchedule:
    """Dispatch to the schedule builder for ``algorithm``.

    >>> phase_schedule("ring", 4, 1000.0).num_steps
    3
    """
    builder = _SCHEDULE_BUILDERS.get(algorithm)
    if builder is None:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; known: {sorted(_SCHEDULE_BUILDERS)}"
        )
    return builder(size, payload_bytes)


def phase_volume(size: int, payload_bytes: float) -> float:
    """Closed-form per-NPU volume of one RS or AG phase: ``m·(e−1)/e``."""
    _check_phase_args(size, payload_bytes)
    return payload_bytes * (size - 1) / size


def _check_phase_args(size: int, payload_bytes: float) -> None:
    if size < 2:
        raise ConfigurationError(f"phase group size must be >= 2, got {size}")
    if payload_bytes < 0:
        raise ConfigurationError(f"payload must be >= 0, got {payload_bytes}")

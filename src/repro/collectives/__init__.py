"""Collective communication modeling (paper Sec. II-C and IV-C).

Public surface:

* :class:`CollectiveType`, :class:`CollectiveOp`, :class:`DimSpan` — the
  vocabulary for describing collectives over multi-dimensional groups.
* :func:`per_dim_traffic` / :func:`traffic_coefficients` — the closed-form
  per-dimension traffic volumes (the optimizer's raw material).
* :func:`collective_time` / :func:`bottleneck_dim` / :func:`dim_utilization`
  — the bandwidth-only analytical time model.
* :func:`decompose` — multi-rail stage decomposition for the simulator.
* :func:`phase_schedule` — topology-aware unit algorithm step schedules.
"""

from repro.collectives.algorithms import (
    AlgorithmSchedule,
    AlgorithmStep,
    direct_schedule,
    halving_doubling_schedule,
    phase_schedule,
    phase_volume,
    ring_schedule,
)
from repro.collectives.analytical import (
    bottleneck_dim,
    collective_time,
    dim_utilization,
    ideal_bandwidth_split,
)
from repro.collectives.multirail import (
    Stage,
    StagePhase,
    decompose,
    stage_volumes_per_dim,
)
from repro.collectives.traffic import (
    per_dim_traffic,
    span_traffic,
    total_traffic,
    traffic_coefficients,
)
from repro.collectives.types import (
    CollectiveOp,
    CollectiveType,
    DimSpan,
    all_gather,
    all_reduce,
    all_to_all,
    reduce_scatter,
)

__all__ = [
    "AlgorithmSchedule",
    "AlgorithmStep",
    "direct_schedule",
    "halving_doubling_schedule",
    "phase_schedule",
    "phase_volume",
    "ring_schedule",
    "bottleneck_dim",
    "collective_time",
    "dim_utilization",
    "ideal_bandwidth_split",
    "Stage",
    "StagePhase",
    "decompose",
    "stage_volumes_per_dim",
    "per_dim_traffic",
    "span_traffic",
    "total_traffic",
    "traffic_coefficients",
    "CollectiveOp",
    "CollectiveType",
    "DimSpan",
    "all_gather",
    "all_reduce",
    "all_to_all",
    "reduce_scatter",
]

"""Collective communication types and operations.

A :class:`CollectiveOp` describes one collective as issued by a workload: the
pattern (All-Reduce, Reduce-Scatter, All-Gather, All-to-All — Fig. 6), the
payload size, and which network dimensions the participating group spans.

Group spans
-----------

Parallelization groups do not always cover whole network dimensions. GPT-3's
TP-16 group on the 4D-4K network (``RI(4)_FC(8)_RI(4)_SW(32)``) covers Dim 1
fully (4 NPUs) but only half of Dim 2's 8 NPUs. A :class:`DimSpan` records
the *effective* participating size per physical dimension, so the traffic
formulas operate on the group the collective actually runs over. This is the
mechanism behind the paper's note that GPT-3 "cannot leverage all Dim 2 BW
resources ... due to the mismatching TP size" (Sec. VI-A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.utils.errors import ConfigurationError
from repro.utils.validation import prod


class CollectiveType(enum.Enum):
    """The four collective patterns of Fig. 6, plus point-to-point.

    ``POINT_TO_POINT`` is not a collective in the Fig. 6 sense — it is the
    pipeline-parallel activation/gradient transfer the paper sketches in
    Sec. IV-C ("such operations could still be captured in terms of network
    BW, e.g. m/B_i"): the full payload hops once through each spanned
    dimension, with no payload decay and no group-wide synchronization.
    """

    ALL_REDUCE = "all_reduce"
    REDUCE_SCATTER = "reduce_scatter"
    ALL_GATHER = "all_gather"
    ALL_TO_ALL = "all_to_all"
    POINT_TO_POINT = "point_to_point"


@dataclass(frozen=True)
class DimSpan:
    """Participation of a collective group along one physical dimension.

    Attributes:
        dim: Zero-based physical network dimension index.
        size: Effective group size along that dimension (>= 2). A size
            smaller than the physical dimension size means the group covers
            only a slice of the dimension (partial span).
    """

    dim: int
    size: int

    def __post_init__(self) -> None:
        if self.dim < 0:
            raise ConfigurationError(f"dimension index must be >= 0, got {self.dim}")
        if self.size < 2:
            raise ConfigurationError(
                f"span size must be >= 2, got {self.size} (size-1 spans carry no traffic)"
            )


@dataclass(frozen=True)
class CollectiveOp:
    """One collective operation over a multi-dimensional network.

    Attributes:
        kind: Which collective pattern this is.
        size_bytes: Payload size ``m`` in bytes. For All-Reduce this is the
            size each NPU contributes (and ends up with); for All-to-All it is
            the total data each NPU exchanges.
        spans: The dimensions the group occupies, innermost (lowest dim)
            first. An empty tuple is a degenerate single-NPU group — legal,
            and always free (e.g. TP communication when TP = 1).
        label: Optional tag for reports (e.g. ``"GPT-3/layer12/dp"``).
    """

    kind: CollectiveType
    size_bytes: float
    spans: tuple[DimSpan, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ConfigurationError(f"collective size must be >= 0, got {self.size_bytes}")
        dims = [span.dim for span in self.spans]
        if len(set(dims)) != len(dims):
            raise ConfigurationError(f"duplicate dimensions in spans: {dims}")
        if dims != sorted(dims):
            raise ConfigurationError(f"spans must be ordered innermost-first, got dims {dims}")

    @property
    def group_size(self) -> int:
        """Total number of NPUs participating (product of span sizes)."""
        return prod(span.size for span in self.spans)

    @property
    def is_trivial(self) -> bool:
        """True when the op moves no data (empty group or zero payload)."""
        return not self.spans or self.size_bytes == 0

    def scaled(self, factor: float) -> "CollectiveOp":
        """Copy with the payload scaled by ``factor`` (e.g. per-chunk splits)."""
        if factor < 0:
            raise ConfigurationError(f"scale factor must be >= 0, got {factor}")
        return CollectiveOp(self.kind, self.size_bytes * factor, self.spans, self.label)

    def with_label(self, label: str) -> "CollectiveOp":
        """Copy with a new label."""
        return CollectiveOp(self.kind, self.size_bytes, self.spans, label)


def all_reduce(size_bytes: float, spans: tuple[DimSpan, ...], label: str = "") -> CollectiveOp:
    """Convenience constructor for an All-Reduce op."""
    return CollectiveOp(CollectiveType.ALL_REDUCE, size_bytes, spans, label)


def reduce_scatter(size_bytes: float, spans: tuple[DimSpan, ...], label: str = "") -> CollectiveOp:
    """Convenience constructor for a Reduce-Scatter op."""
    return CollectiveOp(CollectiveType.REDUCE_SCATTER, size_bytes, spans, label)


def all_gather(size_bytes: float, spans: tuple[DimSpan, ...], label: str = "") -> CollectiveOp:
    """Convenience constructor for an All-Gather op."""
    return CollectiveOp(CollectiveType.ALL_GATHER, size_bytes, spans, label)


def all_to_all(size_bytes: float, spans: tuple[DimSpan, ...], label: str = "") -> CollectiveOp:
    """Convenience constructor for an All-to-All op."""
    return CollectiveOp(CollectiveType.ALL_TO_ALL, size_bytes, spans, label)

"""Closed-form collective time model (Sec. IV-C).

The multi-rail collective pipelines chunks through the dimensions, so in
steady state the *bottleneck dimension* determines throughput (Fig. 9):

    ``T(B) = max_j traffic_j / B[dim_j]``

This module evaluates that expression for a bandwidth vector and reports the
bottleneck. It is deliberately bandwidth-only — the paper's modeling section
notes that link latency and NPU-side effects are disregarded because
large-model collectives are overwhelmingly bandwidth-bound; the chunk-level
simulator (:mod:`repro.simulator`) captures the residual pipeline fill/drain
effects the closed form ignores.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.collectives.traffic import per_dim_traffic
from repro.collectives.types import CollectiveOp
from repro.utils.errors import ConfigurationError


def collective_time(
    op: CollectiveOp,
    bandwidths: Sequence[float],
    in_network_dims: frozenset[int] | set[int] = frozenset(),
) -> float:
    """Completion time of ``op`` in seconds under per-dim bandwidths.

    Args:
        op: The collective operation.
        bandwidths: Per-NPU bandwidth of every physical dimension, bytes/s.
        in_network_dims: Dimensions with in-network reduction offload.

    Returns:
        Seconds; 0.0 for trivial ops.
    """
    traffic = per_dim_traffic(op, in_network_dims)
    if not traffic:
        return 0.0
    worst = 0.0
    for dim, volume in traffic.items():
        bandwidth = _dim_bandwidth(bandwidths, dim, op)
        worst = max(worst, volume / bandwidth)
    return worst


def bottleneck_dim(
    op: CollectiveOp,
    bandwidths: Sequence[float],
    in_network_dims: frozenset[int] | set[int] = frozenset(),
) -> int | None:
    """The physical dimension that determines ``op``'s completion time.

    Returns None for trivial ops. Ties break toward the lowest dimension.
    """
    traffic = per_dim_traffic(op, in_network_dims)
    if not traffic:
        return None
    best_dim = None
    best_time = -1.0
    for dim in sorted(traffic):
        time = traffic[dim] / _dim_bandwidth(bandwidths, dim, op)
        if time > best_time:
            best_time = time
            best_dim = dim
    return best_dim


def dim_utilization(
    op: CollectiveOp,
    bandwidths: Sequence[float],
    in_network_dims: frozenset[int] | set[int] = frozenset(),
) -> dict[int, float]:
    """Steady-state bandwidth utilization per spanned dimension.

    Utilization of dimension ``j`` is its busy fraction while the collective
    runs: ``(traffic_j / B_j) / T``. The bottleneck dimension is 1.0 by
    construction; overprovisioned dimensions fall below 1.0 (Fig. 9's idle
    gaps).
    """
    traffic = per_dim_traffic(op, in_network_dims)
    if not traffic:
        return {}
    total = collective_time(op, bandwidths, in_network_dims)
    return {
        dim: (volume / _dim_bandwidth(bandwidths, dim, op)) / total
        for dim, volume in traffic.items()
    }


def ideal_bandwidth_split(
    op: CollectiveOp,
    total_bandwidth: float,
    in_network_dims: frozenset[int] | set[int] = frozenset(),
) -> dict[int, float]:
    """Traffic-proportional bandwidth allocation for a single collective.

    With one collective and a total-bandwidth budget, the optimum equalizes
    ``traffic_j / B_j`` across dimensions, i.e. allocates proportionally to
    traffic — the water-filling solution the paper motivates with the 1/4
    payload example in Sec. III-C. Used as a solver fast path and seed.
    """
    if total_bandwidth <= 0:
        raise ConfigurationError(f"total bandwidth must be positive, got {total_bandwidth}")
    traffic = per_dim_traffic(op, in_network_dims)
    if not traffic:
        return {}
    volume_sum = sum(traffic.values())
    return {dim: total_bandwidth * volume / volume_sum for dim, volume in traffic.items()}


def _dim_bandwidth(bandwidths: Sequence[float], dim: int, op: CollectiveOp) -> float:
    """Bandwidth of ``dim`` with range/positivity validation."""
    if dim >= len(bandwidths):
        raise ConfigurationError(
            f"collective {op.label or op.kind.value!r} spans dimension {dim} "
            f"but only {len(bandwidths)} bandwidths were given"
        )
    bandwidth = float(bandwidths[dim])
    if bandwidth <= 0:
        raise ConfigurationError(f"bandwidth of dimension {dim} must be positive, got {bandwidth}")
    return bandwidth

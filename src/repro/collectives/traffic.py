"""Per-dimension traffic volumes for multi-rail collectives (Sec. IV-C).

For a collective of ``m`` bytes over group spans with effective sizes
``(e_1, …, e_k)`` on physical dimensions ``(d_1, …, d_k)``, the bytes each
NPU transfers through dimension ``d_j`` are:

========================  =============================================
Collective                Traffic on span ``j``
========================  =============================================
All-Reduce                ``2 · m · (e_j − 1) / (e_1 ⋯ e_j)``
Reduce-Scatter            ``m · (e_j − 1) / (e_1 ⋯ e_j)``
All-Gather                ``m · (e_j − 1) / (e_1 ⋯ e_j)``
All-to-All                ``m · (e_j − 1) / e_j``
Point-to-Point            ``m`` (one hop per spanned dimension)
========================  =============================================

The denominators encode the multi-rail load reduction: Reduce-Scatter on
lower dimensions shrinks the payload before it reaches higher (more
expensive) dimensions — the paper's core motivation for multi-dimensional
fabrics (Sec. III-B). All-to-All sees no reduction, so every span moves a
near-full payload.

With in-network collective offload (Sec. IV-C "In-network Collective") on
dimension ``d_j``, the NPU only injects its payload once toward the switch:
traffic becomes ``m / (e_1 ⋯ e_{j−1})``.
"""

from __future__ import annotations

from repro.collectives.types import CollectiveOp, CollectiveType
from repro.utils.errors import ConfigurationError


def span_traffic(
    kind: CollectiveType,
    size_bytes: float,
    span_sizes: tuple[int, ...],
    span_index: int,
    in_network: bool = False,
) -> float:
    """Bytes per NPU moved through span ``span_index`` of the collective.

    Args:
        kind: Collective pattern.
        size_bytes: Payload ``m`` in bytes.
        span_sizes: Effective group sizes ``(e_1, …, e_k)``, innermost first.
        span_index: Zero-based index ``j`` into ``span_sizes``.
        in_network: Whether this span's dimension offloads reduction to the
            switch (only meaningful for reducing collectives).

    Returns:
        Traffic volume in bytes (per NPU).
    """
    if not 0 <= span_index < len(span_sizes):
        raise ConfigurationError(
            f"span index {span_index} out of range for {len(span_sizes)} spans"
        )
    e_j = span_sizes[span_index]
    prefix = 1
    for size in span_sizes[:span_index]:
        prefix *= size

    if kind is CollectiveType.POINT_TO_POINT:
        # One hop through each spanned dimension; no reduction, no offload.
        return size_bytes

    if kind is CollectiveType.ALL_REDUCE:
        npu_driven = 2.0 * size_bytes * (e_j - 1) / (prefix * e_j)
    elif kind in (CollectiveType.REDUCE_SCATTER, CollectiveType.ALL_GATHER):
        npu_driven = size_bytes * (e_j - 1) / (prefix * e_j)
    elif kind is CollectiveType.ALL_TO_ALL:
        return size_bytes * (e_j - 1) / e_j
    else:
        raise ConfigurationError(f"unsupported collective type {kind!r}")

    if in_network:
        # Switch offload injects the payload once toward the switch:
        # m / prefix. That halves a fused All-Reduce's dimension traffic but
        # is (marginally) *worse* than NPU-driven Reduce-Scatter or
        # All-Gather alone — a system with offload capability simply would
        # not engage it then, so the model takes the cheaper of the two.
        return min(npu_driven, size_bytes / prefix)
    return npu_driven


def per_dim_traffic(
    op: CollectiveOp,
    in_network_dims: frozenset[int] | set[int] = frozenset(),
) -> dict[int, float]:
    """Traffic per physical dimension for one collective op.

    Returns:
        Mapping from zero-based physical dimension index to bytes moved per
        NPU on that dimension. Dimensions the op does not span are absent.
        A trivial op returns an empty mapping.
    """
    if op.is_trivial:
        return {}
    span_sizes = tuple(span.size for span in op.spans)
    traffic: dict[int, float] = {}
    for index, span in enumerate(op.spans):
        traffic[span.dim] = span_traffic(
            op.kind,
            op.size_bytes,
            span_sizes,
            index,
            in_network=span.dim in in_network_dims,
        )
    return traffic


def traffic_coefficients(
    op: CollectiveOp,
    in_network_dims: frozenset[int] | set[int] = frozenset(),
) -> tuple[tuple[int, float], ...]:
    """Traffic as ``(dim, coefficient)`` pairs for the optimizer.

    The collective's completion time under bandwidth vector ``B`` is
    ``max_j coefficient_j / B[dim_j]`` — each pair contributes one epigraph
    constraint to the solver.
    """
    return tuple(sorted(per_dim_traffic(op, in_network_dims).items()))


def total_traffic(
    op: CollectiveOp,
    in_network_dims: frozenset[int] | set[int] = frozenset(),
) -> float:
    """Total bytes per NPU summed over all dimensions (Fig. 1's metric)."""
    return sum(per_dim_traffic(op, in_network_dims).values())

"""repro — a from-scratch reproduction of LIBRA (ISPASS 2024).

LIBRA is a workload-aware, design-time framework that optimizes the
per-dimension bandwidth allocation of multi-dimensional (multi-rail)
training fabrics. This package rebuilds the framework and every substrate
its evaluation depends on: the network/collective/workload/cost models, the
constrained optimizer, a chunk-level network simulator, and the Themis/TACOS
runtime companions.

Quick start — state the problem as a :class:`Scenario`, submit it to the
service::

    from repro import LibraService, OptimizeRequest, build_scenario

    scenario = build_scenario("4D-4K", ["GPT-3"], total_bw_gbps=500)
    response = LibraService().submit(OptimizeRequest(scenario=scenario))
    optimum = response.point
    speedup = response.speedup_over_baseline

The imperative facade remains available for step-by-step sessions::

    from repro import Libra, Scheme, build_workload, get_topology, gbps

    libra = Libra(get_topology("4D-4K"))
    libra.add_workload(build_workload("GPT-3", 4096))
    constraints = libra.constraints().with_total_bandwidth(gbps(500))
    optimized = libra.optimize(Scheme.PERF_OPT, constraints)
    baseline = libra.equal_bw_point(gbps(500))
    speedup = optimized.speedup_over(baseline)

Subpackage map (see DESIGN.md for the full inventory):

* :mod:`repro.api` — the declarative Scenario/Service request API and the
  name registries (topologies, workloads, cost models, loops, schemes).
* :mod:`repro.topology` — network shapes, notation, presets, link graphs.
* :mod:`repro.collectives` — collective patterns, traffic, analytical times.
* :mod:`repro.workloads` — Table II model builders, parallelism, parser.
* :mod:`repro.training` — compute model, training loops, symbolic estimator.
* :mod:`repro.cost` — the Table I dollar-cost model.
* :mod:`repro.core` — constraints, solver, the :class:`Libra` facade.
* :mod:`repro.explore` — design-space exploration: cached, parallel sweeps
  over workloads × topologies × budgets × schemes with Pareto analysis.
* :mod:`repro.simulator` — chunk-level network simulation (ASTRA-sim role).
* :mod:`repro.runtime` — Themis scheduler and TACOS synthesizer analogues.
"""

from repro.api import (
    BatchRequest,
    BatchResponse,
    LibraService,
    OptimizeRequest,
    OptimizeResponse,
    Scenario,
    build_scenario,
    get_service,
    load_scenario,
    save_scenario,
)
from repro.core import (
    ConstraintSet,
    DesignPoint,
    Libra,
    Scheme,
    run_group_study,
)
from repro.cost import CostModel, default_cost_model, network_cost
from repro.explore import (
    ExplorationPoint,
    ExplorationResult,
    ResultCache,
    SweepResult,
    SweepSpec,
    load_sweep_spec,
    pareto_frontier,
    run_sweep,
)
from repro.simulator import simulate_collective, simulate_training_step
from repro.topology import MultiDimNetwork, get_topology, parse_notation
from repro.training import a100_compute_model, estimate_step_time
from repro.utils import gb, gbps, mb
from repro.workloads import Parallelism, Workload, build_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "BatchRequest",
    "BatchResponse",
    "LibraService",
    "OptimizeRequest",
    "OptimizeResponse",
    "Scenario",
    "build_scenario",
    "get_service",
    "load_scenario",
    "save_scenario",
    "ConstraintSet",
    "DesignPoint",
    "Libra",
    "Scheme",
    "run_group_study",
    "CostModel",
    "default_cost_model",
    "network_cost",
    "ExplorationPoint",
    "ExplorationResult",
    "ResultCache",
    "SweepResult",
    "SweepSpec",
    "load_sweep_spec",
    "pareto_frontier",
    "run_sweep",
    "simulate_collective",
    "simulate_training_step",
    "MultiDimNetwork",
    "get_topology",
    "parse_notation",
    "a100_compute_model",
    "estimate_step_time",
    "gb",
    "gbps",
    "mb",
    "Parallelism",
    "Workload",
    "build_workload",
    "workload_names",
    "__version__",
]

"""Unit topologies used as multi-dimensional network building blocks.

The paper (Sec. IV-A, Fig. 7) adopts three unit topologies per dimension:

* ``Ring`` (``RI``) — NPUs in a bidirectional ring; topology-aware
  All-Reduce algorithm: Ring.
* ``FullyConnected`` (``FC``) — all-to-all peer links; algorithm: Direct.
* ``Switch`` (``SW``) — NPUs behind a single crossbar switch; algorithm:
  Recursive Halving-Doubling.

A multi-dimensional network stacks one building block per dimension. Each
block knows its size, its topology-aware collective algorithm, the physical
link set it induces (for cost modeling and graph construction), and the
per-NPU traffic each collective places on the dimension.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_positive_int


class BlockKind(enum.Enum):
    """The three supported unit topologies and their notation tags."""

    RING = "RI"
    FULLY_CONNECTED = "FC"
    SWITCH = "SW"

    @classmethod
    def from_tag(cls, tag: str) -> "BlockKind":
        """Look up a kind from its two-letter notation tag (case-insensitive)."""
        normalized = tag.strip().upper()
        for kind in cls:
            if kind.value == normalized:
                return kind
        valid = ", ".join(kind.value for kind in cls)
        raise ConfigurationError(f"unknown building block tag {tag!r}; expected one of {valid}")


#: Topology-aware All-Reduce algorithm per building block (Fig. 7(b)).
ALGORITHM_BY_KIND = {
    BlockKind.RING: "ring",
    BlockKind.FULLY_CONNECTED: "direct",
    BlockKind.SWITCH: "halving_doubling",
}


@dataclass(frozen=True)
class BuildingBlock:
    """One network dimension: a unit topology of ``size`` NPU endpoints.

    Attributes:
        kind: Which unit topology this dimension uses.
        size: Number of NPU endpoints directly attached to this dimension.
            Must be at least 2 for a meaningful dimension (a size-1 dimension
            carries no traffic and is rejected at parse time).
    """

    kind: BlockKind
    size: int

    def __post_init__(self) -> None:
        check_positive_int(self.size, "building block size")
        if self.size < 2:
            raise ConfigurationError(
                f"building block {self.kind.value} must have size >= 2, got {self.size}"
            )
        if self.kind is BlockKind.SWITCH and self.size < 2:
            raise ConfigurationError("switch dimension needs at least 2 endpoints")

    @property
    def tag(self) -> str:
        """Two-letter notation tag (``RI``, ``FC``, ``SW``)."""
        return self.kind.value

    @property
    def algorithm(self) -> str:
        """Name of the topology-aware All-Reduce algorithm for this block."""
        return ALGORITHM_BY_KIND[self.kind]

    @property
    def uses_switch(self) -> bool:
        """True when the dimension requires a physical switch component."""
        return self.kind is BlockKind.SWITCH

    @property
    def npu_link_count(self) -> int:
        """Number of physical links attached to each NPU in this dimension.

        Used for graph construction; cost modeling uses bandwidth-proportional
        coefficients instead (a ring NPU has 2 ports but each carries half of
        the per-NPU dimension bandwidth).
        """
        if self.kind is BlockKind.RING:
            return 2 if self.size > 2 else 1
        if self.kind is BlockKind.FULLY_CONNECTED:
            return self.size - 1
        return 1  # one uplink to the switch

    def links(self) -> list[tuple[int, int]]:
        """Undirected physical NPU-to-NPU or NPU-to-switch link list.

        NPU endpoints are numbered ``0..size-1``. For a switch dimension, the
        switch itself is denoted by index ``-1`` and each NPU has one uplink.
        """
        if self.kind is BlockKind.RING:
            if self.size == 2:
                return [(0, 1)]
            return [(i, (i + 1) % self.size) for i in range(self.size)]
        if self.kind is BlockKind.FULLY_CONNECTED:
            return [(i, j) for i in range(self.size) for j in range(i + 1, self.size)]
        return [(i, -1) for i in range(self.size)]

    def __str__(self) -> str:
        return f"{self.tag}({self.size})"


def ring(size: int) -> BuildingBlock:
    """A Ring dimension of ``size`` NPUs."""
    return BuildingBlock(BlockKind.RING, size)


def fully_connected(size: int) -> BuildingBlock:
    """A FullyConnected dimension of ``size`` NPUs."""
    return BuildingBlock(BlockKind.FULLY_CONNECTED, size)


def switch(size: int) -> BuildingBlock:
    """A Switch dimension of ``size`` NPUs behind one crossbar."""
    return BuildingBlock(BlockKind.SWITCH, size)

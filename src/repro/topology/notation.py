"""Parser and formatter for the multi-dimensional network notation.

The paper writes network shapes as underscore-joined building blocks, lowest
dimension first: ``RI(4)_FC(8)_RI(4)_SW(32)`` is a 4D network whose first
(innermost) dimension is a 4-NPU ring and whose fourth (scale-out) dimension
is a 32-NPU switch. This module converts between that string form and
:class:`~repro.topology.building_blocks.BuildingBlock` lists.
"""

from __future__ import annotations

import re

from repro.topology.building_blocks import BlockKind, BuildingBlock
from repro.utils.errors import NotationError

_BLOCK_PATTERN = re.compile(r"^\s*([A-Za-z]{2})\s*\(\s*(\d+)\s*\)\s*$")


def parse_block(text: str) -> BuildingBlock:
    """Parse a single block such as ``"RI(4)"`` into a :class:`BuildingBlock`.

    Raises:
        NotationError: if the text is not ``TAG(size)`` with a known tag and
            an integer size of at least 2.
    """
    match = _BLOCK_PATTERN.match(text)
    if match is None:
        raise NotationError(
            f"malformed building block {text!r}; expected e.g. 'RI(4)', 'FC(8)', 'SW(32)'"
        )
    tag, size_text = match.groups()
    try:
        kind = BlockKind.from_tag(tag)
    except Exception as exc:
        raise NotationError(str(exc)) from exc
    size = int(size_text)
    if size < 2:
        raise NotationError(f"building block {text!r} must have size >= 2, got {size}")
    return BuildingBlock(kind, size)


def parse_notation(text: str) -> list[BuildingBlock]:
    """Parse a full shape string such as ``"RI(4)_FC(8)_SW(32)"``.

    Dimensions are listed lowest (Dim 1) first, matching the paper. Returns
    the block list in the same order.

    Raises:
        NotationError: for empty input or any malformed block.
    """
    if not text or not text.strip():
        raise NotationError("network notation must not be empty")
    parts = text.strip().split("_")
    return [parse_block(part) for part in parts]


def format_notation(blocks: list[BuildingBlock]) -> str:
    """Format blocks back into the canonical notation string.

    Round-trips with :func:`parse_notation`:
    ``format_notation(parse_notation(s)) == canonical(s)``.
    """
    if not blocks:
        raise NotationError("cannot format an empty block list")
    return "_".join(str(block) for block in blocks)

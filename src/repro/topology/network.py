"""Multi-dimensional network representation.

A :class:`MultiDimNetwork` stacks one :class:`BuildingBlock` per dimension
(Sec. IV-A). Each NPU is addressed either by a flat id in ``0..n-1`` or by a
coordinate vector, one digit per dimension, with Dim 1 varying fastest. The
network also records the physical *tier* of each dimension (Chiplet, Package,
Node, Pod — Fig. 2(b)), which the cost model uses to price links, switches,
and NICs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.topology.building_blocks import BuildingBlock
from repro.topology.notation import format_notation, parse_notation
from repro.utils.errors import ConfigurationError
from repro.utils.validation import prod


class NetworkTier(enum.Enum):
    """Physical connotation of a network dimension (Fig. 2(b)).

    The tier determines which cost-model row prices the dimension and whether
    NICs are required (only the scale-out ``POD`` tier uses NICs in the
    default cost model, Sec. IV-D).
    """

    CHIPLET = "chiplet"
    PACKAGE = "package"
    NODE = "node"
    POD = "pod"


#: Tier assignment used in the paper's evaluation: the outermost dimension is
#: always the scale-out Pod; dimensions inward of it are Node, Package, and
#: Chiplet in that order. Networks deeper than 4 dimensions repeat CHIPLET
#: for the innermost extras (the cheapest tier, matching the on-package trend
#: the paper motivates).
_DEFAULT_TIER_ORDER = [
    NetworkTier.POD,
    NetworkTier.NODE,
    NetworkTier.PACKAGE,
    NetworkTier.CHIPLET,
]


def default_tiers(num_dims: int) -> list[NetworkTier]:
    """Default dimension→tier assignment for an ``num_dims``-D network.

    >>> [tier.value for tier in default_tiers(2)]
    ['node', 'pod']
    >>> [tier.value for tier in default_tiers(4)]
    ['chiplet', 'package', 'node', 'pod']
    """
    if num_dims < 1:
        raise ConfigurationError(f"network needs at least 1 dimension, got {num_dims}")
    tiers: list[NetworkTier] = []
    for position_from_outside in range(num_dims):
        index = min(position_from_outside, len(_DEFAULT_TIER_ORDER) - 1)
        tiers.append(_DEFAULT_TIER_ORDER[index])
    tiers.reverse()
    return tiers


@dataclass(frozen=True)
class MultiDimNetwork:
    """A multi-dimensional network: stacked building blocks plus tiers.

    Attributes:
        blocks: One building block per dimension, Dim 1 first.
        tiers: Physical tier per dimension; defaults to :func:`default_tiers`.
        name: Optional human-readable name (e.g. ``"4D-4K"``).
    """

    blocks: tuple[BuildingBlock, ...]
    tiers: tuple[NetworkTier, ...] = field(default=())
    name: str = ""

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ConfigurationError("network must have at least one dimension")
        tiers = self.tiers or tuple(default_tiers(len(self.blocks)))
        if len(tiers) != len(self.blocks):
            raise ConfigurationError(
                f"got {len(tiers)} tiers for {len(self.blocks)} dimensions"
            )
        object.__setattr__(self, "blocks", tuple(self.blocks))
        object.__setattr__(self, "tiers", tuple(tiers))

    # -- construction ------------------------------------------------------

    @classmethod
    def from_notation(
        cls,
        text: str,
        tiers: tuple[NetworkTier, ...] | None = None,
        name: str = "",
    ) -> "MultiDimNetwork":
        """Build a network from notation such as ``"RI(4)_FC(8)_SW(32)"``."""
        blocks = tuple(parse_notation(text))
        return cls(blocks=blocks, tiers=tiers or (), name=name or text)

    # -- shape accessors ----------------------------------------------------

    @property
    def num_dims(self) -> int:
        """Number of network dimensions."""
        return len(self.blocks)

    @property
    def dim_sizes(self) -> tuple[int, ...]:
        """NPU endpoint count per dimension, Dim 1 first."""
        return tuple(block.size for block in self.blocks)

    @property
    def num_npus(self) -> int:
        """Total NPUs: the product of all dimension sizes."""
        return prod(self.dim_sizes)

    @property
    def notation(self) -> str:
        """Canonical notation string for this network shape."""
        return format_notation(list(self.blocks))

    # -- coordinate math ----------------------------------------------------

    def coordinates_of(self, npu_id: int) -> tuple[int, ...]:
        """Coordinate vector of an NPU (Dim 1 digit first, varies fastest).

        >>> net = MultiDimNetwork.from_notation("RI(3)_RI(2)")
        >>> net.coordinates_of(4)
        (1, 1)
        """
        if not 0 <= npu_id < self.num_npus:
            raise ConfigurationError(
                f"NPU id {npu_id} out of range for {self.num_npus}-NPU network"
            )
        coords = []
        remainder = npu_id
        for size in self.dim_sizes:
            coords.append(remainder % size)
            remainder //= size
        return tuple(coords)

    def npu_id_of(self, coords: tuple[int, ...]) -> int:
        """Flat NPU id of a coordinate vector (inverse of :meth:`coordinates_of`)."""
        if len(coords) != self.num_dims:
            raise ConfigurationError(
                f"expected {self.num_dims} coordinates, got {len(coords)}"
            )
        npu_id = 0
        stride = 1
        for coord, size in zip(coords, self.dim_sizes):
            if not 0 <= coord < size:
                raise ConfigurationError(f"coordinate {coord} out of range for size {size}")
            npu_id += coord * stride
            stride *= size
        return npu_id

    def peers_along_dim(self, npu_id: int, dim: int) -> list[int]:
        """All NPUs sharing every coordinate with ``npu_id`` except dimension ``dim``.

        ``dim`` is zero-based. The returned list includes ``npu_id`` itself and
        is ordered by the coordinate along ``dim``; it is exactly the group
        that a collective stage on that dimension communicates within.
        """
        if not 0 <= dim < self.num_dims:
            raise ConfigurationError(f"dimension {dim} out of range")
        coords = list(self.coordinates_of(npu_id))
        peers = []
        for position in range(self.dim_sizes[dim]):
            coords[dim] = position
            peers.append(self.npu_id_of(tuple(coords)))
        return peers

    # -- serialization -------------------------------------------------------

    def canonical(self) -> dict:
        """Content-identity payload for hashing and result caching.

        Two networks with the same shape and tier assignment produce the same
        payload regardless of their display ``name``, so cached exploration
        results survive renames but never collide across distinct fabrics.
        """
        return {
            "notation": self.notation,
            "tiers": [tier.value for tier in self.tiers],
        }

    # -- misc ---------------------------------------------------------------

    def scaled_last_dim(self, new_size: int, name: str = "") -> "MultiDimNetwork":
        """Copy of this network with the outermost dimension resized.

        The paper scales network size (512–4,096 NPUs) by adjusting the last
        dimension (Sec. V-B); this helper mirrors that.
        """
        last = self.blocks[-1]
        new_last = BuildingBlock(last.kind, new_size)
        return MultiDimNetwork(
            blocks=self.blocks[:-1] + (new_last,),
            tiers=self.tiers,
            name=name,
        )

    def __str__(self) -> str:
        label = self.name or self.notation
        return f"{label} [{self.num_npus} NPUs, {self.num_dims}D]"

"""Multi-dimensional network topology representation (paper Sec. II-A, IV-A).

Public surface:

* :class:`BuildingBlock` and the :func:`ring` / :func:`fully_connected` /
  :func:`switch` constructors — per-dimension unit topologies.
* :class:`MultiDimNetwork` — a stack of building blocks with physical tiers.
* :func:`parse_notation` / :func:`format_notation` — the
  ``"RI(4)_FC(8)_SW(32)"`` string form.
* :func:`build_graph` — expansion to a physical link graph (networkx).
* :func:`get_topology` and the Table III / Fig. 11 preset registries.
"""

from repro.topology.building_blocks import (
    ALGORITHM_BY_KIND,
    BlockKind,
    BuildingBlock,
    fully_connected,
    ring,
    switch,
)
from repro.topology.graph import build_graph, count_physical_links, per_link_bandwidth
from repro.topology.metrics import (
    BisectionReport,
    bisection_report,
    block_diameter,
    describe_structure,
    injection_bandwidth,
    network_diameter,
)
from repro.topology.network import MultiDimNetwork, NetworkTier, default_tiers
from repro.topology.notation import format_notation, parse_block, parse_notation
from repro.topology.presets import (
    EVALUATION_TOPOLOGIES,
    REAL_SYSTEM_TOPOLOGIES,
    evaluation_topology_names,
    get_topology,
)

__all__ = [
    "ALGORITHM_BY_KIND",
    "BlockKind",
    "BuildingBlock",
    "fully_connected",
    "ring",
    "switch",
    "build_graph",
    "count_physical_links",
    "per_link_bandwidth",
    "BisectionReport",
    "bisection_report",
    "block_diameter",
    "describe_structure",
    "injection_bandwidth",
    "network_diameter",
    "MultiDimNetwork",
    "NetworkTier",
    "default_tiers",
    "format_notation",
    "parse_block",
    "parse_notation",
    "EVALUATION_TOPOLOGIES",
    "REAL_SYSTEM_TOPOLOGIES",
    "evaluation_topology_names",
    "get_topology",
]

"""Physical-graph construction for a multi-dimensional network.

The analytical model and the dimension-level simulator only need per-dimension
bandwidths, but the TACOS-style collective synthesizer (Sec. VI-D) operates on
the physical link graph. This module expands a :class:`MultiDimNetwork` into a
:class:`networkx.DiGraph` whose nodes are NPUs (and switches, for ``SW``
dimensions) and whose edges carry per-link bandwidth attributes.

Link bandwidth convention: a dimension allocated ``B`` bytes/s per NPU splits
that bandwidth across the NPU's ports in that dimension:

* Ring: 2 ports (1 for size-2 rings) → ``B/2`` per direction per link.
* FullyConnected: ``size - 1`` peer links → ``B/(size-1)`` each.
* Switch: a single uplink of ``B`` (the switch crossbar is non-blocking).

This keeps the aggregate injection bandwidth per NPU per dimension equal to
``B`` regardless of topology, matching the analytical model's assumption.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.topology.building_blocks import BlockKind
from repro.topology.network import MultiDimNetwork
from repro.utils.errors import ConfigurationError


def switch_node(dim: int, group_index: int) -> tuple[str, int, int]:
    """Stable node key for the switch serving ``group_index`` on dimension ``dim``."""
    return ("switch", dim, group_index)


def per_link_bandwidth(kind: BlockKind, size: int, dim_bandwidth: float) -> float:
    """Bandwidth of one directed physical link given the per-NPU dimension BW."""
    if dim_bandwidth <= 0:
        raise ConfigurationError(f"dimension bandwidth must be positive, got {dim_bandwidth}")
    if kind is BlockKind.RING:
        ports = 1 if size == 2 else 2
        return dim_bandwidth / ports
    if kind is BlockKind.FULLY_CONNECTED:
        return dim_bandwidth / (size - 1)
    return dim_bandwidth  # switch uplink carries the full dimension bandwidth


def build_graph(
    network: MultiDimNetwork,
    bandwidths: tuple[float, ...] | list[float],
) -> nx.DiGraph:
    """Expand ``network`` into a directed physical graph.

    Args:
        network: The multi-dimensional network shape.
        bandwidths: Per-NPU bandwidth of each dimension, bytes/s, Dim 1 first.

    Returns:
        A DiGraph with NPU nodes (ints) and switch nodes (tuples); every edge
        has attributes ``bandwidth`` (bytes/s), ``dim`` (zero-based dimension
        index), and ``kind`` (the block kind's tag).
    """
    if len(bandwidths) != network.num_dims:
        raise ConfigurationError(
            f"expected {network.num_dims} bandwidths, got {len(bandwidths)}"
        )
    graph = nx.DiGraph()
    graph.add_nodes_from(range(network.num_npus), kind="npu")

    for dim, block in enumerate(network.blocks):
        link_bw = per_link_bandwidth(block.kind, block.size, float(bandwidths[dim]))
        seen_groups: set[tuple[int, ...]] = set()
        for npu in range(network.num_npus):
            group = tuple(network.peers_along_dim(npu, dim))
            if group in seen_groups:
                continue
            seen_groups.add(group)
            _add_group_links(graph, block.kind, block.size, group, dim, link_bw,
                             group_index=len(seen_groups) - 1)
    return graph


def _add_group_links(
    graph: nx.DiGraph,
    kind: BlockKind,
    size: int,
    group: tuple[int, ...],
    dim: int,
    link_bw: float,
    group_index: int,
) -> None:
    """Add the directed links of one dimension-group to ``graph``."""

    def add_bidirectional(a: Hashable, b: Hashable) -> None:
        graph.add_edge(a, b, bandwidth=link_bw, dim=dim, kind=kind.value)
        graph.add_edge(b, a, bandwidth=link_bw, dim=dim, kind=kind.value)

    if kind is BlockKind.RING:
        if size == 2:
            add_bidirectional(group[0], group[1])
        else:
            for i in range(size):
                add_bidirectional(group[i], group[(i + 1) % size])
    elif kind is BlockKind.FULLY_CONNECTED:
        for i in range(size):
            for j in range(i + 1, size):
                add_bidirectional(group[i], group[j])
    else:
        hub = switch_node(dim, group_index)
        graph.add_node(hub, kind="switch")
        for npu in group:
            add_bidirectional(npu, hub)


def count_physical_links(network: MultiDimNetwork) -> dict[int, int]:
    """Undirected physical link count per dimension (switch uplinks included).

    Useful for sanity checks: a ``RI(4)_RI(4)_RI(4)`` torus has
    ``4*16 = 64`` links per dimension.
    """
    counts: dict[int, int] = {}
    for dim, block in enumerate(network.blocks):
        groups = network.num_npus // block.size
        counts[dim] = groups * len(block.links())
    return counts

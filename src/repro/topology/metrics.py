"""Structural network metrics: diameter, bisection, injection capacity.

Design-space exploration needs quick structural sanity checks alongside the
bandwidth optimization: how many hops a worst-case message takes, where the
thinnest bisection cut lies, and how much aggregate injection bandwidth a
configuration provides. All metrics follow the per-NPU bandwidth convention
of :mod:`repro.topology.graph` (a dimension's bandwidth is split across the
NPU's ports in that dimension).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.topology.building_blocks import BlockKind, BuildingBlock
from repro.topology.graph import per_link_bandwidth
from repro.topology.network import MultiDimNetwork
from repro.utils.errors import ConfigurationError


def block_diameter(block: BuildingBlock) -> int:
    """Worst-case hop count within one dimension's unit topology.

    Ring: half-way around; FullyConnected: one hop; Switch: two hops
    (NPU → switch → NPU).
    """
    if block.kind is BlockKind.RING:
        return block.size // 2
    if block.kind is BlockKind.FULLY_CONNECTED:
        return 1
    return 2


def network_diameter(network: MultiDimNetwork) -> int:
    """Worst-case NPU-to-NPU hop count: dimension diameters add.

    Dimension-ordered routing crosses each dimension independently, so the
    network diameter is the sum of the per-dimension diameters.
    """
    return sum(block_diameter(block) for block in network.blocks)


def block_bisection_links(block: BuildingBlock) -> int:
    """Minimum undirected link cut halving one dimension group.

    Ring: the two links where the halves meet. FullyConnected: every link
    between the ⌈k/2⌉ and ⌊k/2⌋ halves. Switch: the uplinks of the smaller
    half (the crossbar itself is non-blocking).
    """
    size = block.size
    if block.kind is BlockKind.RING:
        return 1 if size == 2 else 2
    if block.kind is BlockKind.FULLY_CONNECTED:
        return (size // 2) * ((size + 1) // 2)
    return size // 2


@dataclass(frozen=True)
class BisectionReport:
    """Bisection capacities of a bandwidth configuration.

    Attributes:
        per_dim: Aggregate bisection bandwidth (bytes/s, one direction) when
            cutting the network across each dimension.
        weakest_dim: The dimension whose cut is cheapest.
    """

    per_dim: tuple[float, ...]

    @property
    def weakest_dim(self) -> int:
        return min(range(len(self.per_dim)), key=self.per_dim.__getitem__)

    @property
    def bandwidth(self) -> float:
        """The network's bisection bandwidth: the cheapest dimension cut."""
        return min(self.per_dim)


def bisection_report(
    network: MultiDimNetwork,
    bandwidths: Sequence[float],
) -> BisectionReport:
    """Bisection bandwidth per cutting dimension.

    Cutting across dimension ``d`` severs every dimension-``d`` group at its
    own minimum cut; there are ``num_npus / size_d`` such groups, each
    contributing ``cut_links · per_link_bandwidth``.
    """
    if len(bandwidths) != network.num_dims:
        raise ConfigurationError(
            f"expected {network.num_dims} bandwidths, got {len(bandwidths)}"
        )
    per_dim = []
    for dim, block in enumerate(network.blocks):
        groups = network.num_npus // block.size
        link_bw = per_link_bandwidth(block.kind, block.size, float(bandwidths[dim]))
        per_dim.append(groups * block_bisection_links(block) * link_bw)
    return BisectionReport(per_dim=tuple(per_dim))


def injection_bandwidth(
    network: MultiDimNetwork,
    bandwidths: Sequence[float],
) -> float:
    """Aggregate injection bandwidth of the whole system (bytes/s).

    Each NPU injects up to the sum of its per-dimension bandwidths.
    """
    if len(bandwidths) != network.num_dims:
        raise ConfigurationError(
            f"expected {network.num_dims} bandwidths, got {len(bandwidths)}"
        )
    return network.num_npus * float(sum(bandwidths))


def describe_structure(network: MultiDimNetwork, bandwidths: Sequence[float]) -> str:
    """Multi-line structural summary for reports."""
    report = bisection_report(network, bandwidths)
    lines = [
        f"{network}",
        f"diameter: {network_diameter(network)} hops",
        f"injection bandwidth: {injection_bandwidth(network, bandwidths) / 1e12:.2f} TB/s",
    ]
    for dim, capacity in enumerate(report.per_dim):
        marker = "  <- weakest cut" if dim == report.weakest_dim else ""
        lines.append(
            f"bisection across dim {dim + 1} ({network.blocks[dim]}): "
            f"{capacity / 1e12:.2f} TB/s{marker}"
        )
    return "\n".join(lines)

"""Preset network topologies from the paper.

Two registries are provided:

* :data:`EVALUATION_TOPOLOGIES` — Table III, the shapes used throughout the
  paper's evaluation (Sec. V-B). The 3D-4K network is the 4D-4K network with
  its two Ring dimensions merged, exactly as the paper describes.
* :data:`REAL_SYSTEM_TOPOLOGIES` — Fig. 11, real ML HPC clusters whose
  fabrics the notation captures.
"""

from __future__ import annotations

from repro.topology.network import MultiDimNetwork
from repro.utils.errors import ConfigurationError

#: Table III — multi-dimensional topologies used for analysis.
EVALUATION_TOPOLOGIES: dict[str, str] = {
    "4D-4K": "RI(4)_FC(8)_RI(4)_SW(32)",
    "3D-4K": "RI(16)_FC(8)_SW(32)",
    "3D-512": "SW(16)_SW(8)_SW(4)",
    "3D-1K": "FC(8)_RI(16)_SW(8)",
    "4D-2K": "RI(4)_SW(4)_SW(8)_SW(16)",
    "3D-Torus": "RI(4)_RI(4)_RI(4)",
}

#: Fig. 11 — real systems expressed in the same notation.
REAL_SYSTEM_TOPOLOGIES: dict[str, str] = {
    "Google TPUv2": "RI(4)_RI(2)",
    "Google TPUv3": "RI(4)_RI(2)",
    "Google TPUv4": "RI(4)_RI(2)_RI(2)",
    "NVIDIA DGX-2": "SW(3)_SW(2)",
    "NVIDIA DGX-A100": "SW(3)_SW(2)",
    "Intel Habana HLS-1": "FC(4)_SW(2)",
    "NVIDIA HGX-H100": "FC(4)_SW(2)",
    "Meta Zion": "RI(4)_SW(2)",
    "NVIDIA DGX-1": "RI(4)_SW(2)",
}


def get_topology(name: str) -> MultiDimNetwork:
    """Look up a preset by name from either registry.

    >>> get_topology("4D-4K").num_npus
    4096
    """
    notation = EVALUATION_TOPOLOGIES.get(name) or REAL_SYSTEM_TOPOLOGIES.get(name)
    if notation is None:
        known = sorted(list(EVALUATION_TOPOLOGIES) + list(REAL_SYSTEM_TOPOLOGIES))
        raise ConfigurationError(f"unknown preset topology {name!r}; known: {known}")
    return MultiDimNetwork.from_notation(notation, name=name)


def evaluation_topology_names() -> list[str]:
    """Names of the Table III topologies, in paper order."""
    return list(EVALUATION_TOPOLOGIES)

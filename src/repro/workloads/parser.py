"""Text workload format: parser and serializer.

LIBRA's front end (Fig. 3, "Workload Parser") reads workload descriptions
from text files in the spirit of ASTRA-sim's workload inputs. The format is
line-oriented:

.. code-block:: text

    # comments and blank lines are ignored
    WORKLOAD GPT-3
    DTYPE 2
    PARALLELISM TP 16 DP 256
    LAYER block0
      FWD_COMPUTE_FLOPS 3.9e12
      FWD_COMM ALL_REDUCE TP 5.03e7
      TP_COMPUTE_FLOPS 3.9e12
      TP_COMM ALL_REDUCE TP 5.03e7
      DP_COMPUTE_FLOPS 3.9e12
      DP_COMM REDUCE_SCATTER DP 2.26e8
      DP_COMM ALL_GATHER DP 2.26e8
      PARAMS 1.81e9
    END

Collective kinds are the :class:`CollectiveType` names; scopes are
``TP`` / ``DP`` / ``GLOBAL``. :func:`serialize_workload` emits this format
and :func:`parse_workload` reads it back; round-tripping is exact up to
float formatting (property-tested).
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.collectives.types import CollectiveType
from repro.utils.errors import ConfigurationError
from repro.workloads.layers import CommRequirement, CommScope, Layer
from repro.workloads.parallelism import Parallelism
from repro.workloads.workload import Workload

_COMM_FIELDS = {
    "FWD_COMM": "fwd",
    "TP_COMM": "tp",
    "DP_COMM": "dp",
}
_FLOP_FIELDS = {
    "FWD_COMPUTE_FLOPS": "fwd",
    "TP_COMPUTE_FLOPS": "tp",
    "DP_COMPUTE_FLOPS": "dp",
}


class _ParseState:
    """Mutable accumulation state while reading one workload file."""

    def __init__(self) -> None:
        self.name: str | None = None
        self.dtype_bytes = 2
        self.parallelism: Parallelism | None = None
        self.layers: list[Layer] = []
        self.layer_name: str | None = None
        self.flops = {"fwd": 0.0, "tp": 0.0, "dp": 0.0}
        self.comms: dict[str, list[CommRequirement]] = {"fwd": [], "tp": [], "dp": []}
        self.params = 0.0

    def begin_layer(self, name: str, line_no: int) -> None:
        if self.layer_name is not None:
            raise ConfigurationError(
                f"line {line_no}: LAYER {name!r} opened before END of {self.layer_name!r}"
            )
        self.layer_name = name
        self.flops = {"fwd": 0.0, "tp": 0.0, "dp": 0.0}
        self.comms = {"fwd": [], "tp": [], "dp": []}
        self.params = 0.0

    def end_layer(self, line_no: int) -> None:
        if self.layer_name is None:
            raise ConfigurationError(f"line {line_no}: END without an open LAYER")
        self.layers.append(
            Layer(
                name=self.layer_name,
                fwd_compute_flops=self.flops["fwd"],
                fwd_comms=tuple(self.comms["fwd"]),
                tp_compute_flops=self.flops["tp"],
                tp_comms=tuple(self.comms["tp"]),
                dp_compute_flops=self.flops["dp"],
                dp_comms=tuple(self.comms["dp"]),
                param_count=self.params,
            )
        )
        self.layer_name = None


def parse_workload(text: str) -> Workload:
    """Parse one workload from its text representation.

    Raises:
        ConfigurationError: on any structural problem, with the line number.
    """
    state = _ParseState()
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        keyword = tokens[0].upper()
        try:
            _dispatch(state, keyword, tokens, line_no)
        except (ValueError, KeyError) as exc:
            raise ConfigurationError(f"line {line_no}: {exc}") from exc

    if state.layer_name is not None:
        raise ConfigurationError(f"LAYER {state.layer_name!r} is missing its END")
    if state.name is None:
        raise ConfigurationError("missing WORKLOAD header")
    if state.parallelism is None:
        raise ConfigurationError("missing PARALLELISM line")
    return Workload(
        name=state.name,
        layers=tuple(state.layers),
        parallelism=state.parallelism,
        dtype_bytes=state.dtype_bytes,
    )


def _dispatch(state: _ParseState, keyword: str, tokens: list[str], line_no: int) -> None:
    """Apply one parsed line to the accumulation state."""
    if keyword == "WORKLOAD":
        state.name = " ".join(tokens[1:])
        if not state.name:
            raise ConfigurationError(f"line {line_no}: WORKLOAD needs a name")
    elif keyword == "DTYPE":
        state.dtype_bytes = int(tokens[1])
    elif keyword == "PARALLELISM":
        if len(tokens) != 5 or tokens[1].upper() != "TP" or tokens[3].upper() != "DP":
            raise ConfigurationError(
                f"line {line_no}: expected 'PARALLELISM TP <m> DP <n>', got {' '.join(tokens)!r}"
            )
        state.parallelism = Parallelism(tp=int(tokens[2]), dp=int(tokens[4]))
    elif keyword == "LAYER":
        state.begin_layer(" ".join(tokens[1:]), line_no)
    elif keyword == "END":
        state.end_layer(line_no)
    elif keyword in _FLOP_FIELDS:
        _require_open_layer(state, keyword, line_no)
        state.flops[_FLOP_FIELDS[keyword]] = float(tokens[1])
    elif keyword in _COMM_FIELDS:
        _require_open_layer(state, keyword, line_no)
        if len(tokens) != 4:
            raise ConfigurationError(
                f"line {line_no}: expected '{keyword} <KIND> <SCOPE> <bytes>'"
            )
        kind = CollectiveType[tokens[1].upper()]
        scope = CommScope[tokens[2].upper()]
        state.comms[_COMM_FIELDS[keyword]].append(
            CommRequirement(scope, kind, float(tokens[3]))
        )
    elif keyword == "PARAMS":
        _require_open_layer(state, keyword, line_no)
        state.params = float(tokens[1])
    else:
        raise ConfigurationError(f"line {line_no}: unknown keyword {keyword!r}")


def _require_open_layer(state: _ParseState, keyword: str, line_no: int) -> None:
    if state.layer_name is None:
        raise ConfigurationError(f"line {line_no}: {keyword} outside of a LAYER block")


def serialize_workload(workload: Workload) -> str:
    """Emit the text form of ``workload`` (inverse of :func:`parse_workload`)."""
    out = io.StringIO()
    out.write(f"WORKLOAD {workload.name}\n")
    out.write(f"DTYPE {workload.dtype_bytes}\n")
    out.write(
        f"PARALLELISM TP {workload.parallelism.tp} DP {workload.parallelism.dp}\n"
    )
    for layer in workload.layers:
        out.write(f"LAYER {layer.name}\n")
        _write_flops(out, "FWD_COMPUTE_FLOPS", layer.fwd_compute_flops)
        _write_comms(out, "FWD_COMM", layer.fwd_comms)
        _write_flops(out, "TP_COMPUTE_FLOPS", layer.tp_compute_flops)
        _write_comms(out, "TP_COMM", layer.tp_comms)
        _write_flops(out, "DP_COMPUTE_FLOPS", layer.dp_compute_flops)
        _write_comms(out, "DP_COMM", layer.dp_comms)
        if layer.param_count:
            out.write(f"  PARAMS {layer.param_count!r}\n")
        out.write("END\n")
    return out.getvalue()


def _write_flops(out: io.StringIO, keyword: str, value: float) -> None:
    if value:
        out.write(f"  {keyword} {value!r}\n")


def _write_comms(out: io.StringIO, keyword: str, comms: tuple[CommRequirement, ...]) -> None:
    for comm in comms:
        out.write(
            f"  {keyword} {comm.kind.name} {comm.scope.name} {comm.size_bytes!r}\n"
        )


def load_workload_file(path: str | Path) -> Workload:
    """Read and parse a workload file from disk."""
    return parse_workload(Path(path).read_text())


def save_workload_file(workload: Workload, path: str | Path) -> None:
    """Serialize ``workload`` to disk."""
    Path(path).write_text(serialize_workload(workload))

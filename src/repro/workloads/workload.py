"""Workload container: a named stack of layers plus its parallelization.

A :class:`Workload` is fully concrete — layer FLOP counts and communication
payloads already reflect the chosen parallelization degrees — but still
network-independent: communication is scope-tagged (TP / DP / GLOBAL) and is
bound to physical dimensions only when combined with a network via
:func:`repro.workloads.parallelism.map_parallelism`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.errors import ConfigurationError
from repro.workloads.layers import CommRequirement, CommScope, Layer
from repro.workloads.parallelism import Parallelism


@dataclass(frozen=True)
class Workload:
    """A training workload: layers, parallelization, and datatype.

    Attributes:
        name: Workload name (e.g. ``"GPT-3"``).
        layers: Layer stack in execution order.
        parallelism: The HP-(tp, dp) strategy the layer statistics assume.
        dtype_bytes: Bytes per element of the training datatype (2 = FP16).
    """

    name: str
    layers: tuple[Layer, ...]
    parallelism: Parallelism
    dtype_bytes: int = 2
    #: Lazily computed :meth:`canonical` payload. Workload instances are
    #: immutable and widely shared (per-worker LRUs, engine memos), while
    #: content-addressing — scenario keys, engine keys, sweep cache keys —
    #: re-reads the canonical payload on every request; caching it keeps
    #: key derivation out of the sweep hot path.
    _canonical_cache: dict | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("workload name must not be empty")
        if not self.layers:
            raise ConfigurationError(f"workload {self.name!r} has no layers")
        if self.dtype_bytes not in (1, 2, 4, 8):
            raise ConfigurationError(
                f"dtype_bytes must be 1, 2, 4, or 8, got {self.dtype_bytes}"
            )

    # -- aggregate statistics ------------------------------------------------

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def total_params(self) -> float:
        """Total parameter count across layers (whole model)."""
        return sum(layer.param_count for layer in self.layers)

    @property
    def total_compute_flops(self) -> float:
        """Forward + backward FLOPs per NPU per training step."""
        return sum(layer.total_compute_flops for layer in self.layers)

    @property
    def total_comm_bytes(self) -> float:
        """Sum of all collective payloads per step (Fig. 1's metric)."""
        return sum(layer.total_comm_bytes for layer in self.layers)

    def comm_bytes_by_scope(self) -> dict[CommScope, float]:
        """Communication payload split by parallelization scope."""
        totals: dict[CommScope, float] = {}
        for layer in self.layers:
            for comm in layer.all_comms:
                totals[comm.scope] = totals.get(comm.scope, 0.0) + comm.size_bytes
        return totals

    def comm_requirements(self) -> list[tuple[Layer, CommRequirement]]:
        """Flat list of (layer, requirement) pairs in execution order."""
        pairs = []
        for layer in self.layers:
            for comm in layer.all_comms:
                pairs.append((layer, comm))
        return pairs

    def canonical(self) -> dict:
        """Content-identity payload for hashing and result caching.

        Captures everything the training-time model reads — layer compute,
        per-collective payloads, the parallelization degrees, and the
        datatype — as a JSON-stable dict. Display-only metadata (comm
        labels) is excluded so round-tripping the text format preserves
        identity.

        Computed once per instance and shared; treat the returned payload
        as read-only.
        """
        if self._canonical_cache is not None:
            return self._canonical_cache
        # Degree-1 cp/ep axes are omitted so the canonical payload (and
        # every digest derived from it) of a classic HP-(tp, dp) workload
        # is byte-identical to what pre-CP/EP releases produced.
        parallelism_payload = {
            "tp": self.parallelism.tp,
            "dp": self.parallelism.dp,
            "pp": self.parallelism.pp,
        }
        if self.parallelism.cp != 1:
            parallelism_payload["cp"] = self.parallelism.cp
        if self.parallelism.ep != 1:
            parallelism_payload["ep"] = self.parallelism.ep
        payload = {
            "name": self.name,
            "parallelism": parallelism_payload,
            "dtype_bytes": self.dtype_bytes,
            "layers": [
                {
                    "name": layer.name,
                    "fwd_compute_flops": layer.fwd_compute_flops,
                    "tp_compute_flops": layer.tp_compute_flops,
                    "dp_compute_flops": layer.dp_compute_flops,
                    "param_count": layer.param_count,
                    "comms": [
                        [
                            phase,
                            comm.scope.value,
                            comm.kind.value,
                            comm.size_bytes,
                        ]
                        for phase, comms in (
                            ("fwd", layer.fwd_comms),
                            ("tp", layer.tp_comms),
                            ("dp", layer.dp_comms),
                        )
                        for comm in comms
                    ],
                }
                for layer in self.layers
            ],
        }
        object.__setattr__(self, "_canonical_cache", payload)
        return payload

    def with_parallelism(self, parallelism: Parallelism) -> "Workload":
        """Shallow re-tag with a different strategy.

        Only valid when layer statistics do not depend on the degrees being
        changed — the preset builders regenerate layers instead; this helper
        exists for synthetic workloads in tests.
        """
        return Workload(
            name=self.name,
            layers=self.layers,
            parallelism=parallelism,
            dtype_bytes=self.dtype_bytes,
        )

    def __str__(self) -> str:
        return (
            f"{self.name} [{self.num_layers} layers, "
            f"{self.total_params / 1e9:.1f}B params, {self.parallelism}]"
        )

"""Workload registry for Table II.

Each preset binds a model architecture to its Table II tensor-parallel
degree; the data-parallel degree follows from the system size
(``dp = num_npus / tp``). The registry is what the benchmarks and the
framework facade consume.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.utils.errors import ConfigurationError, MappingError
from repro.workloads.dlrm import build_dlrm
from repro.workloads.parallelism import Parallelism
from repro.workloads.resnet import build_resnet50
from repro.workloads.transformer import (
    GPT3_CONFIG,
    LONG_128K_CONFIG,
    MOE_1T_CONFIG,
    MSFT_1T_CONFIG,
    TURING_NLG_CONFIG,
    build_long_context_transformer,
    build_moe_transformer,
    build_transformer,
)
from repro.workloads.workload import Workload

#: Table II tensor-parallel degrees. DLRM's embedding exchange spans all
#: NPUs via GLOBAL-scope collectives, so its tp entry is 1 (the MLP side is
#: data-parallel across the whole system). The extension rows (MoE-1T,
#: Long-128K) follow the same convention.
TP_SIZES: dict[str, int] = {
    "Turing-NLG": 1,
    "GPT-3": 16,
    "MSFT-1T": 128,
    "DLRM": 1,
    "ResNet-50": 1,
    "MoE-1T": 8,
    "Long-128K": 8,
}

#: Default non-unit extension degrees per preset: ``(cp, ep)``. Presets
#: absent from this table use (1, 1) — the classic HP-(tp, dp) scheme.
DEFAULT_AXES: dict[str, tuple[int, int]] = {
    "MoE-1T": (1, 8),
    "Long-128K": (8, 1),
}

_BUILDERS: dict[str, Callable[[Parallelism], Workload]] = {
    "Turing-NLG": lambda p: build_transformer(TURING_NLG_CONFIG, p),
    "GPT-3": lambda p: build_transformer(GPT3_CONFIG, p),
    "MSFT-1T": lambda p: build_transformer(MSFT_1T_CONFIG, p),
    "DLRM": build_dlrm,
    "ResNet-50": build_resnet50,
    "MoE-1T": lambda p: build_moe_transformer(MOE_1T_CONFIG, p),
    "Long-128K": lambda p: build_long_context_transformer(LONG_128K_CONFIG, p),
}


def workload_names() -> list[str]:
    """Table II workload names, in paper order."""
    return list(_BUILDERS)


def build_workload(
    name: str,
    num_npus: int,
    parallelism: Parallelism | None = None,
) -> Workload:
    """Materialize a Table II workload for a system of ``num_npus`` NPUs.

    Args:
        name: Table II workload name.
        num_npus: System size; must be divisible by the workload's TP degree.
        parallelism: Optional override of the default HP-(tp, dp) split
            (used by the Fig. 21 co-optimization sweep).

    Raises:
        ConfigurationError: for unknown names.
        MappingError: when the default TP degree does not divide
            ``num_npus``.
    """
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ConfigurationError(
            f"unknown workload {name!r}; known: {workload_names()}"
        )
    if parallelism is None:
        tp = TP_SIZES[name]
        cp, ep = DEFAULT_AXES.get(name, (1, 1))
        inner = tp * cp * ep
        if num_npus % inner != 0:
            raise MappingError(
                f"{name} needs TP={tp}, CP={cp}, EP={ep}, whose product "
                f"{inner} does not divide {num_npus} NPUs"
            )
        parallelism = Parallelism(tp=tp, dp=num_npus // inner, cp=cp, ep=ep)
    elif parallelism.total_npus != num_npus:
        raise MappingError(
            f"{parallelism} occupies {parallelism.total_npus} NPUs, "
            f"but the system has {num_npus}",
            parallelism=parallelism,
        )
    return builder(parallelism)


def build_all_workloads(num_npus: int) -> dict[str, Workload]:
    """Every Table II workload at the given system size."""
    return {name: build_workload(name, num_npus) for name in workload_names()}

"""Megatron-style transformer workload builder (Sec. II-B, Table II).

Each transformer layer is modeled with the standard parameter and FLOP
accounting:

* parameters per layer: ``12 h²`` (attention ``4 h²`` + MLP ``8 h²``),
* forward FLOPs per layer: ``2 · params · tokens`` (dense matmuls),
* backward FLOPs: 2× forward, split evenly between input-gradient compute
  (the ``TP_Compute`` of Fig. 5) and weight-gradient compute (``DP_Compute``).

Communication per layer, with TP-``m`` (Megatron) and ZeRO-2 DP:

* forward TP: 2 All-Reduces of the activation block ``b·s·h`` elements,
* backward TP: 2 All-Reduces of the same size,
* DP (ZeRO-2): Reduce-Scatter of the layer's gradient shard
  (``params/m`` elements) plus All-Gather of the parameter shard (same
  size) — identical total volume to a classic All-Reduce of the gradients.

TP compute and payloads are per-NPU (divided by ``m``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.types import CollectiveType
from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_positive_int
from repro.workloads.layers import CommRequirement, CommScope, Layer
from repro.workloads.parallelism import Parallelism
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture and batch hyperparameters for a transformer workload.

    Attributes:
        name: Workload name.
        num_layers: Transformer block count.
        hidden: Model width ``h``.
        seq_len: Sequence length ``s``.
        microbatch: Per-model-replica microbatch ``b``.
        dtype_bytes: Bytes per element (2 = FP16, the paper's datatype).
    """

    name: str
    num_layers: int
    hidden: int
    seq_len: int
    microbatch: int = 1
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        check_positive_int(self.num_layers, "num_layers")
        check_positive_int(self.hidden, "hidden")
        check_positive_int(self.seq_len, "seq_len")
        check_positive_int(self.microbatch, "microbatch")

    @property
    def params_per_layer(self) -> float:
        """Dense parameter count of one transformer block: ``12 h²``."""
        return 12.0 * self.hidden * self.hidden

    @property
    def total_params(self) -> float:
        return self.params_per_layer * self.num_layers

    @property
    def tokens_per_microbatch(self) -> int:
        return self.microbatch * self.seq_len


def build_transformer(
    config: TransformerConfig,
    parallelism: Parallelism,
    zero2: bool = True,
) -> Workload:
    """Materialize a transformer workload for a given HP strategy.

    Args:
        zero2: When True (the paper's setting), data-parallel gradient
            synchronization is ZeRO-2's Reduce-Scatter + All-Gather pair;
            when False, a classic fused gradient All-Reduce (same total
            volume, but eligible for in-network reduction offload).
    """
    tp = parallelism.tp
    if config.hidden % tp != 0 and tp > 1:
        raise ConfigurationError(
            f"{config.name}: hidden {config.hidden} is not divisible by TP degree {tp}"
        )

    tokens = config.tokens_per_microbatch
    params = config.params_per_layer
    fwd_flops = 2.0 * params * tokens / tp
    activation_bytes = tokens * config.hidden * config.dtype_bytes
    grad_shard_bytes = params / tp * config.dtype_bytes

    tp_comm: tuple[CommRequirement, ...] = ()
    fwd_comm: tuple[CommRequirement, ...] = ()
    if tp > 1:
        # Megatron runs one All-Reduce after the attention block and one
        # after the MLP block, in both forward and backward.
        fwd_comm = (
            CommRequirement(CommScope.TP, CollectiveType.ALL_REDUCE,
                            activation_bytes, label="fwd-attn-ar"),
            CommRequirement(CommScope.TP, CollectiveType.ALL_REDUCE,
                            activation_bytes, label="fwd-mlp-ar"),
        )
        tp_comm = (
            CommRequirement(CommScope.TP, CollectiveType.ALL_REDUCE,
                            activation_bytes, label="bwd-attn-ar"),
            CommRequirement(CommScope.TP, CollectiveType.ALL_REDUCE,
                            activation_bytes, label="bwd-mlp-ar"),
        )

    dp_comm: tuple[CommRequirement, ...] = ()
    if parallelism.dp > 1:
        if zero2:
            # ZeRO-2: gradients reduce-scattered, updated shards all-gathered.
            dp_comm = (
                CommRequirement(CommScope.DP, CollectiveType.REDUCE_SCATTER,
                                grad_shard_bytes, label="zero2-grad-rs"),
                CommRequirement(CommScope.DP, CollectiveType.ALL_GATHER,
                                grad_shard_bytes, label="zero2-param-ag"),
            )
        else:
            # Classic data parallelism: one fused gradient All-Reduce.
            dp_comm = (
                CommRequirement(CommScope.DP, CollectiveType.ALL_REDUCE,
                                grad_shard_bytes, label="grad-ar"),
            )

    layers = tuple(
        Layer(
            name=f"{config.name.lower()}-block{index}",
            fwd_compute_flops=fwd_flops,
            fwd_comms=fwd_comm,
            tp_compute_flops=fwd_flops,
            tp_comms=tp_comm,
            dp_compute_flops=fwd_flops,
            dp_comms=dp_comm,
            param_count=params,
        )
        for index in range(config.num_layers)
    )
    return Workload(
        name=config.name,
        layers=layers,
        parallelism=parallelism,
        dtype_bytes=config.dtype_bytes,
    )


#: Architecture configurations behind Table II's transformer rows. The layer
#: counts / widths are the published model shapes; each yields the Table II
#: parameter count under the 12h² accounting (checked by tests).
TURING_NLG_CONFIG = TransformerConfig(
    name="Turing-NLG", num_layers=78, hidden=4256, seq_len=1024, microbatch=32
)
GPT3_CONFIG = TransformerConfig(
    name="GPT-3", num_layers=96, hidden=12288, seq_len=2048, microbatch=1
)
MSFT_1T_CONFIG = TransformerConfig(
    name="MSFT-1T", num_layers=128, hidden=25600, seq_len=1024, microbatch=1
)

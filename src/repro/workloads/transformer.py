"""Megatron-style transformer workload builder (Sec. II-B, Table II).

Each transformer layer is modeled with the standard parameter and FLOP
accounting:

* parameters per layer: ``12 h²`` (attention ``4 h²`` + MLP ``8 h²``),
* forward FLOPs per layer: ``2 · params · tokens`` (dense matmuls),
* backward FLOPs: 2× forward, split evenly between input-gradient compute
  (the ``TP_Compute`` of Fig. 5) and weight-gradient compute (``DP_Compute``).

Communication per layer, with TP-``m`` (Megatron) and ZeRO-2 DP:

* forward TP: 2 All-Reduces of the activation block ``b·s·h`` elements,
* backward TP: 2 All-Reduces of the same size,
* DP (ZeRO-2): Reduce-Scatter of the layer's gradient shard
  (``params/m`` elements) plus All-Gather of the parameter shard (same
  size) — identical total volume to a classic All-Reduce of the gradients.

TP compute and payloads are per-NPU (divided by ``m``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.types import CollectiveType
from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_positive_int
from repro.workloads.layers import CommRequirement, CommScope, Layer
from repro.workloads.parallelism import Parallelism
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture and batch hyperparameters for a transformer workload.

    Attributes:
        name: Workload name.
        num_layers: Transformer block count.
        hidden: Model width ``h``.
        seq_len: Sequence length ``s``.
        microbatch: Per-model-replica microbatch ``b``.
        dtype_bytes: Bytes per element (2 = FP16, the paper's datatype).
    """

    name: str
    num_layers: int
    hidden: int
    seq_len: int
    microbatch: int = 1
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        check_positive_int(self.num_layers, "num_layers")
        check_positive_int(self.hidden, "hidden")
        check_positive_int(self.seq_len, "seq_len")
        check_positive_int(self.microbatch, "microbatch")

    @property
    def params_per_layer(self) -> float:
        """Dense parameter count of one transformer block: ``12 h²``."""
        return 12.0 * self.hidden * self.hidden

    @property
    def total_params(self) -> float:
        return self.params_per_layer * self.num_layers

    @property
    def tokens_per_microbatch(self) -> int:
        return self.microbatch * self.seq_len


def build_transformer(
    config: TransformerConfig,
    parallelism: Parallelism,
    zero2: bool = True,
) -> Workload:
    """Materialize a transformer workload for a given HP strategy.

    Args:
        zero2: When True (the paper's setting), data-parallel gradient
            synchronization is ZeRO-2's Reduce-Scatter + All-Gather pair;
            when False, a classic fused gradient All-Reduce (same total
            volume, but eligible for in-network reduction offload).
    """
    tp = parallelism.tp
    if config.hidden % tp != 0 and tp > 1:
        raise ConfigurationError(
            f"{config.name}: hidden {config.hidden} is not divisible by TP degree {tp}"
        )

    tokens = config.tokens_per_microbatch
    params = config.params_per_layer
    fwd_flops = 2.0 * params * tokens / tp
    activation_bytes = tokens * config.hidden * config.dtype_bytes
    grad_shard_bytes = params / tp * config.dtype_bytes

    tp_comm: tuple[CommRequirement, ...] = ()
    fwd_comm: tuple[CommRequirement, ...] = ()
    if tp > 1:
        # Megatron runs one All-Reduce after the attention block and one
        # after the MLP block, in both forward and backward.
        fwd_comm = (
            CommRequirement(CommScope.TP, CollectiveType.ALL_REDUCE,
                            activation_bytes, label="fwd-attn-ar"),
            CommRequirement(CommScope.TP, CollectiveType.ALL_REDUCE,
                            activation_bytes, label="fwd-mlp-ar"),
        )
        tp_comm = (
            CommRequirement(CommScope.TP, CollectiveType.ALL_REDUCE,
                            activation_bytes, label="bwd-attn-ar"),
            CommRequirement(CommScope.TP, CollectiveType.ALL_REDUCE,
                            activation_bytes, label="bwd-mlp-ar"),
        )

    dp_comm: tuple[CommRequirement, ...] = ()
    if parallelism.dp > 1:
        if zero2:
            # ZeRO-2: gradients reduce-scattered, updated shards all-gathered.
            dp_comm = (
                CommRequirement(CommScope.DP, CollectiveType.REDUCE_SCATTER,
                                grad_shard_bytes, label="zero2-grad-rs"),
                CommRequirement(CommScope.DP, CollectiveType.ALL_GATHER,
                                grad_shard_bytes, label="zero2-param-ag"),
            )
        else:
            # Classic data parallelism: one fused gradient All-Reduce.
            dp_comm = (
                CommRequirement(CommScope.DP, CollectiveType.ALL_REDUCE,
                                grad_shard_bytes, label="grad-ar"),
            )

    layers = tuple(
        Layer(
            name=f"{config.name.lower()}-block{index}",
            fwd_compute_flops=fwd_flops,
            fwd_comms=fwd_comm,
            tp_compute_flops=fwd_flops,
            tp_comms=tp_comm,
            dp_compute_flops=fwd_flops,
            dp_comms=dp_comm,
            param_count=params,
        )
        for index in range(config.num_layers)
    )
    return Workload(
        name=config.name,
        layers=layers,
        parallelism=parallelism,
        dtype_bytes=config.dtype_bytes,
    )


@dataclass(frozen=True)
class MoEConfig(TransformerConfig):
    """A mixture-of-experts transformer: dense attention + sharded experts.

    Attributes:
        num_experts: Expert MLPs per layer (each ``8 h²`` parameters).
        top_k: Experts each token is routed to.
    """

    num_experts: int = 32
    top_k: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive_int(self.num_experts, "num_experts")
        check_positive_int(self.top_k, "top_k")
        if self.top_k > self.num_experts:
            raise ConfigurationError(
                f"{self.name}: top_k {self.top_k} exceeds "
                f"num_experts {self.num_experts}"
            )

    @property
    def params_per_layer(self) -> float:
        """Attention ``4 h²`` plus ``num_experts`` expert MLPs of ``8 h²``."""
        return (4.0 + 8.0 * self.num_experts) * self.hidden * self.hidden


def build_moe_transformer(config: MoEConfig, parallelism: Parallelism) -> Workload:
    """Materialize a mixture-of-experts workload for an HP strategy.

    Experts are sharded ``ep`` ways (expert parallelism): every layer routes
    its tokens to ``top_k`` experts through an EP-scope dispatch All-to-All
    and collects the outputs through a combine All-to-All, in both forward
    and backward. The attention block keeps the dense Megatron TP pattern;
    ZeRO-2 DP synchronizes each NPU's parameter shard (attention plus its
    ``num_experts / ep`` local experts).
    """
    tp, ep = parallelism.tp, parallelism.ep
    if config.hidden % tp != 0 and tp > 1:
        raise ConfigurationError(
            f"{config.name}: hidden {config.hidden} is not divisible by TP degree {tp}"
        )
    if config.num_experts % ep != 0:
        raise ConfigurationError(
            f"{config.name}: {config.num_experts} experts are not divisible "
            f"by EP degree {ep}"
        )

    tokens = config.tokens_per_microbatch
    hidden_sq = float(config.hidden) * config.hidden
    attn_params = 4.0 * hidden_sq
    expert_params = 8.0 * hidden_sq
    # Per-NPU compute: dense attention matmuls, plus each token visiting
    # top_k experts with the routed load spread across the EP group.
    fwd_flops = (
        2.0 * attn_params * tokens / tp
        + 2.0 * expert_params * tokens * config.top_k / (tp * ep)
    )
    activation_bytes = tokens * config.hidden * config.dtype_bytes
    routed_bytes = activation_bytes * config.top_k / tp
    shard_params = (attn_params + expert_params * config.num_experts / ep) / tp
    grad_shard_bytes = shard_params * config.dtype_bytes

    fwd_comm: list[CommRequirement] = []
    bwd_comm: list[CommRequirement] = []
    if tp > 1:
        fwd_comm.append(
            CommRequirement(CommScope.TP, CollectiveType.ALL_REDUCE,
                            activation_bytes, label="fwd-attn-ar"))
        bwd_comm.append(
            CommRequirement(CommScope.TP, CollectiveType.ALL_REDUCE,
                            activation_bytes, label="bwd-attn-ar"))
    if ep > 1:
        fwd_comm.extend((
            CommRequirement(CommScope.EP, CollectiveType.ALL_TO_ALL,
                            routed_bytes, label="moe-dispatch-a2a"),
            CommRequirement(CommScope.EP, CollectiveType.ALL_TO_ALL,
                            routed_bytes, label="moe-combine-a2a"),
        ))
        bwd_comm.extend((
            CommRequirement(CommScope.EP, CollectiveType.ALL_TO_ALL,
                            routed_bytes, label="moe-grad-dispatch-a2a"),
            CommRequirement(CommScope.EP, CollectiveType.ALL_TO_ALL,
                            routed_bytes, label="moe-grad-combine-a2a"),
        ))

    dp_comm: tuple[CommRequirement, ...] = ()
    if parallelism.dp > 1:
        dp_comm = (
            CommRequirement(CommScope.DP, CollectiveType.REDUCE_SCATTER,
                            grad_shard_bytes, label="zero2-grad-rs"),
            CommRequirement(CommScope.DP, CollectiveType.ALL_GATHER,
                            grad_shard_bytes, label="zero2-param-ag"),
        )

    layers = tuple(
        Layer(
            name=f"{config.name.lower()}-block{index}",
            fwd_compute_flops=fwd_flops,
            fwd_comms=tuple(fwd_comm),
            tp_compute_flops=fwd_flops,
            tp_comms=tuple(bwd_comm),
            dp_compute_flops=fwd_flops,
            dp_comms=dp_comm,
            param_count=config.params_per_layer,
        )
        for index in range(config.num_layers)
    )
    return Workload(
        name=config.name,
        layers=layers,
        parallelism=parallelism,
        dtype_bytes=config.dtype_bytes,
    )


def build_long_context_transformer(
    config: TransformerConfig,
    parallelism: Parallelism,
) -> Workload:
    """Materialize a long-context transformer for an HP strategy.

    Context parallelism (``cp``) shards the sequence: every NPU holds
    ``seq_len / cp`` tokens, exchanges its K/V shard around the CP ring
    each layer (an All-Gather forward, the matching Reduce-Scatter of K/V
    gradients backward), and — since weights are replicated across the CP
    group — all-reduces weight gradients over CP before the ZeRO-2 DP sync.
    """
    tp, cp = parallelism.tp, parallelism.cp
    if config.hidden % tp != 0 and tp > 1:
        raise ConfigurationError(
            f"{config.name}: hidden {config.hidden} is not divisible by TP degree {tp}"
        )
    if config.seq_len % cp != 0:
        raise ConfigurationError(
            f"{config.name}: seq_len {config.seq_len} is not divisible "
            f"by CP degree {cp}"
        )

    local_tokens = config.tokens_per_microbatch // cp
    params = config.params_per_layer
    fwd_flops = 2.0 * params * local_tokens / tp
    activation_bytes = local_tokens * config.hidden * config.dtype_bytes
    # K and V shards for the local tokens, exchanged around the CP ring.
    kv_bytes = 2.0 * activation_bytes
    grad_shard_bytes = params / tp * config.dtype_bytes

    fwd_comm: list[CommRequirement] = []
    bwd_comm: list[CommRequirement] = []
    if tp > 1:
        fwd_comm.extend((
            CommRequirement(CommScope.TP, CollectiveType.ALL_REDUCE,
                            activation_bytes, label="fwd-attn-ar"),
            CommRequirement(CommScope.TP, CollectiveType.ALL_REDUCE,
                            activation_bytes, label="fwd-mlp-ar"),
        ))
        bwd_comm.extend((
            CommRequirement(CommScope.TP, CollectiveType.ALL_REDUCE,
                            activation_bytes, label="bwd-attn-ar"),
            CommRequirement(CommScope.TP, CollectiveType.ALL_REDUCE,
                            activation_bytes, label="bwd-mlp-ar"),
        ))
    if cp > 1:
        fwd_comm.append(
            CommRequirement(CommScope.CP, CollectiveType.ALL_GATHER,
                            kv_bytes, label="ring-kv-ag"))
        bwd_comm.append(
            CommRequirement(CommScope.CP, CollectiveType.REDUCE_SCATTER,
                            kv_bytes, label="ring-kv-grad-rs"))

    dp_comm: list[CommRequirement] = []
    if cp > 1:
        # Weights are replicated across CP: weight gradients reduce over the
        # CP group before the data-parallel shard sync.
        dp_comm.append(
            CommRequirement(CommScope.CP, CollectiveType.ALL_REDUCE,
                            grad_shard_bytes, label="cp-grad-ar"))
    if parallelism.dp > 1:
        dp_comm.extend((
            CommRequirement(CommScope.DP, CollectiveType.REDUCE_SCATTER,
                            grad_shard_bytes, label="zero2-grad-rs"),
            CommRequirement(CommScope.DP, CollectiveType.ALL_GATHER,
                            grad_shard_bytes, label="zero2-param-ag"),
        ))

    layers = tuple(
        Layer(
            name=f"{config.name.lower()}-block{index}",
            fwd_compute_flops=fwd_flops,
            fwd_comms=tuple(fwd_comm),
            tp_compute_flops=fwd_flops,
            tp_comms=tuple(bwd_comm),
            dp_compute_flops=fwd_flops,
            dp_comms=tuple(dp_comm),
            param_count=params,
        )
        for index in range(config.num_layers)
    )
    return Workload(
        name=config.name,
        layers=layers,
        parallelism=parallelism,
        dtype_bytes=config.dtype_bytes,
    )


#: Architecture configurations behind Table II's transformer rows. The layer
#: counts / widths are the published model shapes; each yields the Table II
#: parameter count under the 12h² accounting (checked by tests).
TURING_NLG_CONFIG = TransformerConfig(
    name="Turing-NLG", num_layers=78, hidden=4256, seq_len=1024, microbatch=32
)
GPT3_CONFIG = TransformerConfig(
    name="GPT-3", num_layers=96, hidden=12288, seq_len=2048, microbatch=1
)
MSFT_1T_CONFIG = TransformerConfig(
    name="MSFT-1T", num_layers=128, hidden=25600, seq_len=1024, microbatch=1
)

#: Extension scenarios for the co-optimization axes (ROADMAP): a ~1T-param
#: mixture-of-experts model exercising expert parallelism and a 128K-context
#: GPT-3 exercising context parallelism.
MOE_1T_CONFIG = MoEConfig(
    name="MoE-1T", num_layers=64, hidden=8192, seq_len=2048, microbatch=1,
    num_experts=32, top_k=2,
)
LONG_128K_CONFIG = TransformerConfig(
    name="Long-128K", num_layers=96, hidden=12288, seq_len=131072, microbatch=1
)

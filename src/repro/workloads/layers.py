"""Layer-level workload description.

Each layer carries the quantities the training-loop model of Fig. 5 needs:

* ``fwd_compute_flops`` — forward-pass compute.
* ``fwd_comms`` — forward communication (e.g. Megatron TP All-Reduce of
  activations, DLRM embedding All-to-All).
* ``tp_compute_flops`` / ``tp_comms`` — backward input-gradient compute and
  the TP communication it triggers.
* ``dp_compute_flops`` / ``dp_comms`` — backward weight-gradient compute and
  the data-parallel gradient synchronization (ZeRO-2: Reduce-Scatter of
  gradients + All-Gather of parameters).

Communication is expressed as *scope-tagged requirements* — the payload and
pattern are fixed by the workload + parallelization degree, but which network
dimensions the group occupies is resolved later by
:mod:`repro.workloads.parallelism`, keeping workloads network-independent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.collectives.types import CollectiveType
from repro.utils.errors import ConfigurationError


class CommScope(enum.Enum):
    """Which parallelization group a communication runs over."""

    TP = "tp"
    DP = "dp"
    #: Pipeline-parallel stage boundary (point-to-point transfers).
    PP = "pp"
    #: Context-parallel group — ring-attention KV exchange across the
    #: sequence shards of one long-context layer.
    CP = "cp"
    #: Expert-parallel group — MoE token dispatch/combine All-to-All across
    #: the NPUs holding different experts.
    EP = "ep"
    #: The whole system — used by DLRM's embedding All-to-All, which the
    #: paper runs "across all NPUs" regardless of the TP/DP split.
    GLOBAL = "global"


@dataclass(frozen=True)
class CommRequirement:
    """One collective a layer must perform, before network mapping.

    Attributes:
        scope: The parallelization group (TP / DP / GLOBAL).
        kind: Collective pattern.
        size_bytes: Payload in bytes (already reflecting any TP sharding).
        label: Optional tag for reports. Metadata only — excluded from
            equality so text-format round trips (which do not carry labels)
            compare equal.
    """

    scope: CommScope
    kind: CollectiveType
    size_bytes: float
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ConfigurationError(
                f"communication size must be >= 0, got {self.size_bytes}"
            )


@dataclass(frozen=True)
class Layer:
    """One workload layer with Fig. 5's compute/communication decomposition.

    All FLOP counts are *per NPU* (TP sharding already applied). Sizes are in
    bytes of the training datatype.
    """

    name: str
    fwd_compute_flops: float = 0.0
    fwd_comms: tuple[CommRequirement, ...] = ()
    tp_compute_flops: float = 0.0
    tp_comms: tuple[CommRequirement, ...] = ()
    dp_compute_flops: float = 0.0
    dp_comms: tuple[CommRequirement, ...] = ()
    #: Parameter count of this layer (whole layer, before TP sharding);
    #: used for reporting and Fig. 1's communication-size accounting.
    param_count: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("layer name must not be empty")
        for label, value in (
            ("fwd_compute_flops", self.fwd_compute_flops),
            ("tp_compute_flops", self.tp_compute_flops),
            ("dp_compute_flops", self.dp_compute_flops),
            ("param_count", self.param_count),
        ):
            if value < 0:
                raise ConfigurationError(f"{label} must be >= 0, got {value}")

    @property
    def all_comms(self) -> tuple[CommRequirement, ...]:
        """Every communication requirement of the layer, in phase order."""
        return self.fwd_comms + self.tp_comms + self.dp_comms

    @property
    def total_compute_flops(self) -> float:
        """Forward + backward compute of the layer, per NPU."""
        return self.fwd_compute_flops + self.tp_compute_flops + self.dp_compute_flops

    @property
    def total_comm_bytes(self) -> float:
        """Sum of all communication payloads (pre-mapping, Fig. 1's metric)."""
        return sum(comm.size_bytes for comm in self.all_comms)

"""DLRM workload builder (Table II's recommendation row).

DLRM [14] mixes two parallelization regimes (the ZionEx setup the paper
cites):

* **Embedding tables** are model-parallel across *all* NPUs; every step
  exchanges pooled embedding vectors with an All-to-All in the forward pass
  and the mirrored All-to-All of gradients in the backward pass.
* **MLP layers** (bottom + top, 57 M parameters total in Table II) are
  data-parallel across all NPUs with ZeRO-2 gradient synchronization.

The All-to-All payload per NPU is ``batch · num_tables · emb_dim`` elements
— each NPU holds a slice of the tables and contributes its lookup results
for every sample in the global minibatch slice it receives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.types import CollectiveType
from repro.utils.validation import check_positive_int
from repro.workloads.layers import CommRequirement, CommScope, Layer
from repro.workloads.parallelism import Parallelism
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class DLRMConfig:
    """DLRM shape parameters.

    Defaults follow the open-source DLRM Criteo benchmark configuration: 26
    sparse features with 64-dimensional embeddings, a 13-512-256-64 bottom
    MLP, and a 512-256-1 top MLP over pairwise feature interactions; MLP
    widths are scaled up (hidden factor) so the dense side carries the
    57 M parameters of Table II.
    """

    num_tables: int = 26
    emb_dim: int = 64
    minibatch: int = 32
    bottom_mlp: tuple[int, ...] = (13, 4096, 4096, 64)
    top_mlp: tuple[int, ...] = (512, 8192, 4096, 640, 1)
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        check_positive_int(self.num_tables, "num_tables")
        check_positive_int(self.emb_dim, "emb_dim")
        check_positive_int(self.minibatch, "minibatch")

    @property
    def mlp_layer_shapes(self) -> list[tuple[str, int, int]]:
        """(name, in, out) per dense layer, bottom then top MLP."""
        shapes = []
        for index in range(len(self.bottom_mlp) - 1):
            shapes.append(
                (f"bottom-mlp{index}", self.bottom_mlp[index], self.bottom_mlp[index + 1])
            )
        for index in range(len(self.top_mlp) - 1):
            shapes.append(
                (f"top-mlp{index}", self.top_mlp[index], self.top_mlp[index + 1])
            )
        return shapes

    @property
    def mlp_params(self) -> float:
        return float(sum(c_in * c_out for _, c_in, c_out in self.mlp_layer_shapes))


def build_dlrm(parallelism: Parallelism, config: DLRMConfig | None = None) -> Workload:
    """DLRM: global embedding All-to-All + data-parallel MLPs.

    The DP degree prices the MLP gradient synchronization; the embedding
    exchange always spans the whole system (GLOBAL scope), matching
    Table II's "TP across all NPUs".
    """
    cfg = config or DLRMConfig()
    a2a_bytes = cfg.minibatch * cfg.num_tables * cfg.emb_dim * cfg.dtype_bytes

    layers = [
        Layer(
            name="embedding-exchange",
            fwd_comms=(
                CommRequirement(CommScope.GLOBAL, CollectiveType.ALL_TO_ALL,
                                a2a_bytes, label="emb-fwd-a2a"),
            ),
            tp_comms=(
                CommRequirement(CommScope.GLOBAL, CollectiveType.ALL_TO_ALL,
                                a2a_bytes, label="emb-bwd-a2a"),
            ),
            param_count=0.0,
        )
    ]
    for name, c_in, c_out in cfg.mlp_layer_shapes:
        params = float(c_in * c_out)
        fwd = 2.0 * params * cfg.minibatch
        dp_comm: tuple[CommRequirement, ...] = ()
        if parallelism.dp > 1:
            grad_bytes = params * cfg.dtype_bytes
            dp_comm = (
                CommRequirement(CommScope.DP, CollectiveType.REDUCE_SCATTER,
                                grad_bytes, label="zero2-grad-rs"),
                CommRequirement(CommScope.DP, CollectiveType.ALL_GATHER,
                                grad_bytes, label="zero2-param-ag"),
            )
        layers.append(
            Layer(
                name=name,
                fwd_compute_flops=fwd,
                tp_compute_flops=fwd,
                dp_compute_flops=fwd,
                dp_comms=dp_comm,
                param_count=params,
            )
        )
    return Workload(
        name="DLRM",
        layers=tuple(layers),
        parallelism=parallelism,
        dtype_bytes=cfg.dtype_bytes,
    )

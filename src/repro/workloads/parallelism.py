"""Hybrid parallelism and its mapping onto network dimensions (Sec. II-B).

``HP-(m, n)`` combines TP-``m`` (model sharded ``m``-way) with DP-``n``
(dataset split ``n`` ways) and occupies ``m × n`` NPUs. On a physical
network, the TP group occupies the *innermost* dimensions — TP communicates
the most, so it belongs on the cheapest, highest-bandwidth fabric — and DP
takes the remainder, mirroring how real systems place Megatron TP groups
inside nodes.

When the TP degree is not an exact product of leading dimension sizes, one
dimension is *split*: TP takes a slice and DP the complementary factor. That
partial span is the mechanism behind the paper's GPT-3 + 4D-4K observation
(TP-16 covers RI(4) fully but only half of FC(8), so the training job can
never exploit all of Dim 2's optimizer-assigned bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.types import DimSpan
from repro.topology.network import MultiDimNetwork
from repro.utils.errors import MappingError
from repro.utils.validation import check_positive_int, prod
from repro.workloads.layers import CommScope


@dataclass(frozen=True)
class Parallelism:
    """A hybrid parallelization strategy over up to five degrees.

    Pipeline parallelism is the extension the paper sketches in Sec. IV-C:
    the model is additionally split into ``pp`` stages connected by
    point-to-point activation/gradient transfers. Context parallelism
    (``cp``, ring-attention sequence sharding) and expert parallelism
    (``ep``, MoE expert sharding) extend the strategy space the TopoOpt-style
    co-optimization searches over. All extra degrees default to 1, which
    recovers the paper's two-degree HP-(tp, dp) scheme exactly.
    """

    tp: int
    dp: int
    pp: int = 1
    cp: int = 1
    ep: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.tp, "tp degree")
        check_positive_int(self.dp, "dp degree")
        check_positive_int(self.pp, "pp degree")
        check_positive_int(self.cp, "cp degree")
        check_positive_int(self.ep, "ep degree")

    @property
    def total_npus(self) -> int:
        """NPUs the strategy occupies: ``tp × cp × ep × pp × dp``."""
        return self.tp * self.cp * self.ep * self.pp * self.dp

    @property
    def degrees(self) -> tuple[int, int, int, int, int]:
        """The (tp, cp, ep, pp, dp) degree tuple, in placement order."""
        return (self.tp, self.cp, self.ep, self.pp, self.dp)

    def __str__(self) -> str:
        if self.cp == 1 and self.ep == 1:
            if self.pp == 1:
                return f"HP-({self.tp}, {self.dp})"
            return f"HP-({self.tp}, {self.pp}, {self.dp})"
        return (
            f"HP-(tp={self.tp}, cp={self.cp}, ep={self.ep}, "
            f"pp={self.pp}, dp={self.dp})"
        )

    def to_dict(self) -> dict:
        """JSON-ready payload; degree-1 extension axes are omitted so the
        serialized form of a classic HP-(tp, dp) strategy is unchanged."""
        payload: dict = {"tp": self.tp, "dp": self.dp, "pp": self.pp}
        if self.cp != 1:
            payload["cp"] = self.cp
        if self.ep != 1:
            payload["ep"] = self.ep
        return payload

    @classmethod
    def from_dict(cls, payload) -> "Parallelism":
        """Rebuild a strategy from :meth:`to_dict` output."""
        return cls(
            tp=int(payload["tp"]),
            dp=int(payload["dp"]),
            pp=int(payload.get("pp", 1)),
            cp=int(payload.get("cp", 1)),
            ep=int(payload.get("ep", 1)),
        )


@dataclass(frozen=True)
class GroupMapping:
    """Resolved placement of TP / CP / EP / PP / DP / global groups.

    Attributes:
        tp_spans: Dimensions (with effective sizes) the TP group occupies.
        cp_spans: Dimensions the context-parallel group occupies (empty for
            cp = 1).
        ep_spans: Dimensions the expert-parallel group occupies (empty for
            ep = 1).
        pp_spans: Dimensions the pipeline group occupies (empty for pp = 1).
        dp_spans: Dimensions the DP group occupies.
        global_spans: Full-network spans for GLOBAL-scope collectives.
    """

    tp_spans: tuple[DimSpan, ...]
    dp_spans: tuple[DimSpan, ...]
    global_spans: tuple[DimSpan, ...]
    pp_spans: tuple[DimSpan, ...] = ()
    cp_spans: tuple[DimSpan, ...] = ()
    ep_spans: tuple[DimSpan, ...] = ()

    def spans_for(self, scope: CommScope) -> tuple[DimSpan, ...]:
        """Spans of the group serving ``scope``."""
        if scope is CommScope.TP:
            return self.tp_spans
        if scope is CommScope.DP:
            return self.dp_spans
        if scope is CommScope.PP:
            return self.pp_spans
        if scope is CommScope.CP:
            return self.cp_spans
        if scope is CommScope.EP:
            return self.ep_spans
        return self.global_spans

    def boundary_spans(self, boundary: int) -> tuple[DimSpan, ...]:
        """Physical dimensions the pipeline boundary ``boundary`` crosses.

        Stages are numbered in mixed radix over the PP spans (innermost span
        varies fastest). The transfer from stage ``boundary`` to
        ``boundary + 1`` hops through every dimension whose digit changes on
        increment — one dimension for most boundaries, more when the
        increment carries (e.g. stage 3 → 4 on a (4, 2) pipeline group
        crosses both spans).
        """
        if not self.pp_spans:
            raise MappingError("boundary_spans requires a pipeline-parallel mapping")
        pp_size = prod(span.size for span in self.pp_spans)
        if not 0 <= boundary < pp_size - 1:
            raise MappingError(
                f"boundary {boundary} out of range for a {pp_size}-stage pipeline"
            )
        crossed: list[DimSpan] = []
        stage = boundary
        for span in self.pp_spans:
            crossed.append(span)
            if (stage % span.size) != span.size - 1:
                break  # no carry: higher digits unchanged
            stage //= span.size
        return tuple(crossed)


def map_parallelism(network: MultiDimNetwork, parallelism: Parallelism) -> GroupMapping:
    """Place ``parallelism`` onto ``network``, innermost-first.

    Placement order is TP, then CP, then EP, then PP, with DP taking the
    scale-out remainder. TP communicates the most per byte of model state,
    so it sits on the cheapest, fattest inner dimensions; context/expert
    groups exchange activations every layer and sit just outside; pipeline
    stages only pass boundary activations; data parallelism syncs once per
    step and takes the rest — the same ordering real Megatron-style systems
    use.

    Raises:
        MappingError: when the degree product does not equal the NPU count,
            or a degree cannot be factored across the dimension sizes (any
            split must divide the dimension). The error carries the
            offending ``parallelism`` and the network name so callers (the
            strategy-space enumerator, error reports) can locate it without
            parsing the message.
    """
    network_label = network.name or network.notation
    if parallelism.total_npus != network.num_npus:
        raise MappingError(
            f"{parallelism} needs {parallelism.total_npus} NPUs but network "
            f"{network_label} has {network.num_npus}",
            parallelism=parallelism,
            network=network_label,
        )

    try:
        tp_spans, cp_spans, ep_spans, pp_spans, dp_spans = _place_degrees(
            network,
            (parallelism.tp, parallelism.cp, parallelism.ep, parallelism.pp),
        )
    except MappingError as exc:
        raise MappingError(
            f"{parallelism} cannot be placed on {network_label}: {exc}",
            parallelism=parallelism,
            network=network_label,
        ) from exc
    global_spans = tuple(
        DimSpan(dim, size) for dim, size in enumerate(network.dim_sizes) if size > 1
    )
    return GroupMapping(
        tp_spans=tp_spans,
        cp_spans=cp_spans,
        ep_spans=ep_spans,
        pp_spans=pp_spans,
        dp_spans=dp_spans,
        global_spans=global_spans,
    )


def _place_degrees(
    network: MultiDimNetwork,
    inner_degrees: tuple[int, ...],
) -> tuple[tuple[DimSpan, ...], ...]:
    """Pack degrees innermost-first across dimensions; DP gets the rest.

    Each degree consumes whole dimensions while it can and may split one
    dimension with the next degree (the split factor must divide the
    remaining dimension capacity). Returns one span tuple per inner degree
    plus the trailing DP spans.
    """
    results: list[list[DimSpan]] = [[] for _ in inner_degrees]
    dp_spans: list[DimSpan] = []
    dim = 0
    # Remaining capacity of the current dimension (supports splitting one
    # physical dimension between consecutive degrees).
    capacity = network.dim_sizes[0] if network.num_dims else 1

    def advance() -> None:
        nonlocal dim, capacity
        dim += 1
        capacity = network.dim_sizes[dim] if dim < network.num_dims else 1

    for index, degree in enumerate(inner_degrees):
        remaining = degree
        while remaining > 1:
            if dim >= network.num_dims:
                raise MappingError(
                    f"degrees {inner_degrees} exceed network size {network.num_npus}"
                )
            if capacity == 1:
                advance()
                continue
            if remaining >= capacity:
                if remaining % capacity != 0:
                    raise MappingError(
                        f"degree {degree} does not factor across dimension sizes "
                        f"{network.dim_sizes}: stuck at dim {dim} with remainder "
                        f"{remaining} over capacity {capacity}"
                    )
                results[index].append(DimSpan(dim, capacity))
                remaining //= capacity
                advance()
            else:
                if capacity % remaining != 0:
                    raise MappingError(
                        f"cannot split dimension {dim} (remaining capacity "
                        f"{capacity}) into a slice of {remaining}: not a divisor"
                    )
                results[index].append(DimSpan(dim, remaining))
                capacity //= remaining
                remaining = 1

    # Everything left belongs to data parallelism.
    while dim < network.num_dims:
        if capacity > 1:
            dp_spans.append(DimSpan(dim, capacity))
        advance()

    return tuple(tuple(spans) for spans in results) + (tuple(dp_spans),)


def candidate_strategies(num_npus: int, min_tp: int = 1, max_tp: int | None = None) -> list[Parallelism]:
    """All HP-(tp, dp) splits of ``num_npus`` with ``tp`` in the given range.

    Used by the parallelization co-optimization study (Fig. 21), which sweeps
    TP from 8 to 256 on the 4,096-NPU network.
    """
    check_positive_int(num_npus, "num_npus")
    upper = max_tp if max_tp is not None else num_npus
    strategies = []
    tp = 1
    while tp <= min(upper, num_npus):
        if num_npus % tp == 0 and tp >= min_tp:
            strategies.append(Parallelism(tp=tp, dp=num_npus // tp))
        tp *= 2
    return strategies

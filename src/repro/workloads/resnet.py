"""ResNet-50 workload builder (Table II's vision row).

ResNet-50 is trained pure data-parallel (TP = 1, minibatch 32 per replica).
The layer stack is generated from the published architecture — a 7×7 stem,
four bottleneck stages of [3, 4, 6, 3] blocks, and the final classifier —
with standard parameter and FLOP accounting:

* conv params = ``k² · c_in · c_out``;
* conv forward FLOPs = ``2 · params · h_out · w_out`` per image;
* backward = 2× forward, split between input-gradient (TP slot, so the
  training loops treat it uniformly) and weight-gradient compute.

The generated model lands at ~25.6 M parameters, matching Table II.
Communication is ZeRO-2 data-parallel only: per-layer gradient
Reduce-Scatter + parameter All-Gather.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.types import CollectiveType
from repro.utils.validation import check_positive_int
from repro.workloads.layers import CommRequirement, CommScope, Layer
from repro.workloads.parallelism import Parallelism
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class _ConvSpec:
    """One convolution (or FC) layer's shape for accounting."""

    name: str
    kernel: int
    c_in: int
    c_out: int
    spatial: int  # output feature-map side length

    @property
    def params(self) -> float:
        return float(self.kernel * self.kernel * self.c_in * self.c_out)

    def fwd_flops(self, batch: int) -> float:
        return 2.0 * self.params * self.spatial * self.spatial * batch


def _resnet50_convs() -> list[_ConvSpec]:
    """The full ResNet-50 conv/FC stack (bottleneck blocks expanded)."""
    convs = [_ConvSpec("stem-conv7x7", 7, 3, 64, 112)]
    stage_blocks = [3, 4, 6, 3]
    stage_width = [64, 128, 256, 512]
    stage_spatial = [56, 28, 14, 7]
    c_in = 64
    for stage, (blocks, width, spatial) in enumerate(
        zip(stage_blocks, stage_width, stage_spatial)
    ):
        c_out = width * 4
        for block in range(blocks):
            prefix = f"stage{stage + 1}-block{block + 1}"
            convs.append(_ConvSpec(f"{prefix}-conv1x1a", 1, c_in, width, spatial))
            convs.append(_ConvSpec(f"{prefix}-conv3x3", 3, width, width, spatial))
            convs.append(_ConvSpec(f"{prefix}-conv1x1b", 1, width, c_out, spatial))
            if block == 0:
                convs.append(_ConvSpec(f"{prefix}-downsample", 1, c_in, c_out, spatial))
            c_in = c_out
    convs.append(_ConvSpec("fc1000", 1, 2048, 1000, 1))
    return convs


def build_resnet50(
    parallelism: Parallelism,
    minibatch: int = 32,
    dtype_bytes: int = 2,
) -> Workload:
    """ResNet-50 under pure data parallelism (ZeRO-2 gradient sync).

    Args:
        parallelism: Must have ``tp == 1``; ResNet is never tensor-sharded
            in the paper's setup.
        minibatch: Images per replica per step (paper: 32).
        dtype_bytes: Training datatype width (2 = FP16).
    """
    check_positive_int(minibatch, "minibatch")
    if parallelism.tp != 1:
        raise ValueError(f"ResNet-50 is data-parallel only; got TP={parallelism.tp}")

    layers = []
    for conv in _resnet50_convs():
        fwd = conv.fwd_flops(minibatch)
        dp_comm: tuple[CommRequirement, ...] = ()
        if parallelism.dp > 1:
            grad_bytes = conv.params * dtype_bytes
            dp_comm = (
                CommRequirement(CommScope.DP, CollectiveType.REDUCE_SCATTER,
                                grad_bytes, label="zero2-grad-rs"),
                CommRequirement(CommScope.DP, CollectiveType.ALL_GATHER,
                                grad_bytes, label="zero2-param-ag"),
            )
        layers.append(
            Layer(
                name=conv.name,
                fwd_compute_flops=fwd,
                tp_compute_flops=fwd,
                dp_compute_flops=fwd,
                dp_comms=dp_comm,
                param_count=conv.params,
            )
        )
    return Workload(
        name="ResNet-50",
        layers=tuple(layers),
        parallelism=parallelism,
        dtype_bytes=dtype_bytes,
    )

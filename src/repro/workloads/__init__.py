"""Workload modeling: layers, parallelism, and Table II model builders.

Public surface:

* :class:`Layer`, :class:`CommRequirement`, :class:`CommScope` — layer-level
  compute/communication description (Fig. 5's decomposition).
* :class:`Workload` — a named layer stack plus its parallelization.
* :class:`Parallelism`, :func:`map_parallelism`, :class:`GroupMapping` —
  HP-(tp, dp) and its placement on network dimensions.
* Builders: :func:`build_transformer` (Turing-NLG / GPT-3 / MSFT-1T),
  :func:`build_dlrm`, :func:`build_resnet50`; registry via
  :func:`build_workload` / :func:`workload_names`.
* :func:`parse_workload` / :func:`serialize_workload` — the text format.
"""

from repro.workloads.dlrm import DLRMConfig, build_dlrm
from repro.workloads.layers import CommRequirement, CommScope, Layer
from repro.workloads.parallelism import (
    GroupMapping,
    Parallelism,
    candidate_strategies,
    map_parallelism,
)
from repro.workloads.parser import (
    load_workload_file,
    parse_workload,
    save_workload_file,
    serialize_workload,
)
from repro.workloads.presets import (
    DEFAULT_AXES,
    TP_SIZES,
    build_all_workloads,
    build_workload,
    workload_names,
)
from repro.workloads.resnet import build_resnet50
from repro.workloads.transformer import (
    GPT3_CONFIG,
    LONG_128K_CONFIG,
    MOE_1T_CONFIG,
    MSFT_1T_CONFIG,
    TURING_NLG_CONFIG,
    MoEConfig,
    TransformerConfig,
    build_long_context_transformer,
    build_moe_transformer,
    build_transformer,
)
from repro.workloads.workload import Workload

__all__ = [
    "DLRMConfig",
    "build_dlrm",
    "CommRequirement",
    "CommScope",
    "Layer",
    "GroupMapping",
    "Parallelism",
    "candidate_strategies",
    "map_parallelism",
    "load_workload_file",
    "parse_workload",
    "save_workload_file",
    "serialize_workload",
    "DEFAULT_AXES",
    "TP_SIZES",
    "build_all_workloads",
    "build_workload",
    "workload_names",
    "build_resnet50",
    "GPT3_CONFIG",
    "LONG_128K_CONFIG",
    "MOE_1T_CONFIG",
    "MSFT_1T_CONFIG",
    "TURING_NLG_CONFIG",
    "MoEConfig",
    "TransformerConfig",
    "build_long_context_transformer",
    "build_moe_transformer",
    "build_transformer",
    "Workload",
]

"""Structured progress events streamed by :mod:`repro.serve` jobs.

Every observable step of a job's life becomes one immutable
:class:`ProgressEvent` with a monotonically increasing per-job sequence
number, so clients can resume a stream from any point (``?after=seq``)
and replay it deterministically — up to the per-job retention bound
(:data:`~repro.serve.jobs.EVENT_LOG_LIMIT`, newest 10k events): a
cursor that fell behind the bounded log resumes at the oldest retained
event. The terminal ``state`` event is always the newest, so lifecycle
observation never degrades. Event *kinds* partition the stream:

* ``"state"`` — a lifecycle transition (``data["state"]`` is the new
  :class:`~repro.serve.jobs.JobState` value; failures carry ``error``).
* ``"solve"`` — a single solve finished inside the job: multi-start and
  warm-start telemetry (``starts``, ``warm_start``, ``warm_source``).
* ``"plan"`` — a sweep's execution plan after cache lookup (``total``,
  ``cached``, ``chains``, ``solver_calls``, ``fanout_cells``).
* ``"cell"`` — one sweep grid cell resolved (``done``/``total``,
  ``label``, ``status``, ``warm_start``).
* ``"chain"`` — a continuation chain started or finished.

The ``plan`` / ``cell`` / ``chain`` payloads are exactly the dicts the
explore executor reports through its callback seam
(:data:`repro.explore.executor.EventCallback`) — the manager stamps
identity (job id, sequence, wall-clock time) on top rather than
re-shaping them.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.api.requests import RESPONSE_SCHEMA_VERSION, check_schema_version
from repro.utils.errors import ConfigurationError

#: Event payloads ride the v3 API schema (they were introduced by it).
EVENT_SCHEMA_VERSION = RESPONSE_SCHEMA_VERSION

#: Known event kinds, in rough emission order within a job. ``strategy``
#: brackets each strategy column of a costrategy job's joint search.
EVENT_KINDS = ("state", "solve", "plan", "cell", "chain", "strategy")


@dataclass(frozen=True)
class ProgressEvent:
    """One observable step of a job.

    Attributes:
        seq: Per-job sequence number, starting at 0, gapless.
        job_id: The job this event belongs to.
        kind: Discriminator from :data:`EVENT_KINDS`.
        at: Wall-clock emission time (``time.time()``).
        data: Kind-specific payload (JSON-ready scalars only).
    """

    seq: int
    job_id: str
    kind: str
    at: float
    data: dict

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown event kind {self.kind!r}; expected one of {EVENT_KINDS}"
            )
        if self.seq < 0:
            raise ConfigurationError(f"event seq must be >= 0, got {self.seq}")

    def to_dict(self) -> dict:
        """JSON-ready payload; one NDJSON line of an event stream."""
        return {
            "schema_version": EVENT_SCHEMA_VERSION,
            "seq": self.seq,
            "job_id": self.job_id,
            "kind": self.kind,
            "at": self.at,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ProgressEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        # The event shape has not changed since v3, so logs persisted by
        # earlier builds stay replayable across schema bumps.
        check_schema_version(
            payload, (3, 4, EVENT_SCHEMA_VERSION), "event",
            default=EVENT_SCHEMA_VERSION,
        )
        try:
            return cls(
                seq=int(payload["seq"]),
                job_id=str(payload["job_id"]),
                kind=str(payload["kind"]),
                at=float(payload["at"]),
                data=dict(payload.get("data", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed progress-event payload: {exc}"
            ) from exc
